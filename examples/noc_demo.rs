//! The NoC comparator in action: a 3×3 mesh with Address Protection Units
//! at the network interfaces (the related-work placement of the paper's
//! distributed-firewall idea) and monitoring probes read out at the end.
//!
//! ```sh
//! cargo run -p secbus-examples --bin noc_demo
//! ```

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_noc::{run_noc_workload, Mesh, NetworkInterface, NocConfig, NodeId, Packet, Topology};
use secbus_sim::Cycle;

fn main() {
    // 1. The workload comparison: a hot-spot read pattern, with and
    //    without NI protection.
    println!("hot-spot workload on the mesh (6 initiators, 10k cycles):\n");
    let plain = run_noc_workload(6, 8, 10_000, false);
    let protected = run_noc_workload(6, 8, 10_000, true);
    println!(
        "  unprotected : {:>5} round trips, mean latency {:>6.1} cycles",
        plain.completed,
        plain.mean_latency.unwrap_or(0.0)
    );
    println!(
        "  protected   : {:>5} round trips, mean latency {:>6.1} cycles",
        protected.completed,
        protected.mean_latency.unwrap_or(0.0)
    );
    println!(
        "  APU cost    : {:+.1} cycles per round trip (the same 12-cycle check\n                the bus firewalls charge — placement changed, mechanism didn't)\n",
        protected.mean_latency.unwrap_or(0.0) - plain.mean_latency.unwrap_or(0.0)
    );

    // 2. A rogue endpoint: its APU drops everything before the mesh.
    let mut mesh = Mesh::new(Topology::new(3, 3), NocConfig::default());
    let mut ni = NetworkInterface::new(
        NodeId::new(0, 0),
        ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(0x1000, 0x100),
            Rwa::ReadOnly,
            AdfSet::WORD_ONLY,
        )])
        .unwrap(),
    );
    let attempts = [
        (Op::Read, 0x1000u32, Width::Word),
        (Op::Write, 0x1000, Width::Word),
        (Op::Read, 0x1000, Width::Byte),
        (Op::Read, 0xDEAD_0000, Width::Word),
    ];
    for (i, &(op, addr, width)) in attempts.iter().enumerate() {
        let txn = Transaction {
            id: TxnId(i as u64),
            master: MasterId(0),
            op,
            addr,
            width,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        };
        match ni.check(&txn, Cycle(0)) {
            Ok(latency) => {
                println!("  {op} {addr:#010x} {width}: admitted after {latency} cycles");
                let id = mesh.alloc_id();
                mesh.inject(
                    Packet {
                        id,
                        src: NodeId::new(0, 0),
                        dst: NodeId::new(2, 2),
                        op,
                        addr,
                        width,
                        data: 0,
                        flits: 2,
                        injected_at: Cycle(0),
                    },
                    Cycle(0),
                );
            }
            Err((v, _)) => println!("  {op} {addr:#010x} {width}: DROPPED at the NI ({v})"),
        }
    }
    let probe = ni.probe();
    println!(
        "\nprobe read-out (Fiorin-style monitoring): {} checked, {} rejected",
        probe.checked, probe.rejected
    );
    for (kind, n) in &probe.by_kind {
        println!("  {kind}: {n}");
    }
    println!(
        "packets that entered the mesh: {}",
        mesh.stats().counter("noc.injected")
    );
    assert_eq!(mesh.stats().counter("noc.injected"), 1);
    println!("\nnoc_demo OK.");
}
