//! Secure boot: sensitive data lives in external DDR behind the Local
//! Ciphering Firewall. The example shows the three protection levels side
//! by side and demonstrates that (a) protected data is ciphertext at rest,
//! (b) a physical tamper of the protected image is caught by the Integrity
//! Core before any core consumes it.
//!
//! ```sh
//! cargo run -p secbus-examples --bin secure_boot
//! ```

use secbus_attack::Adversary;
use secbus_cpu::{Mb32Core, Reg};
use secbus_sim::SimRng;
use secbus_soc::casestudy::{
    case_study, CaseStudyConfig, DDR_BASE, DDR_PRIVATE_BASE, DDR_PUBLIC_BASE,
};

fn main() {
    // The case-study platform: cpu0 copies a buffer into the PRIVATE
    // (ciphered + integrity-checked) DDR region and checksums it back.
    let mut soc = case_study(CaseStudyConfig::default());
    let cycles = soc.run_until_halt(5_000_000);
    println!("boot workload finished in {cycles} cycles");

    // (a) Confidentiality: the private region holds ciphertext at rest.
    let ddr = soc.ddr().unwrap();
    let private_at_rest = ddr.snoop(DDR_PRIVATE_BASE - DDR_BASE, 16);
    let public_at_rest = ddr.snoop(DDR_PUBLIC_BASE - DDR_BASE, 8);
    println!("private region at rest : {private_at_rest:02x?}");
    println!("public  region at rest : {public_at_rest:02x?} (plaintext table 1,2,…)");
    let plain_first: Vec<u8> = 100u32.to_le_bytes().to_vec();
    assert_ne!(
        &private_at_rest[..4],
        &plain_first[..],
        "ciphertext at rest"
    );

    // The checksum cpu0 computed THROUGH the LCF is correct plaintext:
    let bram = soc.bram_contents().unwrap();
    let checksum = u32::from_le_bytes(bram[0x1000..0x1004].try_into().unwrap());
    println!(
        "cpu0 checksum through the LCF = {checksum} (expected {})",
        (100..116).sum::<u32>()
    );
    assert_eq!(checksum, (100..116).sum::<u32>());

    // (b) Integrity: a physical attacker flips bits in the private image…
    println!("\n-- physical tampering of the private boot image --");
    let mut adversary = Adversary::new(SimRng::new(1));
    {
        let ddr = soc.ddr_mut().unwrap();
        adversary.spoof_random(ddr, 0, 16);
    }
    // …and a fresh reader program consumes that region.
    let reader = secbus_cpu::assemble(
        r"
        li  r1, 0x80000000
        lw  r2, 0(r1)      ; integrity check fails -> data discarded (0)
        halt
        ",
    )
    .unwrap();
    let programs = [
        r"li  r1, 0x80000000
          lw  r2, 0(r1)
          halt"
            .to_string(),
        "halt".to_string(),
        "halt".to_string(),
    ];
    let _ = reader;
    let mut soc2 = case_study(CaseStudyConfig {
        programs: Some(programs),
        ip_samples: 1,
        ..Default::default()
    });
    // Tamper BEFORE the cores run: the boot image is corrupted in place.
    {
        let ddr = soc2.ddr_mut().unwrap();
        let mut adversary = Adversary::new(SimRng::new(2));
        adversary.spoof_random(ddr, 0, 16);
    }
    soc2.run_until_halt(1_000_000);
    let cpu0 = soc2.master_as::<Mb32Core>(0).unwrap();
    println!("tampered read returned      = {}", cpu0.reg(Reg(2)));
    println!(
        "integrity alerts raised     = {}",
        soc2.monitor().alert_count()
    );
    assert_eq!(cpu0.reg(Reg(2)), 0, "tampered data never reaches the core");
    assert!(soc2.monitor().alert_count() >= 1);
    println!("\nsecure_boot OK: ciphertext at rest, tampering detected before use.");
}
