//! A DMA pipeline across the trust boundary: a DMA engine stages data from
//! the protected external region into internal BRAM while a core consumes
//! it. Shows the cost asymmetry the paper highlights — external (LCF)
//! accesses pay the crypto cores, internal accesses only pay the checking
//! pass — and prints the measured split.
//!
//! ```sh
//! cargo run -p secbus-examples --bin dma_pipeline
//! ```

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::DmaEngine;
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::Cycle;
use secbus_soc::casestudy::lcf_policies;
use secbus_soc::{Report, SocBuilder};

const BRAM_BASE: u32 = 0x2000_0000;
const DDR_BASE: u32 = 0x8000_0000;
const DDR_LEN: u32 = 0x10_0000;
const BYTES: u32 = 1024;

fn build(protected: bool, src: u32) -> secbus_soc::Soc {
    let dma = DmaEngine::new("dma0", src, BRAM_BASE, BYTES, 4);
    let policies = ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(DDR_BASE, DDR_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
    ])
    .unwrap();
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for i in 0..BYTES {
        ddr.load(src - DDR_BASE + i, &[(i % 251) as u8]);
    }
    let mut b = SocBuilder::new();
    if !protected {
        b = b.without_security();
    }
    b.add_protected_master(Box::new(dma), policies)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ddr,
            Some(lcf_policies()),
        )
        .build()
}

fn run(label: &str, protected: bool, src: u32) -> u64 {
    let mut soc = build(protected, src);
    let cycles = soc.run_until_halt(10_000_000);
    let dma = soc.master_as::<DmaEngine>(0).unwrap();
    assert_eq!(dma.moved(), BYTES, "{label}: copy completed");
    println!("{label:<46} {cycles:>8} cycles");
    if protected {
        let r = Report::collect(&soc, Cycle(0));
        print!("{r}");
    }
    cycles
}

fn main() {
    println!("DMA staging {BYTES} bytes DDR -> BRAM\n");
    // Source in the *private* (cipher+integrity) region vs the *public*
    // (unprotected) region, each with and without the security layer.
    let base_private = run("generic, src = private region", false, DDR_BASE);
    let prot_private = run("protected, src = private region (CC+IC)", true, DDR_BASE);
    let base_public = run("generic, src = public region", false, DDR_BASE + 0x8_0000);
    let prot_public = run(
        "protected, src = public region (checks only)",
        true,
        DDR_BASE + 0x8_0000,
    );

    let over_private = (prot_private as f64 / base_private as f64 - 1.0) * 100.0;
    let over_public = (prot_public as f64 / base_public as f64 - 1.0) * 100.0;
    println!("\noverhead, private source : {over_private:.1}%  (pays SB + CC + IC)");
    println!("overhead, public  source : {over_public:.1}%  (pays SB only)");
    assert!(over_private > over_public, "crypto path must cost more");
    println!("\ndma_pipeline OK: external-crypto traffic dominates the overhead,");
    println!("exactly the asymmetry the paper's §V discussion predicts.");
}
