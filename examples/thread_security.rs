//! Thread-specific security (the paper's §VI future work): "each thread
//! has its own security level". A tiny round-robin scheduler multiplexes
//! three threads over one core's firewall context; the same address is
//! legal for one thread, read-only for another and invisible to the third.
//!
//! ```sh
//! cargo run -p secbus-examples --bin thread_security
//! ```

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, CheckOutcome, ConfigMemory, Rwa, SecurityPolicy, ThreadId, ThreadPolicyTable,
};
use secbus_sim::Cycle;

const SHARED: u32 = 0x2000_0000;
const SECRET: u32 = 0x2000_1000;

fn table(policies: Vec<SecurityPolicy>) -> ConfigMemory {
    ConfigMemory::with_policies(policies).unwrap()
}

fn txn(op: Op, addr: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op,
        addr,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    }
}

fn show(t: &mut ThreadPolicyTable, op: Op, addr: u32, now: Cycle) -> &'static str {
    match t.check(&txn(op, addr), now) {
        CheckOutcome::Pass => "PASS",
        CheckOutcome::Fail(v) => match v {
            secbus_core::Violation::NoPolicy => "DENY (no policy)",
            secbus_core::Violation::UnauthorizedWrite => "DENY (read-only)",
            _ => "DENY",
        },
    }
}

fn main() {
    // Fallback: deny everything (unknown threads get nothing).
    let mut threads = ThreadPolicyTable::new(ConfigMemory::new(), 4);

    // Thread 1 — the trusted service: full access to both regions.
    threads.set_table(
        ThreadId(1),
        table(vec![
            SecurityPolicy::internal(
                1,
                AddrRange::new(SHARED, 0x1000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(
                2,
                AddrRange::new(SECRET, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
        ]),
    );
    // Thread 2 — the app: shared region read/write, secret region read-only.
    threads.set_table(
        ThreadId(2),
        table(vec![
            SecurityPolicy::internal(
                3,
                AddrRange::new(SHARED, 0x1000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(4, AddrRange::new(SECRET, 0x100), Rwa::ReadOnly, AdfSet::ALL),
        ]),
    );
    // Thread 3 — untrusted plugin: shared region only.
    threads.set_table(
        ThreadId(3),
        table(vec![SecurityPolicy::internal(
            5,
            AddrRange::new(SHARED, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )]),
    );

    println!("round-robin schedule over one core; same addresses, per-thread verdicts\n");
    println!(
        "{:<8} {:>14} {:>22} {:>22}",
        "thread", "switch cost", "write SHARED", "write SECRET"
    );
    let mut now = Cycle(0);
    for slot in 0..6u32 {
        let tid = ThreadId(1 + (slot % 3));
        let cost = threads.switch_to(tid);
        let shared_verdict = show(&mut threads, Op::Write, SHARED + 4, now);
        let secret_verdict = show(&mut threads, Op::Write, SECRET + 4, now);
        println!(
            "T{:<7} {:>13}c {:>22} {:>22}",
            tid.0, cost, shared_verdict, secret_verdict
        );
        now += 10;
    }

    // The invariants the scheduler relies on:
    threads.switch_to(ThreadId(2));
    assert!(threads.check(&txn(Op::Read, SECRET), Cycle(99)).passed());
    assert!(!threads.check(&txn(Op::Write, SECRET), Cycle(99)).passed());
    threads.switch_to(ThreadId(3));
    assert!(!threads.check(&txn(Op::Read, SECRET), Cycle(99)).passed());
    threads.switch_to(ThreadId(42)); // unknown thread -> fallback deny-all
    assert!(!threads.check(&txn(Op::Read, SHARED), Cycle(99)).passed());

    println!("\nthread_security OK: per-thread Configuration Memories enforce");
    println!("different security levels over the very same address map.");
}
