//! Run-time security-policy reconfiguration (the paper's §VI future work):
//! a misbehaving IP is escalated to an administrative block by the
//! monitor, then recovered by swapping its Configuration Memory at run
//! time — without stopping the rest of the system.
//!
//! ```sh
//! cargo run -p secbus-examples --bin policy_reconfiguration
//! ```

use secbus_attack::{AttackOp, HijackedMaster};
use secbus_bus::{AddrRange, Op, Width};
use secbus_core::{AdfSet, ConfigMemory, PolicyUpdate, Rwa, SecurityPolicy};
use secbus_cpu::StreamIp;
use secbus_mem::Bram;
use secbus_soc::SocBuilder;

const BRAM_BASE: u32 = 0x2000_0000;

fn main() {
    // A hijacked IP that goes rogue at cycle 500 with a burst of
    // out-of-policy writes…
    let script: Vec<AttackOp> = (0..8)
        .map(|i| AttackOp {
            op: Op::Write,
            addr: BRAM_BASE + 0x8000 + i * 4,
            width: Width::Word,
            data: 0xBAD,
        })
        .collect();
    let rogue = HijackedMaster::new("rogue", BRAM_BASE, 8, 500, script);
    // …and an innocent bystander streaming into its own window.
    let bystander = StreamIp::new("good-ip", BRAM_BASE + 0x100, 16, 0);

    let mut soc = SocBuilder::new()
        .monitor_threshold(3) // block after 3 violations
        .reconfig_latency(64)
        .add_protected_master(
            Box::new(rogue),
            ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                1,
                AddrRange::new(BRAM_BASE, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )])
            .unwrap(),
        )
        .add_protected_master(
            Box::new(bystander),
            ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                2,
                AddrRange::new(BRAM_BASE + 0x100, 0x100),
                Rwa::WriteOnly,
                AdfSet::WORD_ONLY,
            )])
            .unwrap(),
        )
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .build();

    soc.run(2_000);
    let rogue_fw = soc.master_firewall_id(0).unwrap();
    println!("after the rogue burst:");
    println!("  alerts        = {}", soc.monitor().alert_count());
    println!(
        "  rogue blocked = {}",
        soc.master_firewall(0).unwrap().is_blocked()
    );
    println!(
        "  bystander acks = {} (unaffected)",
        soc.master_device(1).stats().counter("stream.acked")
    );
    assert!(soc.master_firewall(0).unwrap().is_blocked());

    // Security operator response: swap the rogue's policy table at run
    // time (e.g. after re-flashing its firmware) and lift the block.
    let apply_at = soc.schedule_reconfig(PolicyUpdate {
        firewall: rogue_fw,
        policies: vec![SecurityPolicy::internal(
            3,
            AddrRange::new(BRAM_BASE, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )],
    });
    println!("\nreconfiguration scheduled, applies at {apply_at}");
    soc.run(200);
    println!("after reconfiguration:");
    println!(
        "  rogue blocked = {}",
        soc.master_firewall(0).unwrap().is_blocked()
    );
    println!(
        "  policy generation = {}",
        soc.master_firewall(0).unwrap().config().generation()
    );
    assert!(!soc.master_firewall(0).unwrap().is_blocked());
    assert_eq!(soc.master_firewall(0).unwrap().config().generation(), 1);

    let before = soc.master_device(1).stats().counter("stream.acked");
    soc.run(1_000);
    let after = soc.master_device(1).stats().counter("stream.acked");
    println!("  bystander kept streaming: {before} -> {after} acks");
    assert!(after > before);
    println!("\npolicy_reconfiguration OK: block, live policy swap, recovery.");
}
