//! Runs the full §III threat model against the platform and narrates the
//! outcome of each attack class.
//!
//! ```sh
//! cargo run -p secbus-examples --bin attack_demo
//! ```

use secbus_attack::{run_all_scenarios, Scenario};

fn main() {
    println!("Executing the paper's threat model (replay / relocation / spoofing");
    println!("on the external memory; hijacking / DoS from a compromised IP)\n");

    for outcome in run_all_scenarios(2026) {
        println!("── {}", outcome.scenario.name());
        match outcome.detection_latency {
            Some(lat) => println!(
                "   detected {lat} cycles after injection ({} alerts)",
                outcome.alerts
            ),
            None => println!("   NOT detected ({} alerts)", outcome.alerts),
        }
        println!(
            "   contained: {} | attacker-chosen data delivered: {}",
            if outcome.contained { "yes" } else { "NO" },
            if outcome.data_compromised {
                "YES"
            } else {
                "no"
            }
        );
        let note = match outcome.scenario {
            Scenario::SpoofPrivate | Scenario::ReplayPrivate | Scenario::RelocatePrivate => {
                "Integrity Core: leaf hash vs on-chip root"
            }
            Scenario::SpoofCipherOnly => {
                "cipher-only: plaintext garbled, tampering NOT detected (paper §III-B)"
            }
            Scenario::SpoofPublic => {
                "unprotected region: the deliberate hole the paper warns about"
            }
            Scenario::HijackedIp => "Local Firewall: RWA/ADF/region checks at the interface",
            Scenario::DosViolating => "flood dies at the interface; the bus never sees it",
            Scenario::CodeInjection => {
                "injected code executed, but its first illegal access was discarded"
            }
        };
        println!("   mechanism: {note}\n");
    }
    println!("attack_demo complete.");
}
