//! Quickstart: build a minimal protected MPSoC, run a program, watch the
//! firewall discard an out-of-policy access.
//!
//! ```sh
//! cargo run -p secbus-examples --bin quickstart
//! ```

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, Mb32Core, Reg};
use secbus_mem::Bram;
use secbus_sim::Cycle;
use secbus_soc::{Report, SocBuilder};

const BRAM_BASE: u32 = 0x2000_0000;

fn main() {
    // 1. A program for the MB32 soft core. It performs two writes: one the
    //    security policy allows, one it does not.
    let program = assemble(
        r"
        li   r1, 0x20000000     ; shared BRAM
        addi r2, r0, 123
        sw   r2, 0(r1)          ; allowed: inside the policy region
        sw   r2, 512(r1)        ; VIOLATION: outside the policy region
        lw   r3, 0(r1)          ; read back the allowed word
        halt
        ",
    )
    .expect("assembles");

    // 2. The core's Security Policy: read/write, any width, but only the
    //    first 256 bytes of the BRAM.
    let policy = SecurityPolicy::internal(
        1,
        AddrRange::new(BRAM_BASE, 256),
        Rwa::ReadWrite,
        AdfSet::ALL,
    );

    // 3. Assemble the system: one core behind a Local Firewall, one BRAM.
    let mut soc = SocBuilder::new()
        .add_protected_master(
            Box::new(Mb32Core::with_local_program("cpu0", 0, program)),
            ConfigMemory::with_policies(vec![policy]).unwrap(),
        )
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .build();

    // 4. Run to completion.
    let cycles = soc.run_until_halt(100_000);
    println!("program halted after {cycles} cycles\n");

    // 5. Inspect the outcome.
    let core = soc.master_as::<Mb32Core>(0).expect("cpu0 is an MB32");
    println!("r3 (allowed read-back)     = {}", core.reg(Reg(3)));
    println!(
        "BRAM[0]   (allowed write)  = {}",
        soc.bram_contents().unwrap()[0]
    );
    println!(
        "BRAM[512] (blocked write)  = {}",
        soc.bram_contents().unwrap()[512]
    );
    println!(
        "alerts at the monitor      = {}",
        soc.monitor().alert_count()
    );
    if let Some((cycle, alert)) = soc.monitor().first_alert() {
        println!(
            "first alert: {} -> {} at {}",
            alert.firewall.0, alert.violation, cycle
        );
    }

    println!("\n{}", Report::collect(&soc, Cycle(0)));

    assert_eq!(core.reg(Reg(3)), 123);
    assert_eq!(
        soc.bram_contents().unwrap()[512],
        0,
        "the violation was contained"
    );
    assert_eq!(soc.monitor().alert_count(), 1);
    println!("quickstart OK: the violating write was discarded at the interface.");
}
