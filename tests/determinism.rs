//! Determinism: same seed + same configuration ⇒ cycle-exact identical
//! behaviour. Every experiment in EXPERIMENTS.md relies on this.

use secbus_fault::{FaultPlan, FaultRates, FaultSpec};
use secbus_integration_tests::synthetic_soc;
use secbus_sim::Cycle;
use secbus_soc::casestudy::{case_study, CaseResilience, CaseStudyConfig};
use secbus_soc::Report;

#[test]
fn synthetic_runs_are_cycle_exact_replicas() {
    let run = |seed: u64| {
        let mut soc = synthetic_soc(3, 3, 200, seed);
        let cycles = soc.run_until_halt(1_000_000);
        let trace: Vec<(u64, u32, bool)> = soc
            .bus()
            .trace()
            .iter()
            .map(|(c, t)| (c.get(), t.addr, t.op == secbus_bus::Op::Write))
            .collect();
        (cycles, trace, soc.monitor().alert_count())
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a.0, b.0, "halt cycle");
    assert_eq!(a.1, b.1, "bus trace");
    assert_eq!(a.2, b.2, "alerts");
    let c = run(12);
    assert_ne!(a.1, c.1, "different seeds produce different traffic");
}

#[test]
fn case_study_is_deterministic() {
    let run = || {
        let mut soc = case_study(CaseStudyConfig::default());
        let cycles = soc.run_until_halt(5_000_000);
        let report = Report::collect(&soc, Cycle(0));
        (cycles, report.bus_grants, report.masters[0].work)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Same seed + same fault plan ⇒ identical faulty run, including every
/// watchdog cancel, retry and quarantine recovery along the way.
#[test]
fn fault_injected_runs_are_seed_reproducible() {
    let spec = FaultSpec {
        duration: 15_000,
        ddr_bytes: 0x10_0000,
        firewalls: 5,
        slaves: 2,
        noc_nodes: 0,
        rates: FaultRates::uniform(6.0),
    };
    let run = |fault_seed: u64| {
        let mut soc = case_study(CaseStudyConfig {
            monitor_threshold: 8,
            resilience: Some(CaseResilience::default()),
            ..Default::default()
        });
        soc.attach_fault_plan(FaultPlan::generate(fault_seed, &spec));
        soc.run(15_000);
        let trace: Vec<(u64, u32, bool)> = soc
            .bus()
            .trace()
            .iter()
            .map(|(c, t)| (c.get(), t.addr, t.op == secbus_bus::Op::Write))
            .collect();
        let mut counters: Vec<(String, u64)> = soc
            .stats()
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .chain(
                soc.monitor()
                    .stats()
                    .counters()
                    .map(|(k, v)| (k.to_string(), v)),
            )
            .collect();
        counters.sort();
        (trace, counters, soc.monitor().alert_count())
    };
    let a = run(0xFEED);
    let b = run(0xFEED);
    assert_eq!(a.0, b.0, "bus trace");
    assert_eq!(a.1, b.1, "soc + monitor counters");
    assert_eq!(a.2, b.2, "alerts");
    let c = run(0xBEEF);
    assert_ne!(a.1, c.1, "a different fault seed perturbs the run");
}

#[test]
fn attack_scenarios_are_deterministic() {
    let a = secbus_attack::run_all_scenarios(99);
    let b = secbus_attack::run_all_scenarios(99);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.scenario, y.scenario);
        assert_eq!(x.detected_at, y.detected_at);
        assert_eq!(x.alerts, y.alerts);
        assert_eq!(x.contained, y.contained);
    }
}
