//! Property tests for the overload discipline (S-19's laws, standalone).
//!
//! Two invariants must hold for *every* seed, not just the sweep points
//! the soak happens to visit:
//!
//! 1. **Conservation** — on a mesh under randomized open-loop arrivals,
//!    every offered packet is delivered, shed-with-an-alert, counted as
//!    a silent drop (bare fabric only), or still in flight as residue.
//!    Nothing vanishes; the protected fabric never drops silently.
//! 2. **Hysteresis liveness** — whenever sustained pressure pushes the
//!    SoC into the brownout posture, removing the load always brings it
//!    back out: every `DegradeEnter` is matched by a `DegradeExit`
//!    before the drain window closes.
//!
//! Both are checked across a spread of seeds with per-seed randomized
//! parameters (pattern, intensity, flood rate), so a regression that
//! only shows under one schedule still trips the suite.

use secbus_noc::{run_overload, OverloadConfig};
use secbus_soc::{run_soc_overload, DegradeConfig, SocOverloadConfig};
use secbus_workload::Pattern;

/// Seeds the properties are replayed under. Arbitrary but fixed so the
/// suite is deterministic; the per-seed parameter draws below spread
/// them over the configuration space.
const SEEDS: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 34, 0xDEAD, 0xBEEF];

/// Cheap splitmix-style scramble for turning a seed into parameter
/// draws without touching the workload's own RNG stream.
fn scramble(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized 2x2-mesh overload cell for one seed: the pattern and
/// intensity are themselves seed-derived draws.
fn mesh_cell(seed: u64, protected: bool) -> OverloadConfig {
    let pattern = match scramble(seed, 1) % 4 {
        0 => Pattern::Poisson,
        1 => Pattern::Bursty {
            burst_len: 16 + scramble(seed, 2) % 48,
            gap_len: 32 + scramble(seed, 3) % 96,
        },
        2 => Pattern::Hotspot {
            hot: 3,
            fraction: 0.5 + (scramble(seed, 4) % 40) as f64 / 100.0,
        },
        _ => Pattern::Transpose,
    };
    // 0.05 ..= 1.0 arrivals per node per cycle: from comfortably under
    // capacity to well past saturation.
    let intensity = 0.05 + (scramble(seed, 5) % 96) as f64 / 100.0;
    OverloadConfig {
        cols: 2,
        rows: 2,
        pattern,
        intensity,
        cycles: 1_500,
        drain_cycles: 2_000,
        protected,
        node_capacity: 4,
        seed,
    }
}

/// Conservation law on the protected mesh: offered arrivals are fully
/// accounted for and none are lost silently, whatever the schedule.
#[test]
fn protected_mesh_conserves_every_arrival_across_seeds() {
    for &seed in SEEDS {
        let cfg = mesh_cell(seed, true);
        let r = run_overload(&cfg);
        assert!(
            r.offered > 0,
            "seed {seed}: workload offered nothing: {r:?}"
        );
        assert!(
            r.conservation_ok,
            "seed {seed}: books do not balance: {r:?}"
        );
        assert_eq!(
            r.silent_drops, 0,
            "seed {seed}: protected fabric dropped silently: {r:?}"
        );
        assert!(!r.wedged, "seed {seed}: mesh wedged: {r:?}");
        assert!(
            r.drain_cycles_used.is_some(),
            "seed {seed}: mesh did not drain within its window: {r:?}"
        );
    }
}

/// The bare mesh may drop, but its books must still balance — silent
/// drops are *counted*, never invisible, so the bare/protected contrast
/// in the soak is an honest comparison.
#[test]
fn bare_mesh_books_still_balance_across_seeds() {
    for &seed in SEEDS {
        let cfg = mesh_cell(seed, false);
        let r = run_overload(&cfg);
        assert!(
            r.conservation_ok,
            "seed {seed}: bare books do not balance: {r:?}"
        );
        assert_eq!(r.alerts, 0, "seed {seed}: bare mesh raised alerts: {r:?}");
    }
}

/// Hysteresis liveness on the integrated SoC: an aggressive degrade
/// config guarantees the flood trips the brownout, and the property is
/// that it *always* exits once the open-loop window ends — enters and
/// exits pair up and the run never finishes degraded.
#[test]
fn brownout_always_exits_after_the_flood_drains() {
    for &seed in SEEDS {
        let per_tick = 1 + (scramble(seed, 6) % 4) as u32;
        let cfg = SocOverloadConfig {
            per_tick,
            cycles: 1_000,
            drain_cycles: 20_000,
            master_queue_capacity: 4,
            protected: true,
            degrade: Some(DegradeConfig {
                high_watermark: 3,
                low_watermark: 0,
                enter_after: 4,
                exit_after: 16,
            }),
            seed,
        };
        let r = run_soc_overload(&cfg);
        assert!(
            r.degrade_enters > 0,
            "seed {seed}: flood at {per_tick}/tick never tripped the brownout: {r:?}"
        );
        assert!(
            !r.still_degraded,
            "seed {seed}: brownout latched past the drain: {r:?}"
        );
        assert_eq!(
            r.degrade_enters, r.degrade_exits,
            "seed {seed}: unmatched DegradeEnter: {r:?}"
        );
        assert!(r.conservation_ok, "seed {seed}: SoC books broke: {r:?}");
        assert_eq!(
            r.shed, r.shed_alerts,
            "seed {seed}: a shed arrival went unalerted: {r:?}"
        );
    }
}

/// Degradation is load-relieving, not decorative: under the same flood,
/// the brownout posture completes at least as much work as the fully
/// verifying posture (cheaper reads drain the queue faster).
#[test]
fn brownout_never_reduces_throughput() {
    for &seed in SEEDS[..4].iter() {
        let base = SocOverloadConfig {
            per_tick: 2,
            cycles: 1_000,
            drain_cycles: 20_000,
            master_queue_capacity: 4,
            protected: true,
            degrade: None,
            seed,
        };
        let rigid = run_soc_overload(&base);
        let soft = run_soc_overload(&SocOverloadConfig {
            degrade: Some(DegradeConfig {
                high_watermark: 3,
                low_watermark: 0,
                enter_after: 4,
                exit_after: 16,
            }),
            ..base
        });
        assert!(
            soft.completed >= rigid.completed,
            "seed {seed}: brownout completed less ({} < {}) under identical load",
            soft.completed,
            rigid.completed
        );
    }
}
