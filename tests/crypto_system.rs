//! Randomized tests of the cryptographic protection as seen through
//! the whole system: random write/read workloads against the LCF must
//! round-trip exactly, leak nothing, and detect arbitrary tampering.
//! Workloads come from a seeded [`SimRng`], so each case is reproducible.

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, Rwa, SecurityPolicy, Violation,
};
use secbus_mem::ExternalDdr;
use secbus_sim::{Cycle, SimRng};

const BASE: u32 = 0x8000_0000;
const REGION: u32 = 0x1000;

fn lcf_pair() -> (LocalCipheringFirewall, ExternalDdr) {
    let config = ConfigMemory::with_policies(vec![SecurityPolicy::external(
        1,
        AddrRange::new(BASE, REGION),
        Rwa::ReadWrite,
        AdfSet::ALL,
        ConfidentialityMode::Encrypt,
        IntegrityMode::Verify,
        Some([0x3C; 16]),
    )])
    .unwrap();
    let mut ddr = ExternalDdr::new(REGION);
    let mut lcf =
        LocalCipheringFirewall::new(FirewallId(0), "LCF", config, BASE, CryptoTiming::PAPER);
    lcf.seal(&mut ddr);
    (lcf, ddr)
}

fn txn(op: Op, addr: u32, width: Width, data: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op,
        addr,
        width,
        data,
        burst: 1,
        issued_at: Cycle(0),
    }
}

fn width_of(sel: u8) -> Width {
    match sel % 3 {
        0 => Width::Byte,
        1 => Width::Half,
        _ => Width::Word,
    }
}

/// Randomized: aligned write/read sequences round-trip exactly through
/// the cipher + integrity machinery.
#[test]
fn protected_memory_roundtrips() {
    for case in 0u64..48 {
        let mut rng = SimRng::new(0xc0de_0000 + case);
        let (mut lcf, mut ddr) = lcf_pair();
        let mut shadow = vec![0u8; REGION as usize];
        let mut cycle = 0u64;
        let ops = 1 + rng.below(59);
        for _ in 0..ops {
            let slot = rng.below(0x400) as u32;
            let width = width_of(rng.next_u32() as u8);
            let value = rng.next_u32();
            let addr = BASE + slot * 4; // word-aligned base, ok for all widths
            let t = txn(Op::Write, addr, width, value);
            lcf.handle(&mut ddr, &t, Cycle(cycle))
                .expect("write admitted");
            let n = width.bytes() as usize;
            let off = (addr - BASE) as usize;
            shadow[off..off + n].copy_from_slice(&value.to_le_bytes()[..n]);
            cycle += 1;

            // Read back through the LCF and compare with the shadow.
            let r = lcf
                .handle(&mut ddr, &txn(Op::Read, addr, width, 0), Cycle(cycle))
                .expect("read admitted");
            let mut raw = [0u8; 4];
            raw[..n].copy_from_slice(&shadow[off..off + n]);
            assert_eq!(r.data, u32::from_le_bytes(raw), "case {case}");
            cycle += 1;
        }
    }
}

/// Randomized: any single tampered byte in the protected region is
/// detected on the next read of its block, wherever it lands.
#[test]
fn any_byte_tamper_is_detected() {
    for case in 0u64..48 {
        let mut rng = SimRng::new(0x7a3b_0000 + case);
        let (mut lcf, mut ddr) = lcf_pair();
        let mut cycle = 0;
        let writes = 1 + rng.below(9);
        for _ in 0..writes {
            let slot = rng.below(0x100) as u32;
            let value = rng.next_u32();
            let t = txn(Op::Write, BASE + slot * 4, Width::Word, value);
            lcf.handle(&mut ddr, &t, Cycle(cycle)).unwrap();
            cycle += 1;
        }
        let victim = rng.below(0x1000) as u32;
        let flip = 1 + rng.below(255) as u8;
        // Tamper one stored byte.
        let mut b = ddr.snoop(victim, 1).to_vec();
        b[0] ^= flip;
        ddr.tamper(victim, &b);
        // Read the containing word: must be refused with an integrity error.
        let read_addr = BASE + (victim & !3);
        let err = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, read_addr, Width::Word, 0),
                Cycle(cycle),
            )
            .expect_err("tamper must be detected");
        assert_eq!(err.0, Violation::IntegrityMismatch, "case {case}");
    }
}

/// Randomized: the raw external bytes never contain a 4-byte window equal
/// to a (non-trivial) plaintext word that was written.
#[test]
fn no_plaintext_word_at_rest() {
    for case in 0u64..48 {
        let mut rng = SimRng::new(0x9e57_0000 + case);
        let (mut lcf, mut ddr) = lcf_pair();
        let value = 0x0100_0000 + rng.below(u64::from(0xffff_ffffu32 - 0x0100_0000)) as u32;
        let slot = rng.below(0x100) as u32;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, BASE + slot * 4, Width::Word, value),
            Cycle(0),
        )
        .unwrap();
        let needle = value.to_le_bytes();
        let raw = ddr.snoop(0, REGION);
        let leaked = raw.windows(4).any(|w| w == needle);
        assert!(!leaked, "case {case}: plaintext {value:#x} visible at rest");
    }
}

/// Deterministic companion: a full-region sweep write/read (all widths).
#[test]
fn full_region_sweep_roundtrip() {
    let (mut lcf, mut ddr) = lcf_pair();
    let mut cycle = 0;
    for i in 0..(REGION / 4) {
        let t = txn(
            Op::Write,
            BASE + i * 4,
            Width::Word,
            i.wrapping_mul(0x9e3779b9),
        );
        lcf.handle(&mut ddr, &t, Cycle(cycle)).unwrap();
        cycle += 1;
    }
    for i in 0..(REGION / 4) {
        let r = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, BASE + i * 4, Width::Word, 0),
                Cycle(cycle),
            )
            .unwrap();
        assert_eq!(r.data, i.wrapping_mul(0x9e3779b9));
        cycle += 1;
    }
}
