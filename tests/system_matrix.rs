//! Cross-cutting system behaviours: arbitration policies, DDR row
//! locality, burst semantics, NoC interface protection, and KDF-based
//! key provisioning — each exercised end to end.

use secbus_bus::{AddrRange, BusConfig, MasterId, Op, Tdma, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, Rwa, SecurityPolicy,
};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_crypto::derive_region_key;
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::{Cycle, SimRng};
use secbus_soc::SocBuilder;

const BRAM_BASE: u32 = 0x2000_0000;

fn synth(label: &str, window: (u32, u32), period: u64, ops: u64, seed: u64) -> SyntheticMaster {
    SyntheticMaster::new(
        label,
        SyntheticConfig {
            windows: vec![(window.0, window.1, 1)],
            read_ratio: 0.5,
            widths: vec![Width::Word],
            burst: 1,
            period,
            total_ops: ops,
        },
        SimRng::new(seed),
    )
}

fn rw(spi: u16, base: u32, len: u32) -> ConfigMemory {
    ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        spi,
        AddrRange::new(base, len),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap()
}

/// Under TDMA, a greedy master cannot push the other's share below its
/// slot allocation: both make progress.
#[test]
fn tdma_guarantees_progress_under_asymmetric_load() {
    let greedy = synth("greedy", (BRAM_BASE, 0x100), 1, 0, 1);
    let modest = synth("modest", (BRAM_BASE + 0x100, 0x100), 8, 0, 2);
    let mut soc = SocBuilder::new()
        .arbiter(Box::new(Tdma::new(vec![MasterId(0), MasterId(1)], 8)))
        .add_protected_master(Box::new(greedy), rw(1, BRAM_BASE, 0x100))
        .add_protected_master(Box::new(modest), rw(2, BRAM_BASE + 0x100, 0x100))
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .build();
    soc.run(20_000);
    let greedy_ok = soc.master_device(0).stats().counter("traffic.ok");
    let modest_ok = soc.master_device(1).stats().counter("traffic.ok");
    assert!(greedy_ok > 0 && modest_ok > 0);
    // The modest master is period-limited to ~20000/(8+latency); it must
    // get a large fraction of that despite the greedy neighbour.
    assert!(modest_ok > 400, "modest completed only {modest_ok}");
}

/// DDR row locality is visible through the whole stack: a streaming
/// (sequential) reader sees more row hits than a random one.
#[test]
fn ddr_row_locality_shows_through_the_system() {
    let run = |windows: Vec<(u32, u32, u32)>, seed| {
        let master = SyntheticMaster::new(
            "reader",
            SyntheticConfig {
                windows,
                read_ratio: 1.0,
                widths: vec![Width::Word],
                burst: 1,
                period: 1,
                total_ops: 400,
            },
            SimRng::new(seed),
        );
        let policies = rw(1, 0x8000_0000, 0x10_0000);
        let mut soc = SocBuilder::new()
            .add_protected_master(Box::new(master), policies)
            .set_ddr(
                "ddr",
                AddrRange::new(0x8000_0000, 0x10_0000),
                ExternalDdr::new(0x10_0000),
                None, // unprotected: isolate the DRAM behaviour
            )
            .build();
        soc.run_until_halt(1_000_000);
        let ddr = soc.ddr().unwrap();
        (ddr.row_hits(), ddr.row_misses())
    };
    // One tight window (sequential-ish) vs scattered windows.
    let (seq_hits, seq_misses) = run(vec![(0x8000_0000, 0x400, 1)], 3);
    let scattered: Vec<(u32, u32, u32)> = (0..16)
        .map(|i| (0x8000_0000 + i * 0x10000, 0x40, 1))
        .collect();
    let (rnd_hits, rnd_misses) = run(scattered, 3);
    let seq_rate = seq_hits as f64 / (seq_hits + seq_misses) as f64;
    let rnd_rate = rnd_hits as f64 / (rnd_hits + rnd_misses) as f64;
    assert!(
        seq_rate > rnd_rate,
        "sequential hit rate {seq_rate:.2} must beat scattered {rnd_rate:.2}"
    );
}

/// A burst whose tail escapes the policy region is rejected whole: no
/// partial transfer reaches the slave.
#[test]
fn burst_overrun_is_rejected_atomically() {
    let master = SyntheticMaster::new(
        "burster",
        SyntheticConfig {
            windows: vec![(BRAM_BASE + 0xF0, 0x10, 1)], // last 16 bytes of policy
            read_ratio: 0.0,
            widths: vec![Width::Word],
            burst: 8, // 32 bytes: always overruns the 0x100 policy
            period: 4,
            total_ops: 20,
        },
        SimRng::new(9),
    );
    let mut soc = SocBuilder::new()
        .add_protected_master(Box::new(master), rw(1, BRAM_BASE, 0x100))
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .build();
    soc.run_until_halt(100_000);
    assert_eq!(soc.master_device(0).stats().counter("traffic.ok"), 0);
    assert_eq!(soc.monitor().alert_count(), 20);
    assert!(
        soc.bram_contents().unwrap().iter().all(|&b| b == 0),
        "no beat of any overrunning burst may land"
    );
}

/// Longer bursts occupy the bus longer: back-to-back single-beat writes
/// from a competitor complete later when a burster shares the bus.
#[test]
fn burst_occupancy_slows_competitors() {
    let run = |burst: u16| {
        let burster = SyntheticMaster::new(
            "burster",
            SyntheticConfig {
                windows: vec![(BRAM_BASE, 0x100, 1)],
                read_ratio: 0.0,
                widths: vec![Width::Word],
                burst,
                period: 1,
                total_ops: 0,
            },
            SimRng::new(4),
        );
        let victim = synth("victim", (BRAM_BASE + 0x100, 0x100), 4, 200, 5);
        let mut soc = SocBuilder::new()
            .bus_config(BusConfig::default())
            .arbiter(Box::new(secbus_bus::RoundRobin::default()))
            .add_protected_master(Box::new(burster), rw(1, BRAM_BASE, 0x100))
            .add_protected_master(Box::new(victim), rw(2, BRAM_BASE + 0x100, 0x100))
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run(30_000);
        soc.master_device(1)
            .stats()
            .histogram("traffic.latency")
            .and_then(|h| h.mean())
            .unwrap()
    };
    let with_short = run(1);
    let with_long = run(16);
    assert!(
        with_long > with_short,
        "16-beat bursts must slow the victim: {with_long:.1} vs {with_short:.1}"
    );
}

/// NoC network interfaces drop out-of-policy packets before injection:
/// nothing enters the mesh.
#[test]
fn noc_apu_stops_traffic_before_the_mesh() {
    use secbus_bus::{Transaction, TxnId};
    use secbus_noc::{Mesh, NetworkInterface, NocConfig, NodeId, Topology};

    let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::default());
    let mut ni = NetworkInterface::new(
        NodeId::new(0, 0),
        ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(0x1000, 0x100),
            Rwa::ReadOnly,
            AdfSet::WORD_ONLY,
        )])
        .unwrap(),
    );
    let attempts = [
        (Op::Read, 0x1000u32, Width::Word, true),
        (Op::Write, 0x1000, Width::Word, false), // RWA
        (Op::Read, 0x1000, Width::Byte, false),  // ADF
        (Op::Read, 0x5000, Width::Word, false),  // no policy
    ];
    let mut injected = 0;
    for (i, &(op, addr, width, expect_ok)) in attempts.iter().enumerate() {
        let txn = Transaction {
            id: TxnId(i as u64),
            master: MasterId(0),
            op,
            addr,
            width,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        };
        match ni.check(&txn, Cycle(0)) {
            Ok(_) => {
                assert!(expect_ok, "attempt {i} wrongly admitted");
                let id = mesh.alloc_id();
                mesh.inject(
                    secbus_noc::Packet {
                        id,
                        src: NodeId::new(0, 0),
                        dst: NodeId::new(1, 1),
                        op,
                        addr,
                        width,
                        data: 0,
                        flits: 1,
                        injected_at: Cycle(0),
                    },
                    Cycle(0),
                );
                injected += 1;
            }
            Err(_) => assert!(!expect_ok, "attempt {i} wrongly rejected"),
        }
    }
    assert_eq!(injected, 1);
    assert_eq!(
        mesh.stats().counter("noc.injected"),
        1,
        "rejects never touch the mesh"
    );
    let probe = ni.probe();
    assert_eq!(probe.rejected, 3);
}

/// A private cache collapses repeated protected reads: far fewer LCF
/// accesses, same computed result.
#[test]
fn cache_absorbs_protected_rereads() {
    use secbus_cpu::{assemble, CacheConfig, CachedMaster, Mb32Core};
    use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN};
    let src = r"
        li   r1, 0x80000000
        addi r3, r0, 100
        addi r4, r0, 0
    loop:
        lw   r2, 0(r1)
        addi r4, r4, 1
        blt  r4, r3, loop
        halt
    ";
    let run = |cached: bool| {
        let core = Mb32Core::with_local_program("cpu0", 0, assemble(src).unwrap());
        let device: Box<dyn secbus_cpu::BusMaster> = if cached {
            Box::new(CachedMaster::new(Box::new(core), CacheConfig::default()))
        } else {
            Box::new(core)
        };
        let mut soc = SocBuilder::new()
            .add_protected_master(
                device,
                ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                    1,
                    AddrRange::new(DDR_BASE, 0x1000),
                    Rwa::ReadOnly,
                    AdfSet::ALL,
                )])
                .unwrap(),
            )
            .set_ddr(
                "ddr",
                AddrRange::new(DDR_BASE, DDR_LEN),
                ExternalDdr::new(DDR_LEN),
                Some(lcf_policies()),
            )
            .build();
        let cycles = soc.run_until_halt(5_000_000);
        (
            cycles,
            soc.lcf().unwrap().stats().counter("lcf.protected_reads"),
        )
    };
    let (plain_cycles, plain_reads) = run(false);
    let (cached_cycles, cached_reads) = run(true);
    assert_eq!(plain_reads, 100);
    assert_eq!(cached_reads, 4, "one line fill");
    assert!(cached_cycles < plain_cycles / 3);
}

/// KDF-provisioned keys: derive the region keys from a master secret,
/// build the LCF with them, and verify the protection works end to end
/// while different regions use genuinely different keys.
#[test]
fn kdf_provisioned_lcf_roundtrips() {
    let master = [0x5Au8; 32];
    let base_a = 0x8000_0000u32;
    let base_b = 0x8000_1000u32;
    let key_a = derive_region_key(&master, "boot-1", base_a);
    let key_b = derive_region_key(&master, "boot-1", base_b);
    assert_ne!(key_a, key_b);

    let config = ConfigMemory::with_policies(vec![
        SecurityPolicy::external(
            1,
            AddrRange::new(base_a, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(key_a),
        ),
        SecurityPolicy::external(
            2,
            AddrRange::new(base_b, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(key_b),
        ),
    ])
    .unwrap();
    let mut ddr = ExternalDdr::new(0x2000);
    let mut lcf =
        LocalCipheringFirewall::new(FirewallId(0), "LCF", config, base_a, CryptoTiming::PAPER);
    lcf.seal(&mut ddr);

    use secbus_bus::{Transaction, TxnId};
    let write = |addr: u32, data: u32| Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op: Op::Write,
        addr,
        width: Width::Word,
        data,
        burst: 1,
        issued_at: Cycle(0),
    };
    let read = |addr: u32| Transaction {
        op: Op::Read,
        data: 0,
        ..write(addr, 0)
    };

    lcf.handle(&mut ddr, &write(base_a, 0xAAAA_0001), Cycle(0))
        .unwrap();
    lcf.handle(&mut ddr, &write(base_b, 0xBBBB_0002), Cycle(1))
        .unwrap();
    assert_eq!(
        lcf.handle(&mut ddr, &read(base_a), Cycle(2)).unwrap().data,
        0xAAAA_0001
    );
    assert_eq!(
        lcf.handle(&mut ddr, &read(base_b), Cycle(3)).unwrap().data,
        0xBBBB_0002
    );
    // Identical plaintext at the same region offset ciphers differently
    // under the two derived keys.
    lcf.handle(&mut ddr, &write(base_a + 0x20, 0x1234_5678), Cycle(4))
        .unwrap();
    lcf.handle(&mut ddr, &write(base_b + 0x20, 0x1234_5678), Cycle(5))
        .unwrap();
    assert_ne!(ddr.snoop(0x20, 16), ddr.snoop(0x1020, 16));
}
