//! The paper's quantitative claims, asserted as tests ("shape checks"):
//! who wins, by roughly what factor, and where the trends point. These are
//! the same checks EXPERIMENTS.md reports.

use secbus_area::model::{GENERIC_WITH, GENERIC_WITHOUT, MODULE_CC, MODULE_IC};
use secbus_area::{AreaModel, SystemShape, Table1, DEFAULT_RULES_PER_FIREWALL};
use secbus_baseline::compare_check_latency;
use secbus_bench::{measure_table2, traffic_overhead};

#[test]
fn table1_reproduces_exactly() {
    let t = Table1::case_study();
    assert_eq!(t.without, GENERIC_WITHOUT);
    assert_eq!(t.with, GENERIC_WITH);
    // BRAM overhead +18.87% — the one percentage consistent in the paper.
    assert!((t.overhead_pct[3] - 18.87).abs() < 0.01);
}

#[test]
fn table1_crypto_dominates_lcf() {
    // Paper: "about 90% of Local Ciphering Firewall area" is CC + IC.
    let m = AreaModel;
    let lcf = m.ciphering_firewall(DEFAULT_RULES_PER_FIREWALL);
    let crypto_regs = MODULE_CC.slice_regs + MODULE_IC.slice_regs;
    assert!(
        f64::from(crypto_regs) / f64::from(lcf.slice_regs) > 0.85,
        "register share of the crypto cores"
    );
}

#[test]
fn table1_lf_cost_is_limited() {
    // Paper: "the cost of Local Firewalls is limited" — an LF is a small
    // fraction of one processor.
    let m = AreaModel;
    let lf = m.local_firewall(DEFAULT_RULES_PER_FIREWALL);
    // One LF (checking logic + interface glue) is well under one core…
    assert!(
        lf.slice_luts < secbus_area::model::COMP_CPU.slice_luts,
        "LF {} vs CPU {}",
        lf.slice_luts,
        secbus_area::model::COMP_CPU.slice_luts
    );
    // …and all four LFs together stay under half the generic system.
    let four = lf * 4;
    assert!(four.slice_luts * 2 < GENERIC_WITHOUT.slice_luts);
}

#[test]
fn table2_values_and_shape() {
    let t = measure_table2();
    assert!((t.sb_cycles - 12.0).abs() < 1.0, "SB = 12 cycles");
    assert_eq!(t.cc_latency, 11);
    assert_eq!(t.ic_latency, 20);
    assert!((t.cc_mbps - 450.0).abs() < 2.0);
    assert!((t.ic_mbps - 131.0).abs() < 2.0);
    // Shape: integrity is the throughput bottleneck, ~3.4× slower than
    // ciphering; checking is cheaper than either crypto pipeline per block.
    assert!(t.cc_mbps / t.ic_mbps > 3.0);
}

#[test]
fn overhead_shrinks_with_computation_share() {
    let busy = traffic_overhead(1, 50, 120, 21);
    let relaxed = traffic_overhead(64, 50, 120, 21);
    assert!(relaxed.overhead_pct() < busy.overhead_pct() / 2.0);
}

#[test]
fn external_traffic_overhead_exceeds_internal() {
    let internal = traffic_overhead(4, 0, 120, 22);
    let external = traffic_overhead(4, 100, 120, 22);
    assert!(external.overhead_pct() > internal.overhead_pct() * 1.2);
}

#[test]
fn distributed_beats_centralized_under_load() {
    let row = compare_check_latency(8, 0.06, 30_000, 23);
    assert_eq!(row.distributed_mean, 12.0);
    assert!(row.slowdown() > 2.0, "slowdown {}", row.slowdown());
    assert!(row.centralized_bus_txns > 0);
}

#[test]
fn rule_scaling_is_monotone_in_both_axes() {
    let m = AreaModel;
    let mut last_area = 0;
    let mut last_latency = 0;
    for rules in [8u32, 16, 32, 64, 128] {
        let area = m
            .system_with_firewalls(SystemShape::CASE_STUDY, rules)
            .slice_luts;
        let latency = secbus_core::SbTiming::scaled(rules).total();
        assert!(area > last_area);
        assert!(latency >= last_latency);
        last_area = area;
        last_latency = latency;
    }
}

#[test]
fn noc_and_bus_charge_the_same_interface_check() {
    // S-7: the distributed check is interconnect-agnostic — the APU adds
    // the same ~12-cycle delta on the mesh that the LF adds on the bus.
    use secbus_noc::run_noc_workload;
    let plain = run_noc_workload(4, 16, 10_000, false);
    let protected = run_noc_workload(4, 16, 10_000, true);
    let delta = protected.mean_latency.unwrap() - plain.mean_latency.unwrap();
    assert!((delta - 12.0).abs() < 4.0, "NoC APU delta {delta}");
}

#[test]
fn tree_depth_cost_is_logarithmic() {
    // S-9: with an explicit per-level IC cost, verification grows with
    // log2(region size), not linearly.
    use secbus_core::CryptoTiming;
    let t = CryptoTiming::with_tree_cost(2);
    let small = t.ic_verify_cycles(4); // 256 B region
    let large = t.ic_verify_cycles(16); // 1 MiB region
    assert_eq!(large - small, 2 * 12, "4096x the data, +24 cycles only");
}

#[test]
fn attack_outcomes_match_protection_levels() {
    use secbus_attack::{run_all_scenarios, Scenario};
    let outcomes = run_all_scenarios(77);
    for o in &outcomes {
        match o.scenario {
            Scenario::SpoofPrivate
            | Scenario::ReplayPrivate
            | Scenario::RelocatePrivate
            | Scenario::HijackedIp
            | Scenario::DosViolating
            | Scenario::CodeInjection => {
                assert!(o.detected(), "{} must be detected", o.scenario.name());
                assert!(o.contained, "{} must be contained", o.scenario.name());
            }
            Scenario::SpoofCipherOnly => {
                assert!(!o.detected());
                assert!(!o.data_compromised, "garbled, not chosen");
            }
            Scenario::SpoofPublic => {
                assert!(o.data_compromised, "the unprotected hole");
            }
        }
    }
}
