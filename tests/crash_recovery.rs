//! Crash-consistency of the LCF's journaled secure state, exercised
//! across the whole persistence protocol: a power cut at *every*
//! journal persistence step (clean and torn), paired with every DDR
//! state the crash point admits, must either recover to a volatile
//! root that matches the surviving DDR contents (all protected reads
//! pass) or raise a quarantine — never a silently wrong root.
//!
//! Also pins down recovery idempotence: recovering twice from the same
//! persisted surface is indistinguishable from recovering once, and
//! re-recovering from a recovery's own checkpoint is a no-op.

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, PersistentState, RecoveryOutcome, RecoveryReport, Rwa, SecurityPolicy,
};
use secbus_crypto::MonotonicCounter;
use secbus_mem::ExternalDdr;
use secbus_sim::Cycle;

const DDR_BASE: u32 = 0x8000_0000;
const DDR_LEN: u32 = 0x1000;
const KEY: [u8; 16] = [0x5A; 16];
const STATE_KEY: [u8; 16] = *b"crash-state-key!";

/// Deterministic workload: three word writes into the integrity region,
/// one per 16-byte protection block so roll-back/forward of the
/// in-flight write never aliases a committed one.
const WRITES: [(u32, u32); 3] = [
    (DDR_BASE + 0x10, 0x1111_0001),
    (DDR_BASE + 0x40, 0x2222_0002),
    (DDR_BASE + 0x80, 0x3333_0003),
];

fn boot_ddr() -> ExternalDdr {
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for i in 0..0x300u32 {
        ddr.load(i, &[(i % 251) as u8]);
    }
    ddr
}

/// 0x000..0x100 cipher+integrity rw, 0x100..0x200 cipher-only,
/// 0x200..0x300 unprotected — the same shape the case study uses.
fn fresh_lcf() -> LocalCipheringFirewall {
    let config = ConfigMemory::with_policies(vec![
        SecurityPolicy::external(
            1,
            AddrRange::new(DDR_BASE, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(KEY),
        ),
        SecurityPolicy::external(
            2,
            AddrRange::new(DDR_BASE + 0x100, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Bypass,
            Some([0x6B; 16]),
        ),
        SecurityPolicy::external(
            3,
            AddrRange::new(DDR_BASE + 0x200, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Bypass,
            IntegrityMode::Bypass,
            None,
        ),
    ])
    .unwrap();
    LocalCipheringFirewall::new(
        FirewallId(7),
        "LCF crash",
        config,
        DDR_BASE,
        CryptoTiming::PAPER,
    )
}

fn txn(op: Op, addr: u32, data: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op,
        addr,
        width: Width::Word,
        data,
        burst: 1,
        issued_at: Cycle(0),
    }
}

/// Run the [`WRITES`] workload on a journaled, sealed LCF. Returns the
/// LCF, and a DDR snapshot after seal and after each completed write
/// (`snaps[k]` = DDR bytes with exactly `k` writes landed).
fn run_workload() -> (LocalCipheringFirewall, Vec<Vec<u8>>) {
    let mut lcf = fresh_lcf();
    let mut ddr = boot_ddr();
    lcf.enable_journal(1024, STATE_KEY);
    lcf.seal(&mut ddr);
    let mut snaps = vec![ddr.contents().to_vec()];
    for (i, &(addr, data)) in WRITES.iter().enumerate() {
        lcf.handle(&mut ddr, &txn(Op::Write, addr, data), Cycle(i as u64))
            .unwrap();
        snaps.push(ddr.contents().to_vec());
    }
    (lcf, snaps)
}

/// Boot a fresh LCF on a copy of `contents` and recover.
fn recover(
    contents: &[u8],
    state: &PersistentState,
    counter: &MonotonicCounter,
) -> (LocalCipheringFirewall, ExternalDdr, RecoveryReport) {
    let mut ddr = ExternalDdr::new(contents.len() as u32);
    ddr.load(0, contents);
    let mut lcf = fresh_lcf();
    let report = lcf.recover_from(&mut ddr, state, STATE_KEY, Some(counter.clone()), 1024);
    (lcf, ddr, report)
}

/// The boot-image word at `addr` (what an address reads before any
/// workload write touches it).
fn boot_word(addr: u32) -> u32 {
    let off = addr - DDR_BASE;
    u32::from_le_bytes(std::array::from_fn(|i| ((off + i as u32) % 251) as u8))
}

/// Every word in the integrity region must read back cleanly — this is
/// what "the recovered root matches the DDR contents" means at the bus.
fn assert_region_reads_clean(lcf: &mut LocalCipheringFirewall, ddr: &mut ExternalDdr) {
    for off in (0..0x100u32).step_by(4) {
        let r = lcf.handle(ddr, &txn(Op::Read, DDR_BASE + off, 0), Cycle(100));
        assert!(r.is_ok(), "read at +{off:#x} failed after recovery: {r:?}");
    }
}

/// Sweep a power cut over every journal persistence step, clean and
/// torn, against every DDR state that crash point admits. The journal
/// protocol persists the intent *before* the DDR burst and the commit
/// mark *after* it, so a cut at step `s` leaves between `s / 2` bursts
/// (every persisted commit mark implies a completed burst) and
/// `(s + 1) / 2` bursts (a persisted intent's burst may or may not have
/// landed) in DDR. Every honest pairing must recover without
/// quarantine, with the surviving DDR readable word-for-word.
#[test]
fn crash_at_every_journal_step_recovers_root_matching_ddr() {
    let (lcf, snaps) = run_workload();
    let live = lcf.persistent_state().unwrap();
    let counter = lcf.anti_rollback_counter().unwrap().clone();
    let steps = live.journal.persist_ops();
    assert_eq!(steps, 2 * WRITES.len() as u64);

    for s in 0..=steps {
        for torn in [false, true] {
            let cut = PersistentState {
                image: live.image.clone(),
                journal: live.journal.crash_at_step(s, torn),
            };
            let lo = (s / 2) as usize;
            let hi = (s.div_ceil(2)) as usize;
            for (k, snap) in snaps.iter().enumerate().take(hi + 1).skip(lo) {
                let (mut fresh, mut ddr, report) = recover(snap, &cut, &counter);
                assert!(
                    !report.is_quarantined(),
                    "honest crash (step {s}, torn {torn}, {k} bursts landed) quarantined: \
                     {report:?}"
                );
                assert_region_reads_clean(&mut fresh, &mut ddr);
                // Exactly the writes whose bursts landed are visible;
                // the rest read the boot image (rolled back).
                for (i, &(addr, data)) in WRITES.iter().enumerate() {
                    let expect = if i < k { data } else { boot_word(addr) };
                    let r = fresh
                        .handle(&mut ddr, &txn(Op::Read, addr, 0), Cycle(200))
                        .unwrap();
                    assert_eq!(
                        r.data, expect,
                        "write {i} wrong after crash at step {s} (torn {torn}, {k} landed)"
                    );
                }
            }
        }
    }
}

/// The "or quarantine is raised" half of the invariant: the same crash
/// sweep with one flipped ciphertext byte in a block the workload never
/// touched must quarantine at every step — a crash is never an excuse
/// to accept tampered DDR.
#[test]
fn crash_sweep_with_tampered_ddr_always_quarantines() {
    let (lcf, snaps) = run_workload();
    let live = lcf.persistent_state().unwrap();
    let counter = lcf.anti_rollback_counter().unwrap().clone();

    for s in 0..=live.journal.persist_ops() {
        let cut = PersistentState {
            image: live.image.clone(),
            journal: live.journal.crash_at_step(s, false),
        };
        // Flip a byte at +0xF8: inside the integrity region, outside
        // every block the workload (and thus any in-flight repair)
        // touches, so the flip can never be absorbed by roll-back or
        // torn-block repair.
        let mut bytes = snaps[(s / 2) as usize].clone();
        bytes[0xF8] ^= 0x01;
        let (_, _, report) = recover(&bytes, &cut, &counter);
        assert!(
            report.is_quarantined(),
            "offline tamper survived recovery at crash step {s}: {report:?}"
        );
    }
}

/// Recovering twice from the same persisted surface must be
/// indistinguishable from recovering once, and feeding a recovery's own
/// checkpoint straight back through recovery must be a clean no-op.
#[test]
fn recovery_is_idempotent() {
    let (lcf, snaps) = run_workload();
    let counter = lcf.anti_rollback_counter().unwrap().clone();
    // Crash with a dangling intent whose burst landed: the commit mark
    // for the final write never persisted, so recovery rolls forward.
    let mut state = lcf.persistent_state().unwrap();
    state.journal.drop_tail(1);
    let contents = snaps.last().unwrap();

    let (mut first, mut ddr1, r1) = recover(contents, &state, &counter);
    let (mut second, mut ddr2, r2) = recover(contents, &state, &counter);
    assert_eq!(r1, r2, "same inputs, different recovery reports");
    assert_eq!(r1.rolled_forward, 1);
    assert_eq!(
        first.persistent_state().unwrap().image,
        second.persistent_state().unwrap().image,
        "two recoveries from the same surface checkpointed different images"
    );
    for &(addr, _) in &WRITES {
        let a = first
            .handle(&mut ddr1, &txn(Op::Read, addr, 0), Cycle(300))
            .unwrap();
        let b = second
            .handle(&mut ddr2, &txn(Op::Read, addr, 0), Cycle(300))
            .unwrap();
        assert_eq!(a.data, b.data);
    }

    // Recover-after-recover: the first recovery's checkpoint replayed
    // through a third boot must be clean and change nothing.
    let state2 = first.persistent_state().unwrap();
    let counter2 = first.anti_rollback_counter().unwrap().clone();
    let (mut third, mut ddr3, r3) = recover(ddr1.contents(), &state2, &counter2);
    assert_eq!(r3.outcome, RecoveryOutcome::Clean);
    assert_eq!(r3.rolled_forward + r3.rolled_back + r3.repaired_blocks, 0);
    assert_eq!(
        first.persistent_state().unwrap().image.regions,
        third.persistent_state().unwrap().image.regions,
        "re-recovering a recovered system changed the secure state"
    );
    for &(addr, data) in &WRITES {
        let r = third
            .handle(&mut ddr3, &txn(Op::Read, addr, 0), Cycle(400))
            .unwrap();
        assert_eq!(r.data, data);
    }
}
