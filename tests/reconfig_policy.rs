//! Live-reconfiguration properties across crate seams: the exhaustive
//! verifier pinning planted divergences with concrete counterexamples,
//! verifier-gated epoch admission on a running SoC, brownout × epoch
//! interaction (a commit during a brownout never widens rights), and
//! all-or-nothing rollback of [`StagedPlan`]-driven mid-commit faults.

use secbus_bus::AddrRange;
use secbus_core::{
    verify, AdfSet, ConfidentialityMode, ConfigMemory, EpochError, FirewallId, IntegrityMode,
    PolicyProgram, PolicyUpdate, PolicyVerifyError, Rwa, SecurityPolicy,
};
use secbus_cpu::{OpenLoopConfig, OpenLoopMaster};
use secbus_fault::{FaultEvent, FaultKind, FaultPlan, StagedPlan};
use secbus_mem::ExternalDdr;
use secbus_sim::{Cycle, SimRng};
use secbus_soc::{DegradeConfig, Soc, SocBuilder};

const DDR_BASE: u32 = 0x8000_0000;
/// The flooded (and integrity-verified) slice of the DDR window.
const WINDOW: u32 = 0x100;

/// A two-master program whose scratch region moves per epoch, so every
/// committed epoch genuinely rewrites both firewalls while the flooded
/// DDR window stays authorized throughout.
fn epoch_program(i: u64) -> PolicyProgram {
    let scratch = 0x4000_0000u64 + (i % 64) * 0x1000;
    let text = format!(
        "master m0 = 0\n\
         master m1 = 1\n\
         region ddr = {DDR_BASE:#x} + 0x1000\n\
         region scratch = {scratch:#x} + 0x100\n\
         allow m0 ddr rw\n\
         allow m1 ddr rw\n\
         allow m0 scratch ro word\n"
    );
    PolicyProgram::parse(&text).expect("epoch program parses")
}

/// A small asymmetric program for the pure verifier tests: m0 is
/// read-only over the DDR window, m1 has full rights.
fn asymmetric_program() -> PolicyProgram {
    let text = format!(
        "master m0 = 0\n\
         master m1 = 1\n\
         region ddr = {DDR_BASE:#x} + 0x1000\n\
         allow m0 ddr ro word\n\
         allow m1 ddr rw\n"
    );
    PolicyProgram::parse(&text).expect("program parses")
}

fn flood(name: &'static str, per_tick: u32, until: u64, seed: u64, salt: &str) -> OpenLoopMaster {
    OpenLoopMaster::new(
        name,
        OpenLoopConfig {
            window: (DDR_BASE, WINDOW),
            read_ratio: 1.0,
            per_tick,
            until,
        },
        SimRng::new(seed).derive(salt),
    )
}

/// A protected two-master SoC booted on `epoch_program(0)`, flooding the
/// verified DDR window, with the brownout controller armed. Returns the
/// SoC and the DSL-master → firewall map epoch commits use.
fn epoch_soc(per_tick: u32, until: u64) -> (Soc, Vec<(u8, FirewallId)>) {
    let boot = epoch_program(0);
    let compiled = boot.compile().expect("boot program compiles");
    verify(&boot, &compiled.as_views()).expect("boot tables verify");
    let table = |m: u8| {
        ConfigMemory::with_policies(compiled.table(m).expect("table compiled").policies.clone())
            .expect("compiled tables are disjoint")
    };
    let lcf = ConfigMemory::with_policies(vec![SecurityPolicy::external(
        7,
        AddrRange::new(DDR_BASE, WINDOW),
        Rwa::ReadWrite,
        AdfSet::ALL,
        ConfidentialityMode::Encrypt,
        IntegrityMode::Verify,
        Some(*b"secbus-ddr-key!!"),
    )])
    .expect("one policy cannot overlap");
    let soc = SocBuilder::new()
        .degrade(DegradeConfig {
            high_watermark: 8,
            low_watermark: 0,
            enter_after: 4,
            exit_after: 16,
        })
        .add_protected_master(
            Box::new(flood("flood0", per_tick, until, 11, "rp.m0")),
            table(0),
        )
        .add_protected_master(
            Box::new(flood("flood1", per_tick, until, 11, "rp.m1")),
            table(1),
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, 0x1000),
            ExternalDdr::new(0x1000),
            Some(lcf),
        )
        .build();
    let targets: Vec<(u8, FirewallId)> = (0..2u8)
        .map(|m| {
            (
                m,
                soc.master_firewall(usize::from(m))
                    .expect("LF present")
                    .id(),
            )
        })
        .collect();
    (soc, targets)
}

/// Borrow both firewalls' live tables in the shape [`verify`] takes.
fn live_views(soc: &Soc) -> Vec<(u8, Vec<SecurityPolicy>)> {
    (0..2u8)
        .map(|m| {
            (
                m,
                soc.master_firewall(usize::from(m))
                    .expect("LF present")
                    .config()
                    .policies()
                    .to_vec(),
            )
        })
        .collect()
}

#[test]
fn verifier_pins_widened_table_with_write_counterexample() {
    // Widen m0's compiled read-only policy to read-write: the verifier
    // must catch the over-permissive table and name a concrete write the
    // DSL never granted.
    let program = asymmetric_program();
    let mut compiled = program.compile().expect("compiles");
    let t0 = &mut compiled.tables[0];
    assert_eq!(t0.master, 0);
    t0.policies[0].rwa = Rwa::ReadWrite;
    let err = verify(&program, &compiled.as_views()).expect_err("widened table must be rejected");
    match err {
        PolicyVerifyError::Mismatch(ce) => {
            assert_eq!(ce.index, 0);
            assert_eq!(ce.op, "write");
            assert!(ce.table_allows && !ce.intent_allows, "{ce}");
            let addr = u64::from(ce.addr);
            assert!(
                (u64::from(DDR_BASE)..u64::from(DDR_BASE) + 0x1000).contains(&addr),
                "witness lands in the widened region: {ce}"
            );
        }
        other => panic!("expected a Mismatch counterexample, got {other}"),
    }
}

#[test]
fn verifier_pins_truncated_table_with_lost_grant_counterexample() {
    // Drop m1's only policy: the table silently denies everything the
    // DSL granted, and the counterexample names a lost access.
    let program = asymmetric_program();
    let mut compiled = program.compile().expect("compiles");
    assert_eq!(compiled.tables[1].master, 1);
    compiled.tables[1].policies.clear();
    let err = verify(&program, &compiled.as_views()).expect_err("truncated table must be rejected");
    match err {
        PolicyVerifyError::Mismatch(ce) => {
            assert_eq!(ce.index, 1);
            assert!(ce.intent_allows && !ce.table_allows, "{ce}");
        }
        other => panic!("expected a Mismatch counterexample, got {other}"),
    }
}

#[test]
fn admission_refuses_tampered_epoch_fail_secure() {
    // A staged batch that widens m0's rights beyond the program intent is
    // refused at `commit_policy_epoch_checked` admission: no firewall
    // stages anything, the epoch and table generations do not move.
    let (mut soc, targets) = epoch_soc(1, 50);
    soc.run(100);
    let program = epoch_program(1);
    let mut compiled = program.compile().expect("compiles");
    for p in &mut compiled.tables[0].policies {
        p.rwa = Rwa::ReadWrite; // widens the ro scratch grant
        p.adf = AdfSet::ALL;
    }
    let updates: Vec<PolicyUpdate> = compiled
        .tables
        .iter()
        .map(|t| PolicyUpdate {
            firewall: targets[usize::from(t.master)].1,
            policies: t.policies.clone(),
        })
        .collect();
    let gens: Vec<u64> = (0..2)
        .map(|m| soc.master_firewall(m).unwrap().config().generation())
        .collect();
    let err = soc
        .commit_policy_epoch_checked(&program, &targets, updates)
        .expect_err("tampered batch must be refused");
    assert!(
        matches!(err, EpochError::Verifier(PolicyVerifyError::Mismatch(_))),
        "refusal carries the counterexample: {err:?}"
    );
    assert_eq!(
        soc.policy_epoch(),
        0,
        "failed admission never moves the epoch"
    );
    for (m, gen) in gens.iter().enumerate() {
        assert_eq!(
            soc.master_firewall(m).unwrap().config().generation(),
            *gen,
            "failed admission never touches a table"
        );
    }
    assert_eq!(soc.stats().counter("reconfig.verifier_refusals"), 1);
}

#[test]
fn commit_during_brownout_never_widens_rights() {
    // Engage the brownout with sustained verified reads, then commit an
    // epoch mid-brownout. The live tables must equal the new program's
    // intent exactly (the brownout narrows the LCF's verify posture, it
    // never touches rights), and the posture must survive the swap and
    // still release on drain.
    let (mut soc, targets) = epoch_soc(4, 2_000);
    let mut ran = 0u64;
    while !soc.degraded() && ran < 2_000 {
        soc.run(100);
        ran += 100;
    }
    assert!(
        soc.degraded(),
        "sustained verified reads engage the brownout"
    );
    assert!(
        soc.lcf()
            .unwrap()
            .stats()
            .counter("lcf.brownout_skipped_verifies")
            > 0
            || soc.degraded(),
        "the brownout narrows the verify posture"
    );

    let program = epoch_program(1);
    let epoch = soc
        .commit_policy_epoch_from(&program, &targets)
        .expect("a verified epoch commits during a brownout");
    assert_eq!(epoch, 1);
    assert!(
        soc.degraded(),
        "an epoch swap neither clears nor is blocked by the brownout posture"
    );

    // The never-widens property, checked exhaustively: the live tables
    // verify against the *new* program, so the allowed set is exactly
    // the DSL intent — no access the program denies is grantable while
    // (or after) the posture is degraded.
    let views = live_views(&soc);
    let borrowed: Vec<(u8, &[SecurityPolicy])> =
        views.iter().map(|(m, p)| (*m, p.as_slice())).collect();
    verify(&program, &borrowed).expect("live tables match the committed intent exactly");

    // Flood stops at 2_000; the backlog drains and the posture releases
    // with the new epoch still in force.
    soc.run(30_000);
    assert!(!soc.degraded(), "drain releases the brownout");
    assert_eq!(soc.policy_epoch(), 1);
    let views = live_views(&soc);
    let borrowed: Vec<(u8, &[SecurityPolicy])> =
        views.iter().map(|(m, p)| (*m, p.as_slice())).collect();
    verify(&program, &borrowed).expect("release restores nothing stale");
}

#[test]
fn staged_plan_mid_commit_fault_aborts_all_or_nothing() {
    // A gated StagedPlan stage lands an EpochCommitFault on the commit
    // point: the attempt must abort with every firewall still on the old
    // epoch and the old table generation, and the retry must succeed.
    let (mut soc, targets) = epoch_soc(1, 400);
    let staged = StagedPlan::new()
        .stage("soften", FaultPlan::empty())
        .gated_stage(
            "strike",
            FaultPlan::new(vec![FaultEvent {
                at: Cycle(150),
                kind: FaultKind::EpochCommitFault { stage: 1 },
            }]),
        );
    let mut staged = staged;
    assert_eq!(staged.active_stage(), Some("soften"));
    staged.advance(true); // foothold established -> the strike fires
    assert_eq!(staged.active_stage(), Some("strike"));
    soc.attach_fault_plan(staged.stages()[1].plan.clone());

    soc.run(200); // through cycle 150: the fault is armed
    let gens: Vec<u64> = (0..2)
        .map(|m| soc.master_firewall(m).unwrap().config().generation())
        .collect();
    let program = epoch_program(1);
    let err = soc
        .commit_policy_epoch_from(&program, &targets)
        .expect_err("the armed fault interrupts the commit");
    match err {
        EpochError::CommitFault { staged } => assert_eq!(staged, 1, "one table had swapped"),
        other => panic!("expected CommitFault, got {other:?}"),
    }
    assert_eq!(soc.policy_epoch(), 0, "aborted commit leaves the old epoch");
    for (m, &(_, fw)) in targets.iter().enumerate() {
        assert_eq!(soc.firewall_epoch(fw), 0, "no firewall advanced");
        assert_eq!(
            soc.master_firewall(m).unwrap().config().generation(),
            gens[m],
            "rollback restores the exact table generation"
        );
    }
    assert_eq!(soc.reconfig_stats().counter("reconfig.epoch_aborts"), 1);

    // The fault was one-shot: the identical retry commits everywhere.
    let epoch = soc
        .commit_policy_epoch_from(&program, &targets)
        .expect("retry commits");
    assert_eq!(epoch, 1);
    for &(_, fw) in &targets {
        assert_eq!(
            soc.firewall_epoch(fw),
            1,
            "the whole fleet advanced together"
        );
    }
}

#[test]
fn aborted_staged_plan_never_perturbs_the_epoch() {
    // The gated counterpart: when the soften stage fails its foothold,
    // the strike stage (and its commit fault) is abandoned and the same
    // commit succeeds untouched.
    let (mut soc, targets) = epoch_soc(1, 400);
    let mut staged = StagedPlan::new()
        .stage("soften", FaultPlan::empty())
        .gated_stage(
            "strike",
            FaultPlan::new(vec![FaultEvent {
                at: Cycle(150),
                kind: FaultKind::EpochCommitFault { stage: 1 },
            }]),
        );
    staged.advance(false); // no foothold -> the strike never fires
    assert!(staged.aborted());
    assert_eq!(staged.take_due(Cycle(10_000)), Vec::new());

    soc.run(200);
    let epoch = soc
        .commit_policy_epoch_from(&epoch_program(1), &targets)
        .expect("no fault was ever attached");
    assert_eq!(epoch, 1);
}
