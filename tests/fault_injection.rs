//! Containment under hardware faults: the paper's §III-C guarantee
//! ("the attack must be stopped in the interface associated with the
//! infected IP") must survive a defective fabric too. These tests run
//! rogue traffic and the full case study under randomized fault storms
//! and assert the security invariants hold — fail *secure*, not just
//! fail *operational* — and that nothing panics or wedges.

use secbus_bus::{AddrRange, Op, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, FaultSpec};
use secbus_integration_tests::BRAM_BASE;
use secbus_mem::Bram;
use secbus_sim::{Cycle, SimRng};
use secbus_soc::casestudy::{
    case_study, CaseResilience, CaseStudyConfig, CPU0_PROGRAM, CPU1_PROGRAM, CPU2_PROGRAM,
};
use secbus_soc::{RetryPolicy, SocBuilder};

/// Rogue masters roam the whole BRAM while their policies allow only a
/// slice — under a heavy fault storm (lost grants, stalls, corrupted
/// responses, config upsets) every write granted the bus must STILL lie
/// inside the issuer's policy: faults must never widen what an IP can do.
#[test]
fn no_violating_write_reaches_the_bus_under_fault_storm() {
    for seed in 0..4u64 {
        let mut builder = SocBuilder::new()
            .watchdog(128)
            .retry(RetryPolicy::default())
            .monitor_threshold(25)
            .quarantine(512)
            .auto_recover(false);
        let policies: Vec<(u32, u32)> = vec![(BRAM_BASE, 0x200), (BRAM_BASE + 0x800, 0x100)];
        for (i, &(base, len)) in policies.iter().enumerate() {
            let master = SyntheticMaster::new(
                format!("rogue{i}"),
                SyntheticConfig {
                    windows: vec![(BRAM_BASE, 0x1000, 1)],
                    read_ratio: 0.3,
                    widths: vec![Width::Byte, Width::Half, Width::Word],
                    burst: 1,
                    period: 2,
                    total_ops: 400,
                },
                SimRng::new(seed * 31 + i as u64),
            );
            let cm = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                i as u16 + 1,
                AddrRange::new(base, len),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )])
            .unwrap();
            builder = builder.add_protected_master(Box::new(master), cm);
        }
        let mut soc = builder
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.attach_fault_plan(FaultPlan::generate(
            seed ^ 0xFA_017,
            &FaultSpec {
                duration: 20_000,
                ddr_bytes: 0, // no DDR in this system
                firewalls: 2,
                slaves: 1,
                noc_nodes: 0,
                rates: FaultRates::uniform(12.0),
            },
        ));
        soc.run(20_000);

        assert!(
            soc.fault_plan().injected() > 0,
            "seed {seed}: storm never fired"
        );
        for (_, txn) in soc.bus().trace().iter() {
            if txn.op != Op::Write {
                continue;
            }
            let (base, len) = policies[txn.master.0 as usize];
            assert!(
                txn.within(base, len),
                "seed {seed}: violating write {txn} was granted the bus under faults"
            );
        }
        assert!(
            soc.monitor().alert_count() > 0,
            "seed {seed}: no violations generated"
        );
    }
}

/// The full case study, hardened, under every fault class at a high
/// rate: the run completes without panicking, every scheduled fault is
/// consumed, and the recovery counters stay mutually consistent.
#[test]
fn hardened_case_study_survives_a_fault_storm() {
    let looping = |src: &str| format!("top:\n{}", src.replace("halt", "beq  r0, r0, top"));
    let mut soc = case_study(CaseStudyConfig {
        programs: Some([
            looping(CPU0_PROGRAM),
            looping(CPU1_PROGRAM),
            looping(CPU2_PROGRAM),
        ]),
        monitor_threshold: 8,
        ip_samples: 0,
        resilience: Some(CaseResilience {
            rekey: true,
            ..CaseResilience::default()
        }),
        ..Default::default()
    });
    let plan = FaultPlan::generate(
        0xD15EA5E,
        &FaultSpec {
            duration: 30_000,
            ddr_bytes: 0x10_0000,
            firewalls: 5,
            slaves: 2,
            noc_nodes: 0,
            rates: FaultRates::uniform(16.0),
        },
    );
    let planned = plan.len() as u64;
    assert!(planned > 64, "the storm must be substantial");
    soc.attach_fault_plan(plan);
    soc.run(30_000);

    assert_eq!(
        soc.fault_plan().injected(),
        planned,
        "every fault was applied"
    );
    assert_eq!(soc.fault_plan().remaining(), 0);

    // Fail-secure bookkeeping: a quarantine can only be released after it
    // was imposed, and recovery work only happens around quarantines.
    let blocks = soc.monitor().stats().counter("monitor.blocks");
    let releases = soc.stats().counter("soc.quarantine_releases");
    let recoveries = soc.stats().counter("soc.recoveries");
    assert!(
        releases <= blocks,
        "releases ({releases}) must not exceed blocks ({blocks})"
    );
    assert!(
        recoveries <= blocks,
        "recoveries ({recoveries}) run at most once per quarantine episode ({blocks})"
    );

    // The retry layer never reports more successes than attempts.
    let retries = soc.stats().counter("soc.retries");
    let retry_ok = soc.stats().counter("soc.retry_successes");
    assert!(
        retry_ok <= retries,
        "retry successes ({retry_ok}) exceed retries ({retries})"
    );
}

/// An Integrity-Core glitch is detected (not silently trusted) and the
/// system degrades fail-secure: the run continues, the mismatch lands in
/// the LCF's alert stream.
#[test]
fn ic_glitch_is_detected_and_contained() {
    let looping = |src: &str| format!("top:\n{}", src.replace("halt", "beq  r0, r0, top"));
    let mut soc = case_study(CaseStudyConfig {
        programs: Some([
            looping(CPU0_PROGRAM),
            looping(CPU1_PROGRAM),
            looping(CPU2_PROGRAM),
        ]),
        ip_samples: 0,
        ..Default::default()
    });
    soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
        at: Cycle(0),
        kind: FaultKind::IcGlitch,
    }]));
    soc.run(20_000);

    assert_eq!(soc.fault_plan().remaining(), 0, "glitch was injected");
    let fw = soc.firewall_stats();
    assert!(
        fw.counter("lcf.integrity_failures") >= 1,
        "the glitched verification must surface as an integrity failure"
    );
    assert!(
        soc.monitor().alert_count() >= 1,
        "the monitor heard about it"
    );
    // Fail-secure, not fail-stop: traffic kept flowing afterwards.
    assert!(soc.bus().stats().counter("bus.completions") > 100);
}
