//! The observability spine end to end: trace events stay accountable
//! under bound pressure, the metrics snapshot is deterministic and
//! key-sorted, and the security monitor's accounting fixes hold at
//! system level (monotonic `alerts_from`, re-armed watchdog watches,
//! no phantom timeout counters).

use secbus_core::SbTiming;
use secbus_sim::metrics::is_key_sorted;
use secbus_sim::{Cycle, Json, SimRng, TraceEvent, Tracer};
use secbus_soc::casestudy::{case_study, CaseResilience, CaseStudyConfig};

// ---- trace spine: lossless accounting under bound pressure ----

/// Property: for any capacity and any push count, nothing is silently
/// lost — `total == retained + dropped`, the retained window is exactly
/// the newest `capacity` events in push (cycle) order.
#[test]
fn trace_buffer_accounting_is_lossless_under_pressure() {
    let mut rng = SimRng::new(0x0b5e7e);
    for _ in 0..50 {
        let capacity = 1 + rng.below(64) as usize;
        let pushes = rng.below(512);
        let tracer = Tracer::new(capacity);
        let mut cycle = 0u64;
        for i in 0..pushes {
            // Irregular cycle gaps: the ordering property must not
            // depend on one-event-per-cycle pushing.
            cycle += rng.below(3);
            tracer.record(
                Cycle(cycle),
                TraceEvent::TxnIssued {
                    txn: i,
                    master: (i % 4) as u8,
                    addr: 0x2000_0000 + i as u32,
                    write: i % 2 == 0,
                },
            );
        }
        assert_eq!(tracer.total(), pushes, "every push counted");
        assert_eq!(
            tracer.total(),
            tracer.len() as u64 + tracer.dropped(),
            "retained + dropped covers every event"
        );
        assert_eq!(tracer.len(), (pushes as usize).min(capacity));
        let snap = tracer.snapshot();
        // Cycle-ordered retention...
        assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
        // ...and exactly the newest window: txn ids are the tail of the
        // push sequence, in order.
        for (offset, (_, ev)) in snap.iter().enumerate() {
            let TraceEvent::TxnIssued { txn, .. } = ev else {
                panic!("unexpected event kind");
            };
            assert_eq!(*txn, pushes - snap.len() as u64 + offset as u64);
        }
    }
}

/// The shared-buffer trace spine keeps its accounting when the whole
/// case-study SoC records through it with a deliberately tiny bound.
#[test]
fn soc_trace_spine_counts_evictions_instead_of_losing_them() {
    let mut soc = case_study(CaseStudyConfig {
        trace: Some(32), // far below the workload's event volume
        ..Default::default()
    });
    soc.run_until_halt(2_000_000);
    let tracer = soc.tracer().unwrap();
    assert_eq!(tracer.len(), 32, "bound holds");
    assert!(tracer.dropped() > 0, "pressure actually evicted");
    assert_eq!(tracer.total(), 32 + tracer.dropped());
    let snap = tracer.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0), "cycle-ordered");
    // The metrics snapshot reports the same numbers.
    let registry = soc.metrics_snapshot();
    let trace_stats = registry.component("trace").unwrap();
    assert_eq!(trace_stats.counter("trace.total"), tracer.total());
    assert_eq!(trace_stats.counter("trace.dropped"), tracer.dropped());
}

// ---- metrics snapshot: deterministic, key-sorted, complete ----

#[test]
fn case_study_metrics_snapshot_is_deterministic_and_sorted() {
    let run = || {
        let mut soc = case_study(CaseStudyConfig {
            trace: Some(8_192),
            monitor_threshold: 8,
            resilience: Some(CaseResilience::default()),
            ..Default::default()
        });
        soc.run_until_halt(2_000_000);
        soc.metrics_json()
    };
    let a = run();
    let doc = Json::parse(&a).expect("snapshot parses");
    assert!(is_key_sorted(&doc), "every nesting level key-sorted");
    // One document covers the whole platform: per-LF components (by
    // label), the LCF, bus, monitor, soc lifecycle and trace accounting.
    for section in ["LF cpu0", "LCF ddr", "bus", "monitor", "soc", "trace"] {
        assert!(doc.get(section).is_some(), "missing component {section}");
    }
    // The txn-lifecycle latency histograms exist and saw real traffic.
    let histograms = doc.get("soc").unwrap().get("histograms").unwrap();
    for h in ["txn.issue_to_verdict", "txn.verdict_to_complete"] {
        let count = histograms
            .get(h)
            .and_then(|x| x.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap_or(0);
        assert!(count > 0, "{h} recorded nothing");
    }
    // The verdict histogram's floor is the paper's SB pipeline latency.
    let min = histograms
        .get("txn.issue_to_verdict")
        .and_then(|x| x.get("min"))
        .and_then(|m| m.as_u64())
        .unwrap();
    assert_eq!(min, SbTiming::PAPER.total(), "verdict floor = SB latency");
    assert_eq!(a, run(), "byte-identical across identical runs");
}

#[test]
fn tracing_changes_observability_not_behaviour() {
    let run = |trace: Option<usize>| {
        let mut soc = case_study(CaseStudyConfig {
            trace,
            ..Default::default()
        });
        let cycles = soc.run_until_halt(2_000_000);
        (cycles, soc.audit().to_json().render_pretty())
    };
    let (cycles_off, audit_off) = run(None);
    let (cycles_on, audit_on) = run(Some(4_096));
    assert_eq!(cycles_off, cycles_on, "tracing changed the halt cycle");
    assert_eq!(audit_off, audit_on, "tracing changed the audit report");
}

// ---- monitor accounting regressions, system level ----

/// `alerts_from` is monotonic across quarantine rounds while the
/// per-firewall violation budget resets — the two counters the old API
/// conflated.
#[test]
fn alerts_from_survives_quarantine_while_budget_resets() {
    use secbus_bus::{MasterId, Op, Transaction, TxnId, Width};
    use secbus_core::{Alert, FirewallId, SecurityMonitor, Violation};

    let mut monitor = SecurityMonitor::new(3).with_quarantine(100);
    let fw = FirewallId(1);
    let txn = Transaction {
        id: TxnId(1),
        master: MasterId(0),
        op: Op::Write,
        addr: 0x2000_0040,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    };
    for round in 0u64..3 {
        for i in 0..3 {
            monitor.observe(Alert {
                firewall: fw,
                violation: Violation::UnauthorizedWrite,
                txn,
                at: Cycle(round * 10 + i),
            });
        }
        // Escalation consumed the budget; the audit total keeps growing.
        assert_eq!(monitor.violation_budget(fw), 0, "budget reset");
        assert_eq!(monitor.alerts_from(fw), (round + 1) * 3, "monotonic");
    }
}

/// A transaction re-issued under the same id re-arms its watchdog watch
/// instead of leaking a duplicate entry, and expiring nothing records
/// nothing.
#[test]
fn watchdog_watch_rearms_and_empty_expiry_is_silent() {
    use secbus_bus::{MasterId, Op, Transaction, TxnId, Width};
    use secbus_core::SecurityMonitor;

    let mut monitor = SecurityMonitor::new(0).with_watchdog(10);
    let txn = Transaction {
        id: TxnId(7),
        master: MasterId(0),
        op: Op::Read,
        addr: 0x2000_0000,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    };
    monitor.watch(&txn, None, Cycle(0));
    // Re-watching the same id later re-arms (replaces) the entry.
    monitor.watch(&txn, None, Cycle(8));
    // At the original deadline nothing fires (the watch moved)...
    assert!(monitor.expire(Cycle(11)).is_empty());
    assert_eq!(
        monitor.stats().counter("monitor.watchdog_timeouts"),
        0,
        "empty expiry must not touch the counter"
    );
    // ...and the re-armed deadline fires exactly once.
    let expired = monitor.expire(Cycle(19));
    assert_eq!(expired.len(), 1, "one watch, not a duplicate");
    assert_eq!(monitor.stats().counter("monitor.watchdog_timeouts"), 1);
}
