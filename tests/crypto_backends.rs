//! Cross-backend equivalence fuzz suite: the accelerated (AES-NI/SHA-NI)
//! and software crypto backends must be bit-identical on every input shape
//! a caller can produce — random keys, lengths and offsets, bursts whose
//! tail is not a multiple of 16 bytes, bursts whose block count is not a
//! multiple of the accelerator lane width, empty input, and SHA-256
//! streams cut on and around the 64-byte compression boundary.
//!
//! On hosts without AES-NI/SHA-NI the accel backend resolves to the same
//! software path, so every assertion still holds (trivially); on hosts
//! with the hardware this is the workspace-level proof that backend
//! selection can never change an output byte.

use secbus_crypto::sha256::Digest;
use secbus_crypto::{sha256_with, Aes128, CryptoBackend, MemoryCipher, MerkleTree, Sha256};

/// SplitMix64 — the integration-test crate keeps its own copy so the fuzz
/// schedule is independent of the crypto crate's private test RNG.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fill(state: &mut u64, buf: &mut [u8]) {
    for chunk in buf.chunks_mut(8) {
        let bytes = splitmix64(state).to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
}

fn random_key(state: &mut u64) -> [u8; 16] {
    let mut key = [0u8; 16];
    fill(state, &mut key);
    key
}

const BACKENDS: [CryptoBackend; 2] = [CryptoBackend::Soft, CryptoBackend::Accel];

#[test]
fn ctr_bursts_match_across_backends_and_chunkings() {
    // Lengths chosen to hit: empty, sub-block, exact blocks, non-multiple-
    // of-16 tails, and block counts on both sides of the 8-block lane width.
    let lengths: [usize; 14] = [0, 1, 7, 15, 16, 17, 48, 113, 127, 128, 129, 144, 272, 391];
    let mut rng = 0x5eed_cafe_0001u64;
    for round in 0..24u64 {
        let key = random_key(&mut rng);
        let soft = MemoryCipher::with_backend(&key, CryptoBackend::Soft);
        let accel = MemoryCipher::with_backend(&key, CryptoBackend::Accel);
        for &len in &lengths {
            // Random 16-aligned base address and timestamp per case.
            let addr = (splitmix64(&mut rng) >> 12) & !0xF;
            let timestamp = splitmix64(&mut rng) ^ round;
            let mut plain = vec![0u8; len];
            fill(&mut rng, &mut plain);

            let mut via_soft = plain.clone();
            soft.xor_keystream(addr, timestamp, &mut via_soft);
            let mut via_accel = plain.clone();
            accel.xor_keystream(addr, timestamp, &mut via_accel);
            assert_eq!(
                via_soft, via_accel,
                "backend mismatch: len={len} addr={addr:#x} ts={timestamp:#x}"
            );

            // Reference: the same burst driven one block at a time through
            // the soft cipher. Burst batching must not change any byte.
            let mut per_block = plain.clone();
            for (i, chunk) in per_block.chunks_mut(16).enumerate() {
                soft.xor_keystream(addr + (i as u64) * 16, timestamp, chunk);
            }
            assert_eq!(
                via_soft, per_block,
                "batched burst diverged from per-block reference: len={len}"
            );

            // XOR keystream is an involution: decrypting with the other
            // backend must recover the plaintext exactly.
            soft.xor_keystream(addr, timestamp, &mut via_accel);
            assert_eq!(
                via_accel, plain,
                "cross-backend round-trip failed: len={len}"
            );
        }
    }
}

#[test]
fn aes_batched_ecb_matches_per_block_for_all_lane_remainders() {
    let mut rng = 0x5eed_cafe_0002u64;
    for _ in 0..16 {
        let key = random_key(&mut rng);
        let soft = Aes128::with_backend(&key, CryptoBackend::Soft);
        let accel = Aes128::with_backend(&key, CryptoBackend::Accel);
        // 0..=17 blocks covers empty input and every remainder mod the
        // 8-wide accelerator lane, including two full lane groups plus one.
        for blocks in 0..=17usize {
            let mut buf = vec![0u8; blocks * 16];
            fill(&mut rng, &mut buf);

            let mut per_block = buf.clone();
            for chunk in per_block.chunks_exact_mut(16) {
                let mut b: [u8; 16] = chunk.try_into().unwrap();
                soft.encrypt_block(&mut b);
                chunk.copy_from_slice(&b);
            }

            let mut via_soft = buf.clone();
            soft.encrypt_blocks(&mut via_soft);
            assert_eq!(
                via_soft, per_block,
                "soft batched diverged at {blocks} blocks"
            );

            let mut via_accel = buf;
            accel.encrypt_blocks(&mut via_accel);
            assert_eq!(
                via_accel, per_block,
                "accel batched diverged at {blocks} blocks"
            );
        }
    }
}

#[test]
fn sha256_streams_match_across_backends_at_block_boundaries() {
    let mut rng = 0x5eed_cafe_0003u64;
    // Every length around the 64-byte compression boundary plus random
    // longer messages; each hashed one-shot and as two-part streams cut at
    // every interesting offset.
    let mut lengths: Vec<usize> = (0..=3)
        .flat_map(|k: usize| {
            let base = k * 64;
            [
                base.saturating_sub(1),
                base,
                base + 1,
                base + 55,
                base + 56,
                base + 63,
            ]
        })
        .collect();
    for _ in 0..8 {
        lengths.push((splitmix64(&mut rng) % 1500) as usize);
    }

    for len in lengths {
        let mut msg = vec![0u8; len];
        fill(&mut rng, &mut msg);

        let reference = sha256_with(&msg, CryptoBackend::Soft);
        assert_eq!(
            sha256_with(&msg, CryptoBackend::Accel),
            reference,
            "one-shot backend mismatch at len={len}"
        );

        let cuts = [
            0,
            1,
            len / 2,
            len.saturating_sub(1),
            len.min(63),
            len.min(64),
            len.min(65),
        ];
        for &cut in cuts.iter().filter(|&&c| c <= len) {
            for backend in BACKENDS {
                let mut hasher = Sha256::with_backend(backend);
                hasher.update(&msg[..cut]);
                hasher.update(&msg[cut..]);
                assert_eq!(
                    hasher.finalize(),
                    reference,
                    "streaming mismatch: len={len} cut={cut} backend={}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn sha256_empty_input_is_the_fips_vector_on_both_backends() {
    let expected: Digest = [
        0xe3, 0xb0, 0xc4, 0x42, 0x98, 0xfc, 0x1c, 0x14, 0x9a, 0xfb, 0xf4, 0xc8, 0x99, 0x6f, 0xb9,
        0x24, 0x27, 0xae, 0x41, 0xe4, 0x64, 0x9b, 0x93, 0x4c, 0xa4, 0x95, 0x99, 0x1b, 0x78, 0x52,
        0xb8, 0x55,
    ];
    for backend in BACKENDS {
        assert_eq!(sha256_with(&[], backend), expected, "{}", backend.name());
    }
}

#[test]
fn merkle_roots_are_identical_for_any_backend_and_thread_count() {
    let mut rng = 0x5eed_cafe_0004u64;
    for &leaves in &[1usize, 37, 1000, 1024, 1025] {
        let digests: Vec<Digest> = (0..leaves)
            .map(|_| {
                let mut block = [0u8; 64];
                fill(&mut rng, &mut block);
                sha256_with(&block, CryptoBackend::Accel)
            })
            .collect();
        // Backend equivalence is already proven above for the leaf hashes;
        // here the tree build itself must be invariant under threading.
        let serial = MerkleTree::build_with_threads(&digests, 1);
        for threads in [2usize, 5, 8] {
            let parallel = MerkleTree::build_with_threads(&digests, threads);
            assert_eq!(
                parallel.root(),
                serial.root(),
                "root changed with {threads} threads at {leaves} leaves"
            );
        }
        let verdicts = serial.verify_all(&digests);
        assert!(
            verdicts.iter().all(|&ok| ok),
            "verify_all rejected a genuine leaf"
        );
    }
}
