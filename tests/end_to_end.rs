//! End-to-end system behaviour: the case study under benign load, under
//! attack, and across reconfiguration — all through the public API only.

use secbus_attack::Adversary;
use secbus_bus::AddrRange;
use secbus_core::{AdfSet, PolicyUpdate, Rwa, SecurityPolicy};
use secbus_cpu::{BusMaster, Mb32Core, Reg};
use secbus_sim::{Cycle, SimRng};
use secbus_soc::casestudy::{
    case_study, CaseStudyConfig, DDR_PRIVATE_BASE, DDR_PUBLIC_BASE, SHARED_BRAM_BASE,
};
use secbus_soc::{render_topology, Report};

#[test]
fn benign_case_study_full_pipeline() {
    let mut soc = case_study(CaseStudyConfig::default());
    let cycles = soc.run_until_halt(5_000_000);
    assert!(cycles > 0 && cycles < 5_000_000);

    let report = Report::collect(&soc, Cycle(0));
    assert_eq!(report.alerts, 0);
    assert_eq!(report.blocks, 0);
    assert!(report.bus_grants > 100, "real traffic flowed");
    assert!(report.bus_utilisation() > 0.0);

    // The topology renderer reflects the live system.
    let fig = render_topology(&soc);
    assert!(fig.contains("LCF"));

    // All four masters did their work.
    for line in &report.masters {
        assert!(line.work > 0, "{} idle", line.label);
        assert_eq!(line.errors, 0, "{} saw errors", line.label);
    }
}

#[test]
fn tamper_during_execution_is_caught_mid_run() {
    // cpu0 loops reading the private region long enough for us to tamper
    // mid-flight.
    let programs = [
        r"
        li   r1, 0x80000000
        addi r3, r0, 2000
        addi r4, r0, 0
    loop:
        lw   r2, 0(r1)
        addi r4, r4, 1
        blt  r4, r3, loop
        halt
        "
        .to_string(),
        "halt".to_string(),
        "halt".to_string(),
    ];
    let mut soc = case_study(CaseStudyConfig {
        programs: Some(programs),
        ip_samples: 1,
        ..Default::default()
    });
    soc.run(20_000);
    assert_eq!(soc.monitor().alert_count(), 0, "clean until the tamper");
    {
        let ddr = soc.ddr_mut().unwrap();
        Adversary::new(SimRng::new(4)).spoof_random(ddr, 0, 16);
    }
    soc.run_until_halt(5_000_000);
    assert!(soc.monitor().alert_count() > 0, "tamper detected mid-run");
    let cpu0 = soc.master_as::<Mb32Core>(0).unwrap();
    assert!(cpu0.stats().counter("core.access_errors") > 0);
    assert_eq!(cpu0.reg(Reg(2)), 0, "last read was discarded");
}

#[test]
fn reconfig_extends_a_core_written_region_mid_run() {
    // cpu0 spins writing to a region its FIRST policy forbids; after the
    // live policy swap the writes start landing.
    let programs = [
        r"
        li   r1, 0x80080000   ; public DDR — read-only under cpu0's policy
        addi r4, r0, 0
    loop:
        sw   r4, 0(r1)
        addi r4, r4, 1
        lw   r5, 0(r1)
        bne  r5, r4, cont     ; once a write lands, r5 = r4 after inc? keep spinning
    cont:
        addi r6, r0, 3000
        blt  r4, r6, loop
        halt
        "
        .to_string(),
        "halt".to_string(),
        "halt".to_string(),
    ];
    let mut soc = case_study(CaseStudyConfig {
        programs: Some(programs),
        ip_samples: 1,
        ..Default::default()
    });
    soc.run(5_000);
    let denied_before = soc.monitor().alert_count();
    assert!(denied_before > 0, "writes were being denied");

    let fw = soc.master_firewall_id(0).unwrap();
    soc.schedule_reconfig(PolicyUpdate {
        firewall: fw,
        policies: vec![
            SecurityPolicy::internal(
                20,
                AddrRange::new(DDR_PUBLIC_BASE, 0x1000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(
                21,
                AddrRange::new(SHARED_BRAM_BASE, 0x1000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
        ],
    });
    soc.run(50_000);
    // After the swap, writes land in the public region.
    let ddr = soc.ddr().unwrap();
    let word = u32::from_le_bytes(
        ddr.snoop(DDR_PUBLIC_BASE - 0x8000_0000, 4)
            .try_into()
            .unwrap(),
    );
    assert!(word > 0, "a write landed after reconfiguration");
    assert_eq!(soc.master_firewall(0).unwrap().config().generation(), 1);
}

#[test]
fn private_region_confidentiality_holds_under_full_workload() {
    let mut soc = case_study(CaseStudyConfig::default());
    soc.run_until_halt(5_000_000);
    // Every plaintext word cpu0 stored (100..116) must be absent from the
    // raw private-region bytes.
    let ddr = soc.ddr().unwrap();
    let raw = ddr.snoop(DDR_PRIVATE_BASE - 0x8000_0000, 64).to_vec();
    for v in 100u32..116 {
        let needle = v.to_le_bytes();
        let found = raw.windows(4).any(|w| w == needle);
        assert!(!found, "plaintext {v} leaked to external memory");
    }
}
