//! Shared fixtures for the cross-crate integration tests.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::SimRng;
use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN};
use secbus_soc::{Soc, SocBuilder};

/// Base of the internal BRAM used by the fixtures.
pub const BRAM_BASE: u32 = 0x2000_0000;

/// A protected system with `n` synthetic masters whose policies cover the
/// windows they legitimately use, plus the LCF-protected DDR.
pub fn synthetic_soc(n: usize, period: u64, total_ops: u64, seed: u64) -> Soc {
    let root = SimRng::new(seed);
    let mut builder = SocBuilder::new();
    for i in 0..n {
        let window = (BRAM_BASE + (i as u32) * 0x400, 0x400u32, 1u32);
        let master = SyntheticMaster::new(
            format!("gen{i}"),
            SyntheticConfig {
                windows: vec![window],
                read_ratio: 0.5,
                widths: vec![
                    secbus_bus::Width::Byte,
                    secbus_bus::Width::Half,
                    secbus_bus::Width::Word,
                ],
                burst: 1,
                period,
                total_ops,
            },
            root.derive(&format!("gen{i}")),
        );
        let policies = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            i as u16 + 1,
            AddrRange::new(window.0, window.1),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )])
        .unwrap();
        builder = builder.add_protected_master(Box::new(master), policies);
    }
    builder
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ExternalDdr::new(DDR_LEN),
            Some(lcf_policies()),
        )
        .build()
}
