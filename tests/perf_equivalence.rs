//! S-16 equivalence suite: the Integrity-Core trusted-node cache is a
//! *cost* optimization only — every security-visible outcome (read
//! data, verdicts, alerts, Merkle roots, persisted state, recovery
//! behavior) must be bit-identical with the cache on and off, across
//! randomized workload shapes, the full case-study SoC, a fault storm,
//! and a crash/recovery cycle.

use secbus_bench::perf::{compare_ic, IcWorkload};
use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, PersistentState, Rwa, SecurityPolicy,
};
use secbus_crypto::MonotonicCounter;
use secbus_fault::{FaultPlan, FaultRates, FaultSpec};
use secbus_mem::ExternalDdr;
use secbus_sim::Cycle;
use secbus_soc::casestudy::{
    case_study, CaseResilience, CaseStudyConfig, CPU0_PROGRAM, CPU1_PROGRAM, CPU2_PROGRAM,
};

/// Cached and uncached runs of every workload shape must agree on the
/// outcome digest (data + verdicts + alerts + roots), and the cache's
/// saved cycles must account exactly for the cycle difference.
#[test]
fn randomized_workload_shapes_are_outcome_identical() {
    let base = IcWorkload {
        accesses: 1_200,
        tamper_every: 251,
        ..IcWorkload::smoke(0)
    };
    let shapes = [
        ("read-heavy hot set", IcWorkload { seed: 0xA1, ..base }),
        (
            "write-heavy",
            IcWorkload {
                write_permille: 500,
                seed: 0xA2,
                ..base
            },
        ),
        (
            "uniform cold traffic",
            IcWorkload {
                hot_permille: 0,
                seed: 0xA3,
                ..base
            },
        ),
        (
            "thrashing 2-entry cache",
            IcWorkload {
                cache_entries: 2,
                seed: 0xA4,
                ..base
            },
        ),
        (
            "tamper-heavy",
            IcWorkload {
                tamper_every: 37,
                seed: 0xA5,
                ..base
            },
        ),
        (
            "single hot leaf, read-only",
            IcWorkload {
                hot_blocks: 1,
                write_permille: 0,
                seed: 0xA6,
                ..base
            },
        ),
    ];
    for (label, w) in shapes {
        let perf = compare_ic(&w);
        assert!(
            perf.equivalent(),
            "{label}: cached outcome diverged from uncached ({w:?})"
        );
        assert_eq!(
            perf.cached.ic_cycles + perf.cached.cycles_saved,
            perf.uncached.ic_cycles,
            "{label}: saved cycles must account exactly for the cycle delta"
        );
        assert!(
            perf.cached.ic_cycles <= perf.uncached.ic_cycles,
            "{label}: the cache must never add simulated cycles"
        );
    }
}

/// One full case-study boot-to-halt run, with and without the cache:
/// same halt point, byte-identical audit report.
#[test]
fn case_study_audit_is_byte_identical_with_cache() {
    let run = |ic_cache: Option<usize>| {
        let mut soc = case_study(CaseStudyConfig {
            ic_cache,
            ..Default::default()
        });
        let cycles = soc.run_until_halt(200_000);
        (cycles, soc.audit().to_json().render_pretty())
    };
    let (cycles_off, audit_off) = run(None);
    let (cycles_on, audit_on) = run(Some(64));
    assert_eq!(cycles_off, cycles_on, "cache changed the halt cycle");
    assert_eq!(audit_off, audit_on, "cache changed the audit report");
}

/// The hardened case study under an identical fault storm (config
/// upsets, DDR corruption, response tampering — everything the plan
/// generator covers): quarantine recovery re-seals regions and resets
/// the cache, and the audit trail must still be byte-identical.
#[test]
fn fault_storm_audit_is_byte_identical_with_cache() {
    let looping = |src: &str| format!("top:\n{}", src.replace("halt", "beq  r0, r0, top"));
    let run = |ic_cache: Option<usize>| {
        let mut soc = case_study(CaseStudyConfig {
            programs: Some([
                looping(CPU0_PROGRAM),
                looping(CPU1_PROGRAM),
                looping(CPU2_PROGRAM),
            ]),
            monitor_threshold: 8,
            ip_samples: 0,
            resilience: Some(CaseResilience {
                rekey: true,
                ..CaseResilience::default()
            }),
            ic_cache,
            ..Default::default()
        });
        soc.attach_fault_plan(FaultPlan::generate(
            0x5EED_FA17,
            &FaultSpec {
                duration: 12_000,
                ddr_bytes: 0x10_0000,
                firewalls: 5,
                slaves: 2,
                noc_nodes: 0,
                rates: FaultRates::uniform(10.0),
            },
        ));
        soc.run(12_000);
        soc.audit().to_json().render_pretty()
    };
    assert_eq!(
        run(None),
        run(Some(32)),
        "cache changed security outcomes under the fault storm"
    );
}

// --- crash/recovery cycle with the cache enabled ---------------------

const DDR_BASE: u32 = 0x8000_0000;
const DDR_LEN: u32 = 0x1000;
const KEY: [u8; 16] = [0x5A; 16];
const STATE_KEY: [u8; 16] = *b"perf-state-key.!";

/// One write per 16-byte protection block, like the crash-recovery
/// suite's workload.
const WRITES: [(u32, u32); 3] = [
    (DDR_BASE + 0x10, 0x1111_0001),
    (DDR_BASE + 0x40, 0x2222_0002),
    (DDR_BASE + 0x80, 0x3333_0003),
];

fn fresh_lcf(ic_cache: Option<usize>) -> LocalCipheringFirewall {
    let config = ConfigMemory::with_policies(vec![SecurityPolicy::external(
        1,
        AddrRange::new(DDR_BASE, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
        ConfidentialityMode::Encrypt,
        IntegrityMode::Verify,
        Some(KEY),
    )])
    .unwrap();
    let mut lcf = LocalCipheringFirewall::new(
        FirewallId(7),
        "LCF perf-crash",
        config,
        DDR_BASE,
        CryptoTiming::PAPER,
    );
    if let Some(entries) = ic_cache {
        lcf.enable_ic_cache(entries);
    }
    lcf
}

fn txn(op: Op, addr: u32, data: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op,
        addr,
        width: Width::Word,
        data,
        burst: 1,
        issued_at: Cycle(0),
    }
}

/// Seal, run [`WRITES`], and return the persisted surface a crash at
/// the end would leave behind.
fn run_writes(ic_cache: Option<usize>) -> (PersistentState, Vec<u8>, MonotonicCounter) {
    let mut lcf = fresh_lcf(ic_cache);
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for i in 0..0x100u32 {
        ddr.load(i, &[(i % 251) as u8]);
    }
    lcf.enable_journal(1024, STATE_KEY);
    lcf.seal(&mut ddr);
    for (i, &(addr, data)) in WRITES.iter().enumerate() {
        lcf.handle(&mut ddr, &txn(Op::Write, addr, data), Cycle(i as u64))
            .unwrap();
    }
    (
        lcf.persistent_state().unwrap(),
        ddr.contents().to_vec(),
        lcf.anti_rollback_counter().unwrap().clone(),
    )
}

/// The persisted surface (checkpoint image, journal, DDR ciphertext)
/// must not depend on whether the run that produced it was cached, and
/// recovery must succeed in all four (producer, recoverer) cache
/// combinations with every written word intact.
#[test]
fn crash_recovery_is_cache_agnostic() {
    let (state_off, ddr_off, counter_off) = run_writes(None);
    let (state_on, ddr_on, _) = run_writes(Some(8));
    assert_eq!(ddr_off, ddr_on, "cache changed the DDR ciphertext");
    assert_eq!(
        format!("{state_off:?}"),
        format!("{state_on:?}"),
        "cache leaked into the persisted state"
    );

    for (label, state, contents) in [
        ("uncached producer", &state_off, &ddr_off),
        ("cached producer", &state_on, &ddr_on),
    ] {
        for recoverer_cache in [None, Some(8)] {
            let mut ddr = ExternalDdr::new(DDR_LEN);
            ddr.load(0, contents);
            let mut lcf = fresh_lcf(recoverer_cache);
            let report =
                lcf.recover_from(&mut ddr, state, STATE_KEY, Some(counter_off.clone()), 1024);
            assert!(
                !report.is_quarantined(),
                "{label} -> cache {recoverer_cache:?}: honest crash quarantined: {report:?}"
            );
            for &(addr, data) in &WRITES {
                let r = lcf
                    .handle(&mut ddr, &txn(Op::Read, addr, 0), Cycle(100))
                    .unwrap();
                assert_eq!(
                    r.data, data,
                    "{label} -> cache {recoverer_cache:?}: word at {addr:#x} wrong after recovery"
                );
            }
        }
    }
}
