//! NoC fault-tolerance invariants, exhaustively.
//!
//! The protected transport's contract is *delivery-or-alert with no
//! security bypass*: whatever single link or router dies, every round
//! trip either completes or is converted into a fail-secure alert, the
//! mesh never deadlocks (nothing is left unresolved after the drain
//! window), and no request is serviced that the destination's policy
//! table would refuse. These tests enumerate **every** single-link and
//! single-router failure on meshes from 2x2 up to 4x4 and assert the
//! contract for each one — the deadlock-freedom and
//! enforcement-preservation argument as a sweep, not an example.

use secbus_fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, FaultSpec};
use secbus_noc::{run_noc_soak, NocSoakConfig, NocSoakReport};
use secbus_sim::Cycle;

/// Initiator counts and the mesh each one maps to (the workload adds a
/// column for the memory node): 2→2x2, 3→3x2, 6→3x3, 8→4x3, 12→4x4.
const SIZES: &[(usize, u8, u8)] = &[(2, 2, 2), (3, 3, 2), (6, 3, 3), (8, 4, 3), (12, 4, 4)];

fn soak(initiators: usize, protected: bool, plan: FaultPlan) -> NocSoakReport {
    let cfg = NocSoakConfig {
        initiators,
        period: 16,
        cycles: 2_000,
        drain_cycles: 1_500,
        protected,
    };
    run_noc_soak(&cfg, plan)
}

/// The contract every protected faulty run must honour.
fn assert_contract(r: &NocSoakReport, what: &str) {
    assert!(
        r.completed > 0,
        "{what}: some traffic must get through or the run says nothing: {r:?}"
    );
    // Delivery-or-alert: nothing silently stranded, no deadlock.
    assert_eq!(r.unresolved, 0, "{what}: initiator stranded: {r:?}");
    assert_eq!(r.stuck_in_mesh, 0, "{what}: packet stuck in mesh: {r:?}");
    assert!(!r.wedged, "{what}: wedged: {r:?}");
    assert_eq!(
        r.silent_drops, 0,
        "{what}: protected mode never drops silently: {r:?}"
    );
    // Security: rerouted or not, traffic is only serviced through the
    // destination's enforcement point.
    assert_eq!(r.security_bypasses, 0, "{what}: bypass: {r:?}");
    assert_eq!(
        r.delivered_corrupt, 0,
        "{what}: undetected corruption: {r:?}"
    );
}

#[test]
fn every_single_link_failure_is_survived() {
    for &(initiators, cols, rows) in SIZES {
        let nodes = u16::from(cols) * u16::from(rows);
        for node in 0..nodes {
            for dir in 0..4u8 {
                let plan = FaultPlan::new(vec![FaultEvent {
                    at: Cycle(300),
                    kind: FaultKind::LinkDrop { node, dir },
                }]);
                let r = soak(initiators, true, plan);
                assert_contract(
                    &r,
                    &format!("{cols}x{rows} link drop node={node} dir={dir}"),
                );
            }
        }
    }
}

#[test]
fn every_single_router_failure_is_survived() {
    for &(initiators, cols, rows) in SIZES {
        let nodes = u16::from(cols) * u16::from(rows);
        for node in 0..nodes {
            let plan = FaultPlan::new(vec![FaultEvent {
                at: Cycle(300),
                kind: FaultKind::RouterStuck { node },
            }]);
            let r = soak(initiators, true, plan);
            assert_contract(&r, &format!("{cols}x{rows} router stuck node={node}"));
            // A dead router must actually be *detected* (heartbeat), not
            // merely survived by luck.
            assert!(
                r.router_failures_detected >= 1,
                "{cols}x{rows} node={node}: heartbeat missed the dead router: {r:?}"
            );
        }
    }
}

#[test]
fn corruption_storms_never_bypass_or_corrupt_protected_traffic() {
    for &(initiators, cols, rows) in SIZES {
        let spec = FaultSpec {
            duration: 2_000,
            ddr_bytes: 0,
            firewalls: 0,
            slaves: 0,
            noc_nodes: u16::from(cols) * u16::from(rows),
            rates: FaultRates {
                link_bitflip: 30.0,
                ..FaultRates::NONE
            },
        };
        let plan = FaultPlan::generate(0x5EC, &spec);
        let r = soak(initiators, true, plan);
        assert!(
            r.crc_detected > 0,
            "{cols}x{rows}: storm missed the mesh: {r:?}"
        );
        assert_contract(&r, &format!("{cols}x{rows} bitflip storm"));
    }
}

/// The bare mesh under the same storm is the control: corruption lands.
/// This is what the CRC layer is buying.
#[test]
fn bare_mesh_control_shows_the_corruption_protected_mode_prevents() {
    let spec = FaultSpec {
        duration: 2_000,
        ddr_bytes: 0,
        firewalls: 0,
        slaves: 0,
        noc_nodes: 9,
        rates: FaultRates {
            link_bitflip: 30.0,
            ..FaultRates::NONE
        },
    };
    let r = soak(6, false, FaultPlan::generate(0x5EC, &spec));
    assert!(
        r.wire_corruptions > 0,
        "control must show corruption on the wire: {r:?}"
    );
    assert_eq!(r.crc_detected, 0, "bare mode has no CRC: {r:?}");
}

#[test]
fn faulty_soaks_are_deterministic() {
    let run = || {
        let spec = FaultSpec {
            duration: 2_000,
            ddr_bytes: 0,
            firewalls: 0,
            slaves: 0,
            noc_nodes: 12,
            rates: FaultRates {
                link_bitflip: 20.0,
                link_drop: 1.0,
                router_stuck: 1.0,
                ..FaultRates::NONE
            },
        };
        soak(8, true, FaultPlan::generate(0xD15C, &spec))
    };
    assert_eq!(run(), run(), "same seed, same report, bit for bit");
}
