//! System-wide containment invariants (the paper's §III-C feature 2:
//! "the attack must not reach the communication architecture but be
//! stopped in the interface associated with the infected IP").

use secbus_bus::{AddrRange, Op, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_integration_tests::BRAM_BASE;
use secbus_mem::Bram;
use secbus_sim::SimRng;
use secbus_soc::SocBuilder;

/// Masters whose traffic generator roams FAR outside their policy: every
/// granted WRITE on the bus must still be inside the issuer's policy.
#[test]
fn no_violating_write_is_ever_granted_the_bus() {
    for seed in 0..8u64 {
        let mut builder = SocBuilder::new();
        let policies: Vec<(u32, u32)> = vec![(BRAM_BASE, 0x200), (BRAM_BASE + 0x800, 0x100)];
        for (i, &(base, len)) in policies.iter().enumerate() {
            // The generator targets the WHOLE bram, its policy only a slice.
            let master = SyntheticMaster::new(
                format!("rogue{i}"),
                SyntheticConfig {
                    windows: vec![(BRAM_BASE, 0x1000, 1)],
                    read_ratio: 0.3,
                    widths: vec![Width::Byte, Width::Half, Width::Word],
                    burst: 1,
                    period: 2,
                    total_ops: 200,
                },
                SimRng::new(seed * 31 + i as u64),
            );
            let cm = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                i as u16 + 1,
                AddrRange::new(base, len),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )])
            .unwrap();
            builder = builder.add_protected_master(Box::new(master), cm);
        }
        let mut soc = builder
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run_until_halt(500_000);

        // Invariant: every write on the bus lies inside its master's policy.
        for (_, txn) in soc.bus().trace().iter() {
            if txn.op != Op::Write {
                continue;
            }
            let (base, len) = policies[txn.master.0 as usize];
            assert!(
                txn.within(base, len),
                "seed {seed}: violating write {txn} was granted the bus"
            );
        }
        // And plenty of violations were attempted (the generator roams).
        assert!(
            soc.monitor().alert_count() > 0,
            "seed {seed}: no violations generated"
        );
    }
}

/// A blocked IP stays silent on the bus from the block onward.
#[test]
fn blocked_ip_issues_nothing_after_the_block() {
    let master = SyntheticMaster::new(
        "rogue",
        SyntheticConfig {
            windows: vec![(BRAM_BASE + 0x800, 0x100, 1)], // entirely out of policy
            read_ratio: 0.0,
            widths: vec![Width::Word],
            burst: 1,
            period: 4,
            total_ops: 0,
        },
        SimRng::new(3),
    );
    let cm = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        1,
        AddrRange::new(BRAM_BASE, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap();
    let mut soc = SocBuilder::new()
        .monitor_threshold(5)
        .add_protected_master(Box::new(master), cm)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .build();
    soc.run(5_000);
    assert!(soc.master_firewall(0).unwrap().is_blocked());
    assert_eq!(
        soc.bus().trace().len(),
        0,
        "nothing from the rogue ever reached the bus"
    );
    // Violations keep being counted locally (IpBlocked), but the alert
    // stream proves detection continued.
    assert!(soc.monitor().alert_count() >= 5);
}

/// Violating reads may be granted (request phase), but the read DATA is
/// discarded before the IP: the master observes only errors.
#[test]
fn violating_read_data_never_reaches_the_ip() {
    let master = SyntheticMaster::new(
        "reader",
        SyntheticConfig {
            windows: vec![(BRAM_BASE + 0x800, 0x100, 1)],
            read_ratio: 1.0,
            widths: vec![Width::Word],
            burst: 1,
            period: 4,
            total_ops: 50,
        },
        SimRng::new(5),
    );
    let cm = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        1,
        AddrRange::new(BRAM_BASE, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap();
    let mut bram = Bram::new(0x1000);
    bram.load(0x800, &[0xAA; 0x100]); // secret the reader must not obtain
    let mut soc = SocBuilder::new()
        .add_protected_master(Box::new(master), cm)
        .add_bram("bram", AddrRange::new(BRAM_BASE, 0x1000), bram, None)
        .build();
    soc.run_until_halt(100_000);
    let st = soc.master_device(0).stats();
    assert_eq!(st.counter("traffic.ok"), 0, "no forbidden read may succeed");
    assert_eq!(st.counter("traffic.err"), 50);
    assert_eq!(soc.monitor().alert_count(), 50);
}

/// The slave-side firewall protects an IP from the bus side too: traffic
/// that a (hypothetically unprotected) master sends at a guarded slave is
/// discarded before the slave's memory.
#[test]
fn slave_side_firewall_guards_the_ip() {
    let master = SyntheticMaster::new(
        "unfirewalled",
        SyntheticConfig {
            windows: vec![(BRAM_BASE, 0x200, 1)],
            read_ratio: 0.0,
            widths: vec![Width::Word],
            burst: 1,
            period: 2,
            total_ops: 100,
        },
        SimRng::new(7),
    );
    // The slave accepts only the first 0x100 bytes.
    let guard = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        9,
        AddrRange::new(BRAM_BASE, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap();
    let mut soc = SocBuilder::new()
        .add_master(Box::new(master)) // no master-side firewall at all
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            Some(guard),
        )
        .build();
    soc.run_until_halt(100_000);
    // Writes to 0x100..0x200 were discarded at the slave interface.
    let contents = soc.bram_contents().unwrap();
    assert!(
        contents[0x100..0x200].iter().all(|&b| b == 0),
        "guarded upper half must stay untouched"
    );
    assert!(soc.monitor().alert_count() > 0);
    let errs = soc.master_device(0).stats().counter("traffic.err");
    assert!(errs > 0, "master saw its rejections");
}
