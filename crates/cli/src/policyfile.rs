//! JSON policy files for the CLI.
//!
//! A policy file is a JSON array of Security Policies, e.g.:
//!
//! ```json
//! [
//!   { "spi": 1,
//!     "region": { "base": 536870912, "len": 65536 },
//!     "rwa": "ReadWrite",
//!     "adf": 7,
//!     "cm": "Bypass", "im": "Bypass", "key": null }
//! ]
//! ```
//!
//! Loading validates the set (region overlaps are rejected) by building a
//! [`ConfigMemory`] — a malformed policy file fails loudly instead of
//! silently weakening enforcement, and every failure is reported as an
//! error string, never a panic.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfidentialityMode, ConfigMemory, IntegrityMode, Rwa, SecurityPolicy};
use secbus_sim::Json;

/// Parse and validate a policy file's contents.
pub fn parse_policies(json: &str) -> Result<ConfigMemory, String> {
    let doc = Json::parse(json).map_err(|e| format!("policy file: {e}"))?;
    let entries = doc
        .as_arr()
        .ok_or("policy file: top level must be a JSON array of policies")?;
    let mut policies = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        policies.push(policy_from_json(entry).map_err(|e| format!("policy file: entry {i}: {e}"))?);
    }
    if policies.is_empty() {
        return Err("policy file: empty policy set (everything would be denied)".into());
    }
    ConfigMemory::with_policies(policies).map_err(|e| format!("policy file: {e}"))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn uint_field(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn policy_from_json(v: &Json) -> Result<SecurityPolicy, String> {
    let spi = uint_field(v, "spi")?;
    let spi = u16::try_from(spi).map_err(|_| format!("spi {spi} exceeds 16 bits"))?;
    let region = field(v, "region")?;
    let base = uint_field(region, "base")?;
    let len = uint_field(region, "len")?;
    let base = u32::try_from(base).map_err(|_| format!("region base {base:#x} exceeds 32 bits"))?;
    let len = u32::try_from(len).map_err(|_| format!("region len {len:#x} exceeds 32 bits"))?;
    if len == 0 {
        return Err("region len must be positive".into());
    }
    if u64::from(base) + u64::from(len) > 1 << 32 {
        return Err(format!(
            "region {base:#x}+{len:#x} wraps the 32-bit address space"
        ));
    }
    let rwa = match field(v, "rwa")?.as_str() {
        Some("ReadOnly") => Rwa::ReadOnly,
        Some("WriteOnly") => Rwa::WriteOnly,
        Some("ReadWrite") => Rwa::ReadWrite,
        other => {
            return Err(format!(
                "rwa must be ReadOnly|WriteOnly|ReadWrite, got {other:?}"
            ))
        }
    };
    let adf = uint_field(v, "adf")?;
    if adf > 7 {
        return Err(format!("adf bitmask {adf} out of range (0..=7)"));
    }
    let adf = AdfSet::from_bits(adf as u8);
    let cm = match field(v, "cm")?.as_str() {
        Some("Bypass") => ConfidentialityMode::Bypass,
        Some("Encrypt") => ConfidentialityMode::Encrypt,
        other => return Err(format!("cm must be Bypass|Encrypt, got {other:?}")),
    };
    let im = match field(v, "im")?.as_str() {
        Some("Bypass") => IntegrityMode::Bypass,
        Some("Verify") => IntegrityMode::Verify,
        other => return Err(format!("im must be Bypass|Verify, got {other:?}")),
    };
    let key = match field(v, "key")? {
        Json::Null => None,
        Json::Arr(bytes) => {
            if bytes.len() != 16 {
                return Err(format!("key must hold 16 bytes, got {}", bytes.len()));
            }
            let mut k = [0u8; 16];
            for (slot, b) in k.iter_mut().zip(bytes.iter()) {
                let byte = b
                    .as_u64()
                    .filter(|&x| x <= 255)
                    .ok_or("key bytes must be 0..=255")?;
                *slot = byte as u8;
            }
            Some(k)
        }
        _ => return Err("key must be null or an array of 16 bytes".into()),
    };
    SecurityPolicy::validated(spi, AddrRange::new(base, len), rwa, adf, cm, im, key)
        .map_err(|e| e.to_string())
}

fn policy_to_json(p: &SecurityPolicy) -> Json {
    Json::Obj(vec![
        ("spi".into(), Json::uint(u64::from(p.spi.0))),
        (
            "region".into(),
            Json::Obj(vec![
                ("base".into(), Json::uint(u64::from(p.region.base))),
                ("len".into(), Json::uint(u64::from(p.region.len))),
            ]),
        ),
        (
            "rwa".into(),
            Json::str(match p.rwa {
                Rwa::ReadOnly => "ReadOnly",
                Rwa::WriteOnly => "WriteOnly",
                Rwa::ReadWrite => "ReadWrite",
            }),
        ),
        ("adf".into(), Json::uint(u64::from(p.adf.bits()))),
        (
            "cm".into(),
            Json::str(match p.cm {
                ConfidentialityMode::Bypass => "Bypass",
                ConfidentialityMode::Encrypt => "Encrypt",
            }),
        ),
        (
            "im".into(),
            Json::str(match p.im {
                IntegrityMode::Bypass => "Bypass",
                IntegrityMode::Verify => "Verify",
            }),
        ),
        (
            "key".into(),
            match p.key {
                None => Json::Null,
                Some(k) => Json::Arr(k.iter().map(|&b| Json::uint(u64::from(b))).collect()),
            },
        ),
    ])
}

/// Render a policy set back to pretty JSON (the `policy-template` output).
pub fn render_policies(policies: &[SecurityPolicy]) -> String {
    Json::Arr(policies.iter().map(policy_to_json).collect()).render_pretty()
}

/// The default template: the `run` sandbox's BRAM + DDR windows.
pub fn template() -> String {
    render_policies(&[
        SecurityPolicy::internal(
            1,
            AddrRange::new(0x2000_0000, 0x1_0000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(0x8000_0000, 0x10_0000),
            Rwa::ReadOnly,
            AdfSet::WORD_ONLY,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::Width;

    #[test]
    fn template_roundtrips() {
        let cm = parse_policies(&template()).unwrap();
        assert_eq!(cm.len(), 2);
        let p = cm.lookup(0x2000_0000).unwrap();
        assert!(p.adf.allows(Width::Byte));
        let p = cm.lookup(0x8000_0000).unwrap();
        assert!(!p.adf.allows(Width::Byte));
    }

    #[test]
    fn overlapping_file_rejected() {
        let json = r#"[
            {"spi":1,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null},
            {"spi":2,"region":{"base":16,"len":32},"rwa":"ReadOnly","adf":7,"cm":"Bypass","im":"Bypass","key":null}
        ]"#;
        let err = parse_policies(json).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(parse_policies("not json").is_err());
        assert!(parse_policies("[]").unwrap_err().contains("empty"));
    }

    #[test]
    fn bad_field_values_report_not_panic() {
        let overlong_spi = r#"[{"spi":70000,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null}]"#;
        assert!(parse_policies(overlong_spi)
            .unwrap_err()
            .contains("16 bits"));
        let bad_rwa = r#"[{"spi":1,"region":{"base":0,"len":32},"rwa":"Everything","adf":7,"cm":"Bypass","im":"Bypass","key":null}]"#;
        assert!(parse_policies(bad_rwa).unwrap_err().contains("rwa"));
        let empty_region = r#"[{"spi":1,"region":{"base":0,"len":0},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null}]"#;
        assert!(parse_policies(empty_region)
            .unwrap_err()
            .contains("positive"));
        let wrapping = r#"[{"spi":1,"region":{"base":4294967295,"len":2},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null}]"#;
        assert!(parse_policies(wrapping).unwrap_err().contains("wraps"));
        let short_key = r#"[{"spi":1,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Encrypt","im":"Bypass","key":[1,2,3]}]"#;
        assert!(parse_policies(short_key).unwrap_err().contains("16 bytes"));
        let missing = r#"[{"spi":1}]"#;
        assert!(parse_policies(missing)
            .unwrap_err()
            .contains("missing field"));
    }

    #[test]
    fn inconsistent_crypto_modes_rejected() {
        let enc_no_key = r#"[{"spi":1,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Encrypt","im":"Bypass","key":null}]"#;
        assert!(parse_policies(enc_no_key).unwrap_err().contains("no key"));
        let verify_no_cipher = r#"[{"spi":1,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Verify","key":null}]"#;
        assert!(parse_policies(verify_no_cipher)
            .unwrap_err()
            .contains("integrity"));
    }

    #[test]
    fn external_policy_with_key_roundtrips() {
        use secbus_core::{ConfidentialityMode, IntegrityMode};
        let p = SecurityPolicy::external(
            9,
            AddrRange::new(0x8000_0000, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some([0xAB; 16]),
        );
        let json = render_policies(std::slice::from_ref(&p));
        let cm = parse_policies(&json).unwrap();
        assert_eq!(cm.lookup(0x8000_0000), Some(&p));
    }
}
