//! JSON policy files for the CLI.
//!
//! A policy file is a JSON array of Security Policies. The format is the
//! serde rendering of [`SecurityPolicy`], e.g.:
//!
//! ```json
//! [
//!   { "spi": 1,
//!     "region": { "base": 536870912, "len": 65536 },
//!     "rwa": "ReadWrite",
//!     "adf": 7,
//!     "cm": "Bypass", "im": "Bypass", "key": null }
//! ]
//! ```
//!
//! Loading validates the set (region overlaps are rejected) by building a
//! [`ConfigMemory`] — a malformed policy file fails loudly instead of
//! silently weakening enforcement.

use secbus_core::{ConfigMemory, SecurityPolicy};

/// Parse and validate a policy file's contents.
pub fn parse_policies(json: &str) -> Result<ConfigMemory, String> {
    let policies: Vec<SecurityPolicy> =
        serde_json::from_str(json).map_err(|e| format!("policy file: {e}"))?;
    if policies.is_empty() {
        return Err("policy file: empty policy set (everything would be denied)".into());
    }
    ConfigMemory::with_policies(policies).map_err(|e| format!("policy file: {e}"))
}

/// Render a policy set back to pretty JSON (the `policy-template` output).
pub fn render_policies(policies: &[SecurityPolicy]) -> String {
    serde_json::to_string_pretty(policies).expect("policies are serializable")
}

/// The default template: the `run` sandbox's BRAM + DDR windows.
pub fn template() -> String {
    use secbus_bus::AddrRange;
    use secbus_core::{AdfSet, Rwa};
    render_policies(&[
        SecurityPolicy::internal(
            1,
            AddrRange::new(0x2000_0000, 0x1_0000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(0x8000_0000, 0x10_0000),
            Rwa::ReadOnly,
            AdfSet::WORD_ONLY,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::Width;

    #[test]
    fn template_roundtrips() {
        let cm = parse_policies(&template()).unwrap();
        assert_eq!(cm.len(), 2);
        let p = cm.lookup(0x2000_0000).unwrap();
        assert!(p.adf.allows(Width::Byte));
        let p = cm.lookup(0x8000_0000).unwrap();
        assert!(!p.adf.allows(Width::Byte));
    }

    #[test]
    fn overlapping_file_rejected() {
        let json = r#"[
            {"spi":1,"region":{"base":0,"len":32},"rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null},
            {"spi":2,"region":{"base":16,"len":32},"rwa":"ReadOnly","adf":7,"cm":"Bypass","im":"Bypass","key":null}
        ]"#;
        let err = parse_policies(json).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(parse_policies("not json").is_err());
        assert!(parse_policies("[]").unwrap_err().contains("empty"));
    }

    #[test]
    fn external_policy_with_key_roundtrips() {
        use secbus_bus::AddrRange;
        use secbus_core::{AdfSet, ConfidentialityMode, IntegrityMode, Rwa};
        let p = SecurityPolicy::external(
            9,
            AddrRange::new(0x8000_0000, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some([0xAB; 16]),
        );
        let json = render_policies(std::slice::from_ref(&p));
        let cm = parse_policies(&json).unwrap();
        assert_eq!(cm.lookup(0x8000_0000), Some(&p));
    }
}
