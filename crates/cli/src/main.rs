//! `secbus` — the command-line front end.
//!
//! ```text
//! secbus asm <file.s>              assemble MB32 source to hex words
//! secbus disasm <file.hex>         disassemble hex words (one per line)
//! secbus run <file.s> [opts]       run a program on a one-core protected SoC
//!     --cycles <n>                 cycle budget (default 1_000_000)
//!     --unprotected                build without firewalls
//!     --policy <file.json>         load the firewall policy table
//!     --image <boot.ihex>          preload the external DDR
//!     --trace                      append the bus trace
//!     --audit | --audit-json       append the security audit
//! secbus observe [opts]            run the case study with tracing armed
//!     --metrics                    print the key-sorted metrics snapshot
//!     --trace-out <file.json>      write a Chrome trace_event timeline
//!     --tail <n>                   print the last n trace events
//!     --attack                     hijack cpu0 so the timeline shows an alert
//! secbus attacks [--seed <n>]      run the §III threat-model scenarios
//! secbus overload [--seed <n>] [--rate <n>]
//!                                  flood the SoC and a 4x4 mesh open-loop;
//!                                  show shedding, brownout and conservation
//! secbus table1                    regenerate the paper's Table I
//! secbus fig1                      regenerate the architecture figure
//! secbus policy-template           print a JSON policy skeleton
//! ```

use std::process::ExitCode;

mod commands;
mod policyfile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("secbus: {e}");
            ExitCode::FAILURE
        }
    }
}
