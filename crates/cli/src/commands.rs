//! Subcommand implementations (pure: `args -> Result<output, error>`,
//! which keeps them unit-testable without process spawning).

use std::fmt::Write as _;
use std::fs;

use secbus_bus::{AddrRange, Width};
use secbus_core::{verify, AdfSet, ConfigMemory, PolicyProgram, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, disasm_listing, Mb32Core, Reg};
use secbus_mem::{parse_ihex, Bram, ExternalDdr, HexImage};
use secbus_sim::Cycle;
use secbus_soc::casestudy::{
    case_study, lcf_policies, CaseStudyConfig, CPU1_PROGRAM, CPU2_PROGRAM, DDR_BASE, DDR_LEN,
};
use secbus_soc::{render_topology, Report, SocBuilder};

const USAGE: &str =
    "usage: secbus <asm|disasm|run|observe|attacks|policy|reconfig|table1|fig1|backends> …
  secbus asm <file.s>               assemble MB32 source to hex words
  secbus disasm <file.hex>          disassemble hex words (one per line)
  secbus run <file.s> [--cycles N] [--unprotected] [--policy <file.json>]\n             [--image <boot.ihex>] [--trace] [--audit[-json]]
  secbus observe [--metrics] [--trace-out <file.json>] [--tail N]\n             [--attack] [--cycles N]
                                    run the case study with the observability\n                                    spine armed; export metrics / Chrome trace
  secbus attacks [--seed N]
  secbus campaign [--seed N] [--bare]
                                    run the staged adversarial campaigns and\n                                    print each kill chain
  secbus overload [--seed N] [--rate N]
                                    flood the SoC and a 4x4 mesh open-loop and\n                                    show shedding, brownout and conservation
  secbus policy check <file.policy> parse, compile and exhaustively verify a\n                                    DSL policy program (exit 1 + counterexample\n                                    on rejection)
  secbus policy compile <file.policy>\n                                    print the compiled per-master firewall tables
  secbus policy template            print a policy-DSL skeleton
  secbus reconfig [--seed N]        storm live policy epochs through a flooded\n                                    SoC and print the zero-loss verdict
  secbus table1 | fig1
  secbus policy-template            print a JSON policy-file skeleton
  secbus backends                   show detected crypto hardware and the\n                                    active backend (SECBUS_CRYPTO_BACKEND)
";

/// The BRAM window the `run` sandbox maps and authorizes.
const BRAM_BASE: u32 = 0x2000_0000;

/// Parse `--flag value` style options from an argument list.
fn opt_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Route a command line to its implementation.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("asm") => cmd_asm(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("observe") => cmd_observe(&args[1..]),
        Some("attacks") => cmd_attacks(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("overload") => cmd_overload(&args[1..]),
        Some("policy") => cmd_policy(&args[1..]),
        Some("reconfig") => cmd_reconfig(&args[1..]),
        Some("table1") => Ok(secbus_area::Table1::case_study().render()),
        Some("table2") => {
            Err("table2 lives in the bench crate: cargo run -p secbus-bench --bin table2".into())
        }
        Some("policy-template") => Ok(crate::policyfile::template() + "\n"),
        Some("backends") => Ok(cmd_backends()),
        Some("fig1") => {
            let soc = secbus_soc::casestudy::case_study(Default::default());
            Ok(render_topology(&soc))
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Report the detected crypto hardware and the backend the hot paths
/// actually dispatch to (after the `SECBUS_CRYPTO_BACKEND` override and
/// the never-select-unsupported fallback).
fn cmd_backends() -> String {
    let caps = secbus_crypto::host_caps();
    let active = secbus_crypto::active_backend();
    let request = std::env::var("SECBUS_CRYPTO_BACKEND");
    let mut out = String::new();
    writeln!(out, "crypto backends:").unwrap();
    writeln!(out, "  aes-ni : {}", if caps.aesni { "yes" } else { "no" }).unwrap();
    writeln!(out, "  sha-ni : {}", if caps.shani { "yes" } else { "no" }).unwrap();
    writeln!(
        out,
        "  request: {}",
        request.as_deref().unwrap_or("(unset: auto)")
    )
    .unwrap();
    writeln!(out, "  active : {}", active.name()).unwrap();
    out
}

fn cmd_asm(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("asm needs a source file")?;
    let src = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let words = assemble(&src).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    for w in words {
        writeln!(out, "{w:08x}").unwrap();
    }
    Ok(out)
}

fn cmd_disasm(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("disasm needs a hex file")?;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let words = parse_hex_words(&text)?;
    Ok(disasm_listing(0, &words))
}

/// Parse whitespace/line-separated hex words (optional 0x prefix).
pub fn parse_hex_words(text: &str) -> Result<Vec<u32>, String> {
    text.split_whitespace()
        .map(|tok| {
            let tok = tok.strip_prefix("0x").unwrap_or(tok);
            u32::from_str_radix(tok, 16).map_err(|e| format!("bad hex word {tok:?}: {e}"))
        })
        .collect()
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("run needs a source file")?;
    let src = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cycles: u64 = opt_value(args, "--cycles")?
        .map(|v| v.parse().map_err(|e| format!("--cycles: {e}")))
        .transpose()?
        .unwrap_or(1_000_000);
    let protected = !has_flag(args, "--unprotected");
    let policies = match opt_value(args, "--policy")? {
        Some(path) => {
            let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(crate::policyfile::parse_policies(&json)?)
        }
        None => None,
    };
    let image = match opt_value(args, "--image")? {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(parse_ihex(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let mut out = run_program_image(&src, cycles, protected, policies.clone(), image)?;
    if has_flag(args, "--audit") || has_flag(args, "--audit-json") {
        let audit = run_audit(&src, cycles, protected, policies)?;
        if has_flag(args, "--audit-json") {
            out.push_str(&audit.to_json().render_pretty());
            out.push('\n');
        } else {
            out.push_str(&audit.render());
        }
    }
    if has_flag(args, "--trace") {
        // Re-run with identical configuration to collect the trace (runs
        // are deterministic, so the trace matches the report above).
        out.push_str(&run_trace(&src, cycles, protected)?);
    }
    Ok(out)
}

fn run_audit(
    src: &str,
    cycles: u64,
    protected: bool,
    policies: Option<ConfigMemory>,
) -> Result<secbus_soc::AuditReport, String> {
    let program = assemble(src).map_err(|e| e.to_string())?;
    let core = Mb32Core::with_local_program("cpu0", 0, program);
    let policies = match policies {
        Some(p) => p,
        None => ConfigMemory::with_policies(vec![
            SecurityPolicy::internal(
                1,
                AddrRange::new(BRAM_BASE, 0x1_0000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(
                2,
                AddrRange::new(DDR_BASE, DDR_LEN),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
        ])
        .map_err(|e| e.to_string())?,
    };
    let mut builder = SocBuilder::new();
    if !protected {
        builder = builder.without_security();
    }
    let mut soc = builder
        .add_protected_master(Box::new(core), policies)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ExternalDdr::new(DDR_LEN),
            Some(lcf_policies()),
        )
        .build();
    soc.run_until_halt(cycles);
    Ok(soc.audit())
}

fn run_trace(src: &str, cycles: u64, protected: bool) -> Result<String, String> {
    let program = assemble(src).map_err(|e| e.to_string())?;
    let core = Mb32Core::with_local_program("cpu0", 0, program);
    let mut builder = SocBuilder::new();
    if !protected {
        builder = builder.without_security();
    }
    let mut soc = builder
        .add_master(Box::new(core))
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ExternalDdr::new(DDR_LEN),
            Some(lcf_policies()),
        )
        .build();
    soc.run_until_halt(cycles);
    Ok(secbus_soc::render_trace(&soc) + "\n" + &secbus_soc::trace_summary(&soc))
}

/// Build the `run` sandbox (one core, 64 KiB BRAM, 1 MiB protected DDR)
/// with the default policy set, execute, and report.
#[cfg_attr(not(test), allow(dead_code))]
pub fn run_program(src: &str, cycles: u64, protected: bool) -> Result<String, String> {
    run_program_with(src, cycles, protected, None)
}

/// [`run_program`] with an optional caller-supplied policy table.
pub fn run_program_with(
    src: &str,
    cycles: u64,
    protected: bool,
    policies: Option<ConfigMemory>,
) -> Result<String, String> {
    run_program_image(src, cycles, protected, policies, None)
}

/// [`run_program_with`] plus an optional Intel-HEX boot image loaded into
/// the external DDR before the LCF seals it.
pub fn run_program_image(
    src: &str,
    cycles: u64,
    protected: bool,
    policies: Option<ConfigMemory>,
    image: Option<HexImage>,
) -> Result<String, String> {
    let program = assemble(src).map_err(|e| e.to_string())?;
    let core = Mb32Core::with_local_program("cpu0", 0, program);
    let policies = match policies {
        Some(p) => p,
        None => ConfigMemory::with_policies(vec![
            SecurityPolicy::internal(
                1,
                AddrRange::new(BRAM_BASE, 0x1_0000),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(
                2,
                AddrRange::new(DDR_BASE, DDR_LEN),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
        ])
        .map_err(|e| e.to_string())?,
    };
    let mut builder = SocBuilder::new();
    if !protected {
        builder = builder.without_security();
    }
    let mut ddr = ExternalDdr::new(DDR_LEN);
    if let Some(image) = image {
        for (addr, data) in &image.chunks {
            let off = addr
                .checked_sub(DDR_BASE)
                .filter(|&o| o as u64 + data.len() as u64 <= u64::from(DDR_LEN))
                .ok_or_else(|| format!("image chunk at {addr:#010x} is outside the DDR"))?;
            ddr.load(off, data);
        }
    }
    let mut soc = builder
        .add_protected_master(Box::new(core), policies)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ddr,
            Some(lcf_policies()),
        )
        .build();
    let ran = soc.run_until_halt(cycles);
    let core = soc
        .master_as::<Mb32Core>(0)
        .ok_or("internal error: cpu0 is not an MB32 core")?;
    let mut out = String::new();
    if secbus_cpu::BusMaster::halted(core) {
        writeln!(out, "halted after {ran} cycles").unwrap();
    } else {
        writeln!(
            out,
            "cycle budget ({cycles}) exhausted; pc = {:#010x}",
            core.pc()
        )
        .unwrap();
    }
    writeln!(out, "registers:").unwrap();
    for i in 0..16 {
        write!(out, "  r{i:<2}={:#010x}", core.reg(Reg(i))).unwrap();
        if i % 4 == 3 {
            out.push('\n');
        }
    }
    writeln!(out, "\n{}", Report::collect(&soc, Cycle(0))).unwrap();
    Ok(out)
}

/// Run the case-study workload with the observability spine armed and
/// export what it saw: a summary line always, plus `--metrics` (the
/// key-sorted metrics snapshot), `--trace-out <file>` (Chrome
/// `trace_event` JSON for chrome://tracing / Perfetto) and `--tail N`
/// (the last N retained trace events as text). `--attack` hijacks cpu0
/// into an out-of-policy write so the timeline shows an alert. Output is
/// entirely simulated time: two runs of the same command are
/// byte-identical.
fn cmd_observe(args: &[String]) -> Result<String, String> {
    let cycles: u64 = opt_value(args, "--cycles")?
        .map(|v| v.parse().map_err(|e| format!("--cycles: {e}")))
        .transpose()?
        .unwrap_or(2_000_000);
    let tail: Option<usize> = opt_value(args, "--tail")?
        .map(|v| v.parse().map_err(|e| format!("--tail: {e}")))
        .transpose()?;
    let programs = has_flag(args, "--attack").then(|| {
        [
            r"
            li  r1, 0x80080000
            addi r2, r0, 99
            sw  r2, 0(r1)   ; violates cpu0's read-only rule -> alert
            halt
            "
            .to_string(),
            CPU1_PROGRAM.to_string(),
            CPU2_PROGRAM.to_string(),
        ]
    });
    let mut soc = case_study(CaseStudyConfig {
        programs,
        trace: Some(16_384),
        ..Default::default()
    });
    let ran = soc.run_until_halt(cycles);
    let tracer = soc
        .tracer()
        .ok_or("internal error: observe armed the trace spine but no tracer exists")?;
    let mut out = String::new();
    writeln!(
        out,
        "observed {ran} cycles: {} trace events ({} retained, {} dropped), {} alerts",
        tracer.total(),
        tracer.len(),
        tracer.dropped(),
        soc.monitor().alert_count()
    )
    .unwrap();
    if let Some(path) = opt_value(args, "--trace-out")? {
        let doc = soc
            .chrome_trace()
            .ok_or("internal error: trace armed but no chrome trace available")?;
        fs::write(path, doc.render()).map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "chrome trace written to {path} (open in chrome://tracing or Perfetto)"
        )
        .unwrap();
    }
    if let Some(n) = tail {
        let events = tracer.snapshot();
        let skip = events.len().saturating_sub(n);
        writeln!(out, "last {} trace events:", events.len() - skip).unwrap();
        for (cycle, ev) in &events[skip..] {
            writeln!(out, "  {:>10}  {:<14} {ev:?}", cycle.get(), ev.kind()).unwrap();
        }
    }
    if has_flag(args, "--metrics") {
        out.push_str(&soc.metrics_snapshot().to_json().render_pretty());
        out.push('\n');
    }
    Ok(out)
}

fn cmd_attacks(args: &[String]) -> Result<String, String> {
    let seed: u64 = opt_value(args, "--seed")?
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let mut out = String::new();
    writeln!(
        out,
        "{:<40} {:>9} {:>12} {:>10}",
        "scenario", "detected", "latency", "contained"
    )
    .unwrap();
    for o in secbus_attack::run_all_scenarios(seed) {
        writeln!(
            out,
            "{:<40} {:>9} {:>12} {:>10}",
            o.scenario.name(),
            if o.detected() { "yes" } else { "NO" },
            o.detection_latency.map_or("-".into(), |l| l.to_string()),
            if o.contained { "yes" } else { "NO" },
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_campaign(args: &[String]) -> Result<String, String> {
    let seed: u64 = opt_value(args, "--seed")?
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let protected = !has_flag(args, "--bare");
    let mut out = String::new();
    writeln!(
        out,
        "campaigns ({} mode, seed {seed})",
        if protected { "protected" } else { "bare" }
    )
    .unwrap();
    writeln!(
        out,
        "{:<20} {:>8} {:>9} {:>8} {:>13} {:>7}",
        "campaign", "detected", "reaction", "bypasses", "sinks_blocked", "damage"
    )
    .unwrap();
    let outcomes = secbus_attack::run_all_campaigns(seed, protected);
    for o in &outcomes {
        writeln!(
            out,
            "{:<20} {:>8} {:>9} {:>8} {:>13} {:>7}",
            o.kind.name(),
            if o.detected { "yes" } else { "NO" },
            o.reaction,
            o.policy_bypasses,
            o.sinks_blocked,
            o.damage_words,
        )
        .unwrap();
    }
    for o in &outcomes {
        writeln!(out, "\nkill chain: {}", o.kind.name()).unwrap();
        for e in &o.kill_chain {
            writeln!(out, "  cycle {:>6}  {:<16} {}", e.cycle, e.stage, e.phase).unwrap();
        }
    }
    Ok(out)
}

/// `secbus policy <check|compile|template>` — the offline half of the
/// policy pipeline. `check` runs the same exhaustive verifier that gates
/// `commit_policy_epoch` admission, so a program that passes here is
/// admissible live.
fn cmd_policy(args: &[String]) -> Result<String, String> {
    const POLICY_USAGE: &str = "usage: secbus policy <check|compile|template> [file.policy]";
    match args.first().map(String::as_str) {
        Some("template") => Ok(secbus_core::policy_dsl::template().to_string()),
        Some("check") => {
            let path = args.get(1).ok_or("policy check needs a .policy file")?;
            let (program, compiled) = load_policy_program(path)?;
            let views = compiled.as_views();
            let report =
                verify(&program, &views).map_err(|e| format!("{path}: REJECTED\n  {e}"))?;
            Ok(format!(
                "{path}: OK\n  {} masters, {} rules -> {} compiled policies\n  \
                 {} (addr, op, width) samples checked, zero intent/table divergence\n",
                report.masters, report.rules, report.policies, report.samples
            ))
        }
        Some("compile") => {
            let path = args.get(1).ok_or("policy compile needs a .policy file")?;
            let (program, compiled) = load_policy_program(path)?;
            let views = compiled.as_views();
            verify(&program, &views).map_err(|e| format!("{path}: REJECTED\n  {e}"))?;
            let mut out = String::new();
            for table in &compiled.tables {
                writeln!(
                    out,
                    "master {} ({}): {} policies",
                    table.master,
                    table.name,
                    table.policies.len()
                )
                .unwrap();
                for p in &table.policies {
                    let widths: Vec<&str> = [
                        (Width::Byte, "byte"),
                        (Width::Half, "half"),
                        (Width::Word, "word"),
                    ]
                    .iter()
                    .filter(|&&(w, _)| p.adf.allows(w))
                    .map(|&(_, n)| n)
                    .collect();
                    writeln!(
                        out,
                        "  spi {:>3}  [{:#010x}, {:#010x})  {:<9} {:<14} cm={:?} im={:?} key={}",
                        p.spi.0,
                        p.region.base,
                        p.region.end(),
                        format!("{:?}", p.rwa),
                        widths.join("|"),
                        p.cm,
                        p.im,
                        if p.key.is_some() { "yes" } else { "no" },
                    )
                    .unwrap();
                }
            }
            Ok(out)
        }
        Some(other) => Err(format!(
            "unknown policy subcommand {other:?}\n{POLICY_USAGE}"
        )),
        None => Err(POLICY_USAGE.into()),
    }
}

/// Read, parse and compile a DSL policy file.
fn load_policy_program(
    path: &str,
) -> Result<(PolicyProgram, secbus_core::CompiledPolicies), String> {
    let src = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = PolicyProgram::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    let compiled = program.compile().map_err(|e| format!("{path}: {e}"))?;
    Ok((program, compiled))
}

/// `secbus reconfig` — a small S-20 cell, bare vs protected: policy-epoch
/// storms (including verifier-refused and fault-aborted commits) through
/// a flooded SoC, printing the zero-loss / fail-secure verdict.
fn cmd_reconfig(args: &[String]) -> Result<String, String> {
    use secbus_soc::{run_reconfig_soak, DegradeConfig, ReconfigSoakConfig, SwapSchedule};

    let seed: u64 = opt_value(args, "--seed")?
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);

    let mut out = String::new();
    writeln!(
        out,
        "reconfig storm (seed {seed}, epoch every 200 cycles)\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>7} {:>9} {:>6} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6}",
        "mode",
        "issued",
        "completed",
        "shed",
        "misjudged",
        "commits",
        "refused",
        "faulted",
        "epoch",
        "fleet"
    )
    .unwrap();
    let mut wedged = false;
    for protected in [false, true] {
        let r = run_reconfig_soak(&ReconfigSoakConfig {
            per_tick: 2,
            cycles: 1_200,
            protected,
            degrade: protected.then_some(DegradeConfig {
                high_watermark: 6,
                low_watermark: 0,
                enter_after: 8,
                exit_after: 32,
            }),
            schedule: SwapSchedule::Periodic { every: 200 },
            seed,
            ..ReconfigSoakConfig::default()
        });
        wedged |= r.wedged;
        writeln!(
            out,
            "{:<10} {:>7} {:>9} {:>6} {:>9} {:>8} {:>8} {:>7} {:>7} {:>6}",
            if protected { "protected" } else { "bare" },
            r.issued,
            r.completed,
            r.shed,
            r.errors,
            format!("{}/{}", r.commits_ok, r.commits_attempted),
            r.verifier_refusals + r.other_refusals,
            r.commit_faults,
            r.final_epoch,
            if r.epoch_mismatches == 0 {
                "ok"
            } else {
                "SPLIT"
            },
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nverdict: {}",
        if wedged {
            "WEDGED (a swap boundary dropped or misjudged traffic)"
        } else {
            "zero loss; every in-flight transaction was judged under exactly\n\
             one epoch, bad epochs were refused fail-secure, and faulted\n\
             commits aborted all-or-nothing"
        }
    )
    .unwrap();
    Ok(out)
}

fn cmd_overload(args: &[String]) -> Result<String, String> {
    use secbus_noc::{run_overload, OverloadConfig};
    use secbus_soc::{run_soc_overload, DegradeConfig, SocOverloadConfig};

    let seed: u64 = opt_value(args, "--seed")?
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let rate: u32 = opt_value(args, "--rate")?
        .map(|v| v.parse().map_err(|e| format!("--rate: {e}")))
        .transpose()?
        .unwrap_or(2);

    let mut out = String::new();
    writeln!(
        out,
        "open-loop overload (seed {seed}, {rate} arrivals/cycle)\n"
    )
    .unwrap();

    // SoC: bounded bus queue + brownout, bare vs protected on the same
    // arrival schedule.
    writeln!(
        out,
        "soc   {:<10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>12}",
        "mode", "issued", "completed", "shed", "alerts", "brownouts", "conservation"
    )
    .unwrap();
    let mut wedged = false;
    for protected in [false, true] {
        let r = run_soc_overload(&SocOverloadConfig {
            per_tick: rate,
            protected,
            degrade: protected.then_some(DegradeConfig {
                high_watermark: 6,
                low_watermark: 0,
                enter_after: 8,
                exit_after: 32,
            }),
            seed,
            ..SocOverloadConfig::default()
        });
        wedged |= r.wedged;
        writeln!(
            out,
            "      {:<10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>12}",
            if protected { "protected" } else { "bare" },
            r.issued,
            r.completed,
            r.shed,
            r.shed_alerts,
            format!("{}/{}", r.degrade_enters, r.degrade_exits),
            if r.conservation_ok { "ok" } else { "BROKEN" },
        )
        .unwrap();
    }

    // NoC: hotspot pattern at saturating intensity on a 4x4 mesh, bare
    // vs protected against the identical schedule.
    writeln!(
        out,
        "\nnoc   {:<10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>12}",
        "mode", "offered", "delivered", "shed", "alerts", "silent", "conservation"
    )
    .unwrap();
    for protected in [false, true] {
        let r = run_overload(&OverloadConfig {
            pattern: secbus_workload::Pattern::Hotspot {
                hot: 15,
                fraction: 0.8,
            },
            intensity: 0.1 * f64::from(rate),
            cycles: 2_000,
            protected,
            seed,
            ..OverloadConfig::default()
        });
        wedged |= r.wedged;
        writeln!(
            out,
            "      {:<10} {:>7} {:>9} {:>6} {:>7} {:>9} {:>12}",
            if protected { "protected" } else { "bare" },
            r.offered,
            r.delivered,
            r.shed_at_ingress,
            r.alerts,
            r.silent_drops,
            if r.conservation_ok { "ok" } else { "BROKEN" },
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nverdict: {}",
        if wedged {
            "WEDGED (protected traffic neither delivered nor alerted)"
        } else {
            "no wedge; every arrival completed, shed with an alert, or was\n\
             counted — protection turns silent loss into typed refusals"
        }
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&[]).unwrap().contains("usage"));
        assert!(dispatch(&argv(&["help"])).unwrap().contains("usage"));
        let err = dispatch(&argv(&["bogus"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn campaign_prints_kill_chains() {
        let out = dispatch(&argv(&["campaign", "--seed", "3"])).unwrap();
        assert!(out.contains("protected mode"));
        assert!(out.contains("ip_pivot"));
        assert!(out.contains("epoch_refused"));
        assert!(out.contains("foothold"));
        assert!(out.contains("detection"));
    }

    #[test]
    fn table1_renders() {
        let out = dispatch(&argv(&["table1"])).unwrap();
        assert!(out.contains("12895"));
        assert!(out.contains("Local Firewall"));
    }

    #[test]
    fn fig1_renders() {
        let out = dispatch(&argv(&["fig1"])).unwrap();
        assert!(out.contains("LCF"));
    }

    #[test]
    fn hex_word_parsing() {
        assert_eq!(
            parse_hex_words("deadbeef 0x00000001\n2").unwrap(),
            vec![0xdead_beef, 1, 2]
        );
        assert!(parse_hex_words("xyz").is_err());
        assert_eq!(parse_hex_words("").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn opt_parsing() {
        let a = argv(&["run", "x.s", "--cycles", "500"]);
        assert_eq!(opt_value(&a, "--cycles").unwrap(), Some("500"));
        assert_eq!(opt_value(&a, "--seed").unwrap(), None);
        let bad = argv(&["run", "--cycles"]);
        assert!(opt_value(&bad, "--cycles").is_err());
        assert!(has_flag(&argv(&["a", "--unprotected"]), "--unprotected"));
    }

    #[test]
    fn run_program_end_to_end() {
        let out = run_program(
            "li r1, 0x20000000\naddi r2, r0, 7\nsw r2, 0(r1)\nhalt",
            100_000,
            true,
        )
        .unwrap();
        assert!(out.contains("halted after"));
        assert!(out.contains("r2 =0x00000007") || out.contains("r2=0x00000007"));
        assert!(out.contains("alerts"));
    }

    #[test]
    fn run_program_reports_budget_exhaustion() {
        let out = run_program("loop: j loop", 1_000, true).unwrap();
        assert!(out.contains("budget"));
    }

    #[test]
    fn run_program_propagates_asm_errors() {
        let err = run_program("bogus r1", 10, true).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn policy_template_parses_back() {
        let out = dispatch(&argv(&["policy-template"])).unwrap();
        assert!(crate::policyfile::parse_policies(&out).is_ok());
    }

    #[test]
    fn run_with_restrictive_policy_raises_alerts() {
        // A policy covering only the DDR: the BRAM store gets discarded.
        let cm = crate::policyfile::parse_policies(
            r#"[{"spi":5,"region":{"base":2147483648,"len":1048576},
                 "rwa":"ReadWrite","adf":7,"cm":"Bypass","im":"Bypass","key":null}]"#,
        )
        .unwrap();
        let out = run_program_with(
            "li r1, 0x20000000\nsw r0, 0(r1)\nhalt",
            100_000,
            true,
            Some(cm),
        )
        .unwrap();
        assert!(out.contains("1 alerts"), "{out}");
    }

    #[test]
    fn run_with_image_boots_from_loaded_data() {
        // Image drops a word into the public DDR region; the program reads
        // it back into r2.
        let image =
            secbus_mem::encode_ihex(&[(0x8008_0000, 0xCAFE_F00Du32.to_le_bytes().to_vec())]);
        let img = parse_ihex(&image).unwrap();
        let out = run_program_image(
            "li r1, 0x80080000\nlw r2, 0(r1)\nhalt",
            200_000,
            true,
            None,
            Some(img),
        )
        .unwrap();
        assert!(out.contains("r2 =0xcafef00d"), "{out}");
    }

    #[test]
    fn image_outside_ddr_is_rejected() {
        let img = parse_ihex(&secbus_mem::encode_ihex(&[(0x1000, vec![1])])).unwrap();
        let err = run_program_image("halt", 100, true, None, Some(img)).unwrap_err();
        assert!(err.contains("outside the DDR"));
    }

    #[test]
    fn run_with_audit_reports_firewalls() {
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_audit_test.s");
        fs::write(
            &path,
            "li r1, 0x20000000\nsw r0, 0(r1)\nli r2, 0x30000000\nsw r0, 0(r2)\nhalt\n",
        )
        .unwrap();
        let out = dispatch(&argv(&["run", path.to_str().unwrap(), "--audit"])).unwrap();
        assert!(out.contains("security audit"), "{out}");
        assert!(
            out.contains("no_policy"),
            "the 0x30000000 write shows up: {out}"
        );
        let out = dispatch(&argv(&["run", path.to_str().unwrap(), "--audit-json"])).unwrap();
        assert!(out.contains("\"violation\""), "{out}");
    }

    #[test]
    fn run_with_trace_lists_bus_activity() {
        // Use dispatch-level helpers indirectly: call run_trace via the
        // public path by writing a temp file.
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_trace_test.s");
        fs::write(&path, "li r1, 0x20000000\nsw r0, 0(r1)\nhalt\n").unwrap();
        let out = dispatch(&argv(&[
            "run",
            path.to_str().unwrap(),
            "--trace",
            "--cycles",
            "100000",
        ]))
        .unwrap();
        assert!(out.contains("bus trace:"), "{out}");
        assert!(out.contains("cpu0"));
    }

    #[test]
    fn observe_metrics_snapshot_is_key_sorted_and_stable() {
        let run = || dispatch(&argv(&["observe", "--metrics", "--cycles", "200000"])).unwrap();
        let out = run();
        assert!(out.contains("observed"), "{out}");
        // Everything after the summary line is the snapshot JSON.
        let json = &out[out.find('{').unwrap()..];
        let doc = secbus_sim::Json::parse(json.trim()).expect("snapshot parses");
        assert!(secbus_sim::metrics::is_key_sorted(&doc));
        for section in ["soc", "bus", "monitor", "trace"] {
            assert!(doc.get(section).is_some(), "missing {section}");
        }
        assert_eq!(out, run(), "observe output is byte-identical per config");
    }

    #[test]
    fn observe_attack_trace_shows_the_alert() {
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_observe_trace.json");
        let out = dispatch(&argv(&[
            "observe",
            "--attack",
            "--tail",
            "5",
            "--trace-out",
            path.to_str().unwrap(),
            "--cycles",
            "200000",
        ]))
        .unwrap();
        assert!(out.contains("1 alerts"), "{out}");
        assert!(out.contains("last 5 trace events"), "{out}");
        let text = fs::read_to_string(&path).unwrap();
        let doc = secbus_sim::Json::parse(&text).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("alert")));
    }

    #[test]
    fn attacks_table() {
        let out = dispatch(&argv(&["attacks", "--seed", "7"])).unwrap();
        assert!(out.contains("hijacked IP"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn policy_template_checks_clean() {
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_policy_template.policy");
        let template = dispatch(&argv(&["policy", "template"])).unwrap();
        fs::write(&path, template).unwrap();
        let out = dispatch(&argv(&["policy", "check", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(out.contains("zero intent/table divergence"), "{out}");
        let out = dispatch(&argv(&["policy", "compile", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("master 0 (cpu0)"), "{out}");
        assert!(out.contains("cm=Encrypt"), "{out}");
    }

    #[test]
    fn policy_check_rejects_shadowed_program() {
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_policy_shadowed.policy");
        fs::write(
            &path,
            "master cpu0 = 0\n\
             region ddr = 0x8000_0000 + 0x1000\n\
             allow cpu0 ddr rw\n\
             allow cpu0 ddr ro\n",
        )
        .unwrap();
        let err = dispatch(&argv(&["policy", "check", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("REJECTED"), "{err}");
        assert!(err.contains("shadowed"), "{err}");
    }

    #[test]
    fn policy_check_reports_parse_errors_with_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("secbus_cli_policy_bad.policy");
        fs::write(&path, "master cpu0 = 0\nallow cpu0 nowhere rw\n").unwrap();
        let err = dispatch(&argv(&["policy", "check", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn policy_usage_on_missing_subcommand() {
        assert!(dispatch(&argv(&["policy"])).unwrap_err().contains("usage"));
        assert!(dispatch(&argv(&["policy", "bogus"]))
            .unwrap_err()
            .contains("unknown policy subcommand"));
    }

    #[test]
    fn reconfig_reports_zero_loss() {
        let out = dispatch(&argv(&["reconfig", "--seed", "7"])).unwrap();
        assert!(out.contains("protected"), "{out}");
        assert!(out.contains("bare"), "{out}");
        assert!(out.contains("zero loss"), "{out}");
        assert!(!out.contains("WEDGED"), "{out}");
        assert!(!out.contains("SPLIT"), "{out}");
    }

    #[test]
    fn overload_reports_no_wedge() {
        let out = dispatch(&argv(&["overload", "--seed", "7", "--rate", "2"])).unwrap();
        assert!(out.contains("soc"));
        assert!(out.contains("noc"));
        assert!(out.contains("protected"));
        assert!(out.contains("no wedge"), "{out}");
        assert!(!out.contains("BROKEN"), "{out}");
    }
}
