//! Hostile-input integration tests: drive the real `secbus` binary with the
//! malformed inputs a user can actually type and assert every one exits with
//! a typed error on stderr and a nonzero status — never a panic.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn secbus(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_secbus"))
        .args(args)
        .output()
        .expect("failed to spawn secbus binary")
}

/// Assert the invocation failed like a CLI tool should: nonzero exit, a
/// `secbus:`-prefixed diagnostic mentioning `needle`, and no panic backtrace.
fn assert_typed_failure(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected nonzero exit, got success; stderr: {stderr}"
    );
    assert!(
        stderr.starts_with("secbus: "),
        "diagnostic must be typed (secbus: prefix), got: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr should mention {needle:?}, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "CLI must not panic on hostile input: {stderr}"
    );
}

/// A scratch file under the target-provided temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str, contents: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("secbus-hostile-{}-{name}", std::process::id()));
        fs::write(&path, contents).expect("write scratch file");
        Scratch(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("scratch path is UTF-8")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

#[test]
fn unknown_command_is_a_typed_error() {
    assert_typed_failure(&secbus(&["frobnicate"]), "unknown command");
}

#[test]
fn asm_without_operand_names_the_missing_file() {
    assert_typed_failure(&secbus(&["asm"]), "asm needs a source file");
}

#[test]
fn asm_on_missing_path_reports_the_path() {
    assert_typed_failure(
        &secbus(&["asm", "/nonexistent/secbus-hostile.s"]),
        "/nonexistent/secbus-hostile.s",
    );
}

#[test]
fn disasm_on_garbage_hex_reports_the_bad_word() {
    let f = Scratch::new("garbage.hex", "00000000\nnot-hex\n");
    assert_typed_failure(&secbus(&["disasm", f.path()]), "bad hex word");
}

#[test]
fn run_with_malformed_cycles_is_a_typed_error() {
    let src = Scratch::new("empty.s", "");
    assert_typed_failure(
        &secbus(&["run", src.path(), "--cycles", "a-lot"]),
        "--cycles",
    );
}

#[test]
fn run_with_flag_missing_its_value_is_a_typed_error() {
    let src = Scratch::new("noval.s", "");
    assert_typed_failure(&secbus(&["run", src.path(), "--cycles"]), "needs a value");
}

#[test]
fn run_with_malformed_policy_json_is_a_typed_error() {
    let src = Scratch::new("polsrc.s", "");
    let policy = Scratch::new("broken.json", "{ this is not json ");
    assert_typed_failure(
        &secbus(&["run", src.path(), "--policy", policy.path()]),
        "secbus: ",
    );
}

#[test]
fn run_with_malformed_image_is_a_typed_error() {
    let src = Scratch::new("imgsrc.s", "");
    let image = Scratch::new("broken.ihex", ":zzzz-not-intel-hex\n");
    assert_typed_failure(
        &secbus(&["run", src.path(), "--image", image.path()]),
        "secbus: ",
    );
}

#[test]
fn policy_check_without_file_is_a_typed_error() {
    assert_typed_failure(&secbus(&["policy", "check"]), "policy check needs");
}

#[test]
fn policy_check_on_malformed_source_is_a_typed_error() {
    let f = Scratch::new("broken.policy", "region { this is not the DSL }");
    assert_typed_failure(&secbus(&["policy", "check", f.path()]), f.path());
}

#[test]
fn observe_with_malformed_tail_is_a_typed_error() {
    assert_typed_failure(&secbus(&["observe", "--tail", "many"]), "--tail");
}

#[test]
fn attacks_with_malformed_seed_is_a_typed_error() {
    assert_typed_failure(&secbus(&["attacks", "--seed", "0x-bad"]), "--seed");
}

#[test]
fn help_succeeds_and_prints_usage() {
    let out = secbus(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn backends_succeeds_and_reports_detection() {
    let out = secbus(&["backends"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aes-ni"));
    assert!(stdout.contains("active"));
}
