//! # secbus-fault — deterministic fault injection
//!
//! The paper's security features (§III-C) promise *fast reaction* and
//! *containment at the infected IP's interface* — properties that a
//! production system must also hold when the fabric itself misbehaves:
//! radiation-induced bit flips in the external DDR, glitching crypto
//! cores, stalled or lossy bus handshakes, corrupted Configuration-Memory
//! entries. This crate models that defective-hardware threat surface as a
//! **[`FaultPlan`]**: a cycle-stamped, seed-reproducible schedule of
//! [`FaultEvent`]s that the SoC consumes at the top of each cycle.
//!
//! Design rules:
//!
//! * **Deterministic.** A plan is a pure function of `(seed, spec)`. The
//!   SoC applies events at their stamped cycle inside the ordinary tick
//!   loop, so *same seed + same plan ⇒ same trace*, and the determinism
//!   tests extend to faulty runs unchanged.
//! * **Layer-agnostic parameters.** Events carry plain offsets/selectors
//!   (device offsets, firewall indices) rather than simulator types, so
//!   the crate depends only on `secbus-sim` and any layer can interpret
//!   its own events.
//! * **Resilience lives elsewhere.** This crate only *schedules* faults;
//!   detection and recovery (watchdog, retry, parity scrub, fail-secure
//!   degradation) are implemented by the layers under test.

use std::collections::VecDeque;

use secbus_sim::{Cycle, SimRng};

/// One injectable hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Single-event upset: flip `bit` of the DDR byte at device offset
    /// `offset`, on the raw storage surface (bypasses the access path).
    DdrBitFlip {
        /// Device-relative byte offset.
        offset: u32,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Arbitration glitch: the next bus grant is lost — the winning
    /// transaction is consumed but never delivered, so no response will
    /// ever arrive for it (a hang unless a watchdog intervenes).
    BusLoseGrant,
    /// A slave's in-service transaction is stalled for `extra_cycles`
    /// beyond its modelled latency.
    SlaveStall {
        /// Slave selector (taken modulo the slave count).
        slave: u8,
        /// Additional service cycles.
        extra_cycles: u64,
    },
    /// Signal glitch on the response path: the data beat of the next
    /// slave response is XOR-ed with `xor` on its way back to the master.
    CorruptResponse {
        /// Bit pattern XOR-ed into the response data.
        xor: u32,
    },
    /// A Configuration-Memory cell upset: flip one bit of one stored
    /// policy entry of one firewall (selectors taken modulo the actual
    /// counts). Caught by the Security Builder's parity check.
    PolicyCorrupt {
        /// Firewall selector.
        firewall: u8,
        /// Policy-entry selector.
        entry: u8,
        /// Bit selector within the entry's checked fields.
        bit: u8,
    },
    /// Transient Confidentiality-Core mis-computation: the next cipher
    /// pass produces garbled output.
    CcGlitch,
    /// Transient Integrity-Core mis-computation: the next hash-tree
    /// verification returns the wrong verdict.
    IcGlitch,
    /// Supply failure: the SoC loses power at the stamped cycle. All
    /// volatile state (registers, on-chip trees, in-flight transactions)
    /// is gone; only external DDR and the LCF's persistence surface
    /// (image, journal, monotonic counter) survive. The simulation stops
    /// progressing — recovery happens on the *next* boot.
    PowerCut,
    /// Power dies in the middle of a DDR burst: only the first
    /// `keep_bytes` of the in-flight store land, the rest of the block
    /// keeps its old contents, and the SoC powers off with the write's
    /// journal intent dangling (never committed).
    TornWrite {
        /// Leading bytes of the burst that reach the array (1..16).
        keep_bytes: u8,
    },
    /// Transient NoC wire upset: the next flit crossing the directed mesh
    /// link leaving router `node` in direction `dir` (N=0,S=1,E=2,W=3) is
    /// XOR-ed with `xor` on the wire. `header` steers the burst into the
    /// packet header (the target address) instead of the data word —
    /// exactly the corruption a degraded fabric could turn into a
    /// firewall bypass. Selectors are taken modulo the mesh's actual
    /// node count and the 4 directions.
    LinkBitFlip {
        /// Router selector (modulo the mesh node count).
        node: u16,
        /// Outgoing direction selector (modulo 4).
        dir: u8,
        /// Bit pattern XOR-ed into the flit on the wire.
        xor: u32,
        /// Corrupt the header (address) instead of the payload word.
        header: bool,
    },
    /// Permanent NoC link failure: the directed link leaving router
    /// `node` in direction `dir` stops carrying flits (and acks) from the
    /// stamped cycle on. Detected by the link layer's consecutive
    /// CRC/ack-failure threshold.
    LinkDrop {
        /// Router selector (modulo the mesh node count).
        node: u16,
        /// Outgoing direction selector (modulo 4).
        dir: u8,
    },
    /// A mesh router dies: it stops forwarding, acking and emitting
    /// heartbeats. Packets resident in it are lost; neighbors detect the
    /// missing heartbeat and route around the dead region.
    RouterStuck {
        /// Router selector (modulo the mesh node count).
        node: u16,
    },
    /// Glitch on the policy-epoch prepare/commit boundary: the next
    /// multi-firewall `commit_epoch` is interrupted after `stage` tables
    /// have swapped. The reconfiguration layer must roll the staged
    /// firewalls back — an epoch is all-or-nothing, never a mixed fleet.
    EpochCommitFault {
        /// Swaps performed before the interrupt (clamped to batch size).
        stage: u8,
    },
}

impl FaultKind {
    /// Stable short name, used as a stats/report key.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::DdrBitFlip { .. } => "ddr_bitflip",
            FaultKind::BusLoseGrant => "bus_lost_grant",
            FaultKind::SlaveStall { .. } => "slave_stall",
            FaultKind::CorruptResponse { .. } => "corrupt_response",
            FaultKind::PolicyCorrupt { .. } => "policy_corrupt",
            FaultKind::CcGlitch => "cc_glitch",
            FaultKind::IcGlitch => "ic_glitch",
            FaultKind::PowerCut => "power_cut",
            FaultKind::TornWrite { .. } => "torn_write",
            FaultKind::LinkBitFlip { .. } => "link_bitflip",
            FaultKind::LinkDrop { .. } => "link_drop",
            FaultKind::RouterStuck { .. } => "router_stuck",
            FaultKind::EpochCommitFault { .. } => "epoch_commit_fault",
        }
    }

    /// All class names, in schedule order (report columns).
    pub const CLASSES: [&'static str; 13] = [
        "ddr_bitflip",
        "bus_lost_grant",
        "slave_stall",
        "corrupt_response",
        "policy_corrupt",
        "cc_glitch",
        "ic_glitch",
        "power_cut",
        "torn_write",
        "link_bitflip",
        "link_drop",
        "router_stuck",
        "epoch_commit_fault",
    ];
}

/// A fault stamped with its injection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The cycle at which the SoC applies the fault (start of tick).
    pub at: Cycle,
    /// What breaks.
    pub kind: FaultKind,
}

/// Expected fault counts per class over the plan duration.
///
/// Counts are *expected values*: the integer part is injected always, the
/// fractional part with the corresponding probability (drawn from the
/// plan's seeded RNG, so still reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// DDR single-event upsets.
    pub ddr_bitflip: f64,
    /// Lost bus grants.
    pub bus_lost_grant: f64,
    /// Stalled slave responses.
    pub slave_stall: f64,
    /// Corrupted response beats.
    pub corrupt_response: f64,
    /// Configuration-Memory entry upsets.
    pub policy_corrupt: f64,
    /// CC transient mis-computations.
    pub cc_glitch: f64,
    /// IC transient mis-computations.
    pub ic_glitch: f64,
    /// Power cuts (terminal: the run stops at the first one).
    pub power_cut: f64,
    /// Torn DDR bursts (terminal: power dies mid-burst).
    pub torn_write: f64,
    /// Transient NoC flit corruptions on mesh links.
    pub link_bitflip: f64,
    /// Permanent NoC link failures (structural: the mesh stays degraded).
    pub link_drop: f64,
    /// Dead mesh routers (structural: the mesh stays degraded).
    pub router_stuck: f64,
}

impl FaultRates {
    /// No faults at all (the control row of a sweep).
    pub const NONE: FaultRates = FaultRates {
        ddr_bitflip: 0.0,
        bus_lost_grant: 0.0,
        slave_stall: 0.0,
        corrupt_response: 0.0,
        policy_corrupt: 0.0,
        cc_glitch: 0.0,
        ic_glitch: 0.0,
        power_cut: 0.0,
        torn_write: 0.0,
        link_bitflip: 0.0,
        link_drop: 0.0,
        router_stuck: 0.0,
    };

    /// Uniform expected count across every *transient* class. The
    /// terminal classes (`power_cut`, `torn_write`) end the run and the
    /// structural NoC classes (`link_drop`, `router_stuck`) permanently
    /// degrade the mesh, so a soak never wants them uniformly sprinkled —
    /// set them explicitly when a sweep calls for them.
    pub fn uniform(per_class: f64) -> FaultRates {
        FaultRates {
            ddr_bitflip: per_class,
            bus_lost_grant: per_class,
            slave_stall: per_class,
            corrupt_response: per_class,
            policy_corrupt: per_class,
            cc_glitch: per_class,
            ic_glitch: per_class,
            link_bitflip: per_class,
            ..FaultRates::NONE
        }
    }

    /// Scale every class by `factor` (fault-rate sweeps).
    pub fn scaled(self, factor: f64) -> FaultRates {
        FaultRates {
            ddr_bitflip: self.ddr_bitflip * factor,
            bus_lost_grant: self.bus_lost_grant * factor,
            slave_stall: self.slave_stall * factor,
            corrupt_response: self.corrupt_response * factor,
            policy_corrupt: self.policy_corrupt * factor,
            cc_glitch: self.cc_glitch * factor,
            ic_glitch: self.ic_glitch * factor,
            power_cut: self.power_cut * factor,
            torn_write: self.torn_write * factor,
            link_bitflip: self.link_bitflip * factor,
            link_drop: self.link_drop * factor,
            router_stuck: self.router_stuck * factor,
        }
    }
}

/// What the generator needs to know about the target system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Plan length in cycles; every event lands in `0..duration`.
    pub duration: u64,
    /// DDR device size in bytes (bit flips land inside it; 0 disables
    /// the class).
    pub ddr_bytes: u32,
    /// Number of firewalls (policy corruption selector range; 0 disables).
    pub firewalls: u8,
    /// Number of bus slaves (stall selector range; 0 disables).
    pub slaves: u8,
    /// Number of NoC mesh nodes (link/router selector range for the NoC
    /// classes; 0 disables them — a bus-only target).
    pub noc_nodes: u16,
    /// Expected fault counts per class.
    pub rates: FaultRates,
}

/// A cycle-ordered schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: VecDeque<FaultEvent>,
    injected: u64,
}

impl FaultPlan {
    /// An empty plan (no faults — every run is a clean run).
    pub fn empty() -> Self {
        FaultPlan {
            events: VecDeque::new(),
            injected: 0,
        }
    }

    /// Build a plan from explicit events; they are (stably) sorted by
    /// injection cycle.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan {
            events: events.into(),
            injected: 0,
        }
    }

    /// Generate a plan from a seed and a spec. Pure: the same `(seed,
    /// spec)` always produces the identical plan.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut events = Vec::new();
        if spec.duration == 0 {
            return Self::new(events);
        }
        let mut class =
            |label: &str, rate: f64, f: &mut dyn FnMut(&mut SimRng) -> Option<FaultKind>| {
                // Per-class derived stream: adding a class never perturbs the
                // schedule of the others.
                let mut rng = SimRng::new(seed).derive(label);
                let mut count = rate.max(0.0).floor() as u64;
                if rng.chance(rate.max(0.0).fract()) {
                    count += 1;
                }
                for _ in 0..count {
                    let at = Cycle(rng.below(spec.duration));
                    if let Some(kind) = f(&mut rng) {
                        events.push(FaultEvent { at, kind });
                    }
                }
            };
        class("ddr_bitflip", spec.rates.ddr_bitflip, &mut |rng| {
            (spec.ddr_bytes > 0).then(|| FaultKind::DdrBitFlip {
                offset: rng.below(u64::from(spec.ddr_bytes)) as u32,
                bit: rng.below(8) as u8,
            })
        });
        class("bus_lost_grant", spec.rates.bus_lost_grant, &mut |_| {
            Some(FaultKind::BusLoseGrant)
        });
        class("slave_stall", spec.rates.slave_stall, &mut |rng| {
            (spec.slaves > 0).then(|| FaultKind::SlaveStall {
                slave: rng.below(u64::from(spec.slaves)) as u8,
                extra_cycles: 64 + rng.below(448),
            })
        });
        class(
            "corrupt_response",
            spec.rates.corrupt_response,
            &mut |rng| {
                Some(FaultKind::CorruptResponse {
                    xor: (rng.next_u32()).max(1),
                })
            },
        );
        class("policy_corrupt", spec.rates.policy_corrupt, &mut |rng| {
            (spec.firewalls > 0).then(|| FaultKind::PolicyCorrupt {
                firewall: rng.below(u64::from(spec.firewalls)) as u8,
                entry: rng.next_u32() as u8,
                bit: rng.next_u32() as u8,
            })
        });
        class("cc_glitch", spec.rates.cc_glitch, &mut |_| {
            Some(FaultKind::CcGlitch)
        });
        class("ic_glitch", spec.rates.ic_glitch, &mut |_| {
            Some(FaultKind::IcGlitch)
        });
        class("power_cut", spec.rates.power_cut, &mut |_| {
            Some(FaultKind::PowerCut)
        });
        class("torn_write", spec.rates.torn_write, &mut |rng| {
            Some(FaultKind::TornWrite {
                keep_bytes: 1 + rng.below(15) as u8,
            })
        });
        class("link_bitflip", spec.rates.link_bitflip, &mut |rng| {
            (spec.noc_nodes > 0).then(|| FaultKind::LinkBitFlip {
                node: rng.below(u64::from(spec.noc_nodes)) as u16,
                dir: rng.below(4) as u8,
                xor: rng.next_u32().max(1),
                header: rng.chance(0.5),
            })
        });
        class("link_drop", spec.rates.link_drop, &mut |rng| {
            (spec.noc_nodes > 0).then(|| FaultKind::LinkDrop {
                node: rng.below(u64::from(spec.noc_nodes)) as u16,
                dir: rng.below(4) as u8,
            })
        });
        class("router_stuck", spec.rates.router_stuck, &mut |rng| {
            (spec.noc_nodes > 0).then(|| FaultKind::RouterStuck {
                node: rng.below(u64::from(spec.noc_nodes)) as u16,
            })
        });
        Self::new(events)
    }

    /// Remove and return every event due at or before `now`.
    pub fn take_due(&mut self, now: Cycle) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while self.events.front().is_some_and(|e| e.at <= now) {
            due.push(self.events.pop_front().expect("front checked"));
        }
        self.injected += due.len() as u64;
        due
    }

    /// Events not yet injected.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// Cycle of the next not-yet-injected event, if any — the
    /// event-driven core's wake point for the plan.
    pub fn next_due(&self) -> Option<Cycle> {
        self.events.front().map(|e| e.at)
    }

    /// Events injected so far (consumed via [`FaultPlan::take_due`]).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total events in the plan (remaining + injected).
    pub fn len(&self) -> usize {
        self.events.len() + self.injected as usize
    }

    /// Whether the plan holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the not-yet-injected events in schedule order.
    pub fn iter(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Count the scheduled (not-yet-injected) events per class name.
    pub fn class_count(&self, class: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.class() == class)
            .count()
    }

    /// Shift every scheduled event `delta` cycles later — composition
    /// helper for building a late stage from a `0..duration` plan.
    /// Compose *before* attaching to a SoC (injection counters reset).
    pub fn offset(self, delta: u64) -> Self {
        FaultPlan::new(
            self.events
                .into_iter()
                .map(|e| FaultEvent {
                    at: e.at + delta,
                    kind: e.kind,
                })
                .collect(),
        )
    }

    /// Merge another plan's scheduled events into this one, re-sorted by
    /// cycle. Like [`FaultPlan::offset`], compose before attaching.
    pub fn concat(self, other: FaultPlan) -> Self {
        FaultPlan::new(self.events.into_iter().chain(other.events).collect())
    }
}

/// One stage of a [`StagedPlan`]: a label, its fault schedule, and
/// whether it only fires if the previous stage established a foothold.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStage {
    /// Stable stage label (also the seed-derivation label).
    pub label: &'static str,
    /// The faults this stage injects (cycles are absolute).
    pub plan: FaultPlan,
    /// Precondition: this stage is skipped — along with everything after
    /// it — unless the stage before it reported a foothold.
    pub gated: bool,
}

/// A multi-stage attack schedule: stage N+1's faults only ever fire after
/// the campaign runner *advances* past stage N, and a gated stage (and
/// all its successors) is abandoned when the prior stage failed to
/// establish its foothold. This is the fault-injection backbone of the
/// campaign engine: each stage is still a deterministic [`FaultPlan`],
/// so a staged campaign replays byte-identically per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedPlan {
    stages: Vec<PlanStage>,
    active: usize,
    aborted: bool,
}

impl Default for StagedPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl StagedPlan {
    /// An empty staged plan.
    pub fn new() -> Self {
        StagedPlan {
            stages: Vec::new(),
            active: 0,
            aborted: false,
        }
    }

    /// Append an ungated stage (fires whenever it becomes active).
    pub fn stage(mut self, label: &'static str, plan: FaultPlan) -> Self {
        self.stages.push(PlanStage {
            label,
            plan,
            gated: false,
        });
        self
    }

    /// Append a gated stage: it (and everything after it) is abandoned
    /// unless the preceding stage reports a foothold on advance.
    pub fn gated_stage(mut self, label: &'static str, plan: FaultPlan) -> Self {
        self.stages.push(PlanStage {
            label,
            plan,
            gated: true,
        });
        self
    }

    /// Generate one plan per `(label, spec)` stage from per-stage derived
    /// seeds: editing one stage's spec never perturbs another stage's
    /// schedule, and the same `(seed, stages)` always yields the same
    /// staged plan. `gated` marks stages that require the previous
    /// stage's foothold.
    pub fn generate(seed: u64, stages: &[(&'static str, FaultSpec, bool)]) -> Self {
        let mut plan = StagedPlan::new();
        for (label, spec, gated) in stages {
            let stage_seed = SimRng::new(seed).derive(label).next_u64();
            let p = FaultPlan::generate(stage_seed, spec);
            plan = if *gated {
                plan.gated_stage(label, p)
            } else {
                plan.stage(label, p)
            };
        }
        plan
    }

    /// Remove and return the *active* stage's events due at or before
    /// `now`. Later stages never leak out early, and an aborted plan
    /// yields nothing.
    pub fn take_due(&mut self, now: Cycle) -> Vec<FaultEvent> {
        if self.aborted {
            return Vec::new();
        }
        match self.stages.get_mut(self.active) {
            Some(stage) => stage.plan.take_due(now),
            None => Vec::new(),
        }
    }

    /// Finish the active stage and move on. `foothold` reports whether
    /// the stage achieved its goal: when the *next* stage is gated and
    /// the foothold failed, the whole remainder of the campaign is
    /// abandoned (stage N+1 only fires if stage N succeeded).
    pub fn advance(&mut self, foothold: bool) {
        if self.aborted || self.active >= self.stages.len() {
            return;
        }
        self.active += 1;
        if let Some(next) = self.stages.get(self.active) {
            if next.gated && !foothold {
                self.aborted = true;
            }
        }
    }

    /// The active stage's label, `None` once the plan is exhausted or
    /// aborted.
    pub fn active_stage(&self) -> Option<&'static str> {
        if self.aborted {
            return None;
        }
        self.stages.get(self.active).map(|s| s.label)
    }

    /// Whether a failed foothold abandoned the remaining stages.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Total faults injected across all stages so far.
    pub fn injected(&self) -> u64 {
        self.stages.iter().map(|s| s.plan.injected()).sum()
    }

    /// Stage count.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the plan has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages, in order.
    pub fn stages(&self) -> &[PlanStage] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rates: FaultRates) -> FaultSpec {
        FaultSpec {
            duration: 10_000,
            ddr_bytes: 0x1000,
            firewalls: 4,
            slaves: 2,
            noc_nodes: 9,
            rates,
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let s = spec(FaultRates::uniform(5.3));
        let a = FaultPlan::generate(42, &s);
        let b = FaultPlan::generate(42, &s);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &s);
        assert_ne!(a, c, "different seeds produce different plans");
    }

    #[test]
    fn events_come_out_in_cycle_order() {
        let mut plan = FaultPlan::generate(7, &spec(FaultRates::uniform(20.0)));
        assert!(plan.len() >= 7 * 20 - 7, "roughly the expected count");
        let mut last = Cycle(0);
        let mut drained = 0;
        for c in 0..10_000u64 {
            for e in plan.take_due(Cycle(c)) {
                assert!(e.at >= last && e.at <= Cycle(c));
                last = e.at;
                drained += 1;
            }
        }
        assert_eq!(drained, plan.injected());
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn zero_rates_make_an_empty_plan() {
        let plan = FaultPlan::generate(1, &spec(FaultRates::NONE));
        assert!(plan.is_empty());
    }

    #[test]
    fn fractional_rates_round_probabilistically_but_deterministically() {
        // With a single class at rate 0.5, repeated generation with the
        // same seed is stable; across seeds the count varies.
        let s = spec(FaultRates {
            bus_lost_grant: 0.5,
            ..FaultRates::NONE
        });
        let counts: Vec<usize> = (0..32)
            .map(|seed| FaultPlan::generate(seed, &s).len())
            .collect();
        assert!(counts.iter().any(|&c| c > 0), "some seeds inject");
        assert!(counts.contains(&0), "some seeds do not");
        assert_eq!(
            counts[0],
            FaultPlan::generate(0, &s).len(),
            "stable per seed"
        );
    }

    #[test]
    fn parameters_respect_spec_bounds() {
        let plan = FaultPlan::generate(9, &spec(FaultRates::uniform(50.0)));
        for e in plan.iter() {
            assert!(e.at.get() < 10_000);
            match e.kind {
                FaultKind::DdrBitFlip { offset, bit } => {
                    assert!(offset < 0x1000);
                    assert!(bit < 8);
                }
                FaultKind::SlaveStall {
                    slave,
                    extra_cycles,
                } => {
                    assert!(slave < 2);
                    assert!((64..512).contains(&extra_cycles));
                }
                FaultKind::CorruptResponse { xor } => assert!(xor != 0),
                FaultKind::PolicyCorrupt { firewall, .. } => assert!(firewall < 4),
                FaultKind::TornWrite { keep_bytes } => {
                    assert!((1..16).contains(&keep_bytes));
                }
                FaultKind::LinkBitFlip { node, dir, xor, .. } => {
                    assert!(node < 9);
                    assert!(dir < 4);
                    assert!(xor != 0);
                }
                FaultKind::LinkDrop { node, dir } => {
                    assert!(node < 9);
                    assert!(dir < 4);
                }
                FaultKind::RouterStuck { node } => assert!(node < 9),
                FaultKind::BusLoseGrant
                | FaultKind::CcGlitch
                | FaultKind::IcGlitch
                | FaultKind::PowerCut
                | FaultKind::EpochCommitFault { .. } => {}
            }
        }
    }

    #[test]
    fn disabled_surfaces_suppress_their_classes() {
        let s = FaultSpec {
            duration: 1000,
            ddr_bytes: 0,
            firewalls: 0,
            slaves: 0,
            noc_nodes: 0,
            rates: FaultRates {
                link_drop: 10.0,
                router_stuck: 10.0,
                ..FaultRates::uniform(10.0)
            },
        };
        let plan = FaultPlan::generate(3, &s);
        assert_eq!(plan.class_count("ddr_bitflip"), 0);
        assert_eq!(plan.class_count("policy_corrupt"), 0);
        assert_eq!(plan.class_count("slave_stall"), 0);
        assert_eq!(plan.class_count("link_bitflip"), 0);
        assert_eq!(plan.class_count("link_drop"), 0);
        assert_eq!(plan.class_count("router_stuck"), 0);
        assert!(plan.class_count("bus_lost_grant") > 0);
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(FaultKind::CLASSES.len(), 13);
        assert_eq!(
            FaultKind::DdrBitFlip { offset: 0, bit: 0 }.class(),
            "ddr_bitflip"
        );
        assert_eq!(FaultKind::IcGlitch.class(), "ic_glitch");
        assert_eq!(FaultKind::PowerCut.class(), "power_cut");
        assert_eq!(FaultKind::TornWrite { keep_bytes: 4 }.class(), "torn_write");
        assert_eq!(
            FaultKind::LinkBitFlip {
                node: 0,
                dir: 0,
                xor: 1,
                header: false
            }
            .class(),
            "link_bitflip"
        );
        assert_eq!(FaultKind::LinkDrop { node: 0, dir: 0 }.class(), "link_drop");
        assert_eq!(FaultKind::RouterStuck { node: 0 }.class(), "router_stuck");
    }

    #[test]
    fn uniform_rates_exclude_terminal_classes() {
        // A soak with uniform rates must never be silently power-cut:
        // the terminal classes are opt-in.
        let plan = FaultPlan::generate(11, &spec(FaultRates::uniform(50.0)));
        assert_eq!(plan.class_count("power_cut"), 0);
        assert_eq!(plan.class_count("torn_write"), 0);
        // The structural NoC classes are opt-in for the same reason.
        assert_eq!(plan.class_count("link_drop"), 0);
        assert_eq!(plan.class_count("router_stuck"), 0);
        // The transient NoC class rides along with the other transients.
        assert!(plan.class_count("link_bitflip") > 0);
    }

    #[test]
    fn noc_structural_classes_generate_when_requested() {
        let rates = FaultRates {
            link_drop: 4.0,
            router_stuck: 2.0,
            link_bitflip: 3.0,
            ..FaultRates::NONE
        };
        let plan = FaultPlan::generate(17, &spec(rates));
        assert_eq!(plan.class_count("link_drop"), 4);
        assert_eq!(plan.class_count("router_stuck"), 2);
        assert_eq!(plan.class_count("link_bitflip"), 3);
    }

    #[test]
    fn terminal_classes_generate_when_requested() {
        let rates = FaultRates {
            power_cut: 3.0,
            torn_write: 2.0,
            ..FaultRates::NONE
        };
        let plan = FaultPlan::generate(5, &spec(rates));
        assert_eq!(plan.class_count("power_cut"), 3);
        assert_eq!(plan.class_count("torn_write"), 2);
    }

    #[test]
    fn new_classes_do_not_perturb_existing_streams() {
        // Per-class derived RNG streams: enabling the terminal classes
        // must leave every other class's schedule untouched.
        let base = FaultPlan::generate(21, &spec(FaultRates::uniform(10.0)));
        let with_terminal = FaultPlan::generate(
            21,
            &spec(FaultRates {
                power_cut: 1.0,
                torn_write: 1.0,
                ..FaultRates::uniform(10.0)
            }),
        );
        for class in ["ddr_bitflip", "bus_lost_grant", "slave_stall", "cc_glitch"] {
            assert_eq!(
                base.class_count(class),
                with_terminal.class_count(class),
                "{class}"
            );
        }
    }

    #[test]
    fn offset_shifts_every_event_and_preserves_order() {
        let plan = FaultPlan::generate(9, &spec(FaultRates::uniform(8.0)));
        let original: Vec<Cycle> = plan.iter().map(|e| e.at).collect();
        let shifted = plan.offset(5_000);
        let moved: Vec<Cycle> = shifted.iter().map(|e| e.at).collect();
        assert_eq!(original.len(), moved.len());
        for (a, b) in original.iter().zip(&moved) {
            assert_eq!(a.0 + 5_000, b.0);
        }
        assert!(moved.windows(2).all(|w| w[0] <= w[1]), "still sorted");
    }

    #[test]
    fn concatenated_plans_replay_deterministically_per_seed() {
        let early = spec(FaultRates::uniform(6.0));
        let late = spec(FaultRates {
            slave_stall: 4.0,
            ..FaultRates::NONE
        });
        let build = |seed: u64| {
            FaultPlan::generate(seed, &early)
                .concat(FaultPlan::generate(seed.wrapping_add(1), &late).offset(10_000))
        };
        let a = build(33);
        let b = build(33);
        assert_eq!(a, b, "same seed, byte-identical composed plan");
        assert_ne!(a, build(34), "different seed diverges");
        let merged: Vec<Cycle> = a.iter().map(|e| e.at).collect();
        assert!(merged.windows(2).all(|w| w[0] <= w[1]), "concat re-sorts");
        assert_eq!(
            a.len(),
            a.class_count("slave_stall") + {
                let early_only = FaultPlan::generate(33, &early);
                early_only.len() - early_only.class_count("slave_stall")
            }
        );
    }

    #[test]
    fn staged_generation_is_reproducible_and_per_stage_independent() {
        let stages = [
            ("foothold", spec(FaultRates::uniform(3.0)), false),
            (
                "pivot",
                spec(FaultRates {
                    ddr_bitflip: 5.0,
                    ..FaultRates::NONE
                }),
                true,
            ),
        ];
        let a = StagedPlan::generate(77, &stages);
        let b = StagedPlan::generate(77, &stages);
        assert_eq!(a, b, "same seed replays byte-identically");
        assert_ne!(a, StagedPlan::generate(78, &stages));

        // Per-stage derived seeds: editing one stage's spec leaves the
        // other stage's schedule untouched.
        let hotter_pivot = [
            stages[0],
            (
                "pivot",
                spec(FaultRates {
                    ddr_bitflip: 9.0,
                    ..FaultRates::NONE
                }),
                true,
            ),
        ];
        let c = StagedPlan::generate(77, &hotter_pivot);
        assert_eq!(a.stages()[0].plan, c.stages()[0].plan);
    }

    #[test]
    fn stage_preconditions_gate_firing_order() {
        let stages = [
            ("foothold", spec(FaultRates::uniform(2.0)), false),
            (
                "pivot",
                spec(FaultRates {
                    slave_stall: 3.0,
                    ..FaultRates::NONE
                }),
                true,
            ),
        ];
        // Successful foothold: the gated stage fires after advance.
        let mut ok = StagedPlan::generate(11, &stages);
        assert_eq!(ok.active_stage(), Some("foothold"));
        let first = ok.take_due(Cycle(10_000));
        assert!(!first.is_empty());
        assert!(
            ok.take_due(Cycle(u64::MAX)).is_empty(),
            "later stages never leak out before advance"
        );
        ok.advance(true);
        assert_eq!(ok.active_stage(), Some("pivot"));
        assert!(!ok.take_due(Cycle(u64::MAX)).is_empty());
        assert!(!ok.aborted());

        // Failed foothold: the gated stage (and the campaign) aborts.
        let mut lost = StagedPlan::generate(11, &stages);
        lost.take_due(Cycle(u64::MAX));
        lost.advance(false);
        assert!(lost.aborted());
        assert_eq!(lost.active_stage(), None);
        assert!(lost.take_due(Cycle(u64::MAX)).is_empty());
    }

    #[test]
    fn ungated_stage_advances_even_without_foothold() {
        let stages = [
            ("a", spec(FaultRates::uniform(1.0)), false),
            ("b", spec(FaultRates::uniform(1.0)), false),
        ];
        let mut plan = StagedPlan::generate(3, &stages);
        plan.advance(false);
        assert_eq!(plan.active_stage(), Some("b"), "ungated stage still runs");
        assert!(!plan.aborted());
        plan.advance(true);
        assert_eq!(plan.active_stage(), None, "exhausted");
        assert!(!plan.aborted());
    }
}
