//! Runtime-selected crypto backends: the software reference vs the
//! host's AES-NI / SHA-NI instructions.
//!
//! The paper's Cryptographic Core and Integrity Core are hardware
//! blocks; this module is the software model's answer to "as fast as
//! the hardware allows". Every primitive keeps its from-scratch
//! software implementation as the always-available reference, and the
//! hot batched paths ([`crate::Aes128::encrypt_blocks`],
//! [`crate::Sha256`]'s block compression) dispatch to
//! `std::arch::x86_64` intrinsics when the host CPU has them. Outputs
//! are **bit-identical** by construction — AES-NI executes the same
//! FIPS-197 rounds over the same round keys, SHA-NI the same FIPS-180-4
//! compression over the same schedule — and the cross-backend
//! equivalence suite (`tests/crypto_backends.rs` plus this crate's unit
//! tests) proves it on randomized inputs.
//!
//! Selection mirrors the `SECBUS_SIM_CORE` pattern from the simulator
//! core: the `SECBUS_CRYPTO_BACKEND` environment variable forces `soft`
//! or `accel`, anything else (including unset) auto-detects. The
//! resolution is pure ([`resolve`]) so tests never mutate process
//! environment; the process-wide choice is read once and cached
//! ([`active`]). Requesting `accel` on a host without the instructions
//! falls back to [`CryptoBackend::Soft`] — detection can never select
//! a backend the CPU cannot execute.

use std::sync::OnceLock;

/// Which implementation family the hot paths dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoBackend {
    /// The from-scratch byte-oriented reference (always available).
    Soft,
    /// Hardware instructions (AES-NI and/or SHA-NI), per-primitive
    /// gated on what the host actually supports.
    Accel,
}

impl CryptoBackend {
    /// Stable lowercase name (used in reports and `secbus backends`).
    pub fn name(self) -> &'static str {
        match self {
            CryptoBackend::Soft => "soft",
            CryptoBackend::Accel => "accel",
        }
    }
}

/// What the host CPU offers. On non-x86_64 targets both are `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwCaps {
    /// AES-NI (`aesenc`/`aesenclast`) available.
    pub aesni: bool,
    /// SHA-NI (`sha256rnds2`/`sha256msg1`/`sha256msg2`) available, plus
    /// the SSSE3/SSE4.1 shuffles the state massaging needs.
    pub shani: bool,
}

impl HwCaps {
    /// Any hardware primitive at all?
    pub fn any(self) -> bool {
        self.aesni || self.shani
    }
}

/// Probe the host CPU once. Pure read — no environment involved.
pub fn host_caps() -> HwCaps {
    #[cfg(target_arch = "x86_64")]
    {
        HwCaps {
            aesni: std::arch::is_x86_feature_detected!("aes"),
            shani: std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        HwCaps::default()
    }
}

/// Resolve a backend request against the host capabilities.
///
/// * `Some("soft")` forces the software reference;
/// * `Some("accel")` (or `"hw"`, `"hard"`) requests hardware but falls
///   back to soft when the CPU has neither AES-NI nor SHA-NI — the
///   resolver never selects a backend the host cannot run;
/// * anything else (including `None` / `"auto"`) auto-detects.
///
/// Pure function of its inputs so the dispatch table is unit-testable
/// without touching process environment.
pub fn resolve(request: Option<&str>, caps: HwCaps) -> CryptoBackend {
    let want_accel = match request {
        Some(v) if v.eq_ignore_ascii_case("soft") => false,
        Some(v)
            if v.eq_ignore_ascii_case("accel")
                || v.eq_ignore_ascii_case("hw")
                || v.eq_ignore_ascii_case("hard") =>
        {
            true
        }
        _ => true, // auto: take the hardware when it exists
    };
    if want_accel && caps.any() {
        CryptoBackend::Accel
    } else {
        CryptoBackend::Soft
    }
}

/// The process-wide backend: `SECBUS_CRYPTO_BACKEND` resolved against
/// [`host_caps`], read once and cached (so the hot paths pay one branch
/// on a loaded bool, not an env lookup per burst).
pub fn active() -> CryptoBackend {
    static ACTIVE: OnceLock<CryptoBackend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        resolve(
            std::env::var("SECBUS_CRYPTO_BACKEND").ok().as_deref(),
            host_caps(),
        )
    })
}

/// The capabilities a given backend may actually use: [`host_caps`]
/// under [`CryptoBackend::Accel`], nothing under soft.
pub fn effective_caps(backend: CryptoBackend) -> HwCaps {
    match backend {
        CryptoBackend::Soft => HwCaps::default(),
        CryptoBackend::Accel => host_caps(),
    }
}

/// AES-128 block encryption through AES-NI, multi-lane.
///
/// `aesenc` performs exactly one FIPS-197 round (ShiftRows, SubBytes,
/// MixColumns, AddRoundKey), so feeding it the *same* expanded round
/// keys as the software path produces bit-identical ciphertext. Eight
/// independent blocks are kept in flight per round so the `AESENC`
/// pipeline (latency ~4 cycles, throughput 1/cycle on current cores)
/// stays full — that is the whole "multi-lane CTR" trick: CTR keystream
/// blocks are independent, so the lane count is free parallelism.
#[cfg(target_arch = "x86_64")]
pub(crate) mod aesni {
    use std::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// Independent blocks in flight per round loop.
    pub(crate) const LANES: usize = 8;

    /// Encrypt every 16-byte block of `buf` in place with AES-NI.
    ///
    /// # Safety
    /// The caller must have verified AES-NI support (`HwCaps::aesni`).
    /// `buf.len()` must be a multiple of 16 (checked by the safe
    /// dispatch wrapper in [`crate::Aes128::encrypt_blocks`]).
    #[target_feature(enable = "aes")]
    pub(crate) unsafe fn encrypt_blocks(round_keys: &[[u8; 16]; 11], buf: &mut [u8]) {
        debug_assert!(buf.len().is_multiple_of(16));
        let rk: [__m128i; 11] =
            core::array::from_fn(|i| _mm_loadu_si128(round_keys[i].as_ptr().cast()));
        let mut lanes = buf.chunks_exact_mut(16 * LANES);
        for chunk in &mut lanes {
            let mut s: [__m128i; LANES] = core::array::from_fn(|l| {
                _mm_xor_si128(_mm_loadu_si128(chunk.as_ptr().add(16 * l).cast()), rk[0])
            });
            // Round-major: all lanes step through round r before any
            // lane sees round r+1, so consecutive `aesenc`s never
            // depend on each other and the pipeline stays full.
            for key in &rk[1..10] {
                for lane in &mut s {
                    *lane = _mm_aesenc_si128(*lane, *key);
                }
            }
            for (l, lane) in s.into_iter().enumerate() {
                let out = _mm_aesenclast_si128(lane, rk[10]);
                _mm_storeu_si128(chunk.as_mut_ptr().add(16 * l).cast(), out);
            }
        }
        // Lane remainder (blocks % LANES != 0): one block at a time,
        // same rounds, same keys — still bit-identical.
        for block in lanes.into_remainder().chunks_exact_mut(16) {
            let mut s = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), rk[0]);
            for key in &rk[1..10] {
                s = _mm_aesenc_si128(s, *key);
            }
            s = _mm_aesenclast_si128(s, rk[10]);
            _mm_storeu_si128(block.as_mut_ptr().cast(), s);
        }
    }
}

/// SHA-256 compression through the SHA extensions.
///
/// A port of the canonical x86 SHA-NI compression flow: state lives in
/// two lanes as (ABEF, CDGH), each `sha256rnds2` executes two rounds,
/// and the message schedule advances four words at a time with
/// `sha256msg1`/`sha256msg2`. Identical arithmetic to the software
/// [`crate::sha256`] compression, hence identical digests.
#[cfg(target_arch = "x86_64")]
pub(crate) mod shani {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };

    /// Compress every 64-byte block of `blocks` into `state`.
    ///
    /// # Safety
    /// The caller must have verified SHA-NI + SSSE3 + SSE4.1 support
    /// (`HwCaps::shani`). `blocks.len()` must be a multiple of 64
    /// (checked by the safe dispatch wrapper in [`crate::Sha256`]).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(crate) unsafe fn compress_blocks(state: &mut [u32; 8], blocks: &[u8], k: &[u32; 64]) {
        debug_assert!(blocks.len().is_multiple_of(64));
        // Big-endian 32-bit loads: byte-swap each dword lane.
        let bswap = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);
        let kq: [__m128i; 16] =
            core::array::from_fn(|q| _mm_loadu_si128(k.as_ptr().add(4 * q).cast()));

        // state = [a,b,c,d,e,f,g,h] -> STATE0 = ABEF, STATE1 = CDGH.
        let abcd = _mm_loadu_si128(state.as_ptr().cast());
        let efgh = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let cdab = _mm_shuffle_epi32(abcd, 0xB1);
        let ghef = _mm_shuffle_epi32(efgh, 0x1B);
        let mut state0 = _mm_alignr_epi8(cdab, ghef, 8);
        let mut state1 = _mm_blend_epi16(ghef, cdab, 0xF0);

        for block in blocks.chunks_exact(64) {
            let save0 = state0;
            let save1 = state1;
            // First four message quads: loaded and byte-swapped.
            let mut m: [__m128i; 4] = core::array::from_fn(|q| {
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16 * q).cast()), bswap)
            });
            for q in 0..16 {
                if q >= 4 {
                    // W[4q..4q+4] = msg2(msg1(m0, m1) + alignr(m3, m2, 4), m3):
                    // sigma0 over W[i-15], the W[i-7] adds, then sigma1
                    // over W[i-2] — the FIPS-180-4 recurrence, four
                    // words at a time.
                    let w = _mm_sha256msg2_epu32(
                        _mm_add_epi32(
                            _mm_sha256msg1_epu32(m[0], m[1]),
                            _mm_alignr_epi8(m[3], m[2], 4),
                        ),
                        m[3],
                    );
                    m = [m[1], m[2], m[3], w];
                }
                let quad = if q < 4 { m[q] } else { m[3] };
                let wk = _mm_add_epi32(quad, kq[q]);
                state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
                state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0E));
            }
            state0 = _mm_add_epi32(state0, save0);
            state1 = _mm_add_epi32(state1, save1);
        }

        // (ABEF, CDGH) -> [a..d], [e..h].
        let feba = _mm_shuffle_epi32(state0, 0x1B);
        let dchg = _mm_shuffle_epi32(state1, 0xB1);
        _mm_storeu_si128(state.as_mut_ptr().cast(), _mm_blend_epi16(feba, dchg, 0xF0));
        _mm_storeu_si128(
            state.as_mut_ptr().add(4).cast(),
            _mm_alignr_epi8(dchg, feba, 8),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The resolver never hands out a backend the host cannot run: with
    /// no hardware capabilities every request — including an explicit
    /// `accel` — resolves to soft.
    #[test]
    fn resolve_never_selects_unsupported_backend() {
        let none = HwCaps::default();
        for req in [
            None,
            Some("accel"),
            Some("hw"),
            Some("hard"),
            Some("auto"),
            Some("soft"),
            Some("ACCEL"),
            Some("garbage"),
        ] {
            assert_eq!(
                resolve(req, none),
                CryptoBackend::Soft,
                "request {req:?} on a capability-less host must resolve soft"
            );
        }
        // And whatever this host supports, the resolved backend's
        // effective capabilities are a subset of the host's.
        let active = resolve(None, host_caps());
        let eff = effective_caps(active);
        assert!(!eff.aesni || host_caps().aesni);
        assert!(!eff.shani || host_caps().shani);
    }

    #[test]
    fn resolve_honors_explicit_requests_when_capable() {
        let caps = HwCaps {
            aesni: true,
            shani: true,
        };
        assert_eq!(resolve(Some("soft"), caps), CryptoBackend::Soft);
        assert_eq!(resolve(Some("SOFT"), caps), CryptoBackend::Soft);
        assert_eq!(resolve(Some("accel"), caps), CryptoBackend::Accel);
        assert_eq!(resolve(None, caps), CryptoBackend::Accel);
        assert_eq!(resolve(Some("auto"), caps), CryptoBackend::Accel);
    }

    #[test]
    fn soft_backend_uses_no_hardware() {
        assert_eq!(effective_caps(CryptoBackend::Soft), HwCaps::default());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CryptoBackend::Soft.name(), "soft");
        assert_eq!(CryptoBackend::Accel.name(), "accel");
    }

    /// `active()` is consistent with a fresh resolution of the same
    /// inputs (it may have been initialized earlier in the process, but
    /// both reads go through the same pure resolver).
    #[test]
    fn active_matches_pure_resolution() {
        let expect = resolve(
            std::env::var("SECBUS_CRYPTO_BACKEND").ok().as_deref(),
            host_caps(),
        );
        assert_eq!(active(), expect);
        assert_eq!(active(), active());
    }
}
