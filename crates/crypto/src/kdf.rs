//! Key derivation for per-region Cryptographic Keys.
//!
//! The paper gives every external policy its own CK. Provisioning N
//! independent keys is an operational burden; the standard answer is to
//! derive them from one device master key. This module implements a
//! simple HKDF-like construction over the in-house SHA-256:
//!
//! ```text
//! region_key = truncate_128( H(0x4B || master_key || label || region_base) )
//! ```
//!
//! with domain separation from the hash-tree tags (which use 0x00/0x01).
//! Rolling the master key (or just a label, e.g. a boot epoch counter)
//! re-keys every region deterministically — the provisioning side of the
//! `rekey` mechanism in `secbus-core`.

use crate::sha256::Sha256;

/// Domain-separation tag for key derivation.
const KDF_TAG: u8 = 0x4B;

/// Derive a 128-bit region key from a 256-bit master key, a free-form
/// label (e.g. `"boot-epoch-7"`) and the region base address.
pub fn derive_region_key(master: &[u8; 32], label: &str, region_base: u32) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(&[KDF_TAG]);
    h.update(master);
    h.update(&(label.len() as u32).to_be_bytes());
    h.update(label.as_bytes());
    h.update(&region_base.to_be_bytes());
    let digest = h.finalize();
    digest[..16].try_into().expect("16 of 32 bytes")
}

/// Derive the whole key set for a list of region bases.
pub fn derive_key_set(master: &[u8; 32], label: &str, bases: &[u32]) -> Vec<[u8; 16]> {
    bases
        .iter()
        .map(|&b| derive_region_key(master, label, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: [u8; 32] = [0x11; 32];

    #[test]
    fn deterministic() {
        let a = derive_region_key(&MASTER, "epoch-1", 0x8000_0000);
        let b = derive_region_key(&MASTER, "epoch-1", 0x8000_0000);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_per_region_label_and_master() {
        let base = derive_region_key(&MASTER, "epoch-1", 0x8000_0000);
        assert_ne!(base, derive_region_key(&MASTER, "epoch-1", 0x8004_0000));
        assert_ne!(base, derive_region_key(&MASTER, "epoch-2", 0x8000_0000));
        let other_master = [0x22; 32];
        assert_ne!(
            base,
            derive_region_key(&other_master, "epoch-1", 0x8000_0000)
        );
    }

    #[test]
    fn label_length_is_bound_no_ambiguity() {
        // ("ab", region "c…") must not collide with ("abc", …): the length
        // prefix separates them even when concatenations would match.
        let a = derive_region_key(&MASTER, "ab", 0x6300_0000);
        let b = derive_region_key(&MASTER, "abc", 0x0000_0000);
        assert_ne!(a, b);
    }

    #[test]
    fn key_set_matches_individual_derivation() {
        let bases = [0x8000_0000, 0x8004_0000, 0x8008_0000];
        let set = derive_key_set(&MASTER, "boot", &bases);
        assert_eq!(set.len(), 3);
        for (k, &b) in set.iter().zip(bases.iter()) {
            assert_eq!(*k, derive_region_key(&MASTER, "boot", b));
        }
        // All distinct.
        assert_ne!(set[0], set[1]);
        assert_ne!(set[1], set[2]);
    }

    /// Randomized: distinct region bases never collide to the same key.
    #[test]
    fn no_collisions_across_regions() {
        let mut state = 0x7777_1111_3333_5555u64;
        for _ in 0..512 {
            let a = crate::test_rng::splitmix64(&mut state) as u32;
            let b = crate::test_rng::splitmix64(&mut state) as u32;
            let ka = derive_region_key(&MASTER, "l", a);
            let kb = derive_region_key(&MASTER, "l", b);
            assert_eq!(ka == kb, a == b, "bases {a:#x} vs {b:#x}");
        }
    }
}
