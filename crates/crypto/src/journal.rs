//! Crash-consistent persistence for the LCF's security metadata.
//!
//! The paper keeps the hash-tree root and the time-stamp tags on-chip,
//! which is fine while power stays up — but a crash or power cut leaves
//! external DDR and the (volatile) on-chip metadata divergent, and a
//! naive reboot either loses all protection state or false-alarms every
//! protected region. This module supplies the three persistent pieces a
//! crash-consistent LCF needs:
//!
//! * [`SecureStateImage`] — a MAC-sealed checkpoint of every region's
//!   root + time-stamp table, stamped with a sequence number.
//! * [`WriteAheadJournal`] — an append-only log of per-write intents and
//!   commit marks (shadow-root two-phase commit). The intent is persisted
//!   *before* the DDR burst and already carries the post-write ("shadow")
//!   root; the commit mark lands after the burst. Recovery can therefore
//!   classify any crash window: no record → nothing happened; dangling
//!   intent → the burst may be absent (roll back), complete (roll
//!   forward) or torn (repair); committed → the write definitely landed.
//! * [`MonotonicCounter`] — a fuse-style ratchet, bumped at every
//!   checkpoint, that detects a rolled-back image.
//!
//! Every persisted structure is authenticated with a key that never
//! leaves the chip, so an attacker who can rewrite the persistence
//! medium can only produce *invalid* records (indistinguishable from a
//! torn tail, hence discarded) — never forge a root.
//!
//! Known limitation (documented in DESIGN.md §6): the counter ratchets
//! per *checkpoint*, not per write, so an attacker who atomically rolls
//! back DDR **and** the journal tail can undo writes since the last
//! checkpoint. Shortening the checkpoint interval bounds that window.
//!
//! Journal appends and commit marks are individually tearable (a torn
//! entry fails its MAC and is discarded with everything after it);
//! image and counter writes are modeled as atomic, standing in for the
//! double-buffered NVRAM slot a real design would use.

use crate::sha256::{Digest, Sha256};

/// Domain-separation tags for the keyed MACs.
const IMAGE_TAG: u8 = 0x10;
const INTENT_TAG: u8 = 0x11;
const COMMIT_TAG: u8 = 0x12;

fn keyed_mac(key: &[u8; 16], domain: u8, payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(key);
    h.update(&[domain]);
    h.update(payload);
    h.update(key);
    h.finalize()
}

/// Persistent snapshot of one protected region: its tree root (absent
/// for cipher-only regions, which have no tree) and every block's
/// time-stamp tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionImage {
    pub root: Option<Digest>,
    pub timestamps: Vec<u64>,
}

impl RegionImage {
    fn encode(&self, out: &mut Vec<u8>) {
        match &self.root {
            Some(r) => {
                out.push(1);
                out.extend_from_slice(r);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.timestamps.len() as u64).to_be_bytes());
        for ts in &self.timestamps {
            out.extend_from_slice(&ts.to_be_bytes());
        }
    }
}

/// A MAC-sealed checkpoint of the LCF's full secure state.
///
/// The public fields can be freely inspected (and tampered with, by an
/// attacker model); [`SecureStateImage::verify`] only passes if the MAC
/// was produced by [`SecureStateImage::seal`] under the same key over
/// exactly these contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureStateImage {
    /// Checkpoint sequence number; must match the monotonic counter.
    pub seq: u64,
    pub regions: Vec<RegionImage>,
    mac: Digest,
}

impl SecureStateImage {
    fn mac_of(key: &[u8; 16], seq: u64, regions: &[RegionImage]) -> Digest {
        let mut buf = Vec::new();
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&(regions.len() as u64).to_be_bytes());
        for r in regions {
            r.encode(&mut buf);
        }
        keyed_mac(key, IMAGE_TAG, &buf)
    }

    /// Seal a checkpoint under the on-chip state key.
    pub fn seal(key: &[u8; 16], seq: u64, regions: Vec<RegionImage>) -> Self {
        let mac = Self::mac_of(key, seq, &regions);
        SecureStateImage { seq, regions, mac }
    }

    /// Authenticate the image. A forged or bit-flipped image fails.
    pub fn verify(&self, key: &[u8; 16]) -> bool {
        Self::mac_of(key, self.seq, &self.regions) == self.mac
    }
}

/// Fuse-style monotonic counter: can only move forward. Survives power
/// cuts by construction (a real design burns fuses or uses an RPMB-like
/// replay-protected cell).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonotonicCounter {
    value: u64,
}

impl MonotonicCounter {
    pub fn new() -> Self {
        MonotonicCounter { value: 0 }
    }

    pub fn value(&self) -> u64 {
        self.value
    }

    /// Advance to `v`. Returns `false` (and leaves the counter alone) on
    /// any attempt to move backwards — the ratchet cannot rewind.
    pub fn ratchet_to(&mut self, v: u64) -> bool {
        if v < self.value {
            return false;
        }
        self.value = v;
        true
    }
}

/// Intent record: persisted *before* the DDR burst of a protected
/// write, carrying everything recovery needs to finish or undo it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentRecord {
    /// Image sequence number this record extends.
    pub seq: u64,
    /// Per-journal write id (monotonic).
    pub write_id: u64,
    /// Region index within the LCF.
    pub region: usize,
    /// Block index within the region.
    pub block: usize,
    /// Time-stamp tag the block will carry after the write.
    pub new_ts: u64,
    /// Leaf digest of the post-write ciphertext (zeroed for
    /// cipher-only regions, which have no tree).
    pub new_leaf: Digest,
    /// The shadow root: what the region root becomes once the write
    /// lands. `None` for cipher-only regions.
    pub new_root: Option<Digest>,
}

impl IntentRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(96);
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.write_id.to_be_bytes());
        buf.extend_from_slice(&(self.region as u64).to_be_bytes());
        buf.extend_from_slice(&(self.block as u64).to_be_bytes());
        buf.extend_from_slice(&self.new_ts.to_be_bytes());
        buf.extend_from_slice(&self.new_leaf);
        match &self.new_root {
            Some(r) => {
                buf.push(1);
                buf.extend_from_slice(r);
            }
            None => buf.push(0),
        }
        buf
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EntryKind {
    Intent(IntentRecord),
    Commit { write_id: u64 },
}

/// One persisted journal entry with its MAC and the persistence step at
/// which it was appended (used by crash modeling).
#[derive(Debug, Clone, PartialEq, Eq)]
struct JournalEntry {
    kind: EntryKind,
    mac: Digest,
    step: u64,
}

impl JournalEntry {
    fn mac_of(key: &[u8; 16], kind: &EntryKind) -> Digest {
        match kind {
            EntryKind::Intent(rec) => keyed_mac(key, INTENT_TAG, &rec.encode()),
            EntryKind::Commit { write_id } => keyed_mac(key, COMMIT_TAG, &write_id.to_be_bytes()),
        }
    }
}

/// The decoded, authenticated view of a journal that recovery consumes.
#[derive(Debug, Clone)]
pub struct JournalReplay {
    /// Writes in order, each with its committed flag. At most the final
    /// write may be uncommitted (the one in flight at the crash).
    pub writes: Vec<(IntentRecord, bool)>,
    /// Entries dropped because their MAC failed (torn tail — everything
    /// at and after the first bad entry is discarded).
    pub torn_discarded: usize,
    /// Protocol-violation evidence: a commit mark with no matching
    /// intent, or an *earlier* write left uncommitted while later writes
    /// follow. A crash cannot produce this; a forged journal can.
    pub forged: bool,
}

/// Append-only write-ahead journal over [`IntentRecord`]s and commit
/// marks. Each append is one persistence *step*; [`Self::crash_at_step`]
/// reconstructs what a power cut at any step would leave behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAheadJournal {
    key: [u8; 16],
    entries: Vec<JournalEntry>,
    next_write_id: u64,
    step: u64,
}

impl WriteAheadJournal {
    pub fn new(key: [u8; 16]) -> Self {
        WriteAheadJournal {
            key,
            entries: Vec::new(),
            next_write_id: 0,
            step: 0,
        }
    }

    /// Number of entries currently persisted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total persistence steps performed so far. Steps `0..persist_ops()`
    /// are valid crash points for [`Self::crash_at_step`].
    pub fn persist_ops(&self) -> u64 {
        self.step
    }

    /// Phase 1: persist the intent (with its shadow root) *before* the
    /// DDR burst. Returns the write id to pass to [`Self::commit`].
    pub fn begin(&mut self, mut intent: IntentRecord) -> u64 {
        let write_id = self.next_write_id;
        self.next_write_id += 1;
        intent.write_id = write_id;
        let kind = EntryKind::Intent(intent);
        let mac = JournalEntry::mac_of(&self.key, &kind);
        self.entries.push(JournalEntry {
            kind,
            mac,
            step: self.step,
        });
        self.step += 1;
        write_id
    }

    /// Phase 2: persist the commit mark after the DDR burst completed.
    pub fn commit(&mut self, write_id: u64) {
        let kind = EntryKind::Commit { write_id };
        let mac = JournalEntry::mac_of(&self.key, &kind);
        self.entries.push(JournalEntry {
            kind,
            mac,
            step: self.step,
        });
        self.step += 1;
    }

    /// Checkpoint fold: the image now covers everything, drop the log.
    pub fn truncate(&mut self) {
        self.entries.clear();
    }

    /// What a power cut at persistence step `step` leaves behind:
    /// entries appended at earlier steps survive intact; if `torn`, the
    /// entry being appended *at* `step` survives with a corrupted MAC
    /// (a torn journal write); later entries never existed.
    pub fn crash_at_step(&self, step: u64, torn: bool) -> WriteAheadJournal {
        let mut out = WriteAheadJournal::new(self.key);
        for e in &self.entries {
            if e.step < step {
                out.entries.push(e.clone());
            } else if e.step == step && torn {
                let mut torn_entry = e.clone();
                torn_entry.mac[0] ^= 0xff;
                out.entries.push(torn_entry);
            }
        }
        out.next_write_id = self.next_write_id;
        out.step = step;
        out
    }

    /// Attacker surface: flip a bit in entry `idx`'s payload MAC. The
    /// entry (and everything after it) will be discarded on replay.
    pub fn corrupt_entry(&mut self, idx: usize) -> bool {
        match self.entries.get_mut(idx) {
            Some(e) => {
                e.mac[1] ^= 0x01;
                true
            }
            None => false,
        }
    }

    /// Attacker surface: drop the last `n` entries (journal rollback).
    pub fn drop_tail(&mut self, n: usize) {
        let keep = self.entries.len().saturating_sub(n);
        self.entries.truncate(keep);
    }

    /// Authenticate and decode the journal for recovery, using the
    /// journal's own key. See [`Self::replay_with`].
    pub fn replay(&self) -> JournalReplay {
        self.replay_with(&self.key)
    }

    /// Authenticate and decode the journal under the *verifier's* key —
    /// recovery must pass the on-chip state key here, never trust a key
    /// travelling with the (attacker-reachable) journal itself.
    ///
    /// The first entry whose MAC fails marks the torn tail: it and every
    /// later entry are discarded (a crash tears at most the final
    /// append, but an attacker may corrupt anywhere — either way nothing
    /// after the first invalid entry can be trusted).
    pub fn replay_with(&self, key: &[u8; 16]) -> JournalReplay {
        let mut writes: Vec<(IntentRecord, bool)> = Vec::new();
        let mut torn_discarded = 0;
        let mut forged = false;
        for (i, e) in self.entries.iter().enumerate() {
            if JournalEntry::mac_of(key, &e.kind) != e.mac {
                torn_discarded = self.entries.len() - i;
                break;
            }
            match &e.kind {
                EntryKind::Intent(rec) => {
                    // A new intent while the previous write is still
                    // uncommitted cannot happen under the sequential
                    // write protocol.
                    if writes.last().is_some_and(|(_, committed)| !committed) {
                        forged = true;
                    }
                    writes.push((rec.clone(), false));
                }
                EntryKind::Commit { write_id } => match writes.last_mut() {
                    Some((rec, committed)) if rec.write_id == *write_id && !*committed => {
                        *committed = true;
                    }
                    _ => forged = true,
                },
            }
        }
        JournalReplay {
            writes,
            torn_discarded,
            forged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = *b"journal-test-key";

    fn intent(seq: u64, block: usize, ts: u64) -> IntentRecord {
        IntentRecord {
            seq,
            write_id: 0, // assigned by begin()
            region: 0,
            block,
            new_ts: ts,
            new_leaf: [ts as u8; 32],
            new_root: Some([block as u8; 32]),
        }
    }

    #[test]
    fn image_seals_and_verifies() {
        let regions = vec![RegionImage {
            root: Some([7; 32]),
            timestamps: vec![1, 2, 3],
        }];
        let img = SecureStateImage::seal(&KEY, 4, regions);
        assert!(img.verify(&KEY));
        assert!(!img.verify(b"some-other-key!!"));
    }

    #[test]
    fn tampered_image_fails_verification() {
        let mut img = SecureStateImage::seal(
            &KEY,
            1,
            vec![RegionImage {
                root: Some([7; 32]),
                timestamps: vec![9],
            }],
        );
        img.regions[0].timestamps[0] = 8;
        assert!(!img.verify(&KEY));
        let mut img2 = SecureStateImage::seal(&KEY, 1, vec![]);
        img2.seq = 0;
        assert!(!img2.verify(&KEY));
    }

    #[test]
    fn counter_only_ratchets_forward() {
        let mut c = MonotonicCounter::new();
        assert!(c.ratchet_to(3));
        assert!(c.ratchet_to(3), "idempotent re-ratchet is allowed");
        assert!(!c.ratchet_to(2), "rewind must be refused");
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn begin_commit_replays_in_order() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        let b = j.begin(intent(0, 2, 1));
        j.commit(b);
        let r = j.replay();
        assert_eq!(r.writes.len(), 2);
        assert!(r.writes.iter().all(|(_, c)| *c));
        assert_eq!(r.torn_discarded, 0);
        assert!(!r.forged);
        assert_eq!(r.writes[0].0.block, 1);
        assert_eq!(r.writes[1].0.block, 2);
    }

    #[test]
    fn dangling_final_intent_is_not_forgery() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        j.begin(intent(0, 2, 1)); // crashed before commit
        let r = j.replay();
        assert_eq!(r.writes.len(), 2);
        assert!(r.writes[0].1);
        assert!(!r.writes[1].1);
        assert!(!r.forged);
    }

    #[test]
    fn non_final_uncommitted_intent_is_forgery() {
        let mut j = WriteAheadJournal::new(KEY);
        j.begin(intent(0, 1, 1)); // never committed
        let b = j.begin(intent(0, 2, 1));
        j.commit(b);
        assert!(j.replay().forged);
    }

    #[test]
    fn commit_without_intent_is_forgery() {
        let mut j = WriteAheadJournal::new(KEY);
        j.commit(42);
        assert!(j.replay().forged);
    }

    #[test]
    fn corrupted_entry_discards_tail() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        let b = j.begin(intent(0, 2, 1));
        j.commit(b);
        assert!(j.corrupt_entry(2));
        let r = j.replay();
        assert_eq!(r.writes.len(), 1, "only the first write survives");
        assert!(r.writes[0].1);
        assert_eq!(r.torn_discarded, 2);
        assert!(!r.forged, "a torn tail is not forgery evidence");
    }

    #[test]
    fn crash_at_step_reconstructs_every_window() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1)); // step 0
        j.commit(a); // step 1
        let b = j.begin(intent(0, 2, 1)); // step 2
        j.commit(b); // step 3
        assert_eq!(j.persist_ops(), 4);

        // Crash before anything persisted.
        assert_eq!(j.crash_at_step(0, false).replay().writes.len(), 0);
        // Crash after the first intent: one dangling write.
        let r = j.crash_at_step(1, false).replay();
        assert_eq!(r.writes.len(), 1);
        assert!(!r.writes[0].1);
        // Crash tearing the first commit mark: same dangling write, one
        // discarded entry — NOT a lost record.
        let r = j.crash_at_step(1, true).replay();
        assert_eq!(r.writes.len(), 1);
        assert!(!r.writes[0].1);
        assert_eq!(r.torn_discarded, 1);
        // Crash after everything: both committed.
        let r = j.crash_at_step(4, false).replay();
        assert_eq!(r.writes.len(), 2);
        assert!(r.writes.iter().all(|(_, c)| *c));
    }

    #[test]
    fn truncate_clears_but_keeps_write_ids_monotonic() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        j.truncate();
        assert!(j.is_empty());
        let b = j.begin(intent(1, 1, 2));
        assert!(b > a, "write ids keep increasing across checkpoints");
    }

    #[test]
    fn replay_under_wrong_key_trusts_nothing() {
        // An attacker-fabricated journal self-verifies under the
        // attacker's key, but the chip replays under ITS key.
        let mut j = WriteAheadJournal::new(*b"attacker-key-00!");
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        let r = j.replay_with(&KEY);
        assert!(r.writes.is_empty());
        assert_eq!(r.torn_discarded, 2);
    }

    #[test]
    fn drop_tail_rolls_back_entries() {
        let mut j = WriteAheadJournal::new(KEY);
        let a = j.begin(intent(0, 1, 1));
        j.commit(a);
        let b = j.begin(intent(0, 2, 1));
        j.commit(b);
        j.drop_tail(2);
        let r = j.replay();
        assert_eq!(r.writes.len(), 1);
        assert!(!r.forged, "a clean rollback looks like a short journal");
    }
}
