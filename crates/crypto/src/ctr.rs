//! Address- and timestamp-bound counter-mode ciphering.
//!
//! The Confidentiality Core encrypts external-memory blocks with AES-128 in
//! a counter-like mode whose keystream input is `(block address, time-stamp
//! tag)`:
//!
//! * binding the **address** into the keystream defeats *relocation*
//!   attacks — ciphertext copied to a different address decrypts to junk
//!   ("memory addresses are controlled to protect the system against
//!   relocation attacks");
//! * binding the **time-stamp** defeats *replay* — an old ciphertext
//!   re-written to its own address decrypts under the wrong tag.
//!
//! Spoofing (random ciphertext) and the two attacks above still need the
//! Integrity Core to be *detected*; ciphering alone only guarantees the
//! attacker cannot choose the resulting plaintext.

use crate::aes::Aes128;
use crate::backend::CryptoBackend;

/// AES block size in bytes.
pub const BLOCK_BYTES: usize = 16;

/// Keystream blocks generated per batched AES pass. A stack buffer of
/// this many blocks keeps the burst path allocation-free while still
/// amortising the round-key loads across a whole batch.
const KEYSTREAM_BATCH: usize = 16;

/// The Confidentiality Core's cipher: AES-128 in address/timestamp-tweaked
/// counter mode.
#[derive(Debug, Clone)]
pub struct MemoryCipher {
    aes: Aes128,
}

impl MemoryCipher {
    /// Create a cipher from the policy's 128-bit Cryptographic Key (CK),
    /// on the process-wide active backend.
    pub fn new(key: &[u8; 16]) -> Self {
        MemoryCipher {
            aes: Aes128::new(key),
        }
    }

    /// Create a cipher on an explicit backend (test and benchmark seam —
    /// keystreams are bit-identical either way).
    pub fn with_backend(key: &[u8; 16], backend: CryptoBackend) -> Self {
        MemoryCipher {
            aes: Aes128::with_backend(key, backend),
        }
    }

    /// The backend the underlying AES actually runs batches on.
    pub fn backend(&self) -> CryptoBackend {
        self.aes.backend()
    }

    /// Keystream block for (16-byte-aligned) block index `block` under
    /// time-stamp `timestamp`.
    #[inline]
    fn keystream(&self, block: u64, timestamp: u64) -> [u8; BLOCK_BYTES] {
        let mut input = [0u8; BLOCK_BYTES];
        input[..8].copy_from_slice(&block.to_be_bytes());
        input[8..].copy_from_slice(&timestamp.to_be_bytes());
        self.aes.encrypt(&input)
    }

    /// Encrypt or decrypt (XOR is symmetric) `buf` in place.
    ///
    /// `addr` is the byte address of `buf[0]` in the external memory;
    /// `timestamp` is the tag the data is sealed under. Each 16-byte chunk
    /// uses its own block index, so bulk regions stream chunk-independent.
    ///
    /// # Panics
    /// Panics unless `addr` and `buf.len()` are multiples of 16 — the LCF
    /// always ciphers whole protection blocks.
    pub fn apply(&self, addr: u64, timestamp: u64, buf: &mut [u8]) {
        assert!(
            addr.is_multiple_of(BLOCK_BYTES as u64),
            "cipher address must be 16-byte aligned"
        );
        assert!(
            buf.len().is_multiple_of(BLOCK_BYTES),
            "cipher length must be a multiple of 16"
        );
        if buf.len() == BLOCK_BYTES {
            // Single-block fast path: no batching setup.
            let ks = self.keystream(addr / BLOCK_BYTES as u64, timestamp);
            for (b, k) in buf.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            return;
        }
        self.xor_keystream(addr, timestamp, buf);
    }

    /// XOR the keystream starting at `addr` into `buf`, tolerating a
    /// partial final block: the last keystream block is generated whole
    /// and truncated to the tail, exactly as a hardware CTR datapath
    /// discards unused keystream bytes. `addr` must still be 16-byte
    /// aligned (it fixes the counter origin); `buf` may be any length,
    /// including empty.
    ///
    /// [`apply`](Self::apply) — the LCF's whole-protection-block
    /// contract — is this routine plus the length assertion, so for
    /// multiple-of-16 lengths the two are byte-identical.
    pub fn xor_keystream(&self, addr: u64, timestamp: u64, buf: &mut [u8]) {
        assert!(
            addr.is_multiple_of(BLOCK_BYTES as u64),
            "cipher address must be 16-byte aligned"
        );
        // Burst path: fill a batch of counter inputs and cipher them in
        // one [`Aes128::encrypt_blocks`] pass (key-schedule reuse,
        // multi-lane AES-NI when available), then XOR. The counter is a
        // full 64-bit block index — carries across any 32-bit word
        // boundary are native `u64` arithmetic, and the batched AES is
        // plain ECB over these serialized counters, so per-block and
        // batched paths cannot diverge at a wrap. Stack buffer — the
        // hot path never allocates.
        let mut ks = [0u8; KEYSTREAM_BATCH * BLOCK_BYTES];
        let mut block = addr / BLOCK_BYTES as u64;
        for batch in buf.chunks_mut(KEYSTREAM_BATCH * BLOCK_BYTES) {
            let ks = &mut ks[..batch.len().div_ceil(BLOCK_BYTES) * BLOCK_BYTES];
            for input in ks.chunks_exact_mut(BLOCK_BYTES) {
                input[..8].copy_from_slice(&block.to_be_bytes());
                input[8..].copy_from_slice(&timestamp.to_be_bytes());
                block += 1;
            }
            self.aes.encrypt_blocks(ks);
            for (b, k) in batch.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: encrypt a copy of a single 16-byte block.
    pub fn seal_block(
        &self,
        addr: u64,
        timestamp: u64,
        plain: &[u8; BLOCK_BYTES],
    ) -> [u8; BLOCK_BYTES] {
        let mut out = *plain;
        self.apply(addr, timestamp, &mut out);
        out
    }

    /// Convenience: decrypt a copy of a single 16-byte block.
    pub fn open_block(
        &self,
        addr: u64,
        timestamp: u64,
        cipher: &[u8; BLOCK_BYTES],
    ) -> [u8; BLOCK_BYTES] {
        // XOR keystream is its own inverse.
        self.seal_block(addr, timestamp, cipher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [0x42; 16];

    #[test]
    fn roundtrip() {
        let c = MemoryCipher::new(&KEY);
        let plain = *b"external memory!";
        let sealed = c.seal_block(0x1000, 3, &plain);
        assert_ne!(sealed, plain);
        assert_eq!(c.open_block(0x1000, 3, &sealed), plain);
    }

    #[test]
    fn relocation_changes_plaintext() {
        // Same ciphertext moved to a different address decrypts to junk.
        let c = MemoryCipher::new(&KEY);
        let plain = *b"sensitive config";
        let sealed = c.seal_block(0x1000, 1, &plain);
        let relocated = c.open_block(0x2000, 1, &sealed);
        assert_ne!(relocated, plain);
    }

    #[test]
    fn replay_changes_plaintext() {
        // Old ciphertext under a newer timestamp decrypts to junk.
        let c = MemoryCipher::new(&KEY);
        let plain = *b"counter v1 data!";
        let sealed_v1 = c.seal_block(0x1000, 1, &plain);
        let replayed = c.open_block(0x1000, 2, &sealed_v1);
        assert_ne!(replayed, plain);
    }

    #[test]
    fn multi_block_regions_use_distinct_keystreams() {
        let c = MemoryCipher::new(&KEY);
        let mut buf = [0u8; 64]; // identical plaintext blocks
        c.apply(0x4000, 0, &mut buf);
        let blocks: Vec<&[u8]> = buf.chunks_exact(16).collect();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert_ne!(blocks[i], blocks[j], "blocks {i} and {j} share keystream");
            }
        }
    }

    #[test]
    fn bulk_apply_matches_per_block() {
        let c = MemoryCipher::new(&KEY);
        let mut bulk = [0xa5u8; 48];
        c.apply(0x9000, 7, &mut bulk);
        for i in 0..3 {
            let sealed = c.seal_block(0x9000 + 16 * i as u64, 7, &[0xa5; 16]);
            assert_eq!(&bulk[16 * i..16 * (i + 1)], &sealed);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = MemoryCipher::new(&[1; 16]);
        let b = MemoryCipher::new(&[2; 16]);
        assert_ne!(a.seal_block(0, 0, &[0; 16]), b.seal_block(0, 0, &[0; 16]));
    }

    /// The batched burst path matches the per-block reference across
    /// batch boundaries (lengths below, at and above [`KEYSTREAM_BATCH`]).
    #[test]
    fn batched_bursts_match_per_block_across_batch_boundaries() {
        let c = MemoryCipher::new(&KEY);
        for blocks in [1usize, 2, 15, 16, 17, 33, 40] {
            let mut bulk = vec![0x5au8; BLOCK_BYTES * blocks];
            c.apply(0x2_0000, 11, &mut bulk);
            for i in 0..blocks {
                let sealed = c.seal_block(0x2_0000 + (BLOCK_BYTES * i) as u64, 11, &[0x5a; 16]);
                assert_eq!(
                    &bulk[BLOCK_BYTES * i..BLOCK_BYTES * (i + 1)],
                    &sealed,
                    "block {i} of {blocks}"
                );
            }
        }
    }

    /// Regression (issue 10 satellite): a burst whose block counter
    /// crosses a 32-bit low-word wrap — base block `u32::MAX - 2`, 8
    /// blocks — must match the per-block reference on every block. A
    /// batched path that incremented only the counter's low 32-bit word
    /// (the classic SIMD CTR bug) would diverge from block 3 onward.
    #[test]
    fn burst_across_counter_low_word_wrap_matches_per_block() {
        let addr = (u64::from(u32::MAX) - 2) * BLOCK_BYTES as u64;
        for backend in [CryptoBackend::Soft, CryptoBackend::Accel] {
            let c = MemoryCipher::with_backend(&KEY, backend);
            let mut bulk = [0x3cu8; BLOCK_BYTES * 8];
            c.apply(addr, 9, &mut bulk);
            for i in 0..8 {
                let sealed = c.seal_block(addr + (BLOCK_BYTES * i) as u64, 9, &[0x3c; 16]);
                assert_eq!(
                    &bulk[BLOCK_BYTES * i..BLOCK_BYTES * (i + 1)],
                    &sealed,
                    "{} backend, block {i} across the u32 wrap",
                    c.backend().name()
                );
            }
        }
    }

    /// Cross-backend: bursts cipher byte-identically whichever backend
    /// the cipher was built on, for lengths below/at/above both the
    /// keystream batch and the AES-NI lane width.
    #[test]
    fn backends_produce_identical_bursts() {
        let soft = MemoryCipher::with_backend(&KEY, CryptoBackend::Soft);
        let accel = MemoryCipher::with_backend(&KEY, CryptoBackend::Accel);
        for blocks in [1usize, 2, 7, 8, 9, 15, 16, 17, 40] {
            let mut a = vec![0xc7u8; BLOCK_BYTES * blocks];
            let mut b = a.clone();
            soft.apply(0x6000, 5, &mut a);
            accel.apply(0x6000, 5, &mut b);
            assert_eq!(a, b, "{blocks} blocks");
        }
    }

    /// The tail-tolerant keystream API equals `apply` on the shared
    /// whole-block prefix and truncates the final keystream block.
    #[test]
    fn xor_keystream_tail_is_truncated_whole_block_keystream() {
        let c = MemoryCipher::new(&KEY);
        for len in [0usize, 1, 15, 17, 31, 33, 100, 255] {
            let rounded = len.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
            let mut whole = vec![0u8; rounded];
            if rounded > 0 {
                c.apply(0x8000, 3, &mut whole);
            }
            let mut tail = vec![0u8; len];
            c.xor_keystream(0x8000, 3, &mut tail);
            assert_eq!(tail, whole[..len], "len {len}");
            // And it is involutive at every length.
            c.xor_keystream(0x8000, 3, &mut tail);
            assert!(tail.iter().all(|&b| b == 0), "len {len} roundtrip");
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_address_panics() {
        MemoryCipher::new(&KEY).apply(0x1001, 0, &mut [0; 16]);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn partial_block_panics() {
        MemoryCipher::new(&KEY).apply(0x1000, 0, &mut [0; 15]);
    }

    /// Randomized: applying the keystream twice restores the plaintext for
    /// arbitrary keys, block addresses, timestamps and lengths.
    #[test]
    fn apply_is_involutive() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for _ in 0..256 {
            let mut key = [0u8; 16];
            for b in key.iter_mut() {
                *b = next() as u8;
            }
            let c = MemoryCipher::new(&key);
            let addr = (next() % 1_000_000) * 16;
            let ts = next();
            let blocks = 1 + (next() % 7) as usize;
            let mut buf: Vec<u8> = (0..blocks).flat_map(|_| [next() as u8; 16]).collect();
            let original = buf.clone();
            c.apply(addr, ts, &mut buf);
            assert_ne!(buf, original, "keystream must change the data");
            c.apply(addr, ts, &mut buf);
            assert_eq!(buf, original);
        }
    }
}
