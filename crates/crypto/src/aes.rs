//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! This is the algorithm inside the paper's Confidentiality Core. The
//! implementation is a straightforward byte-oriented rendering of the
//! standard — S-box substitution, row shifts, GF(2^8) column mixing and a
//! 44-word key schedule. [`Aes128::encrypt_block`] is always this
//! software reference; the batched [`Aes128::encrypt_blocks`] hot path
//! additionally dispatches to the host's AES-NI instructions (8 blocks
//! in flight per round) when [`crate::backend`] detects them, producing
//! bit-identical ciphertext — `aesenc` runs the same FIPS-197 round
//! over the same expanded round keys.

use crate::backend::{self, CryptoBackend};

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box, computed from [`SBOX`] at compile time — no
/// first-use branch or synchronisation on the decryption path.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (if a & 0x80 != 0 { 0x1b } else { 0 })
}

/// General GF(2^8) multiplication.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key ready for encryption and decryption.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
    /// Whether the batched path may use AES-NI (resolved at
    /// construction from [`backend::active`], or forced through
    /// [`Aes128::with_backend`] so tests and benches can pin a path
    /// without touching process environment).
    use_aesni: bool,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ key: <redacted> }}")
    }
}

impl Aes128 {
    /// Expand a 128-bit key under the process-wide active backend.
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, backend::active())
    }

    /// Expand a 128-bit key with an explicitly chosen backend. An
    /// `Accel` request on a host without AES-NI silently degrades to
    /// the software path — the selection can never exceed the CPU.
    pub fn with_backend(key: &[u8; 16], backend: CryptoBackend) -> Self {
        let mut aes = Self::expand(key);
        aes.use_aesni = backend::effective_caps(backend).aesni;
        aes
    }

    /// The backend the batched path will actually use.
    pub fn backend(&self) -> CryptoBackend {
        if self.use_aesni {
            CryptoBackend::Accel
        } else {
            CryptoBackend::Soft
        }
    }

    /// Expand a 128-bit key into the 11 round keys.
    fn expand(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 {
            round_keys,
            use_aesni: false,
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// State layout: byte `i` of the block is state row `i % 4`, column
    /// `i / 4` (FIPS-197 column-major order); `state[r + 4c]` below.
    fn shift_rows(s: &mut [u8; 16]) {
        // row 1 rotate left 1; row 2 left 2; row 3 left 3
        let t = [s[1], s[5], s[9], s[13]];
        s[1] = t[1];
        s[5] = t[2];
        s[9] = t[3];
        s[13] = t[0];
        s.swap(2, 10);
        s.swap(6, 14);
        let t = [s[3], s[7], s[11], s[15]];
        s[3] = t[3];
        s[7] = t[0];
        s[11] = t[1];
        s[15] = t[2];
    }

    fn inv_shift_rows(s: &mut [u8; 16]) {
        let t = [s[1], s[5], s[9], s[13]];
        s[1] = t[3];
        s[5] = t[0];
        s[9] = t[1];
        s[13] = t[2];
        s.swap(2, 10);
        s.swap(6, 14);
        let t = [s[3], s[7], s[11], s[15]];
        s[3] = t[1];
        s[7] = t[2];
        s[11] = t[3];
        s[15] = t[0];
    }

    fn mix_columns(s: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            s[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            s[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            s[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(s: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            s[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            s[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            s[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt every 16-byte block of `buf` in place, in one batched pass.
    ///
    /// Identical output to calling [`Aes128::encrypt_block`] per block (the
    /// blocks are independent — this is ECB over the caller's counter
    /// inputs, exactly what CTR keystream generation needs). On hosts
    /// with AES-NI (unless [`Aes128::with_backend`] pinned the software
    /// path) the blocks run through the multi-lane intrinsic path —
    /// same rounds, same keys, bit-identical ciphertext; otherwise the
    /// round loop is hoisted outside the block loop so each round key
    /// is loaded once per *burst* instead of once per *block*.
    ///
    /// # Panics
    /// Panics unless `buf.len()` is a multiple of 16.
    pub fn encrypt_blocks(&self, buf: &mut [u8]) {
        assert!(
            buf.len().is_multiple_of(16),
            "batched encryption needs whole 16-byte blocks"
        );
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only ever set from
            // `backend::effective_caps`, which requires the runtime
            // AES-NI probe to have passed; length checked above.
            unsafe { backend::aesni::encrypt_blocks(&self.round_keys, buf) };
            return;
        }
        self.encrypt_blocks_soft(buf);
    }

    /// The batched software path, callable directly (the bench and the
    /// cross-backend equivalence suite compare it against the
    /// accelerated path byte for byte).
    ///
    /// # Panics
    /// Panics unless `buf.len()` is a multiple of 16.
    pub fn encrypt_blocks_soft(&self, buf: &mut [u8]) {
        assert!(
            buf.len().is_multiple_of(16),
            "batched encryption needs whole 16-byte blocks"
        );
        let rk0 = &self.round_keys[0];
        for chunk in buf.chunks_exact_mut(16) {
            for (b, k) in chunk.iter_mut().zip(rk0.iter()) {
                *b ^= k;
            }
        }
        for round in 1..10 {
            let rk = &self.round_keys[round];
            for chunk in buf.chunks_exact_mut(16) {
                let block: &mut [u8; 16] = chunk.try_into().expect("16-byte chunk");
                Self::sub_bytes(block);
                Self::shift_rows(block);
                Self::mix_columns(block);
                Self::add_round_key(block, rk);
            }
        }
        let rk10 = &self.round_keys[10];
        for chunk in buf.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().expect("16-byte chunk");
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::add_round_key(block, rk10);
        }
    }

    /// Encrypt a copy of `block` and return the ciphertext.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Decrypt a copy of `block` and return the plaintext.
    pub fn decrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.decrypt_block(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn key16(s: &str) -> [u8; 16] {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B worked example.
        let aes = Aes128::new(&key16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = key16("3243f6a8885a308d313198a2e0370734");
        let ct = aes.encrypt(&pt);
        assert_eq!(ct.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1 AES-128 example vector.
        let aes = Aes128::new(&key16("000102030405060708090a0b0c0d0e0f"));
        let pt = key16("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt(&pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt(&ct), pt);
    }

    #[test]
    fn decrypt_inverts_encrypt_in_place() {
        let aes = Aes128::new(&[7u8; 16]);
        let original = *b"secbus-test-blk!";
        let mut block = original;
        aes.encrypt_block(&mut block);
        assert_ne!(block, original);
        aes.decrypt_block(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let a = Aes128::new(&[1u8; 16]);
        let b = Aes128::new(&[2u8; 16]);
        let pt = [0u8; 16];
        assert_ne!(a.encrypt(&pt), b.encrypt(&pt));
    }

    #[test]
    fn single_bit_key_change_diffuses() {
        let mut k = [0u8; 16];
        let a = Aes128::new(&k);
        k[15] ^= 1;
        let b = Aes128::new(&k);
        let pt = [0u8; 16];
        let (ca, cb) = (a.encrypt(&pt), b.encrypt(&pt));
        let differing_bits: u32 = ca
            .iter()
            .zip(cb.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        // Avalanche: expect roughly half of the 128 bits to differ.
        assert!(differing_bits > 30, "only {differing_bits} bits differ");
    }

    #[test]
    fn debug_redacts_key() {
        let aes = Aes128::new(&[9u8; 16]);
        let s = format!("{aes:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains('9'));
    }

    #[test]
    fn gf_multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(gmul(a, 1), a);
            assert_eq!(gmul(a, 2), xtime(a));
            assert_eq!(gmul(a, 0), 0);
        }
        // Commutativity spot checks.
        assert_eq!(gmul(0x57, 0x83), gmul(0x83, 0x57));
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
    }

    #[test]
    fn inv_sbox_is_inverse() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    /// Batched encryption is byte-identical to the per-block path for
    /// random keys and burst lengths (including the empty burst).
    #[test]
    fn encrypt_blocks_matches_per_block() {
        let mut state = 0xbabc_0000_5eed_0001u64;
        for _ in 0..64 {
            let mut key = [0u8; 16];
            crate::test_rng::fill(&mut state, &mut key);
            let aes = Aes128::new(&key);
            let blocks = (crate::test_rng::splitmix64(&mut state) % 9) as usize;
            let mut buf = vec![0u8; 16 * blocks];
            crate::test_rng::fill(&mut state, &mut buf);
            let mut expected = buf.clone();
            for chunk in expected.chunks_exact_mut(16) {
                let block: &mut [u8; 16] = chunk.try_into().unwrap();
                aes.encrypt_block(block);
            }
            aes.encrypt_blocks(&mut buf);
            assert_eq!(buf, expected, "burst of {blocks} blocks");
        }
    }

    #[test]
    #[should_panic(expected = "whole 16-byte blocks")]
    fn encrypt_blocks_rejects_partial_block() {
        Aes128::new(&[0; 16]).encrypt_blocks(&mut [0u8; 24]);
    }

    /// Cross-backend: the accelerated batched path is byte-identical to
    /// the software batched path for random keys and burst lengths,
    /// including empty bursts and lane remainders (`blocks % 8 != 0`).
    /// On hosts without AES-NI the accel cipher degrades to soft and
    /// the comparison is trivially (but still correctly) true.
    #[test]
    fn accel_batched_matches_soft_batched() {
        let mut state = 0xacce_1000_0000_0001u64;
        for round in 0..64 {
            let mut key = [0u8; 16];
            crate::test_rng::fill(&mut state, &mut key);
            let soft = Aes128::with_backend(&key, crate::backend::CryptoBackend::Soft);
            let accel = Aes128::with_backend(&key, crate::backend::CryptoBackend::Accel);
            // 0..=18 blocks sweeps below, at and above the 8-lane width.
            let blocks = (crate::test_rng::splitmix64(&mut state) % 19) as usize;
            let mut a = vec![0u8; 16 * blocks];
            crate::test_rng::fill(&mut state, &mut a);
            let mut b = a.clone();
            soft.encrypt_blocks_soft(&mut a);
            accel.encrypt_blocks(&mut b);
            assert_eq!(a, b, "round {round}, burst of {blocks} blocks");
        }
    }

    /// Counter-word carry audit: `encrypt_blocks` is "ECB over the
    /// caller's counter inputs", so a burst whose 64-bit counter field
    /// crosses a 32-bit low-word boundary (0xffff_fffd + 8 blocks) must
    /// cipher each counter exactly as the per-block reference does —
    /// no SIMD-style low-dword-only increment may ever creep in.
    #[test]
    fn counter_low_word_wrap_matches_per_block() {
        let aes = Aes128::new(b"carry-audit-key!");
        let base = u64::from(u32::MAX) - 2;
        let mut batched = vec![0u8; 16 * 8];
        for (i, input) in batched.chunks_exact_mut(16).enumerate() {
            input[..8].copy_from_slice(&(base + i as u64).to_be_bytes());
            input[8..].copy_from_slice(&7u64.to_be_bytes());
        }
        let mut expected = batched.clone();
        for chunk in expected.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            aes.encrypt_block(block);
        }
        aes.encrypt_blocks(&mut batched);
        assert_eq!(batched, expected, "batched diverged across the u32 wrap");
        // Both backends, explicitly.
        for backend in [
            crate::backend::CryptoBackend::Soft,
            crate::backend::CryptoBackend::Accel,
        ] {
            let forced = Aes128::with_backend(b"carry-audit-key!", backend);
            let mut buf = vec![0u8; 16 * 8];
            for (i, input) in buf.chunks_exact_mut(16).enumerate() {
                input[..8].copy_from_slice(&(base + i as u64).to_be_bytes());
                input[8..].copy_from_slice(&7u64.to_be_bytes());
            }
            forced.encrypt_blocks(&mut buf);
            assert_eq!(buf, expected, "{} backend", backend.name());
        }
    }

    /// The FIPS-197 vectors hold on the accelerated path too (one lane,
    /// i.e. the remainder loop, and a full 8-lane burst of the same
    /// block must agree with the known ciphertext).
    #[test]
    fn accel_path_reproduces_fips_vectors() {
        let aes = Aes128::with_backend(
            &key16("000102030405060708090a0b0c0d0e0f"),
            crate::backend::CryptoBackend::Accel,
        );
        let pt = key16("00112233445566778899aabbccddeeff");
        let mut one = pt.to_vec();
        aes.encrypt_blocks(&mut one);
        assert_eq!(one, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        let mut eight: Vec<u8> = (0..8).flat_map(|_| pt).collect();
        aes.encrypt_blocks(&mut eight);
        for lane in eight.chunks_exact(16) {
            assert_eq!(lane, &hex("69c4e0d86a7b0430d8cdb78070b4c55a")[..]);
        }
    }

    #[test]
    fn all_zero_vector() {
        // Well-known AES-128 ECB vector: zero key, zero block.
        let aes = Aes128::new(&[0; 16]);
        let ct = aes.encrypt(&[0; 16]);
        assert_eq!(ct.to_vec(), hex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    }

    #[test]
    fn thousand_fold_chained_roundtrip() {
        // Monte-Carlo-style chaining: 1000 encryptions then 1000
        // decryptions must return to the start, and the chain must not
        // cycle early (all intermediate states distinct from the start).
        let aes = Aes128::new(&key16("000102030405060708090a0b0c0d0e0f"));
        let start = *b"chain-start-blk!";
        let mut block = start;
        for i in 0..1000 {
            aes.encrypt_block(&mut block);
            assert_ne!(block, start, "cycle after {i} rounds");
        }
        for _ in 0..1000 {
            aes.decrypt_block(&mut block);
        }
        assert_eq!(block, start);
    }

    /// Randomized: decrypt∘encrypt is identity and encryption is injective
    /// for random keys and blocks.
    #[test]
    fn roundtrip_and_injectivity_on_random_blocks() {
        let mut state = 0xae55_0000_1234_5678u64;
        for _ in 0..256 {
            let mut key = [0u8; 16];
            let mut a = [0u8; 16];
            let mut b = [0u8; 16];
            crate::test_rng::fill(&mut state, &mut key);
            crate::test_rng::fill(&mut state, &mut a);
            crate::test_rng::fill(&mut state, &mut b);
            let aes = Aes128::new(&key);
            assert_eq!(aes.decrypt(&aes.encrypt(&a)), a);
            assert_eq!(aes.encrypt(&a) == aes.encrypt(&b), a == b);
        }
    }
}
