//! SHA-256 (FIPS-180-4), implemented from scratch.
//!
//! The hash function underneath the Integrity Core's hash tree. Streaming
//! interface ([`Sha256`]) plus a one-shot helper ([`sha256`]).
//!
//! Hashers constructed via [`Sha256::new`] consult [`crate::backend`]
//! and, when the host exposes the SHA extensions, run whole 64-byte
//! blocks through the SHA-NI compression in
//! `backend::shani` — same FIPS-180-4 rounds executed by dedicated
//! instructions, so digests are bit-identical to the software path
//! (the scalar `Sha256::compress` below, which stays the
//! always-available reference).

use crate::backend::{self, CryptoBackend};

/// Initial hash values (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte digest.
pub type Digest = [u8; 32];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_bytes: u64,
    use_shani: bool,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher on the process-wide active backend (see
    /// [`crate::backend::active`]).
    pub fn new() -> Self {
        Self::with_backend(backend::active())
    }

    /// A fresh hasher on an explicit backend. Requesting
    /// [`CryptoBackend::Accel`] on a host without the SHA extensions
    /// degrades to the software compression — never to wrong output.
    pub fn with_backend(backend: CryptoBackend) -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            total_bytes: 0,
            use_shani: backend::effective_caps(backend).shani,
        }
    }

    /// The backend this hasher actually compresses with.
    pub fn backend(&self) -> CryptoBackend {
        if self.use_shani {
            CryptoBackend::Accel
        } else {
            CryptoBackend::Soft
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_bytes += data.len() as u64;
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress_run(&block);
                self.buffered = 0;
            }
        }
        let whole = rest.len() / 64 * 64;
        if whole > 0 {
            // One dispatch for the entire run of full blocks: the SHA-NI
            // path keeps the working state in registers across blocks.
            let (blocks, tail) = rest.split_at(whole);
            self.compress_run(blocks);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Compress a run of whole 64-byte blocks on the selected backend.
    fn compress_run(&mut self, blocks: &[u8]) {
        debug_assert!(blocks.len().is_multiple_of(64));
        #[cfg(target_arch = "x86_64")]
        if self.use_shani {
            // SAFETY: `use_shani` is only ever set from
            // `backend::effective_caps`, which requires the runtime
            // probe for sha/ssse3/sse4.1 to have passed.
            unsafe { backend::shani::compress_blocks(&mut self.state, blocks, &K) };
            return;
        }
        for block in blocks.chunks_exact(64) {
            self.compress(block.try_into().unwrap());
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_bytes * 8;
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual length append (update would recount it).
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress_run(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 on the process-wide active backend.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 on an explicit backend (test and benchmark seam).
pub fn sha256_with(data: &[u8], backend: CryptoBackend) -> Digest {
    let mut h = Sha256::with_backend(backend);
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // FIPS-180-4 "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding edges must all differ
        // and be stable.
        let digests: Vec<Digest> = (50..70).map(|n| sha256(&vec![0xabu8; n])).collect();
        for (i, a) in digests.iter().enumerate() {
            for b in digests.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    /// Cross-backend: the SHA-NI compression (when the host has it)
    /// produces the same digest as the scalar reference for the FIPS
    /// vectors and for lengths straddling the 64-byte block boundary.
    /// Hosts without the extensions degrade Accel to Soft, so the
    /// comparison stays valid (if vacuous) everywhere.
    #[test]
    fn accel_matches_soft_across_block_boundaries() {
        let known = [
            (
                &b""[..],
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                &b"abc"[..],
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                &b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"[..],
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, expect) in known {
            assert_eq!(hex(&sha256_with(input, CryptoBackend::Accel)), expect);
            assert_eq!(hex(&sha256_with(input, CryptoBackend::Soft)), expect);
        }
        // Every length around the block boundary, 0..=200 bytes: covers
        // 63/64/65, 127/128/129 and all the padding edges in between.
        let data: Vec<u8> = (0..=255u8).cycle().take(201).collect();
        for len in 0..=200 {
            assert_eq!(
                sha256_with(&data[..len], CryptoBackend::Soft),
                sha256_with(&data[..len], CryptoBackend::Accel),
                "len {len}"
            );
        }
        // Streaming straddles: feed a 3-block message in two pieces cut
        // at/around block boundaries so the accel path sees buffered
        // bytes, partial blocks and multi-block runs in one life.
        let msg: Vec<u8> = (0..192u8).collect();
        for cut in [0usize, 1, 63, 64, 65, 127, 128, 129, 191, 192] {
            let mut h = Sha256::with_backend(CryptoBackend::Accel);
            h.update(&msg[..cut]);
            h.update(&msg[cut..]);
            assert_eq!(
                h.finalize(),
                sha256_with(&msg, CryptoBackend::Soft),
                "cut {cut}"
            );
        }
    }

    /// Randomized: hashing is deterministic and streaming in two arbitrary
    /// pieces matches the one-shot digest, across random lengths and cuts.
    #[test]
    fn deterministic_and_streaming_equivalence() {
        let mut state = 0x5eed_5eed_5eed_5eedu64;
        for _ in 0..200 {
            let len = (crate::test_rng::splitmix64(&mut state) % 2048) as usize;
            let mut data = vec![0u8; len];
            crate::test_rng::fill(&mut state, &mut data);
            assert_eq!(sha256(&data), sha256(&data));
            let cut = if len == 0 {
                0
            } else {
                (crate::test_rng::splitmix64(&mut state) % (len as u64 + 1)) as usize
            };
            let mut h = Sha256::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finalize(), sha256(&data));
        }
    }
}
