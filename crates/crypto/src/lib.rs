//! # secbus-crypto — the cryptographic cores of the Local Ciphering Firewall
//!
//! The paper's Local Ciphering Firewall (LCF) contains two hardware cores:
//!
//! * a **Confidentiality Core** "based on a AES (Advanced Encryption
//!   Standard) algorithm with 128-bits key" — here [`aes`] (from-scratch
//!   FIPS-197 AES-128) driven in counter mode by [`ctr::MemoryCipher`],
//!   whose keystream is bound to the physical block address (relocation
//!   protection) and a per-block timestamp (replay protection), matching
//!   the paper's "time stamp tags … memory addresses are controlled";
//! * an **Integrity Core** "based on hash-trees" — here [`mod@sha256`]
//!   (from-scratch FIPS-180-4) feeding a [`merkle::MerkleTree`] whose root
//!   lives on-chip, so any external tampering (spoofing, replay,
//!   relocation) fails path verification.
//!
//! Everything is implemented from first principles — no external crypto
//! crates — and validated against the official test vectors in the unit
//! tests. These are functional models: the *timing* of the cores (11-cycle
//! AES latency, 20-cycle integrity latency, Table II) is modelled by
//! `secbus-core`'s pipeline wrappers, not here.

pub mod aes;
pub mod ctr;
pub mod kdf;
pub mod merkle;
pub mod sha256;
pub mod timestamp;

pub use aes::Aes128;
pub use ctr::MemoryCipher;
pub use kdf::{derive_key_set, derive_region_key};
pub use merkle::MerkleTree;
pub use sha256::{sha256, Sha256};
pub use timestamp::TimestampTable;
