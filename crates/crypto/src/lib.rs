//! # secbus-crypto — the cryptographic cores of the Local Ciphering Firewall
//!
//! The paper's Local Ciphering Firewall (LCF) contains two hardware cores:
//!
//! * a **Confidentiality Core** "based on a AES (Advanced Encryption
//!   Standard) algorithm with 128-bits key" — here [`aes`] (from-scratch
//!   FIPS-197 AES-128) driven in counter mode by [`ctr::MemoryCipher`],
//!   whose keystream is bound to the physical block address (relocation
//!   protection) and a per-block timestamp (replay protection), matching
//!   the paper's "time stamp tags … memory addresses are controlled";
//! * an **Integrity Core** "based on hash-trees" — here [`mod@sha256`]
//!   (from-scratch FIPS-180-4) feeding a [`merkle::MerkleTree`] whose root
//!   lives on-chip, so any external tampering (spoofing, replay,
//!   relocation) fails path verification.
//!
//! Everything is implemented from first principles — no external crypto
//! crates — and validated against the official test vectors in the unit
//! tests. These are functional models: the *timing* of the cores (11-cycle
//! AES latency, 20-cycle integrity latency, Table II) is modelled by
//! `secbus-core`'s pipeline wrappers, not here.
//!
//! ## Backends
//!
//! The hot paths (batched AES, SHA-256 compression, Merkle build/verify)
//! dispatch through [`backend`]: a runtime probe selects AES-NI/SHA-NI
//! intrinsics when the host has them, with the from-scratch software
//! implementations as the always-available fallback (and the reference
//! the accelerated paths are tested bit-identical against). Set
//! `SECBUS_CRYPTO_BACKEND=soft` (or `accel`) to override the probe, the
//! same pattern as `SECBUS_SIM_CORE`.

pub mod aes;
pub mod backend;
pub mod ctr;
pub mod journal;
pub mod kdf;
pub mod merkle;
pub mod par;
pub mod sha256;
pub mod timestamp;

pub use aes::Aes128;
pub use backend::{active as active_backend, host_caps, CryptoBackend, HwCaps};
pub use ctr::MemoryCipher;
pub use journal::{
    IntentRecord, JournalReplay, MonotonicCounter, RegionImage, SecureStateImage, WriteAheadJournal,
};
pub use kdf::{derive_key_set, derive_region_key};
pub use merkle::{CachedVerify, MerkleTree, NodeCache};
pub use sha256::{sha256, sha256_with, Sha256};
pub use timestamp::TimestampTable;

/// Deterministic randomness for this crate's randomized tests (the crate
/// itself is dependency-free, including in test configuration).
#[cfg(test)]
pub(crate) mod test_rng {
    /// SplitMix64 step — statistically strong enough for test fuzzing and
    /// identical on every platform.
    pub fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Fill a buffer with pseudo-random bytes.
    pub fn fill(state: &mut u64, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = splitmix64(state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}
