//! The Integrity Core's hash tree.
//!
//! A binary Merkle tree over the protected external-memory blocks. The root
//! is on-chip state (trusted, like the Configuration Memories); interior
//! nodes conceptually live wherever the implementation caches them — what
//! matters for the threat model is that a verifier holding only the root
//! can detect any modification of a leaf, which is exactly what
//! [`MerkleTree::verify_proof`] provides.
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01` prefixes)
//! so an attacker cannot pass an interior node off as a leaf.

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefix for leaf hashes.
const LEAF_TAG: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
const NODE_TAG: u8 = 0x01;

/// Hash a leaf's raw block content (with its time-stamp tag) into a digest.
///
/// The tag is bound into the leaf so that a replayed (old-tag) block fails
/// verification even if the raw bytes were once genuine.
pub fn leaf_digest(block_index: u64, timestamp: u64, data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(&block_index.to_be_bytes());
    h.update(&timestamp.to_be_bytes());
    h.update(data);
    h.finalize()
}

fn node_digest(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A binary hash tree with in-place leaf updates and membership proofs.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// 1-based heap layout: node 1 is the root, leaves occupy
    /// `[leaf_base, leaf_base + capacity)`.
    nodes: Vec<Digest>,
    capacity: usize,
    leaves: usize,
}

impl MerkleTree {
    /// Build a tree over `leaves` leaf digests (padded internally to the
    /// next power of two with the digest of an empty leaf).
    ///
    /// # Panics
    /// Panics if `initial` is empty.
    pub fn build(initial: &[Digest]) -> Self {
        assert!(!initial.is_empty(), "MerkleTree needs at least one leaf");
        let leaves = initial.len();
        let capacity = leaves.next_power_of_two();
        let mut nodes = vec![[0u8; 32]; 2 * capacity];
        let pad = sha256(&[LEAF_TAG]);
        for i in 0..capacity {
            nodes[capacity + i] = if i < leaves { initial[i] } else { pad };
        }
        for i in (1..capacity).rev() {
            nodes[i] = node_digest(&nodes[2 * i].clone(), &nodes[2 * i + 1].clone());
        }
        MerkleTree {
            nodes,
            capacity,
            leaves,
        }
    }

    /// Build a tree whose `leaves` leaves all hold `digest`.
    pub fn uniform(leaves: usize, digest: Digest) -> Self {
        Self::build(&vec![digest; leaves.max(1)])
    }

    /// Number of (real, unpadded) leaves.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// Whether the tree has zero real leaves (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// Tree height in edges (root to leaf).
    pub fn height(&self) -> u32 {
        self.capacity.trailing_zeros()
    }

    /// The on-chip root.
    pub fn root(&self) -> Digest {
        self.nodes[1]
    }

    /// Current digest stored for leaf `i`.
    pub fn leaf(&self, i: usize) -> Digest {
        assert!(i < self.leaves, "leaf index out of range");
        self.nodes[self.capacity + i]
    }

    /// Replace leaf `i` and recompute the path to the root.
    ///
    /// Returns the number of interior nodes rehashed (= height), which the
    /// timing model uses to charge the Integrity Core's update cost.
    pub fn update_leaf(&mut self, i: usize, digest: Digest) -> u32 {
        assert!(i < self.leaves, "leaf index out of range");
        let mut idx = self.capacity + i;
        self.nodes[idx] = digest;
        let mut hops = 0;
        while idx > 1 {
            idx /= 2;
            self.nodes[idx] = node_digest(
                &self.nodes[2 * idx].clone(),
                &self.nodes[2 * idx + 1].clone(),
            );
            hops += 1;
        }
        hops
    }

    /// Membership proof for leaf `i`: the sibling digests from leaf level
    /// up to (excluding) the root.
    pub fn proof(&self, i: usize) -> Vec<Digest> {
        assert!(i < self.leaves, "leaf index out of range");
        let mut idx = self.capacity + i;
        let mut out = Vec::with_capacity(self.height() as usize);
        while idx > 1 {
            out.push(self.nodes[idx ^ 1]);
            idx /= 2;
        }
        out
    }

    /// Verify that `leaf` is the digest of leaf `i` in the tree with the
    /// given `root`, using a sibling `proof`.
    pub fn verify_proof(root: &Digest, i: usize, leaf: &Digest, proof: &[Digest]) -> bool {
        let mut acc = *leaf;
        let mut idx = i;
        for sib in proof {
            acc = if idx.is_multiple_of(2) {
                node_digest(&acc, sib)
            } else {
                node_digest(sib, &acc)
            };
            idx /= 2;
        }
        acc == *root
    }

    /// Convenience: check a candidate digest for leaf `i` directly against
    /// the tree (what the Integrity Core does on a read).
    pub fn verify_leaf(&self, i: usize, candidate: &Digest) -> bool {
        let proof = self.proof(i);
        Self::verify_proof(&self.root(), i, candidate, &proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| leaf_digest(i as u64, 0, &[i as u8; 16]))
            .collect()
    }

    #[test]
    fn build_and_verify_all_leaves() {
        let init = leaves(5); // non-power-of-two
        let tree = MerkleTree::build(&init);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.height(), 3); // padded to 8
        for (i, l) in init.iter().enumerate() {
            assert!(tree.verify_leaf(i, l), "leaf {i}");
        }
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let tree = MerkleTree::build(&leaves(4));
        let forged = leaf_digest(0, 0, b"forged");
        assert!(!tree.verify_leaf(0, &forged));
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut tree = MerkleTree::build(&leaves(8));
        let old_root = tree.root();
        let new = leaf_digest(3, 1, &[0xff; 16]);
        let hops = tree.update_leaf(3, new);
        assert_eq!(hops, 3);
        assert_ne!(tree.root(), old_root);
        assert!(tree.verify_leaf(3, &new));
        // Other leaves still verify under the new root.
        assert!(tree.verify_leaf(0, &leaf_digest(0, 0, &[0; 16])));
    }

    #[test]
    fn replayed_leaf_fails_after_update() {
        // The detection path for a replay attack: the attacker restores the
        // old block bytes, but the tree has moved on.
        let mut tree = MerkleTree::build(&leaves(4));
        let old = tree.leaf(2);
        tree.update_leaf(2, leaf_digest(2, 1, &[9; 16]));
        assert!(!tree.verify_leaf(2, &old), "stale leaf must not verify");
    }

    #[test]
    fn relocated_leaf_fails() {
        // Leaf content copied from index 1 to index 2: the block-index
        // binding in the leaf digest breaks it even with identical bytes.
        let data = [0x77u8; 16];
        let l1 = leaf_digest(1, 0, &data);
        let l2 = leaf_digest(2, 0, &data);
        assert_ne!(l1, l2);
        let tree = MerkleTree::build(&[leaf_digest(0, 0, &data), l1, l2, leaf_digest(3, 0, &data)]);
        assert!(!tree.verify_leaf(2, &l1));
    }

    #[test]
    fn proof_roundtrip_and_tamper_detection() {
        let init = leaves(8);
        let tree = MerkleTree::build(&init);
        let proof = tree.proof(5);
        assert_eq!(proof.len(), 3);
        assert!(MerkleTree::verify_proof(&tree.root(), 5, &init[5], &proof));
        // Tampered sibling breaks the proof.
        let mut bad = proof.clone();
        bad[1][0] ^= 1;
        assert!(!MerkleTree::verify_proof(&tree.root(), 5, &init[5], &bad));
        // Wrong index breaks the proof.
        assert!(!MerkleTree::verify_proof(&tree.root(), 4, &init[5], &proof));
    }

    #[test]
    fn single_leaf_tree() {
        let d = leaf_digest(0, 0, b"only");
        let tree = MerkleTree::build(&[d]);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root(), d);
        assert!(tree.verify_leaf(0, &d));
        assert!(tree.proof(0).is_empty());
    }

    #[test]
    fn uniform_constructor() {
        let d = leaf_digest(0, 0, &[0; 16]);
        let tree = MerkleTree::uniform(16, d);
        assert_eq!(tree.len(), 16);
        assert!(tree.verify_leaf(15, &d));
    }

    #[test]
    fn domain_separation_leaf_vs_node() {
        // An interior node value must not verify as a leaf of a 2-level tree.
        let l = leaves(2);
        let tree = MerkleTree::build(&l);
        let root = tree.root();
        // Trying to use the root itself as a "leaf" with an empty proof
        // against itself is the classic confusion attack; the tag prevents
        // nothing here (empty proof trivially matches), but using a node as
        // a leaf one level down must fail:
        assert!(!tree.verify_leaf(0, &root));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_build_panics() {
        MerkleTree::build(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        MerkleTree::build(&leaves(3)).leaf(3);
    }

    /// Randomized: any single flipped bit in any leaf of any tree size is
    /// detected by path verification.
    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut state = 0xfeed_beef_cafe_f00du64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for _ in 0..256 {
            let n = 1 + (next() % 31) as usize;
            let init = leaves(n);
            let idx = (next() % n as u64) as usize;
            let byte = (next() % 32) as usize;
            let bit = (next() % 8) as u8;
            let tree = MerkleTree::build(&init);
            let mut tampered = init[idx];
            tampered[byte] ^= 1 << bit;
            assert!(
                !tree.verify_leaf(idx, &tampered),
                "n={n} idx={idx} byte={byte} bit={bit}"
            );
        }
    }

    /// Randomized: arbitrary update sequences keep every leaf verifiable.
    #[test]
    fn updates_keep_all_leaves_verifiable() {
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for _ in 0..64 {
            let mut tree = MerkleTree::build(&leaves(16));
            let mut current: Vec<Digest> = (0..16).map(|i| tree.leaf(i)).collect();
            let ops = 1 + (next() % 39) as usize;
            for _ in 0..ops {
                let idx = (next() % 16) as usize;
                let ts = next() % 100;
                let d = leaf_digest(idx as u64, ts, &[idx as u8; 16]);
                tree.update_leaf(idx, d);
                current[idx] = d;
            }
            for (i, d) in current.iter().enumerate() {
                assert!(tree.verify_leaf(i, d));
            }
        }
    }
}
