//! The Integrity Core's hash tree.
//!
//! A binary Merkle tree over the protected external-memory blocks. The root
//! is on-chip state (trusted, like the Configuration Memories); interior
//! nodes conceptually live wherever the implementation caches them — what
//! matters for the threat model is that a verifier holding only the root
//! can detect any modification of a leaf, which is exactly what
//! [`MerkleTree::verify_proof`] provides.
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01` prefixes)
//! so an attacker cannot pass an interior node off as a leaf.
//!
//! ## Cached verification
//!
//! The AEGIS observation: an interior node whose value is held in trusted
//! on-chip storage is as good a verification anchor as the root itself. A
//! bounded [`NodeCache`] models that storage; [`MerkleTree::verify_leaf_cached`]
//! walks leaf-to-root but stops at the first cached ancestor, and
//! [`MerkleTree::update_leaf_cached`] charges a write only up to its first
//! cached ancestor. The functional state (every node, the root) stays
//! exactly what the uncached tree computes — the cache changes *cost*, not
//! *verdicts* — which is what lets the Integrity Core's timing model claim
//! the savings without perturbing a single alert.

use crate::sha256::{sha256, Digest, Sha256};

/// A bounded, deterministically-evicted cache of trusted interior nodes.
///
/// Keys are 1-based heap indices into a [`MerkleTree`]'s node array; the
/// value is the node digest as last seen by the owning tree. Eviction is
/// strict LRU on a monotonic access tick — the simulator is
/// single-threaded per instance, so the tick order (and therefore every
/// hit, miss and eviction) is a pure function of the access sequence.
#[derive(Debug, Clone)]
pub struct NodeCache {
    capacity: usize,
    tick: u64,
    /// `(node index, digest, last-use tick)`, unordered.
    entries: Vec<(usize, Digest, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl NodeCache {
    /// A cache holding at most `capacity` interior nodes.
    ///
    /// # Panics
    /// Panics on a zero capacity (an always-miss cache is a footgun —
    /// model "no cache" by not constructing one).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "node cache capacity must be positive");
        NodeCache {
            capacity,
            tick: 0,
            entries: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of cached nodes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count (full walks to the root).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The cached digest for node `idx`, bumping its recency.
    fn get(&mut self, idx: usize) -> Option<Digest> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.0 == idx).map(|e| {
            e.2 = tick;
            e.1
        })
    }

    /// Insert (or refresh) node `idx`, evicting the least-recently-used
    /// entry when full.
    fn insert(&mut self, idx: usize, digest: Digest) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == idx) {
            e.1 = digest;
            e.2 = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push((idx, digest, self.tick));
    }

    /// Refresh the stored value of node `idx` if present, without touching
    /// recency (a coherence write-through, not a use). Returns whether the
    /// node was cached.
    fn refresh(&mut self, idx: usize, digest: Digest) -> bool {
        match self.entries.iter_mut().find(|e| e.0 == idx) {
            Some(e) => {
                e.1 = digest;
                true
            }
            None => false,
        }
    }
}

/// Outcome of one cached path verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedVerify {
    /// Whether the leaf verified (identical to the uncached verdict).
    pub verified: bool,
    /// Interior hashes actually computed (≤ tree height); this is what
    /// the Integrity Core's timing model charges.
    pub levels_hashed: u32,
    /// Whether the walk stopped at a cached trusted ancestor.
    pub cache_hit: bool,
}

/// Domain-separation prefix for leaf hashes.
const LEAF_TAG: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
const NODE_TAG: u8 = 0x01;

/// Hash a leaf's raw block content (with its time-stamp tag) into a digest.
///
/// The tag is bound into the leaf so that a replayed (old-tag) block fails
/// verification even if the raw bytes were once genuine.
pub fn leaf_digest(block_index: u64, timestamp: u64, data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(&block_index.to_be_bytes());
    h.update(&timestamp.to_be_bytes());
    h.update(data);
    h.finalize()
}

fn node_digest(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A binary hash tree with in-place leaf updates and membership proofs.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// 1-based heap layout: node 1 is the root, leaves occupy
    /// `[leaf_base, leaf_base + capacity)`.
    nodes: Vec<Digest>,
    capacity: usize,
    leaves: usize,
}

/// Leaves each build worker should own before another thread pays off;
/// [`MerkleTree::build`] sizes its thread count from this, so trees
/// below ~2× this threshold build serially with zero thread setup.
const PAR_LEAVES_PER_THREAD: usize = 4096;

/// Interior levels narrower than this are hashed serially even inside a
/// parallel build — near the root there is too little work per level to
/// amortize a scoped-thread fork/join.
const PAR_MIN_LEVEL_WIDTH: usize = 1024;

/// Leaf verifications each worker of [`MerkleTree::verify_all`] should
/// own before fanning out.
const PAR_VERIFIES_PER_THREAD: usize = 256;

impl MerkleTree {
    /// Build a tree over `leaves` leaf digests (padded internally to the
    /// next power of two with the digest of an empty leaf).
    ///
    /// Large trees build their interior levels in parallel (see
    /// [`MerkleTree::build_with_threads`]); the resulting nodes — and
    /// therefore the root — are bit-identical for every thread count,
    /// so callers never observe the parallelism.
    ///
    /// # Panics
    /// Panics if `initial` is empty.
    pub fn build(initial: &[Digest]) -> Self {
        let threads = crate::par::auto_threads(initial.len(), PAR_LEAVES_PER_THREAD);
        Self::build_with_threads(initial, threads)
    }

    /// [`MerkleTree::build`] with an explicit worker count. Interior
    /// levels are computed bottom-up; each wide level fans its parent
    /// hashes out over contiguous index spans (the bench harness's
    /// order-preserving `par_map_with` discipline, via
    /// [`crate::par::par_map_indexed`]) and narrow levels near the root
    /// stay serial. Every node value is a pure function of the level
    /// below, so the tree is identical for any `threads`.
    pub fn build_with_threads(initial: &[Digest], threads: usize) -> Self {
        assert!(!initial.is_empty(), "MerkleTree needs at least one leaf");
        let leaves = initial.len();
        let capacity = leaves.next_power_of_two();
        let mut nodes = vec![[0u8; 32]; 2 * capacity];
        let pad = sha256(&[LEAF_TAG]);
        for i in 0..capacity {
            nodes[capacity + i] = if i < leaves { initial[i] } else { pad };
        }
        let threads = threads.max(1);
        let mut width = capacity / 2;
        while width >= 1 {
            if threads > 1 && width >= PAR_MIN_LEVEL_WIDTH {
                let level: Vec<Digest> = crate::par::par_map_indexed(width, threads, |i| {
                    let idx = width + i;
                    node_digest(&nodes[2 * idx], &nodes[2 * idx + 1])
                });
                nodes[width..2 * width].copy_from_slice(&level);
            } else {
                for i in width..2 * width {
                    // Digests are Copy: split the slice instead of cloning.
                    let (upper, lower) = nodes.split_at_mut(2 * i);
                    upper[i] = node_digest(&lower[0], &lower[1]);
                }
            }
            width /= 2;
        }
        MerkleTree {
            nodes,
            capacity,
            leaves,
        }
    }

    /// Verify candidate digests for leaves `0..candidates.len()` in
    /// bulk, fanning independent path walks out over worker threads.
    /// Element `i` of the result is exactly
    /// `self.verify_leaf(i, &candidates[i])`.
    ///
    /// # Panics
    /// Panics if there are more candidates than (real) leaves.
    pub fn verify_all(&self, candidates: &[Digest]) -> Vec<bool> {
        assert!(
            candidates.len() <= self.leaves,
            "more candidates than leaves"
        );
        let threads = crate::par::auto_threads(candidates.len(), PAR_VERIFIES_PER_THREAD);
        crate::par::par_map_indexed(candidates.len(), threads, |i| {
            self.verify_leaf(i, &candidates[i])
        })
    }

    /// Build a tree whose `leaves` leaves all hold `digest`.
    pub fn uniform(leaves: usize, digest: Digest) -> Self {
        Self::build(&vec![digest; leaves.max(1)])
    }

    /// Number of (real, unpadded) leaves.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// Whether the tree has zero real leaves (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// Tree height in edges (root to leaf).
    pub fn height(&self) -> u32 {
        self.capacity.trailing_zeros()
    }

    /// The on-chip root.
    pub fn root(&self) -> Digest {
        self.nodes[1]
    }

    /// Current digest stored for leaf `i`.
    pub fn leaf(&self, i: usize) -> Digest {
        assert!(i < self.leaves, "leaf index out of range");
        self.nodes[self.capacity + i]
    }

    /// Replace leaf `i` and recompute the path to the root.
    ///
    /// Returns the number of interior nodes rehashed (= height), which the
    /// timing model uses to charge the Integrity Core's update cost.
    pub fn update_leaf(&mut self, i: usize, digest: Digest) -> u32 {
        assert!(i < self.leaves, "leaf index out of range");
        let mut idx = self.capacity + i;
        self.nodes[idx] = digest;
        let mut hops = 0;
        while idx > 1 {
            idx /= 2;
            let (upper, lower) = self.nodes.split_at_mut(2 * idx);
            upper[idx] = node_digest(&lower[0], &lower[1]);
            hops += 1;
        }
        hops
    }

    /// Like [`MerkleTree::update_leaf`], but charges the update only as
    /// far as its first cached trusted ancestor: the returned hop count is
    /// what the Integrity Core pays, while the tree itself (including the
    /// root) is still brought fully up to date, so roots and verdicts are
    /// identical to the uncached tree. Cached ancestors on the path are
    /// refreshed in place (the "dirty only the affected cached nodes"
    /// rule); nothing is inserted or evicted by an update.
    pub fn update_leaf_cached(&mut self, i: usize, digest: Digest, cache: &mut NodeCache) -> u32 {
        assert!(i < self.leaves, "leaf index out of range");
        let mut idx = self.capacity + i;
        self.nodes[idx] = digest;
        let mut hops = 0;
        let mut charged = None;
        while idx > 1 {
            idx /= 2;
            let (upper, lower) = self.nodes.split_at_mut(2 * idx);
            upper[idx] = node_digest(&lower[0], &lower[1]);
            hops += 1;
            if cache.refresh(idx, self.nodes[idx]) && charged.is_none() {
                charged = Some(hops);
            }
        }
        charged.unwrap_or(hops)
    }

    /// Verify leaf `i` against the tree, stopping at the first cached
    /// trusted ancestor instead of walking to the root.
    ///
    /// The verdict is **identical** to [`MerkleTree::verify_leaf`] as long
    /// as the cache only ever holds values this tree wrote into it (which
    /// the `_cached` methods guarantee); what changes is
    /// [`CachedVerify::levels_hashed`]. Every *successful* verification
    /// (full walk or early exit at a trusted ancestor) re-inserts the
    /// leaf's path into the cache: the walked segment is authenticated
    /// either way, and without the re-insert on hits, unrelated cold
    /// traffic steadily evicts a hot set's low anchors and hit walks get
    /// permanently longer. With the re-insert, repeated traffic to a
    /// working set converges to (and stays at) one-level walks.
    pub fn verify_leaf_cached(
        &self,
        i: usize,
        candidate: &Digest,
        cache: &mut NodeCache,
    ) -> CachedVerify {
        assert!(i < self.leaves, "leaf index out of range");
        let mut acc = *candidate;
        let mut idx = self.capacity + i;
        let mut levels = 0u32;
        while idx > 1 {
            let sib = self.nodes[idx ^ 1];
            acc = if idx.is_multiple_of(2) {
                node_digest(&acc, &sib)
            } else {
                node_digest(&sib, &acc)
            };
            levels += 1;
            idx /= 2;
            if idx > 1 {
                if let Some(trusted) = cache.get(idx) {
                    cache.hits += 1;
                    let verified = acc == trusted;
                    if verified {
                        self.cache_path(i, cache);
                    }
                    return CachedVerify {
                        verified,
                        levels_hashed: levels,
                        cache_hit: true,
                    };
                }
            }
        }
        let verified = acc == self.root();
        cache.misses += 1;
        if verified {
            self.cache_path(i, cache);
        }
        CachedVerify {
            verified,
            levels_hashed: levels,
            cache_hit: false,
        }
    }

    /// Insert leaf `i`'s interior path (excluding the root, which is
    /// on-chip and free) into the cache. Only called after the path was
    /// authenticated, so every inserted value is trusted.
    fn cache_path(&self, i: usize, cache: &mut NodeCache) {
        let mut fill = self.capacity + i;
        while fill > 3 {
            fill /= 2;
            cache.insert(fill, self.nodes[fill]);
        }
    }

    /// Membership proof for leaf `i`: the sibling digests from leaf level
    /// up to (excluding) the root.
    pub fn proof(&self, i: usize) -> Vec<Digest> {
        assert!(i < self.leaves, "leaf index out of range");
        let mut idx = self.capacity + i;
        let mut out = Vec::with_capacity(self.height() as usize);
        while idx > 1 {
            out.push(self.nodes[idx ^ 1]);
            idx /= 2;
        }
        out
    }

    /// Verify that `leaf` is the digest of leaf `i` in the tree with the
    /// given `root`, using a sibling `proof`.
    pub fn verify_proof(root: &Digest, i: usize, leaf: &Digest, proof: &[Digest]) -> bool {
        let mut acc = *leaf;
        let mut idx = i;
        for sib in proof {
            acc = if idx.is_multiple_of(2) {
                node_digest(&acc, sib)
            } else {
                node_digest(sib, &acc)
            };
            idx /= 2;
        }
        acc == *root
    }

    /// Convenience: check a candidate digest for leaf `i` directly against
    /// the tree (what the Integrity Core does on a read).
    pub fn verify_leaf(&self, i: usize, candidate: &Digest) -> bool {
        let proof = self.proof(i);
        Self::verify_proof(&self.root(), i, candidate, &proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| leaf_digest(i as u64, 0, &[i as u8; 16]))
            .collect()
    }

    #[test]
    fn build_and_verify_all_leaves() {
        let init = leaves(5); // non-power-of-two
        let tree = MerkleTree::build(&init);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.height(), 3); // padded to 8
        for (i, l) in init.iter().enumerate() {
            assert!(tree.verify_leaf(i, l), "leaf {i}");
        }
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let tree = MerkleTree::build(&leaves(4));
        let forged = leaf_digest(0, 0, b"forged");
        assert!(!tree.verify_leaf(0, &forged));
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut tree = MerkleTree::build(&leaves(8));
        let old_root = tree.root();
        let new = leaf_digest(3, 1, &[0xff; 16]);
        let hops = tree.update_leaf(3, new);
        assert_eq!(hops, 3);
        assert_ne!(tree.root(), old_root);
        assert!(tree.verify_leaf(3, &new));
        // Other leaves still verify under the new root.
        assert!(tree.verify_leaf(0, &leaf_digest(0, 0, &[0; 16])));
    }

    #[test]
    fn replayed_leaf_fails_after_update() {
        // The detection path for a replay attack: the attacker restores the
        // old block bytes, but the tree has moved on.
        let mut tree = MerkleTree::build(&leaves(4));
        let old = tree.leaf(2);
        tree.update_leaf(2, leaf_digest(2, 1, &[9; 16]));
        assert!(!tree.verify_leaf(2, &old), "stale leaf must not verify");
    }

    #[test]
    fn relocated_leaf_fails() {
        // Leaf content copied from index 1 to index 2: the block-index
        // binding in the leaf digest breaks it even with identical bytes.
        let data = [0x77u8; 16];
        let l1 = leaf_digest(1, 0, &data);
        let l2 = leaf_digest(2, 0, &data);
        assert_ne!(l1, l2);
        let tree = MerkleTree::build(&[leaf_digest(0, 0, &data), l1, l2, leaf_digest(3, 0, &data)]);
        assert!(!tree.verify_leaf(2, &l1));
    }

    #[test]
    fn proof_roundtrip_and_tamper_detection() {
        let init = leaves(8);
        let tree = MerkleTree::build(&init);
        let proof = tree.proof(5);
        assert_eq!(proof.len(), 3);
        assert!(MerkleTree::verify_proof(&tree.root(), 5, &init[5], &proof));
        // Tampered sibling breaks the proof.
        let mut bad = proof.clone();
        bad[1][0] ^= 1;
        assert!(!MerkleTree::verify_proof(&tree.root(), 5, &init[5], &bad));
        // Wrong index breaks the proof.
        assert!(!MerkleTree::verify_proof(&tree.root(), 4, &init[5], &proof));
    }

    #[test]
    fn single_leaf_tree() {
        let d = leaf_digest(0, 0, b"only");
        let tree = MerkleTree::build(&[d]);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root(), d);
        assert!(tree.verify_leaf(0, &d));
        assert!(tree.proof(0).is_empty());
    }

    #[test]
    fn uniform_constructor() {
        let d = leaf_digest(0, 0, &[0; 16]);
        let tree = MerkleTree::uniform(16, d);
        assert_eq!(tree.len(), 16);
        assert!(tree.verify_leaf(15, &d));
    }

    #[test]
    fn domain_separation_leaf_vs_node() {
        // An interior node value must not verify as a leaf of a 2-level tree.
        let l = leaves(2);
        let tree = MerkleTree::build(&l);
        let root = tree.root();
        // Trying to use the root itself as a "leaf" with an empty proof
        // against itself is the classic confusion attack; the tag prevents
        // nothing here (empty proof trivially matches), but using a node as
        // a leaf one level down must fail:
        assert!(!tree.verify_leaf(0, &root));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_build_panics() {
        MerkleTree::build(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        MerkleTree::build(&leaves(3)).leaf(3);
    }

    /// Cached verification returns the exact verdict of the uncached walk
    /// for random trees, access patterns, updates and tampered leaves,
    /// while never hashing more levels than the tree height.
    #[test]
    fn cached_verify_is_verdict_equivalent() {
        let mut state = 0xcac4_e000_0000_0001u64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for round in 0..64 {
            let n = 1 + (next() % 63) as usize;
            let mut tree = MerkleTree::build(&leaves(n));
            let mut cache = NodeCache::new(1 + (next() % 16) as usize);
            let mut current: Vec<Digest> = (0..n).map(|i| tree.leaf(i)).collect();
            for op in 0..48 {
                let idx = (next() % n as u64) as usize;
                match next() % 3 {
                    0 => {
                        // Update through the cached path.
                        let d = leaf_digest(idx as u64, next(), &[op as u8; 16]);
                        let hops = tree.update_leaf_cached(idx, d, &mut cache);
                        assert!(hops <= tree.height().max(1));
                        current[idx] = d;
                    }
                    1 => {
                        // Clean read: must verify both ways.
                        let r = tree.verify_leaf_cached(idx, &current[idx], &mut cache);
                        assert!(r.verified, "round {round} op {op}");
                        assert!(r.levels_hashed <= tree.height());
                        assert!(tree.verify_leaf(idx, &current[idx]));
                    }
                    _ => {
                        // Tampered read: must fail both ways.
                        let mut bad = current[idx];
                        bad[(next() % 32) as usize] ^= 1 << (next() % 8);
                        let r = tree.verify_leaf_cached(idx, &bad, &mut cache);
                        assert_eq!(r.verified, tree.verify_leaf(idx, &bad));
                        assert!(!r.verified, "round {round} op {op}");
                    }
                }
            }
            assert!(cache.len() <= cache.capacity());
        }
    }

    /// A hot working set converges to short walks: after warm-up, repeated
    /// reads of the same leaf stop at a cached ancestor.
    #[test]
    fn cached_verify_hits_after_warmup() {
        let tree = MerkleTree::build(&leaves(256)); // height 8
        let mut cache = NodeCache::new(32);
        let leaf = tree.leaf(7);
        let cold = tree.verify_leaf_cached(7, &leaf, &mut cache);
        assert!(cold.verified && !cold.cache_hit);
        assert_eq!(cold.levels_hashed, tree.height());
        let warm = tree.verify_leaf_cached(7, &leaf, &mut cache);
        assert!(warm.verified && warm.cache_hit);
        assert!(warm.levels_hashed < cold.levels_hashed);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    /// Updates keep cached ancestors coherent: a cached verify after an
    /// update must accept the new leaf and reject the old one.
    #[test]
    fn cache_stays_coherent_across_updates() {
        let mut tree = MerkleTree::build(&leaves(64));
        let mut cache = NodeCache::new(16);
        let old = tree.leaf(5);
        // Warm the cache on leaf 5's path.
        assert!(tree.verify_leaf_cached(5, &old, &mut cache).verified);
        let new = leaf_digest(5, 99, &[0xEE; 16]);
        let charged = tree.update_leaf_cached(5, new, &mut cache);
        assert!(
            charged < tree.height(),
            "warmed path must stop at a cached ancestor (charged {charged})"
        );
        let r = tree.verify_leaf_cached(5, &new, &mut cache);
        assert!(r.verified && r.cache_hit);
        assert!(!tree.verify_leaf_cached(5, &old, &mut cache).verified);
        assert_eq!(tree.root(), {
            // The cached-update tree root equals a scratch uncached tree's.
            let mut scratch = MerkleTree::build(&leaves(64));
            scratch.update_leaf(5, new);
            scratch.root()
        });
    }

    /// Eviction is deterministic: two caches fed the identical access
    /// sequence are identical in hits, misses and evictions.
    #[test]
    fn cache_eviction_is_deterministic() {
        let tree = MerkleTree::build(&leaves(128));
        let run = || {
            let mut cache = NodeCache::new(4);
            let mut state = 0x0dde_7e12_3456_789au64;
            for _ in 0..200 {
                let idx = (crate::test_rng::splitmix64(&mut state) % 128) as usize;
                tree.verify_leaf_cached(idx, &tree.leaf(idx), &mut cache);
            }
            (cache.hits(), cache.misses(), cache.evictions(), cache.len())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.2 > 0, "a 4-entry cache under 128 leaves must evict");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_cache_rejected() {
        NodeCache::new(0);
    }

    /// Randomized: any single flipped bit in any leaf of any tree size is
    /// detected by path verification.
    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut state = 0xfeed_beef_cafe_f00du64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for _ in 0..256 {
            let n = 1 + (next() % 31) as usize;
            let init = leaves(n);
            let idx = (next() % n as u64) as usize;
            let byte = (next() % 32) as usize;
            let bit = (next() % 8) as u8;
            let tree = MerkleTree::build(&init);
            let mut tampered = init[idx];
            tampered[byte] ^= 1 << bit;
            assert!(
                !tree.verify_leaf(idx, &tampered),
                "n={n} idx={idx} byte={byte} bit={bit}"
            );
        }
    }

    /// Parallel builds are bit-identical to the serial build for every
    /// thread count, including tree sizes that cross the parallel level
    /// threshold and non-power-of-two leaf counts.
    #[test]
    fn parallel_build_matches_serial_for_any_thread_count() {
        for n in [1usize, 5, 1023, 2048, 2049, 4096] {
            let init = leaves(n);
            let serial = MerkleTree::build_with_threads(&init, 1);
            for threads in [2, 3, 4, 8, 13] {
                let par = MerkleTree::build_with_threads(&init, threads);
                assert_eq!(par.root(), serial.root(), "n={n} threads={threads}");
                assert_eq!(par.nodes, serial.nodes, "n={n} threads={threads}");
            }
            // The auto-sizing entry point too.
            assert_eq!(MerkleTree::build(&init).nodes, serial.nodes, "n={n}");
        }
    }

    /// Bulk parallel verification returns element-wise exactly what the
    /// per-leaf walk returns, tampered leaves included.
    #[test]
    fn verify_all_matches_per_leaf() {
        let init = leaves(600);
        let tree = MerkleTree::build(&init);
        let mut candidates = init.clone();
        candidates[17][3] ^= 1;
        candidates[599][0] ^= 0x80;
        let bulk = tree.verify_all(&candidates);
        assert_eq!(bulk.len(), 600);
        for (i, ok) in bulk.iter().enumerate() {
            assert_eq!(*ok, tree.verify_leaf(i, &candidates[i]), "leaf {i}");
        }
        assert!(!bulk[17] && !bulk[599]);
        assert!(bulk[0] && bulk[18]);
    }

    #[test]
    #[should_panic(expected = "more candidates than leaves")]
    fn verify_all_rejects_excess_candidates() {
        MerkleTree::build(&leaves(2)).verify_all(&leaves(3));
    }

    /// Randomized: arbitrary update sequences keep every leaf verifiable.
    #[test]
    fn updates_keep_all_leaves_verifiable() {
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut next = move || crate::test_rng::splitmix64(&mut state);
        for _ in 0..64 {
            let mut tree = MerkleTree::build(&leaves(16));
            let mut current: Vec<Digest> = (0..16).map(|i| tree.leaf(i)).collect();
            let ops = 1 + (next() % 39) as usize;
            for _ in 0..ops {
                let idx = (next() % 16) as usize;
                let ts = next() % 100;
                let d = leaf_digest(idx as u64, ts, &[idx as u8; 16]);
                tree.update_leaf(idx, d);
                current[idx] = d;
            }
            for (i, d) in current.iter().enumerate() {
                assert!(tree.verify_leaf(i, d));
            }
        }
    }
}
