//! Per-block time-stamp tags for replay protection.
//!
//! The paper: "Time stamp tags are also used to monitor the access time to
//! the external memory (replay attacks)." Each protected external-memory
//! block carries a counter that is bumped on every write; the counter value
//! is folded into the Confidentiality Core's keystream and into the leaf
//! hash of the Integrity Core. Replaying an old ciphertext therefore fails:
//! the stored tag has moved on, so decryption produces garbage and the leaf
//! hash no longer matches.
//!
//! The table itself is on-chip state (a trusted unit, like the paper's
//! Configuration Memories) — the adversary can never rewind it.

/// On-chip table of per-block write counters.
#[derive(Debug, Clone)]
pub struct TimestampTable {
    tags: Vec<u64>,
}

impl TimestampTable {
    /// Create a table covering `blocks` protected blocks, all at tag 0.
    pub fn new(blocks: usize) -> Self {
        TimestampTable {
            tags: vec![0; blocks],
        }
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the table covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Current tag of `block`.
    ///
    /// # Panics
    /// Panics if `block` is out of range — the caller (the LCF) derives the
    /// index from an address it already validated.
    #[inline]
    pub fn get(&self, block: usize) -> u64 {
        self.tags[block]
    }

    /// Bump the tag of `block` (a write is about to happen) and return the
    /// *new* value, which the write must be sealed under.
    #[inline]
    pub fn bump(&mut self, block: usize) -> u64 {
        self.tags[block] += 1;
        self.tags[block]
    }

    /// Total of all tags — a cheap proxy for "writes sealed so far".
    pub fn total_writes(&self) -> u64 {
        self.tags.iter().sum()
    }

    /// The full tag vector (checkpointing: the persistence layer seals
    /// these into a [`crate::SecureStateImage`]).
    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// Rebuild a table from persisted tags (boot-time recovery).
    pub fn from_tags(tags: Vec<u64>) -> Self {
        TimestampTable { tags }
    }

    /// Overwrite one tag (recovery rolling a block forward/back).
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn set(&mut self, block: usize, tag: u64) {
        self.tags[block] = tag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = TimestampTable::new(4);
        assert_eq!(t.len(), 4);
        assert!((0..4).all(|i| t.get(i) == 0));
        assert_eq!(t.total_writes(), 0);
    }

    #[test]
    fn bump_is_per_block() {
        let mut t = TimestampTable::new(3);
        assert_eq!(t.bump(1), 1);
        assert_eq!(t.bump(1), 2);
        assert_eq!(t.get(0), 0);
        assert_eq!(t.get(1), 2);
        assert_eq!(t.get(2), 0);
        assert_eq!(t.total_writes(), 2);
    }

    #[test]
    fn empty_table() {
        let t = TimestampTable::new(0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        TimestampTable::new(2).get(2);
    }
}
