//! Scoped-thread, order-preserving parallelism for the crypto hot
//! paths — the same merge discipline as the bench harness's
//! `par_map_with` (results land in input order, so every output is
//! exactly what the sequential loop would produce), re-implemented here
//! because this crate sits below the bench crate and carries no
//! dependencies.

/// Order-preserving parallel map over the indices `0..n`: worker `w`
/// of `threads` computes the contiguous index span
/// `[w * n / threads, (w + 1) * n / threads)` and the spans are
/// concatenated in worker order, so the result equals
/// `(0..n).map(f).collect()` for every thread count. `threads <= 1`
/// (or a tiny `n`) runs inline with no thread setup at all.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(n).max(1);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let mut spans: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let (lo, hi) = (w * n / threads, (w + 1) * n / threads);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            spans.push(h.join().expect("crypto par worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for span in spans {
        out.extend(span);
    }
    out
}

/// The worker count parallel Merkle operations default to: the host's
/// parallelism, capped so tiny trees never pay thread setup. Pure
/// host-capability read; the *output* of every parallel operation is
/// identical for any return value (see [`par_map_indexed`]).
pub fn auto_threads(work_items: usize, min_per_thread: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(work_items / min_per_thread.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(
                par_map_indexed(97, threads, |i| i * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map_indexed(0, 8, |_| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn auto_threads_bounds() {
        assert_eq!(auto_threads(0, 1024), 1);
        assert_eq!(auto_threads(1023, 1024), 1);
        let t = auto_threads(1 << 20, 1024);
        assert!(t >= 1);
        assert!(t <= std::thread::available_parallelism().map_or(1, |n| n.get()));
    }
}
