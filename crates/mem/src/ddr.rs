//! External DDR memory: banked open-row timing and a raw tamper surface.
//!
//! The DDR chip and the bus wires to it are *outside* the FPGA's trust
//! boundary. [`ExternalDdr::tamper`] and [`ExternalDdr::snoop`] model the
//! physical attacker: they read and write the stored bits directly, without
//! going through the functional access path, without costing simulated
//! time, and without any possibility of detection at this layer. Detection
//! is exactly the Local Ciphering Firewall's job one level up.

use secbus_bus::Width;

use crate::device::{load_le, store_le, MemDevice, MemError};

/// DDR timing parameters, in controller cycles.
#[derive(Debug, Clone, Copy)]
pub struct DdrTiming {
    /// Column access latency on a row hit.
    pub cas: u64,
    /// Row-activate latency (row miss on an idle bank).
    pub trcd: u64,
    /// Precharge latency (row conflict: close the open row first).
    pub trp: u64,
    /// Extra cycles for a write completing in the controller.
    pub write_recovery: u64,
    /// Bytes per DRAM row.
    pub row_bytes: u32,
    /// Number of banks (must be a power of two).
    pub banks: u32,
}

impl Default for DdrTiming {
    fn default() -> Self {
        DdrTiming {
            cas: 10,
            trcd: 10,
            trp: 10,
            write_recovery: 2,
            row_bytes: 1024,
            banks: 8,
        }
    }
}

/// The external DDR memory.
#[derive(Debug, Clone)]
pub struct ExternalDdr {
    data: Vec<u8>,
    timing: DdrTiming,
    /// Open row per bank (`None` = bank idle / precharged).
    open_rows: Vec<Option<u32>>,
    row_hits: u64,
    row_misses: u64,
    /// Armed torn-burst fault: the next store lands only its first
    /// `keep` bytes (power dies mid-burst).
    torn_next: Option<u8>,
    torn_stores: u64,
}

impl ExternalDdr {
    /// A zeroed DDR of `size` bytes with default timing.
    pub fn new(size: u32) -> Self {
        Self::with_timing(size, DdrTiming::default())
    }

    /// A zeroed DDR with explicit timing.
    ///
    /// # Panics
    /// Panics if `banks` is not a power of two or `row_bytes` is zero.
    pub fn with_timing(size: u32, timing: DdrTiming) -> Self {
        assert!(
            timing.banks.is_power_of_two(),
            "banks must be a power of two"
        );
        assert!(timing.row_bytes > 0, "row_bytes must be positive");
        ExternalDdr {
            data: vec![0; size as usize],
            open_rows: vec![None; timing.banks as usize],
            timing,
            row_hits: 0,
            row_misses: 0,
            torn_next: None,
            torn_stores: 0,
        }
    }

    #[inline]
    fn bank_and_row(&self, offset: u32) -> (usize, u32) {
        let row = offset / self.timing.row_bytes;
        let bank = (row & (self.timing.banks - 1)) as usize;
        (bank, row)
    }

    /// Row-buffer hits observed so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses (activations) observed so far.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    // ------------------------------------------------------------------
    // The attacker's surface: physical access to the stored bits.
    // ------------------------------------------------------------------

    /// Overwrite raw stored bytes, bypassing the functional path — the
    /// physical attacker's write access to the chip / external bus.
    ///
    /// # Panics
    /// Panics if the span exceeds the device (the attacker cannot write
    /// bytes that do not exist).
    pub fn tamper(&mut self, offset: u32, bytes: &[u8]) {
        let start = offset as usize;
        let end = start + bytes.len();
        assert!(end <= self.data.len(), "tamper outside device");
        self.data[start..end].copy_from_slice(bytes);
    }

    /// Read raw stored bytes — the attacker's bus probe. Note that on a
    /// protected region these are *ciphertext* bytes.
    pub fn snoop(&self, offset: u32, len: u32) -> &[u8] {
        &self.data[offset as usize..(offset + len) as usize]
    }

    /// Bulk-load at construction time (boot images). Functionally identical
    /// to [`ExternalDdr::tamper`] but named for honest uses.
    pub fn load(&mut self, offset: u32, bytes: &[u8]) {
        self.tamper(offset, bytes);
    }

    /// Full raw contents — the persisted surface a reboot starts from.
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    // ------------------------------------------------------------------
    // Torn-burst fault surface (power dies mid-store).
    // ------------------------------------------------------------------

    /// Arm a torn burst: the next store through the functional path (or
    /// the next consumer of [`ExternalDdr::take_tear`], for block-level
    /// writers like the LCF) lands only its first `keep` bytes.
    pub fn tear_next_store(&mut self, keep: u8) {
        self.torn_next = Some(keep);
    }

    /// Whether a torn burst is currently armed.
    pub fn tear_armed(&self) -> bool {
        self.torn_next.is_some()
    }

    /// Consume the armed tear, if any. Block-level writers (the LCF's
    /// protected-write path) call this before issuing their burst so the
    /// tear applies to the whole ciphertext block, not a 4-byte beat.
    pub fn take_tear(&mut self) -> Option<u8> {
        let keep = self.torn_next.take();
        if keep.is_some() {
            self.torn_stores += 1;
        }
        keep
    }

    /// Stores torn so far (fired tears, via either path).
    pub fn torn_stores(&self) -> u64 {
        self.torn_stores
    }
}

impl MemDevice for ExternalDdr {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read(&mut self, offset: u32, width: Width) -> Result<u32, MemError> {
        self.check(offset, width)?;
        Ok(load_le(&self.data, offset as usize, width))
    }

    fn write(&mut self, offset: u32, width: Width, value: u32) -> Result<(), MemError> {
        self.check(offset, width)?;
        if let Some(keep) = self.take_tear() {
            // Power died mid-beat: only the first `keep` bytes land.
            let full = value.to_le_bytes();
            let n = (keep as usize).min(width.bytes() as usize);
            let start = offset as usize;
            self.data[start..start + n].copy_from_slice(&full[..n]);
            return Ok(());
        }
        store_le(&mut self.data, offset as usize, width, value);
        Ok(())
    }

    fn latency(&mut self, offset: u32, is_write: bool) -> u64 {
        let (bank, row) = self.bank_and_row(offset);
        let t = &self.timing;
        let base = match self.open_rows[bank] {
            Some(open) if open == row => {
                self.row_hits += 1;
                t.cas
            }
            Some(_) => {
                self.row_misses += 1;
                self.open_rows[bank] = Some(row);
                t.trp + t.trcd + t.cas
            }
            None => {
                self.row_misses += 1;
                self.open_rows[bank] = Some(row);
                t.trcd + t.cas
            }
        };
        base + if is_write { t.write_recovery } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_read_write() {
        let mut d = ExternalDdr::new(4096);
        d.write(0x100, Width::Word, 0xcafe_f00d).unwrap();
        assert_eq!(d.read(0x100, Width::Word).unwrap(), 0xcafe_f00d);
        assert_eq!(d.read(0x102, Width::Half).unwrap(), 0xcafe);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = ExternalDdr::new(1 << 20);
        let miss = d.latency(0, false); // cold bank: activate + cas
        let hit = d.latency(4, false); // same row
        assert!(hit < miss, "hit {hit} vs miss {miss}");
        assert_eq!(hit, DdrTiming::default().cas);
        assert_eq!(d.row_hits(), 1);
        assert_eq!(d.row_misses(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let t = DdrTiming::default();
        let mut d = ExternalDdr::new(1 << 20);
        let _ = d.latency(0, false); // open row 0 in bank 0
                                     // Same bank, different row: rows map to banks by low bits, so row 8
                                     // (offset 8*1024) also lands in bank 0.
        let conflict = d.latency(8 * t.row_bytes, false);
        assert_eq!(conflict, t.trp + t.trcd + t.cas);
    }

    #[test]
    fn writes_cost_recovery() {
        let t = DdrTiming::default();
        let mut d = ExternalDdr::new(1 << 20);
        let _ = d.latency(0, false);
        let w = d.latency(4, true);
        assert_eq!(w, t.cas + t.write_recovery);
    }

    #[test]
    fn banks_are_independent() {
        let t = DdrTiming::default();
        let mut d = ExternalDdr::new(1 << 20);
        let _ = d.latency(0, false); // bank 0, row 0
        let other_bank = d.latency(t.row_bytes, false); // row 1 -> bank 1
        assert_eq!(other_bank, t.trcd + t.cas, "no conflict across banks");
    }

    #[test]
    fn tamper_bypasses_functional_path() {
        let mut d = ExternalDdr::new(256);
        d.write(0, Width::Word, 0x1111_1111).unwrap();
        d.tamper(0, &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(d.read(0, Width::Word).unwrap(), 0xefbe_adde);
        assert_eq!(d.snoop(0, 4), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn snoop_sees_stored_bytes() {
        let mut d = ExternalDdr::new(64);
        d.load(8, b"hello");
        assert_eq!(d.snoop(8, 5), b"hello");
    }

    #[test]
    fn torn_store_lands_partially() {
        let mut d = ExternalDdr::new(64);
        d.write(0, Width::Word, 0x1111_1111).unwrap();
        d.tear_next_store(2);
        assert!(d.tear_armed());
        d.write(0, Width::Word, 0xaabb_ccdd).unwrap();
        // Little-endian: the first two bytes of the new value land, the
        // high half keeps its old contents.
        assert_eq!(d.read(0, Width::Word).unwrap(), 0x1111_ccdd);
        assert_eq!(d.torn_stores(), 1);
        // The tear is one-shot.
        d.write(0, Width::Word, 0xaabb_ccdd).unwrap();
        assert_eq!(d.read(0, Width::Word).unwrap(), 0xaabb_ccdd);
    }

    #[test]
    fn take_tear_hands_the_fault_to_block_writers() {
        let mut d = ExternalDdr::new(64);
        d.tear_next_store(5);
        assert_eq!(d.take_tear(), Some(5));
        assert_eq!(d.take_tear(), None);
        assert_eq!(d.torn_stores(), 1);
    }

    #[test]
    #[should_panic(expected = "outside device")]
    fn tamper_out_of_range_panics() {
        ExternalDdr::new(8).tamper(4, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        ExternalDdr::with_timing(
            64,
            DdrTiming {
                banks: 3,
                ..Default::default()
            },
        );
    }
}
