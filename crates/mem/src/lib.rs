//! # secbus-mem — internal (BRAM) and external (DDR) memory models
//!
//! The paper's case study has "one internal shared memory (BRAM blocks)"
//! and "one external memory (DDR RAM)". The crucial asymmetry, and the
//! whole reason the Local Ciphering Firewall exists, is that the external
//! memory is *outside the trust boundary*: an attacker owns the external
//! bus and the DRAM chips. This crate models that by giving
//! [`ExternalDdr`] an explicit raw tamper surface ([`ExternalDdr::tamper`])
//! that bypasses the functional access path — exactly what `secbus-attack`
//! uses to mount replay, relocation and spoofing.
//!
//! * [`MemDevice`] — the slave-side functional interface (offset-addressed
//!   reads/writes plus a per-access latency in cycles).
//! * [`Bram`] — on-chip block RAM: single-cycle, trusted.
//! * [`ExternalDdr`] — banked open-row DRAM model: row hits are cheap, row
//!   conflicts pay precharge + activate, and everything is observable.

pub mod bram;
pub mod ddr;
pub mod device;
pub mod ihex;

pub use bram::Bram;
pub use ddr::{DdrTiming, ExternalDdr};
pub use device::{MemDevice, MemError};
pub use ihex::{encode_ihex, parse_ihex, HexImage};
