//! Intel HEX image loading.
//!
//! Boot images for the external memory commonly ship as Intel HEX; this
//! parser supports the record types that cover 32-bit spaces: data (00),
//! EOF (01), and extended linear address (04). Checksums are verified —
//! a corrupted image must fail loudly, not boot silently.

use core::fmt;

/// A parsed image: sparse chunks of (absolute address, bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HexImage {
    /// Address-sorted, non-overlapping data chunks.
    pub chunks: Vec<(u32, Vec<u8>)>,
}

impl HexImage {
    /// Total payload bytes.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|(_, d)| d.len()).sum()
    }

    /// Whether the image carries no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lowest address, if any data present.
    pub fn base(&self) -> Option<u32> {
        self.chunks.first().map(|(a, _)| *a)
    }

    /// Flatten into a contiguous byte vector starting at [`HexImage::base`],
    /// zero-filling gaps. Returns `None` for an empty image.
    pub fn flatten(&self) -> Option<(u32, Vec<u8>)> {
        let base = self.base()?;
        let end = self
            .chunks
            .iter()
            .map(|(a, d)| u64::from(*a) + d.len() as u64)
            .max()?;
        let mut bytes = vec![0u8; (end - u64::from(base)) as usize];
        for (a, d) in &self.chunks {
            let off = (a - base) as usize;
            bytes[off..off + d.len()].copy_from_slice(d);
        }
        Some((base, bytes))
    }
}

/// Why parsing failed, with the 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HexError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for HexError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, HexError> {
    Err(HexError {
        line,
        msg: msg.into(),
    })
}

/// Parse Intel HEX text.
pub fn parse_ihex(text: &str) -> Result<HexImage, HexError> {
    let mut image = HexImage::default();
    let mut upper: u32 = 0; // extended linear address << 16
    let mut saw_eof = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return err(line_no, "data after EOF record");
        }
        let Some(body) = line.strip_prefix(':') else {
            return err(line_no, format!("record must start with ':': {line:?}"));
        };
        if body.len() % 2 != 0 || body.len() < 10 {
            return err(line_no, "record too short or odd length");
        }
        let bytes: Vec<u8> = (0..body.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&body[i..i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|e| HexError {
                line: line_no,
                msg: format!("bad hex: {e}"),
            })?;
        let count = bytes[0] as usize;
        if bytes.len() != count + 5 {
            return err(
                line_no,
                format!("length field {count} does not match record size"),
            );
        }
        let sum: u8 = bytes.iter().fold(0u8, |a, &b| a.wrapping_add(b));
        if sum != 0 {
            return err(line_no, "checksum mismatch");
        }
        let addr16 = u32::from(bytes[1]) << 8 | u32::from(bytes[2]);
        let rectype = bytes[3];
        let data = &bytes[4..4 + count];
        match rectype {
            0x00 => {
                let abs = upper | addr16;
                image.chunks.push((abs, data.to_vec()));
            }
            0x01 => saw_eof = true,
            0x04 => {
                if count != 2 {
                    return err(line_no, "type-04 record must carry 2 bytes");
                }
                upper = (u32::from(data[0]) << 8 | u32::from(data[1])) << 16;
            }
            other => return err(line_no, format!("unsupported record type {other:#04x}")),
        }
    }
    if !saw_eof {
        return err(text.lines().count().max(1), "missing EOF record");
    }
    image.chunks.sort_by_key(|(a, _)| *a);
    // Overlap check.
    for pair in image.chunks.windows(2) {
        let (a0, d0) = &pair[0];
        let (a1, _) = &pair[1];
        if u64::from(*a0) + d0.len() as u64 > u64::from(*a1) {
            return err(0, format!("overlapping data at {a1:#010x}"));
        }
    }
    Ok(image)
}

/// Encode chunks back to Intel HEX (16-byte records) — used by tooling
/// and as the test oracle for the parser.
pub fn encode_ihex(chunks: &[(u32, Vec<u8>)]) -> String {
    let mut out = String::new();
    let mut upper = u32::MAX; // force an initial type-04
    let push_record = |out: &mut String, rectype: u8, addr16: u16, data: &[u8]| {
        let mut bytes = vec![data.len() as u8, (addr16 >> 8) as u8, addr16 as u8, rectype];
        bytes.extend_from_slice(data);
        let sum: u8 = bytes.iter().fold(0u8, |a, &b| a.wrapping_add(b));
        bytes.push(sum.wrapping_neg());
        out.push(':');
        for b in bytes {
            out.push_str(&format!("{b:02X}"));
        }
        out.push('\n');
    };
    for (addr, data) in chunks {
        for (i, rec) in data.chunks(16).enumerate() {
            let abs = addr + (i * 16) as u32;
            if abs >> 16 != upper {
                upper = abs >> 16;
                push_record(&mut out, 0x04, 0, &[(upper >> 8) as u8, upper as u8]);
            }
            push_record(&mut out, 0x00, abs as u16, rec);
        }
    }
    push_record(&mut out, 0x01, 0, &[]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_record_parses() {
        // The canonical example record.
        let img = parse_ihex(":0B0010006164647265737320676170A7\n:00000001FF\n").unwrap();
        assert_eq!(img.chunks.len(), 1);
        assert_eq!(img.chunks[0].0, 0x10);
        assert_eq!(img.chunks[0].1, b"address gap".to_vec());
        assert_eq!(img.len(), 11);
    }

    #[test]
    fn extended_linear_addresses() {
        let text = ":0200000480007A\n:04000000DEADBEEFC4\n:00000001FF\n";
        let img = parse_ihex(text).unwrap();
        assert_eq!(img.chunks[0].0, 0x8000_0000);
        assert_eq!(img.chunks[0].1, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn checksum_failure_is_fatal() {
        let err = parse_ihex(":0B0010006164647265737320676170A8\n:00000001FF\n").unwrap_err();
        assert!(err.msg.contains("checksum"), "{err}");
    }

    #[test]
    fn missing_eof_is_fatal() {
        let err = parse_ihex(":0B0010006164647265737320676170A7\n").unwrap_err();
        assert!(err.msg.contains("EOF"));
    }

    #[test]
    fn garbage_reports_line() {
        let err = parse_ihex(":00000001FF\nhello").unwrap_err();
        // data after EOF (line 2)
        assert_eq!(err.line, 2);
    }

    #[test]
    fn encode_parse_roundtrip() {
        let chunks = vec![
            (0x8000_0000u32, (0..40u8).collect::<Vec<u8>>()),
            (0x8001_0000, vec![0xFF; 5]),
        ];
        let text = encode_ihex(&chunks);
        let img = parse_ihex(&text).unwrap();
        let (base, flat) = img.flatten().unwrap();
        assert_eq!(base, 0x8000_0000);
        assert_eq!(&flat[..40], &(0..40u8).collect::<Vec<u8>>()[..]);
        assert_eq!(&flat[0x1_0000..0x1_0005], &[0xFF; 5]);
        assert_eq!(img.len(), 45);
    }

    #[test]
    fn flatten_fills_gaps_with_zeros() {
        let text = encode_ihex(&[(0x0, vec![1, 2]), (0x10, vec![3])]);
        let img = parse_ihex(&text).unwrap();
        let (base, flat) = img.flatten().unwrap();
        assert_eq!(base, 0);
        assert_eq!(flat.len(), 17);
        assert_eq!(flat[0], 1);
        assert!(flat[2..16].iter().all(|&b| b == 0));
        assert_eq!(flat[16], 3);
    }

    #[test]
    fn empty_image() {
        let img = parse_ihex(":00000001FF\n").unwrap();
        assert!(img.is_empty());
        assert_eq!(img.flatten(), None);
    }

    /// Randomized: arbitrary chunks at arbitrary bases survive an
    /// encode/parse/flatten round trip.
    #[test]
    fn roundtrip_arbitrary_chunks() {
        let mut rng = secbus_sim::SimRng::new(0x1_4E0);
        for _ in 0..128 {
            let len = 1 + rng.below(199) as usize;
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let base = (rng.below(0xFFFF_0000) as u32) & !0xF;
            let chunks = vec![(base, data.clone())];
            let img = parse_ihex(&encode_ihex(&chunks)).unwrap();
            let (b, flat) = img.flatten().unwrap();
            assert_eq!(b, base);
            assert_eq!(flat, data);
        }
    }
}
