//! The functional interface every memory-mapped slave implements.

use core::fmt;

use secbus_bus::Width;

/// Why a device access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The offset (plus access width) falls outside the device.
    OutOfRange {
        /// Offending offset.
        offset: u32,
        /// Device size in bytes.
        size: u32,
    },
    /// The offset is not naturally aligned for the access width.
    Misaligned {
        /// Offending offset.
        offset: u32,
        /// Access width.
        width: Width,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { offset, size } => {
                write!(f, "offset {offset:#x} out of range (size {size:#x})")
            }
            MemError::Misaligned { offset, width } => {
                write!(f, "offset {offset:#x} misaligned for {width} access")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A memory-mapped slave device, addressed by offset from its base.
pub trait MemDevice: Send {
    /// Device size in bytes.
    fn size(&self) -> u32;

    /// Read `width` bits at `offset` (little-endian packing into the low
    /// bits of the result).
    fn read(&mut self, offset: u32, width: Width) -> Result<u32, MemError>;

    /// Write the low `width` bits of `value` at `offset`.
    fn write(&mut self, offset: u32, width: Width, value: u32) -> Result<(), MemError>;

    /// Cycles the device needs to service an access at `offset` — called
    /// once per transaction (the bus models per-beat occupancy itself).
    fn latency(&mut self, offset: u32, is_write: bool) -> u64;

    /// Validate an `(offset, width)` pair against size and alignment.
    fn check(&self, offset: u32, width: Width) -> Result<(), MemError> {
        if !offset.is_multiple_of(width.bytes()) {
            return Err(MemError::Misaligned { offset, width });
        }
        if u64::from(offset) + u64::from(width.bytes()) > u64::from(self.size()) {
            return Err(MemError::OutOfRange {
                offset,
                size: self.size(),
            });
        }
        Ok(())
    }
}

/// Little-endian load from a byte slice (caller has validated bounds).
#[inline]
pub(crate) fn load_le(bytes: &[u8], offset: usize, width: Width) -> u32 {
    match width {
        Width::Byte => u32::from(bytes[offset]),
        Width::Half => u32::from(u16::from_le_bytes([bytes[offset], bytes[offset + 1]])),
        Width::Word => u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]),
    }
}

/// Little-endian store into a byte slice (caller has validated bounds).
#[inline]
pub(crate) fn store_le(bytes: &mut [u8], offset: usize, width: Width, value: u32) {
    match width {
        Width::Byte => bytes[offset] = value as u8,
        Width::Half => bytes[offset..offset + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        Width::Word => bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_helpers_roundtrip() {
        let mut buf = [0u8; 8];
        store_le(&mut buf, 0, Width::Word, 0x1234_5678);
        assert_eq!(load_le(&buf, 0, Width::Word), 0x1234_5678);
        assert_eq!(load_le(&buf, 0, Width::Byte), 0x78);
        assert_eq!(load_le(&buf, 2, Width::Half), 0x1234);
        store_le(&mut buf, 4, Width::Half, 0xabcd);
        assert_eq!(load_le(&buf, 4, Width::Half), 0xabcd);
        store_le(&mut buf, 6, Width::Byte, 0xee);
        assert_eq!(load_le(&buf, 6, Width::Byte), 0xee);
    }

    #[test]
    fn store_masks_to_width() {
        let mut buf = [0xffu8; 4];
        store_le(&mut buf, 1, Width::Byte, 0xABCD);
        assert_eq!(buf, [0xff, 0xcd, 0xff, 0xff]);
    }

    #[test]
    fn error_display() {
        let e = MemError::OutOfRange {
            offset: 0x20,
            size: 0x10,
        };
        assert!(e.to_string().contains("out of range"));
        let e = MemError::Misaligned {
            offset: 3,
            width: Width::Word,
        };
        assert!(e.to_string().contains("misaligned"));
    }
}
