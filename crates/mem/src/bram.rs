//! On-chip block RAM: trusted, single-cycle.

use secbus_bus::Width;

use crate::device::{load_le, store_le, MemDevice, MemError};

/// An internal FPGA block RAM.
///
/// BRAM sits inside the trust boundary (the paper considers "the FPGA as
/// secure"), so there is no tamper surface here: the only ways in are the
/// functional read/write path — guarded by a Local Firewall in the full
/// system — and the explicit [`Bram::load`] used when the SoC is built.
#[derive(Debug, Clone)]
pub struct Bram {
    data: Vec<u8>,
    read_latency: u64,
    write_latency: u64,
}

impl Bram {
    /// A zero-initialised BRAM of `size` bytes with 1-cycle access.
    pub fn new(size: u32) -> Self {
        Bram {
            data: vec![0; size as usize],
            read_latency: 1,
            write_latency: 1,
        }
    }

    /// Override access latencies (some BRAM configurations register
    /// outputs, costing an extra cycle).
    pub fn with_latency(mut self, read: u64, write: u64) -> Self {
        self.read_latency = read;
        self.write_latency = write;
        self
    }

    /// Bulk-load `bytes` at `offset` (SoC construction / program loading).
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn load(&mut self, offset: u32, bytes: &[u8]) {
        let start = offset as usize;
        let end = start + bytes.len();
        assert!(end <= self.data.len(), "image does not fit in BRAM");
        self.data[start..end].copy_from_slice(bytes);
    }

    /// Read-only view of the backing store (for assertions in tests).
    pub fn contents(&self) -> &[u8] {
        &self.data
    }
}

impl MemDevice for Bram {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read(&mut self, offset: u32, width: Width) -> Result<u32, MemError> {
        self.check(offset, width)?;
        Ok(load_le(&self.data, offset as usize, width))
    }

    fn write(&mut self, offset: u32, width: Width, value: u32) -> Result<(), MemError> {
        self.check(offset, width)?;
        store_le(&mut self.data, offset as usize, width, value);
        Ok(())
    }

    fn latency(&mut self, _offset: u32, is_write: bool) -> u64 {
        if is_write {
            self.write_latency
        } else {
            self.read_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_all_widths() {
        let mut b = Bram::new(64);
        b.write(0, Width::Word, 0xdead_beef).unwrap();
        assert_eq!(b.read(0, Width::Word).unwrap(), 0xdead_beef);
        assert_eq!(b.read(0, Width::Byte).unwrap(), 0xef);
        assert_eq!(b.read(2, Width::Half).unwrap(), 0xdead);
        b.write(10, Width::Half, 0x1234).unwrap();
        assert_eq!(b.read(10, Width::Half).unwrap(), 0x1234);
        b.write(13, Width::Byte, 0x56).unwrap();
        assert_eq!(b.read(13, Width::Byte).unwrap(), 0x56);
    }

    #[test]
    fn bounds_and_alignment_errors() {
        let mut b = Bram::new(16);
        assert!(matches!(
            b.read(16, Width::Byte),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.read(16, Width::Word),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.read(2, Width::Word),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            b.write(1, Width::Half, 0),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn default_latency_is_one_cycle() {
        let mut b = Bram::new(16);
        assert_eq!(b.latency(0, false), 1);
        assert_eq!(b.latency(0, true), 1);
        let mut b = Bram::new(16).with_latency(2, 1);
        assert_eq!(b.latency(0, false), 2);
    }

    #[test]
    fn load_image() {
        let mut b = Bram::new(32);
        b.load(4, &[1, 2, 3, 4]);
        assert_eq!(b.read(4, Width::Word).unwrap(), 0x0403_0201);
        assert_eq!(&b.contents()[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_load_panics() {
        Bram::new(8).load(4, &[0; 8]);
    }
}
