//! Seed-deterministic **open-loop** traffic generation.
//!
//! The closed-loop harnesses elsewhere in the workspace let each master
//! wait for its previous transaction before issuing the next, so offered
//! load can never exceed service capacity and the fabric's queue bounds
//! are never exercised. This crate generates the opposite: an arrival
//! *schedule* fixed in advance by the seed, independent of how the fabric
//! responds — the standard methodology for overload studies (and the
//! front half of the ROADMAP's NoC-scaling item).
//!
//! Four classic patterns are provided:
//!
//! * [`Pattern::Poisson`] — memoryless per-cycle Bernoulli arrivals at
//!   each source (the discrete approximation of a Poisson process);
//! * [`Pattern::Bursty`] — on/off modulation: `burst_len` cycles at the
//!   configured intensity, then `gap_len` cycles of silence;
//! * [`Pattern::Hotspot`] — a fraction of traffic converges on one hot
//!   destination (the canonical NoC stress pattern);
//! * [`Pattern::Transpose`] — node `(x, y)` sends to node `(y, x)`, the
//!   adversarial permutation for XY routing.
//!
//! Every source draws from its own [`SimRng`] stream (derived by label
//! from the root seed), so the schedule for source `i` does not change
//! when other sources are added or removed, and the whole schedule is
//! byte-identical for a given [`WorkloadConfig`].

use secbus_sim::SimRng;

/// Spatial/temporal shape of the offered traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Memoryless arrivals, uniform random destinations.
    Poisson,
    /// On/off arrivals: `burst_len` cycles of Poisson traffic followed
    /// by `gap_len` idle cycles, repeating.
    Bursty {
        /// Cycles of active injection per period.
        burst_len: u64,
        /// Idle cycles per period.
        gap_len: u64,
    },
    /// `fraction` of arrivals target the `hot` destination; the rest are
    /// uniform.
    Hotspot {
        /// The congested destination index.
        hot: usize,
        /// Share of traffic aimed at it (0.0..=1.0).
        fraction: f64,
    },
    /// Node `(x, y)` sends to node `(y, x)` on a `cols × cols` mesh
    /// (diagonal nodes send to themselves — local traffic).
    Transpose,
}

/// Full description of an open-loop workload. Two equal configs generate
/// byte-identical schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Traffic shape.
    pub pattern: Pattern,
    /// Number of traffic sources (masters / injecting nodes).
    pub sources: usize,
    /// Number of destinations (slaves / nodes).
    pub dests: usize,
    /// Mesh width, used by [`Pattern::Transpose`] to map indices to
    /// coordinates.
    pub cols: usize,
    /// Expected arrivals per source per active cycle (0.0..=1.0 is the
    /// useful range; values above 1.0 saturate at one per cycle).
    pub intensity: f64,
    /// Length of the injection window; no arrivals occur at or after
    /// this cycle (the drain phase of a soak).
    pub cycles: u64,
    /// Probability an arrival is a write (vs read).
    pub write_fraction: f64,
    /// Address space in words; each arrival gets a word-aligned address
    /// drawn uniformly from `0..addr_words * 4`.
    pub addr_words: u32,
    /// Root seed; every source stream derives from it.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pattern: Pattern::Poisson,
            sources: 4,
            dests: 4,
            cols: 2,
            intensity: 0.05,
            cycles: 1_000,
            write_fraction: 0.5,
            addr_words: 1_024,
            seed: 1,
        }
    }
}

/// One scheduled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Injection cycle.
    pub at: u64,
    /// Source index.
    pub source: usize,
    /// Destination index.
    pub dest: usize,
    /// Write (true) or read (false).
    pub write: bool,
    /// Word-aligned target address.
    pub addr: u32,
}

/// Per-source generator state.
struct SourceState {
    rng: SimRng,
}

/// Incremental open-loop arrival generator.
///
/// [`Workload::arrivals_at`] must be called with strictly increasing
/// cycles (a soak's main loop); [`Workload::schedule`] materializes the
/// full schedule at once for property tests and small runs.
pub struct Workload {
    cfg: WorkloadConfig,
    states: Vec<SourceState>,
}

impl Workload {
    /// Build the generator. Each source gets an independent stream
    /// derived from `cfg.seed` by label, so schedules are stable under
    /// changes to the number of *other* sources.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let root = SimRng::new(cfg.seed);
        let states = (0..cfg.sources)
            .map(|i| SourceState {
                rng: root.derive(&format!("workload.src{i}")),
            })
            .collect();
        Workload { cfg, states }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Is `cycle` inside an active injection phase?
    fn active(&self, cycle: u64) -> bool {
        if cycle >= self.cfg.cycles {
            return false;
        }
        match self.cfg.pattern {
            Pattern::Bursty { burst_len, gap_len } => {
                let period = (burst_len + gap_len).max(1);
                cycle % period < burst_len
            }
            _ => true,
        }
    }

    /// Append every arrival scheduled for `cycle` to `out`, in source
    /// order. Call once per cycle, in increasing order (each call
    /// advances the per-source streams).
    pub fn arrivals_at(&mut self, cycle: u64, out: &mut Vec<Arrival>) {
        if !self.active(cycle) {
            return;
        }
        let cfg = self.cfg;
        let intensity = cfg.intensity.clamp(0.0, 1.0);
        for (source, state) in self.states.iter_mut().enumerate() {
            let rng = &mut state.rng;
            if !rng.chance(intensity) {
                continue;
            }
            let write = rng.chance(cfg.write_fraction);
            let addr = (rng.below(u64::from(cfg.addr_words.max(1))) as u32) * 4;
            let dest = dest_for(&cfg, source, rng);
            out.push(Arrival {
                at: cycle,
                source,
                dest,
                write,
                addr,
            });
        }
    }

    /// Materialize the complete schedule (ordered by cycle, then
    /// source).
    pub fn schedule(&mut self) -> Vec<Arrival> {
        let mut out = Vec::new();
        for cycle in 0..self.cfg.cycles {
            self.arrivals_at(cycle, &mut out);
        }
        out
    }
}

/// Destination for one arrival from `source` under `cfg.pattern`.
fn dest_for(cfg: &WorkloadConfig, source: usize, rng: &mut SimRng) -> usize {
    let dests = cfg.dests.max(1);
    match cfg.pattern {
        Pattern::Hotspot { hot, fraction } => {
            if rng.chance(fraction) {
                hot % dests
            } else {
                rng.below(dests as u64) as usize
            }
        }
        Pattern::Transpose => {
            let cols = cfg.cols.max(1);
            let rows = (dests / cols).max(1);
            let (x, y) = (source % cols, source / cols);
            ((x % rows) * cols + (y % cols)) % dests
        }
        _ => rng.below(dests as u64) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            sources: 8,
            dests: 8,
            cols: 4,
            intensity: 0.2,
            cycles: 2_000,
            seed: 42,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = Workload::new(cfg()).schedule();
        let b = Workload::new(cfg()).schedule();
        assert_eq!(a, b);
        let c = Workload::new(WorkloadConfig { seed: 43, ..cfg() }).schedule();
        assert_ne!(a, c);
    }

    #[test]
    fn incremental_matches_materialized() {
        let mut w = Workload::new(cfg());
        let mut inc = Vec::new();
        for cycle in 0..cfg().cycles {
            w.arrivals_at(cycle, &mut inc);
        }
        assert_eq!(inc, Workload::new(cfg()).schedule());
    }

    #[test]
    fn poisson_rate_tracks_intensity() {
        let sched = Workload::new(cfg()).schedule();
        let expected = 0.2 * 8.0 * 2_000.0;
        let got = sched.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ~{expected} arrivals, got {got}"
        );
    }

    #[test]
    fn sources_are_independent_streams() {
        // Source 3's arrivals must not change when more sources exist.
        let narrow: Vec<Arrival> = Workload::new(WorkloadConfig {
            sources: 4,
            ..cfg()
        })
        .schedule()
        .into_iter()
        .filter(|a| a.source == 3)
        .collect();
        let wide: Vec<Arrival> = Workload::new(cfg())
            .schedule()
            .into_iter()
            .filter(|a| a.source == 3)
            .collect();
        assert_eq!(narrow, wide);
    }

    #[test]
    fn bursty_gap_is_silent() {
        let mut w = Workload::new(WorkloadConfig {
            pattern: Pattern::Bursty {
                burst_len: 50,
                gap_len: 50,
            },
            intensity: 1.0,
            ..cfg()
        });
        let sched = w.schedule();
        assert!(!sched.is_empty());
        for a in &sched {
            assert!(a.at % 100 < 50, "arrival at {} falls in a gap", a.at);
        }
    }

    #[test]
    fn hotspot_skews_to_the_hot_node() {
        let sched = Workload::new(WorkloadConfig {
            pattern: Pattern::Hotspot {
                hot: 5,
                fraction: 0.8,
            },
            ..cfg()
        })
        .schedule();
        let hot = sched.iter().filter(|a| a.dest == 5).count();
        let share = hot as f64 / sched.len() as f64;
        assert!(share > 0.7, "hot share {share} too low");
    }

    #[test]
    fn transpose_maps_coordinates() {
        let sched = Workload::new(WorkloadConfig {
            pattern: Pattern::Transpose,
            sources: 16,
            dests: 16,
            cols: 4,
            intensity: 1.0,
            cycles: 4,
            ..WorkloadConfig::default()
        })
        .schedule();
        for a in &sched {
            let (x, y) = (a.source % 4, a.source / 4);
            assert_eq!(a.dest, x * 4 + y, "transpose of node ({x},{y})");
        }
    }

    #[test]
    fn write_fraction_extremes() {
        let all_reads = Workload::new(WorkloadConfig {
            write_fraction: 0.0,
            ..cfg()
        })
        .schedule();
        assert!(all_reads.iter().all(|a| !a.write));
        let all_writes = Workload::new(WorkloadConfig {
            write_fraction: 1.0,
            ..cfg()
        })
        .schedule();
        assert!(all_writes.iter().all(|a| a.write));
    }

    #[test]
    fn no_arrivals_after_the_window() {
        let mut w = Workload::new(cfg());
        let mut out = Vec::new();
        for cycle in 0..cfg().cycles + 500 {
            w.arrivals_at(cycle, &mut out);
        }
        assert!(out.iter().all(|a| a.at < cfg().cycles));
        // Addresses stay word-aligned and inside the configured space.
        assert!(out
            .iter()
            .all(|a| a.addr % 4 == 0 && a.addr < cfg().addr_words * 4));
    }
}
