//! Security Policies — the paper's §IV-A parameter set.
//!
//! > "A Security Policy (also known as SP) is a set of parameters that aims
//! > to protect the system against the considered threat model."
//!
//! Each policy covers an address region and carries:
//! * **SPI** — the policy identifier;
//! * **RWA** — read-only / write-only / read-write access rules;
//! * **ADF** — the set of allowed data formats (8/16/32-bit);
//! * **CM / IM** — confidentiality and integrity modes (meaningful only
//!   for the Local Ciphering Firewall in front of the external memory);
//! * **CK** — the 128-bit cryptographic key for the Confidentiality Core.

use secbus_bus::{AddrRange, Op, Width};
/// Security Policy Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Spi(pub u16);

/// Read/Write Access rules: "read-only, write-only or read/write".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rwa {
    /// Only reads are authorized.
    ReadOnly,
    /// Only writes are authorized.
    WriteOnly,
    /// Both directions are authorized.
    ReadWrite,
}

impl Rwa {
    /// Whether `op` is authorized under this rule.
    #[inline]
    pub fn allows(self, op: Op) -> bool {
        matches!(
            (self, op),
            (Rwa::ReadWrite, _) | (Rwa::ReadOnly, Op::Read) | (Rwa::WriteOnly, Op::Write)
        )
    }
}

/// Allowed Data Formats: which access widths a policy admits
/// ("there can be several data lengths allowed … 8 up to 32 bits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdfSet(u8);

impl AdfSet {
    const BYTE: u8 = 1;
    const HALF: u8 = 2;
    const WORD: u8 = 4;

    /// No width allowed (useful as a building block; a policy with an
    /// empty ADF rejects every access format).
    pub const NONE: AdfSet = AdfSet(0);
    /// All of 8/16/32-bit allowed.
    pub const ALL: AdfSet = AdfSet(Self::BYTE | Self::HALF | Self::WORD);
    /// 32-bit only — typical for register files of dedicated IPs.
    pub const WORD_ONLY: AdfSet = AdfSet(Self::WORD);

    /// Build from a raw bitmask (bit 0 = byte, bit 1 = half, bit 2 = word);
    /// higher bits are ignored. Inverse of [`AdfSet::bits`], used by the
    /// policy-file wire format.
    pub const fn from_bits(bits: u8) -> AdfSet {
        AdfSet(bits & (Self::BYTE | Self::HALF | Self::WORD))
    }

    /// The raw format bitmask (the policy-file wire representation).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Build from an explicit width list.
    pub fn of(widths: &[Width]) -> AdfSet {
        let mut bits = 0;
        for w in widths {
            bits |= match w {
                Width::Byte => Self::BYTE,
                Width::Half => Self::HALF,
                Width::Word => Self::WORD,
            };
        }
        AdfSet(bits)
    }

    /// Whether `width` is an allowed format.
    #[inline]
    pub fn allows(self, width: Width) -> bool {
        let bit = match width {
            Width::Byte => Self::BYTE,
            Width::Half => Self::HALF,
            Width::Word => Self::WORD,
        };
        self.0 & bit != 0
    }

    /// Number of allowed formats (0–3).
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// Confidentiality Mode: execute or bypass the block cipher
/// (LCF only — "we consider that all internal communications are not
/// encrypted as the Local Firewalls protect them").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConfidentialityMode {
    /// No ciphering for this region.
    #[default]
    Bypass,
    /// AES-128 ciphering via the Confidentiality Core.
    Encrypt,
}

/// Integrity Mode: execute or bypass the hash-tree Integrity Core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrityMode {
    /// No integrity checking for this region.
    #[default]
    Bypass,
    /// Hash-tree verification via the Integrity Core.
    Verify,
}

/// Why a policy's parameter combination is rejected.
///
/// Construction from trusted code uses the asserting [`SecurityPolicy`]
/// constructors; anything built from *user input* (policy files, future
/// management interfaces) goes through [`SecurityPolicy::validated`] so a
/// malformed file reports instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// `cm` is `Encrypt` but no key was supplied.
    MissingKey,
    /// A key was supplied but `cm` is `Bypass`.
    KeyWithoutCipher,
    /// `im` is `Verify` with `cm` `Bypass` — not a supported LCF mode.
    IntegrityWithoutCipher,
}

impl core::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            PolicyError::MissingKey => "ciphering is enabled but no key is present",
            PolicyError::KeyWithoutCipher => "a key is present but ciphering is bypassed",
            PolicyError::IntegrityWithoutCipher => {
                "integrity without ciphering is not a supported LCF mode \
                 (modes are: unprotected, ciphered, ciphered+authenticated)"
            }
        })
    }
}

impl std::error::Error for PolicyError {}

/// A complete Security Policy over one address region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityPolicy {
    /// SP Identifier.
    pub spi: Spi,
    /// The address region this policy rules.
    pub region: AddrRange,
    /// Read/Write Access rule.
    pub rwa: Rwa,
    /// Allowed Data Formats.
    pub adf: AdfSet,
    /// Confidentiality Mode (LCF only; ignored by plain LFs).
    pub cm: ConfidentialityMode,
    /// Integrity Mode (LCF only; ignored by plain LFs).
    pub im: IntegrityMode,
    /// Cryptographic Key for the Confidentiality Core (LCF only).
    /// `None` whenever `cm` is `Bypass`.
    pub key: Option<[u8; 16]>,
}

impl SecurityPolicy {
    /// A plain internal policy (no crypto modes) — what Local Firewalls
    /// store in their Configuration Memories.
    pub fn internal(spi: u16, region: AddrRange, rwa: Rwa, adf: AdfSet) -> Self {
        SecurityPolicy {
            spi: Spi(spi),
            region,
            rwa,
            adf,
            cm: ConfidentialityMode::Bypass,
            im: IntegrityMode::Bypass,
            key: None,
        }
    }

    /// An external-memory policy with explicit CM/IM and key.
    pub fn external(
        spi: u16,
        region: AddrRange,
        rwa: Rwa,
        adf: AdfSet,
        cm: ConfidentialityMode,
        im: IntegrityMode,
        key: Option<[u8; 16]>,
    ) -> Self {
        assert!(
            (cm == ConfidentialityMode::Encrypt) == key.is_some(),
            "a key must be present exactly when ciphering is enabled"
        );
        assert!(
            !(im == IntegrityMode::Verify && cm == ConfidentialityMode::Bypass),
            "integrity without ciphering is not a supported LCF mode \
             (the paper's modes are: unprotected, ciphered, ciphered+authenticated)"
        );
        SecurityPolicy {
            spi: Spi(spi),
            region,
            rwa,
            adf,
            cm,
            im,
            key,
        }
    }

    /// Fallible construction for untrusted input: same rules as
    /// [`SecurityPolicy::external`], but malformed combinations return a
    /// [`PolicyError`] instead of panicking.
    #[allow(clippy::too_many_arguments)]
    pub fn validated(
        spi: u16,
        region: AddrRange,
        rwa: Rwa,
        adf: AdfSet,
        cm: ConfidentialityMode,
        im: IntegrityMode,
        key: Option<[u8; 16]>,
    ) -> Result<Self, PolicyError> {
        match (cm, key.is_some()) {
            (ConfidentialityMode::Encrypt, false) => return Err(PolicyError::MissingKey),
            (ConfidentialityMode::Bypass, true) => return Err(PolicyError::KeyWithoutCipher),
            _ => {}
        }
        if im == IntegrityMode::Verify && cm == ConfidentialityMode::Bypass {
            return Err(PolicyError::IntegrityWithoutCipher);
        }
        Ok(SecurityPolicy {
            spi: Spi(spi),
            region,
            rwa,
            adf,
            cm,
            im,
            key,
        })
    }

    /// Number of elementary rules this policy contributes to its firewall
    /// (used by the area model's rule-count scaling): one for the region
    /// bound, one for RWA, one per allowed format, one per active crypto
    /// mode.
    pub fn rule_count(&self) -> u32 {
        2 + self.adf.count()
            + u32::from(self.cm == ConfidentialityMode::Encrypt)
            + u32::from(self.im == IntegrityMode::Verify)
    }

    /// Bits of the Configuration-Memory storage image that parity covers
    /// (see [`SecurityPolicy::flip_storage_bit`] for the layout).
    pub const STORAGE_BITS: u8 = 85;

    /// The checked fields as a hardware Configuration-Memory word image:
    /// `[region.base, region.len, spi | adf << 16 | rwa << 19]`. Parity is
    /// computed over this image, and storage upsets are modelled against it.
    /// Keys are intentionally excluded — the LCF holds them in its own
    /// sealed state, not in the per-firewall policy RAM.
    pub fn storage_image(&self) -> [u32; 3] {
        let rwa = match self.rwa {
            Rwa::ReadOnly => 0u32,
            Rwa::WriteOnly => 1,
            Rwa::ReadWrite => 2,
        };
        [
            self.region.base,
            self.region.len,
            u32::from(self.spi.0) | (u32::from(self.adf.bits()) << 16) | (rwa << 19),
        ]
    }

    /// Even-parity byte over the storage image (XOR fold). A single-bit
    /// upset always changes it; an even number of upsets that collide
    /// modulo 8 can escape, as with any real parity byte.
    pub fn storage_parity(&self) -> u8 {
        let w = self.storage_image();
        let x = w[0] ^ w[1] ^ w[2];
        let x = x ^ (x >> 16);
        let x = x ^ (x >> 8);
        x as u8
    }

    /// Flip one bit of the stored entry (fault injection on the policy
    /// RAM). `bit` is taken modulo [`SecurityPolicy::STORAGE_BITS`] over
    /// the layout `[0,32)` region base, `[32,64)` region length, `[64,80)`
    /// SPI, `[80,83)` ADF mask, `[83,85)` RWA code.
    pub fn flip_storage_bit(&mut self, bit: u8) {
        let bit = bit % Self::STORAGE_BITS;
        match bit {
            0..=31 => self.region.base ^= 1 << bit,
            32..=63 => self.region.len ^= 1 << (bit - 32),
            64..=79 => self.spi.0 ^= 1 << (bit - 64),
            80..=82 => self.adf = AdfSet::from_bits(self.adf.bits() ^ (1 << (bit - 80))),
            _ => {
                let code = match self.rwa {
                    Rwa::ReadOnly => 0u8,
                    Rwa::WriteOnly => 1,
                    Rwa::ReadWrite => 2,
                } ^ (1 << (bit - 83));
                self.rwa = match code {
                    0 => Rwa::ReadOnly,
                    1 => Rwa::WriteOnly,
                    _ => Rwa::ReadWrite,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> AddrRange {
        AddrRange::new(0x1000, 0x1000)
    }

    #[test]
    fn rwa_semantics() {
        assert!(Rwa::ReadOnly.allows(Op::Read));
        assert!(!Rwa::ReadOnly.allows(Op::Write));
        assert!(Rwa::WriteOnly.allows(Op::Write));
        assert!(!Rwa::WriteOnly.allows(Op::Read));
        assert!(Rwa::ReadWrite.allows(Op::Read));
        assert!(Rwa::ReadWrite.allows(Op::Write));
    }

    #[test]
    fn adf_membership() {
        let wh = AdfSet::of(&[Width::Word, Width::Half]);
        assert!(wh.allows(Width::Word));
        assert!(wh.allows(Width::Half));
        assert!(!wh.allows(Width::Byte));
        assert_eq!(wh.count(), 2);
        assert_eq!(AdfSet::ALL.count(), 3);
        assert_eq!(AdfSet::NONE.count(), 0);
        assert!(!AdfSet::NONE.allows(Width::Byte));
        assert!(AdfSet::WORD_ONLY.allows(Width::Word));
        assert!(!AdfSet::WORD_ONLY.allows(Width::Byte));
    }

    #[test]
    fn internal_policy_has_no_crypto() {
        let p = SecurityPolicy::internal(1, region(), Rwa::ReadWrite, AdfSet::ALL);
        assert_eq!(p.cm, ConfidentialityMode::Bypass);
        assert_eq!(p.im, IntegrityMode::Bypass);
        assert!(p.key.is_none());
    }

    #[test]
    fn external_policy_carries_key() {
        let p = SecurityPolicy::external(
            2,
            region(),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some([7; 16]),
        );
        assert_eq!(p.key, Some([7; 16]));
    }

    #[test]
    #[should_panic(expected = "key must be present")]
    fn encrypt_without_key_panics() {
        SecurityPolicy::external(
            3,
            region(),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Bypass,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "integrity without ciphering")]
    fn integrity_without_cipher_panics() {
        SecurityPolicy::external(
            4,
            region(),
            Rwa::ReadOnly,
            AdfSet::ALL,
            ConfidentialityMode::Bypass,
            IntegrityMode::Verify,
            None,
        );
    }

    #[test]
    fn single_bit_flips_always_change_parity() {
        let base = SecurityPolicy::internal(7, region(), Rwa::ReadOnly, AdfSet::WORD_ONLY);
        let p0 = base.storage_parity();
        for bit in 0..SecurityPolicy::STORAGE_BITS {
            let mut p = base.clone();
            p.flip_storage_bit(bit);
            if p == base {
                // Lossy positions (e.g. the RWA code 2 -> 3 -> 2 round
                // trip) leave the policy untouched — a behavioural no-op.
                continue;
            }
            assert_ne!(p.storage_parity(), p0, "bit {bit} flip undetected");
        }
    }

    #[test]
    fn flip_is_an_involution_on_plain_fields() {
        let base = SecurityPolicy::internal(3, region(), Rwa::ReadWrite, AdfSet::ALL);
        for bit in [0u8, 17, 40, 64, 81] {
            let mut p = base.clone();
            p.flip_storage_bit(bit);
            assert_ne!(p, base);
            p.flip_storage_bit(bit);
            assert_eq!(p, base, "double flip of bit {bit} restores the entry");
        }
    }

    #[test]
    fn rule_count_scales_with_features() {
        let plain = SecurityPolicy::internal(1, region(), Rwa::ReadOnly, AdfSet::WORD_ONLY);
        assert_eq!(plain.rule_count(), 3); // region + rwa + 1 format
        let full = SecurityPolicy::external(
            2,
            region(),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some([0; 16]),
        );
        assert_eq!(full.rule_count(), 7); // region + rwa + 3 formats + cm + im
    }
}
