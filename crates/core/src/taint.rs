//! DIFT-style taint tracking over the firewall fabric.
//!
//! The paper's firewalls are *address-based*: they decide per transaction
//! whether a master may touch a region. What they cannot see is an
//! *information flow* — a compromised master reading attacker-reachable
//! data from an unprotected region and then writing it, fully within its
//! own access rights, into protected memory or into the Configuration
//! Memory. The taint layer closes that gap with a classic dynamic
//! information-flow-tracking (DIFT) discipline:
//!
//! * every word *entering* a master is tagged by the protection level of
//!   its source region ([`TaintTag`], a three-point lattice);
//! * tags accumulate on the master (conservative read-modify-write: once a
//!   core has consumed tainted data, everything it writes is suspect until
//!   it is recovered) and on shared-memory words it writes;
//! * a tainted write reaching a *sink* — a confidentiality+integrity
//!   protected region, or the policy configuration path — raises the typed
//!   [`crate::Violation::TaintedSink`] alert through the ordinary firewall
//!   alert network.
//!
//! The engine is deliberately over-approximate (per-master accumulation,
//! word-granular memory tags, join = max): false positives cost a blocked
//! write and an alert, false negatives cost the security property S-18
//! gates on. It is pure bookkeeping — the SoC decides what to block.

use std::collections::HashMap;

/// Taint lattice: `Clean < CipherOnly < Unprotected`, join = max.
///
/// `CipherOnly` data is confidential but malleable (no integrity check —
/// an external attacker can flip its ciphertext), so it is still a flow
/// risk into integrity-protected regions, just a weaker one than plaintext
/// from a fully unprotected region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TaintTag {
    /// Data from integrity-verified or on-chip sources.
    #[default]
    Clean,
    /// Data from encrypt-only (no integrity) regions: malleable.
    CipherOnly,
    /// Data from unprotected regions: attacker-controlled in the threat
    /// model ("the attacker has full access to the external memory").
    Unprotected,
}

impl TaintTag {
    /// Lattice join (least upper bound): the more-suspect tag wins.
    #[inline]
    pub fn join(self, other: TaintTag) -> TaintTag {
        self.max(other)
    }

    /// Anything above [`TaintTag::Clean`].
    #[inline]
    pub fn is_tainted(self) -> bool {
        self != TaintTag::Clean
    }

    /// Stable short name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            TaintTag::Clean => "clean",
            TaintTag::CipherOnly => "cipher_only",
            TaintTag::Unprotected => "unprotected",
        }
    }
}

/// Verdict for a proposed write, computed *before* the write happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteVerdict {
    /// The writing master is clean; nothing to do.
    Clean,
    /// The master is tainted and the target is ordinary memory: the write
    /// may proceed but the touched words inherit the tag.
    Spread(TaintTag),
    /// The master is tainted and the target is a protected sink: raise
    /// [`crate::Violation::TaintedSink`]. Whether the write is also
    /// blocked is the SoC's call (protected vs bare mode).
    Sink(TaintTag),
}

/// The SoC-wide taint state: source/sink maps plus per-master and
/// per-word tags.
///
/// Addresses are bus addresses; word tags are kept at 32-bit granularity
/// (the paper's bus width), sparsely — only tainted words occupy space.
#[derive(Debug, Clone, Default)]
pub struct TaintEngine {
    /// `(base, len, tag)` — regions whose *reads* tag the reader.
    sources: Vec<(u32, u32, TaintTag)>,
    /// `(base, len)` — regions whose *writes* are taint sinks.
    sinks: Vec<(u32, u32)>,
    /// Accumulated tag per master index.
    masters: Vec<TaintTag>,
    /// Sparse word-aligned address → tag map for shared-memory flow.
    words: HashMap<u32, TaintTag>,
    /// Total tainted-sink verdicts handed out (alerted or not).
    sink_hits: u64,
    /// Total spread commits (words tagged by tainted writes).
    spreads: u64,
}

#[inline]
fn word_span(addr: u32, bytes: u32) -> impl Iterator<Item = u32> {
    let start = addr & !3;
    let end = addr.saturating_add(bytes.max(1));
    (start..end).step_by(4).map(|a| a & !3)
}

#[inline]
fn overlaps(base: u32, len: u32, addr: u32, bytes: u32) -> bool {
    let end = base as u64 + len as u64;
    let a_end = addr as u64 + bytes.max(1) as u64;
    (addr as u64) < end && (base as u64) < a_end
}

impl TaintEngine {
    /// An engine tracking `masters` masters with no sources or sinks yet.
    pub fn new(masters: usize) -> Self {
        TaintEngine {
            masters: vec![TaintTag::Clean; masters],
            ..TaintEngine::default()
        }
    }

    /// Declare a source region: reads from it tag the reader with `tag`.
    pub fn add_source(&mut self, base: u32, len: u32, tag: TaintTag) {
        if tag.is_tainted() && len > 0 {
            self.sources.push((base, len, tag));
        }
    }

    /// Declare a sink region: tainted writes into it are violations.
    pub fn add_sink(&mut self, base: u32, len: u32) {
        if len > 0 {
            self.sinks.push((base, len));
        }
    }

    /// The source tag for an access at `addr` spanning `bytes` bytes —
    /// the join over every overlapping source region.
    pub fn classify(&self, addr: u32, bytes: u32) -> TaintTag {
        self.sources
            .iter()
            .filter(|(b, l, _)| overlaps(*b, *l, addr, bytes))
            .fold(TaintTag::Clean, |acc, (_, _, t)| acc.join(*t))
    }

    /// Whether `addr..addr+bytes` touches a declared sink region.
    pub fn is_sink(&self, addr: u32, bytes: u32) -> bool {
        self.sinks
            .iter()
            .any(|(b, l)| overlaps(*b, *l, addr, bytes))
    }

    /// The accumulated tag of master `m` (Clean when out of range).
    pub fn master_tag(&self, m: usize) -> TaintTag {
        self.masters.get(m).copied().unwrap_or_default()
    }

    /// Record a read by master `m`: the master joins the source tag of the
    /// range and the tags of any previously tainted words in it.
    /// Returns the master's tag *after* the read.
    pub fn note_read(&mut self, m: usize, addr: u32, bytes: u32) -> TaintTag {
        let mut tag = self.classify(addr, bytes);
        for w in word_span(addr, bytes) {
            if let Some(t) = self.words.get(&w) {
                tag = tag.join(*t);
            }
        }
        if let Some(slot) = self.masters.get_mut(m) {
            *slot = slot.join(tag);
            *slot
        } else {
            tag
        }
    }

    /// Judge a proposed write by master `m` without committing anything.
    pub fn write_verdict(&mut self, m: usize, addr: u32, bytes: u32) -> WriteVerdict {
        let tag = self.master_tag(m);
        if !tag.is_tainted() {
            return WriteVerdict::Clean;
        }
        if self.is_sink(addr, bytes) {
            self.sink_hits += 1;
            WriteVerdict::Sink(tag)
        } else {
            WriteVerdict::Spread(tag)
        }
    }

    /// Commit a write that actually landed: tainted masters tag the
    /// touched words; clean masters scrub them (overwritten data is gone).
    pub fn commit_write(&mut self, m: usize, addr: u32, bytes: u32) {
        let tag = self.master_tag(m);
        if tag.is_tainted() {
            self.spreads += 1;
            for w in word_span(addr, bytes) {
                let slot = self.words.entry(w).or_default();
                *slot = slot.join(tag);
            }
        } else {
            for w in word_span(addr, bytes) {
                self.words.remove(&w);
            }
        }
    }

    /// Reset master `m` to clean — the recovery path (reset + golden-image
    /// reload) discards whatever tainted state the IP held.
    pub fn scrub_master(&mut self, m: usize) {
        if let Some(slot) = self.masters.get_mut(m) {
            *slot = TaintTag::Clean;
        }
    }

    /// Number of masters currently carrying taint.
    pub fn tainted_masters(&self) -> usize {
        self.masters.iter().filter(|t| t.is_tainted()).count()
    }

    /// Number of tainted words currently tracked.
    pub fn tainted_words(&self) -> usize {
        self.words.len()
    }

    /// Total sink verdicts handed out so far.
    pub fn sink_hits(&self) -> u64 {
        self.sink_hits
    }

    /// Total spread commits so far.
    pub fn spreads(&self) -> u64 {
        self.spreads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TaintEngine {
        let mut e = TaintEngine::new(3);
        e.add_source(0x8000_0000, 0x100, TaintTag::Unprotected);
        e.add_source(0x9000_0000, 0x100, TaintTag::CipherOnly);
        e.add_sink(0xa000_0000, 0x100);
        e
    }

    #[test]
    fn lattice_join_is_max_and_clean_is_bottom() {
        use TaintTag::*;
        assert_eq!(Clean.join(Clean), Clean);
        assert_eq!(Clean.join(CipherOnly), CipherOnly);
        assert_eq!(CipherOnly.join(Unprotected), Unprotected);
        assert_eq!(Unprotected.join(Clean), Unprotected);
        assert!(!Clean.is_tainted());
        assert!(CipherOnly.is_tainted());
        assert!(Unprotected.is_tainted());
    }

    #[test]
    fn reads_from_sources_taint_the_master() {
        let mut e = engine();
        assert_eq!(e.master_tag(0), TaintTag::Clean);
        assert_eq!(e.note_read(0, 0x9000_0010, 4), TaintTag::CipherOnly);
        // Taint only ratchets up, never down, until a scrub.
        assert_eq!(e.note_read(0, 0x1000, 4), TaintTag::CipherOnly);
        assert_eq!(e.note_read(0, 0x8000_0000, 4), TaintTag::Unprotected);
        assert_eq!(e.tainted_masters(), 1);
    }

    #[test]
    fn tainted_write_to_sink_is_flagged_and_elsewhere_spreads() {
        let mut e = engine();
        e.note_read(1, 0x8000_0000, 4);
        assert_eq!(
            e.write_verdict(1, 0xa000_0000, 4),
            WriteVerdict::Sink(TaintTag::Unprotected)
        );
        assert_eq!(
            e.write_verdict(1, 0x2000, 4),
            WriteVerdict::Spread(TaintTag::Unprotected)
        );
        assert_eq!(e.sink_hits(), 1);
    }

    #[test]
    fn clean_master_writes_freely_even_into_sinks() {
        let mut e = engine();
        assert_eq!(e.write_verdict(0, 0xa000_0000, 4), WriteVerdict::Clean);
        assert_eq!(e.sink_hits(), 0);
    }

    #[test]
    fn taint_flows_through_shared_memory() {
        let mut e = engine();
        // Master 0 reads unprotected data and parks it in shared memory.
        e.note_read(0, 0x8000_0000, 4);
        e.commit_write(0, 0x2000_0000, 4);
        assert_eq!(e.tainted_words(), 1);
        // Master 1 reads the shared word and inherits the taint.
        assert_eq!(e.note_read(1, 0x2000_0000, 4), TaintTag::Unprotected);
        assert_eq!(
            e.write_verdict(1, 0xa000_0010, 4),
            WriteVerdict::Sink(TaintTag::Unprotected)
        );
    }

    #[test]
    fn clean_overwrite_scrubs_word_tags() {
        let mut e = engine();
        e.note_read(0, 0x8000_0000, 4);
        e.commit_write(0, 0x2000_0000, 8);
        assert_eq!(e.tainted_words(), 2);
        e.commit_write(2, 0x2000_0000, 8); // master 2 is clean
        assert_eq!(e.tainted_words(), 0);
        assert_eq!(e.note_read(1, 0x2000_0000, 4), TaintTag::Clean);
    }

    #[test]
    fn scrub_master_is_the_recovery_path() {
        let mut e = engine();
        e.note_read(0, 0x8000_0000, 4);
        assert_eq!(e.tainted_masters(), 1);
        e.scrub_master(0);
        assert_eq!(e.master_tag(0), TaintTag::Clean);
        assert_eq!(e.write_verdict(0, 0xa000_0000, 4), WriteVerdict::Clean);
    }

    #[test]
    fn burst_overlapping_a_source_edge_still_classifies() {
        let e = engine();
        // Burst starts below the source but runs into it.
        assert_eq!(e.classify(0x7fff_fff8, 16), TaintTag::Unprotected);
        assert_eq!(e.classify(0x7fff_fff8, 8), TaintTag::Clean);
        assert!(e.is_sink(0x9fff_fffc, 8));
        assert!(!e.is_sink(0x9fff_fffc, 4));
    }

    #[test]
    fn out_of_range_master_is_clean_and_harmless() {
        let mut e = engine();
        assert_eq!(e.note_read(99, 0x8000_0000, 4), TaintTag::Unprotected);
        assert_eq!(e.master_tag(99), TaintTag::Clean);
        assert_eq!(e.write_verdict(99, 0xa000_0000, 4), WriteVerdict::Clean);
    }
}
