//! Thread-specific security policies (paper §VI future work).
//!
//! > "In this work, policies are defined using the address spaces, it can
//! > be interesting to study the adaptation to thread-specific security
//! > where each thread has its own security level."
//!
//! A [`ThreadPolicyTable`] holds one Configuration Memory per thread plus a
//! fallback table. The processor (or its OS kernel) announces the running
//! thread through the firewall's context register; the Security Builder
//! then resolves policies against that thread's table. Switching context
//! is modelled with a small pipeline-flush cost, which the S-5 experiment
//! reports.

use std::collections::BTreeMap;

use crate::checker::{check_all, CheckOutcome, Violation};
use crate::config::ConfigMemory;
use secbus_bus::Transaction;
use secbus_sim::{Cycle, Stats};

/// A hardware-visible thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

/// Per-thread policy tables with a default fallback.
#[derive(Debug, Default)]
pub struct ThreadPolicyTable {
    tables: BTreeMap<ThreadId, ConfigMemory>,
    fallback: ConfigMemory,
    current: ThreadId,
    /// Cycles charged when the context register changes.
    switch_cost: u64,
    stats: Stats,
}

impl ThreadPolicyTable {
    /// Create with a fallback table (used by threads with no own table)
    /// and a context-switch cost in cycles.
    pub fn new(fallback: ConfigMemory, switch_cost: u64) -> Self {
        ThreadPolicyTable {
            tables: BTreeMap::new(),
            fallback,
            current: ThreadId(0),
            switch_cost,
            stats: Stats::new(),
        }
    }

    /// Install (or replace) the table for one thread.
    pub fn set_table(&mut self, thread: ThreadId, table: ConfigMemory) {
        self.tables.insert(thread, table);
    }

    /// The currently announced thread.
    pub fn current(&self) -> ThreadId {
        self.current
    }

    /// Announce a context switch; returns the cycles it costs (0 when the
    /// thread is unchanged).
    pub fn switch_to(&mut self, thread: ThreadId) -> u64 {
        if thread == self.current {
            return 0;
        }
        self.current = thread;
        self.stats.incr("thread.switches");
        self.switch_cost
    }

    /// The table in force for `thread`.
    pub fn table_for(&self, thread: ThreadId) -> &ConfigMemory {
        self.tables.get(&thread).unwrap_or(&self.fallback)
    }

    /// The table in force for the current thread.
    pub fn active_table(&self) -> &ConfigMemory {
        self.table_for(self.current)
    }

    /// Security Builder pass under the current thread's table.
    pub fn check(&mut self, txn: &Transaction, _now: Cycle) -> CheckOutcome {
        self.stats.incr("thread.checked");
        match self.active_table().lookup(txn.addr) {
            None => CheckOutcome::Fail(Violation::NoPolicy),
            Some(policy) => check_all(policy, txn),
        }
    }

    /// Number of installed per-thread tables.
    pub fn thread_count(&self) -> usize {
        self.tables.len()
    }

    /// Table statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdfSet, Rwa, SecurityPolicy};
    use secbus_bus::{AddrRange, MasterId, Op, TxnId, Width};

    fn table(base: u32, rwa: Rwa) -> ConfigMemory {
        ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(base, 0x100),
            rwa,
            AdfSet::ALL,
        )])
        .unwrap()
    }

    fn txn(op: Op, addr: u32) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op,
            addr,
            width: Width::Word,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn per_thread_tables_differ() {
        let mut t = ThreadPolicyTable::new(table(0x9000, Rwa::ReadOnly), 4);
        t.set_table(ThreadId(1), table(0x1000, Rwa::ReadWrite));
        t.set_table(ThreadId(2), table(0x2000, Rwa::ReadOnly));

        t.switch_to(ThreadId(1));
        assert!(t.check(&txn(Op::Write, 0x1000), Cycle(0)).passed());
        assert!(!t.check(&txn(Op::Write, 0x2000), Cycle(0)).passed());

        t.switch_to(ThreadId(2));
        assert!(!t.check(&txn(Op::Write, 0x1000), Cycle(0)).passed());
        assert!(t.check(&txn(Op::Read, 0x2000), Cycle(0)).passed());
        assert!(
            !t.check(&txn(Op::Write, 0x2000), Cycle(0)).passed(),
            "thread 2 is read-only in its own region"
        );
    }

    #[test]
    fn unknown_thread_uses_fallback() {
        let mut t = ThreadPolicyTable::new(table(0x9000, Rwa::ReadOnly), 4);
        t.switch_to(ThreadId(42));
        assert!(t.check(&txn(Op::Read, 0x9000), Cycle(0)).passed());
        assert!(!t.check(&txn(Op::Write, 0x9000), Cycle(0)).passed());
    }

    #[test]
    fn switch_cost_charged_only_on_change() {
        let mut t = ThreadPolicyTable::new(ConfigMemory::new(), 7);
        assert_eq!(t.switch_to(ThreadId(0)), 0, "already current");
        assert_eq!(t.switch_to(ThreadId(5)), 7);
        assert_eq!(t.switch_to(ThreadId(5)), 0);
        assert_eq!(t.current(), ThreadId(5));
        assert_eq!(t.stats().counter("thread.switches"), 1);
    }

    #[test]
    fn empty_fallback_denies() {
        let mut t = ThreadPolicyTable::new(ConfigMemory::new(), 0);
        assert_eq!(
            t.check(&txn(Op::Read, 0x0), Cycle(0)),
            CheckOutcome::Fail(Violation::NoPolicy)
        );
    }

    #[test]
    fn thread_count_reflects_installed_tables() {
        let mut t = ThreadPolicyTable::new(ConfigMemory::new(), 0);
        assert_eq!(t.thread_count(), 0);
        t.set_table(ThreadId(1), ConfigMemory::new());
        t.set_table(ThreadId(2), ConfigMemory::new());
        t.set_table(ThreadId(1), ConfigMemory::new()); // replace, not add
        assert_eq!(t.thread_count(), 2);
    }
}
