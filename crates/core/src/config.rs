//! The Configuration Memory: on-chip, trusted storage of Security Policies.
//!
//! > "The Security Policies (SP) associated to a Local Firewall are stored
//! > in on-chip memories: these memories (called Configuration Memories)
//! > are considered as trusted units and do not need to be ciphered."
//!
//! The table is keyed by address region; regions must not overlap (two
//! contradicting policies for one address would make enforcement
//! ambiguous). Anything not covered by a policy is **denied by default** —
//! the firewall raises [`Violation::NoPolicy`](crate::checker::Violation).
//! A generation counter supports the run-time reconfiguration extension.

use core::fmt;

use crate::policy::{SecurityPolicy, Spi};

/// Error inserting a policy whose region overlaps an existing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyOverlap {
    /// The policy that could not be inserted.
    pub attempted: Spi,
    /// The already-stored policy it collides with.
    pub existing: Spi,
}

impl fmt::Display for PolicyOverlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy {} overlaps the region of policy {}",
            self.attempted.0, self.existing.0
        )
    }
}

impl std::error::Error for PolicyOverlap {}

/// An on-chip policy table for one firewall.
///
/// Each entry carries a parity byte over its storage image, and every
/// legitimate table mutation also refreshes a *golden image* of the table.
/// A storage upset ([`ConfigMemory::corrupt_entry_bit`]) desynchronises an
/// active entry from its parity; [`ConfigMemory::scrub`] detects that and
/// re-fetches the entry from the golden image — the resilience answer to
/// config-memory SEUs, keeping enforcement fail-secure rather than
/// silently permissive.
#[derive(Debug, Clone, Default)]
pub struct ConfigMemory {
    /// Policies sorted by region base.
    policies: Vec<SecurityPolicy>,
    /// Per-entry parity byte, aligned with `policies`.
    parity: Vec<u8>,
    /// Known-good copy refreshed on every legitimate mutation.
    golden: Vec<SecurityPolicy>,
    /// Bumped on every table swap (reconfiguration).
    generation: u64,
}

impl ConfigMemory {
    /// An empty table (everything denied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a policy list.
    pub fn with_policies(policies: Vec<SecurityPolicy>) -> Result<Self, PolicyOverlap> {
        let mut cm = Self::new();
        for p in policies {
            cm.insert(p)?;
        }
        Ok(cm)
    }

    /// Insert a policy, rejecting region overlaps.
    pub fn insert(&mut self, policy: SecurityPolicy) -> Result<(), PolicyOverlap> {
        for existing in &self.policies {
            if existing.region.overlaps(&policy.region) {
                return Err(PolicyOverlap {
                    attempted: policy.spi,
                    existing: existing.spi,
                });
            }
        }
        self.policies.push(policy);
        self.policies.sort_by_key(|p| p.region.base);
        self.commit();
        Ok(())
    }

    /// Refresh parity and the golden image after a legitimate mutation.
    fn commit(&mut self) {
        self.parity = self
            .policies
            .iter()
            .map(SecurityPolicy::storage_parity)
            .collect();
        self.golden = self.policies.clone();
    }

    /// The policy ruling `addr`, if any.
    pub fn lookup(&self, addr: u32) -> Option<&SecurityPolicy> {
        let idx = self.policies.partition_point(|p| p.region.base <= addr);
        if idx == 0 {
            return None;
        }
        let p = &self.policies[idx - 1];
        p.region.contains(addr).then_some(p)
    }

    /// [`ConfigMemory::lookup`] with a caller-held last-hit slot: bursts
    /// overwhelmingly stay under one policy, so the hinted index is
    /// probed before the binary search. `hint` is refreshed on every
    /// search-path hit; a stale (out-of-range or mismatched) hint is
    /// harmless because regions never overlap — any policy containing
    /// `addr` *is* the ruling policy.
    pub fn lookup_hinted(&self, addr: u32, hint: &mut usize) -> Option<&SecurityPolicy> {
        if let Some(p) = self.policies.get(*hint) {
            if p.region.contains(addr) {
                return Some(p);
            }
        }
        let idx = self.policies.partition_point(|p| p.region.base <= addr);
        let i = idx.checked_sub(1)?;
        let p = &self.policies[i];
        if p.region.contains(addr) {
            *hint = i;
            Some(p)
        } else {
            None
        }
    }

    /// The policy with identifier `spi`, if present.
    pub fn by_spi(&self, spi: Spi) -> Option<&SecurityPolicy> {
        self.policies.iter().find(|p| p.spi == spi)
    }

    /// All stored policies, ascending by region base.
    pub fn policies(&self) -> &[SecurityPolicy] {
        &self.policies
    }

    /// Number of stored policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the table is empty (deny-everything).
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Total elementary rule count across policies (drives the area model).
    pub fn total_rules(&self) -> u32 {
        self.policies.iter().map(|p| p.rule_count()).sum()
    }

    /// Current table generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Atomically replace the whole table (the reconfiguration primitive);
    /// bumps the generation. The new set is overlap-checked first, so a
    /// bad update leaves the active table untouched.
    pub fn swap(&mut self, policies: Vec<SecurityPolicy>) -> Result<u64, PolicyOverlap> {
        let staged = Self::with_policies(policies)?;
        self.policies = staged.policies;
        self.generation += 1;
        self.commit();
        Ok(self.generation)
    }

    /// Remove the policy covering `addr`, returning it if there was one.
    pub fn remove_at(&mut self, addr: u32) -> Option<SecurityPolicy> {
        let idx = self.policies.iter().position(|p| p.region.contains(addr))?;
        let removed = self.policies.remove(idx);
        self.commit();
        Some(removed)
    }

    /// Fault injection: flip one storage bit of one active entry, leaving
    /// parity and the golden image untouched (that is the point — the
    /// upset is detectable). Selectors are taken modulo the table size and
    /// [`SecurityPolicy::STORAGE_BITS`]. Returns `false` on an empty table.
    pub fn corrupt_entry_bit(&mut self, entry: u8, bit: u8) -> bool {
        if self.policies.is_empty() {
            return false;
        }
        let idx = usize::from(entry) % self.policies.len();
        self.policies[idx].flip_storage_bit(bit);
        true
    }

    /// Whether entry `idx`'s parity still matches its stored image.
    pub fn entry_parity_ok(&self, idx: usize) -> bool {
        self.policies
            .get(idx)
            .zip(self.parity.get(idx))
            .is_some_and(|(p, &parity)| p.storage_parity() == parity)
    }

    /// Parity-scrub the whole table: every entry whose parity mismatches
    /// is re-fetched from the golden image. Returns the number of entries
    /// repaired. Models the background scrubbing a hardened Configuration
    /// Memory performs; the Security Builder runs it ahead of each lookup.
    pub fn scrub(&mut self) -> usize {
        let mut repaired = 0;
        for idx in 0..self.policies.len() {
            if !self.entry_parity_ok(idx) {
                self.policies[idx] = self.golden[idx].clone();
                repaired += 1;
            }
        }
        repaired
    }
}

/// Helper shared by tests across this crate.
#[cfg(test)]
pub(crate) fn simple_policy(spi: u16, base: u32, len: u32) -> SecurityPolicy {
    use crate::policy::{AdfSet, Rwa};
    SecurityPolicy::internal(
        spi,
        secbus_bus::AddrRange::new(base, len),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdfSet, Rwa};
    use secbus_bus::AddrRange;

    #[test]
    fn lookup_hits_correct_policy() {
        let cm = ConfigMemory::with_policies(vec![
            simple_policy(1, 0x0, 0x100),
            simple_policy(2, 0x1000, 0x100),
        ])
        .unwrap();
        assert_eq!(cm.lookup(0x80).unwrap().spi, Spi(1));
        assert_eq!(cm.lookup(0x10ff).unwrap().spi, Spi(2));
        assert!(cm.lookup(0x200).is_none());
        assert!(cm.lookup(0x1100).is_none());
        assert_eq!(cm.len(), 2);
    }

    /// `lookup_hinted` agrees with `lookup` for every address and any
    /// hint state, including hints stale after a table swap.
    #[test]
    fn hinted_lookup_matches_plain_lookup() {
        let mut cm = ConfigMemory::with_policies(vec![
            simple_policy(1, 0x0, 0x100),
            simple_policy(2, 0x1000, 0x100),
            simple_policy(3, 0x2000, 0x40),
        ])
        .unwrap();
        let mut hint = usize::MAX; // deliberately out of range
        for addr in [0x80u32, 0x81, 0x1000, 0x10ff, 0x200, 0x2000, 0x203f, 0x2040] {
            assert_eq!(
                cm.lookup_hinted(addr, &mut hint).map(|p| p.spi),
                cm.lookup(addr).map(|p| p.spi),
                "addr {addr:#x}"
            );
        }
        cm.swap(vec![simple_policy(9, 0x500, 0x20)]).unwrap();
        for addr in [0x80u32, 0x500, 0x51f, 0x520] {
            assert_eq!(
                cm.lookup_hinted(addr, &mut hint).map(|p| p.spi),
                cm.lookup(addr).map(|p| p.spi),
                "post-swap addr {addr:#x}"
            );
        }
    }

    #[test]
    fn empty_table_denies_everything() {
        let cm = ConfigMemory::new();
        assert!(cm.is_empty());
        assert!(cm.lookup(0).is_none());
        assert!(cm.lookup(u32::MAX).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut cm = ConfigMemory::new();
        cm.insert(simple_policy(1, 0x100, 0x100)).unwrap();
        let err = cm.insert(simple_policy(2, 0x180, 0x10)).unwrap_err();
        assert_eq!(err.existing, Spi(1));
        assert_eq!(err.attempted, Spi(2));
        assert_eq!(cm.len(), 1);
    }

    #[test]
    fn by_spi_finds_policy() {
        let cm = ConfigMemory::with_policies(vec![simple_policy(7, 0, 16)]).unwrap();
        assert!(cm.by_spi(Spi(7)).is_some());
        assert!(cm.by_spi(Spi(8)).is_none());
    }

    #[test]
    fn swap_bumps_generation_and_replaces() {
        let mut cm = ConfigMemory::with_policies(vec![simple_policy(1, 0, 16)]).unwrap();
        assert_eq!(cm.generation(), 0);
        let g = cm.swap(vec![simple_policy(2, 0x100, 16)]).unwrap();
        assert_eq!(g, 1);
        assert!(cm.lookup(0).is_none());
        assert_eq!(cm.lookup(0x100).unwrap().spi, Spi(2));
    }

    #[test]
    fn bad_swap_leaves_table_untouched() {
        let mut cm = ConfigMemory::with_policies(vec![simple_policy(1, 0, 16)]).unwrap();
        let result = cm.swap(vec![simple_policy(2, 0, 32), simple_policy(3, 16, 32)]);
        assert!(result.is_err());
        assert_eq!(cm.generation(), 0);
        assert_eq!(cm.lookup(0).unwrap().spi, Spi(1));
    }

    #[test]
    fn remove_at_extracts_policy() {
        let mut cm = ConfigMemory::with_policies(vec![simple_policy(1, 0, 16)]).unwrap();
        assert_eq!(cm.remove_at(4).unwrap().spi, Spi(1));
        assert!(cm.remove_at(4).is_none());
        assert!(cm.is_empty());
    }

    #[test]
    fn corruption_is_detected_and_scrubbed() {
        let mut cm = ConfigMemory::with_policies(vec![
            simple_policy(1, 0x0, 0x100),
            simple_policy(2, 0x1000, 0x100),
        ])
        .unwrap();
        let pristine = cm.policies().to_vec();
        assert!(cm.corrupt_entry_bit(1, 3)); // flip bit 3 of entry 1's base
        assert!(cm.entry_parity_ok(0));
        assert!(!cm.entry_parity_ok(1));
        assert_ne!(cm.policies(), &pristine[..]);
        assert_eq!(cm.scrub(), 1, "one entry repaired from the golden image");
        assert!(cm.entry_parity_ok(1));
        assert_eq!(cm.policies(), &pristine[..]);
        assert_eq!(cm.scrub(), 0, "clean table scrubs to nothing");
    }

    #[test]
    fn corrupting_an_empty_table_is_a_noop() {
        let mut cm = ConfigMemory::new();
        assert!(!cm.corrupt_entry_bit(0, 0));
        assert_eq!(cm.scrub(), 0);
    }

    #[test]
    fn legitimate_mutations_refresh_the_golden_image() {
        let mut cm = ConfigMemory::with_policies(vec![simple_policy(1, 0, 16)]).unwrap();
        cm.swap(vec![simple_policy(2, 0x100, 16)]).unwrap();
        cm.corrupt_entry_bit(0, 40);
        cm.scrub();
        assert_eq!(
            cm.lookup(0x100).unwrap().spi,
            Spi(2),
            "scrub restores the post-swap table, not the pre-swap one"
        );
        cm.remove_at(0x100);
        assert!(cm.is_empty());
        assert_eq!(cm.scrub(), 0);
    }

    #[test]
    fn total_rules_sums_policies() {
        let cm = ConfigMemory::with_policies(vec![
            SecurityPolicy::internal(1, AddrRange::new(0, 16), Rwa::ReadOnly, AdfSet::WORD_ONLY),
            SecurityPolicy::internal(2, AddrRange::new(32, 16), Rwa::ReadWrite, AdfSet::ALL),
        ])
        .unwrap();
        assert_eq!(cm.total_rules(), 3 + 5);
    }
}
