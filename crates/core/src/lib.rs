//! # secbus-core — distributed firewalls for a bus-based MPSoC
//!
//! The primary contribution of *"Distributed security for communications
//! and memories in a multiprocessor architecture"* (Cotret et al., RAW/
//! IPDPS 2011): instead of a central security manager, **every IP gets a
//! Local Firewall (LF) at its bus interface**, and the external memory gets
//! a **Local Ciphering Firewall (LCF)** that adds confidentiality (AES-128)
//! and integrity (hash tree) on top of the same checking structure.
//!
//! The module map mirrors the paper's Figure 1:
//!
//! | Paper block | Here |
//! |---|---|
//! | Security Policy (SPI, RWA, ADF, CM, IM, CK) | [`policy::SecurityPolicy`] |
//! | Configuration Memory (trusted, on-chip)      | [`config::ConfigMemory`] |
//! | Security Builder (SB) + checking modules     | [`checker`], [`firewall::LocalFirewall`] |
//! | Firewall Interface (FI) gate + alert signals | [`firewall::Decision`], [`alert`] |
//! | LF Communication Block (LFCB)                | the SoC-side adapters in `secbus-soc` |
//! | Confidentiality Core (CC), Integrity Core (IC) | [`lcf::LocalCipheringFirewall`] |
//!
//! Two extensions the paper lists as future work are implemented as well:
//! run-time **reconfiguration of security policies** ([`reconfig`]) and
//! **thread-specific security** ([`thread_policy`]).
//!
//! Timing: the checking pipeline costs [`SbTiming`] cycles (Table II: 12),
//! the CC adds 11 cycles of latency at 4.5 bits/cycle sustained, the IC 20
//! cycles at 1.31 bits/cycle ([`lcf::CryptoTiming`], calibrated to Table
//! II's 450 / 131 Mb/s at the 100 MHz case-study clock — see DESIGN.md §2).

pub mod alert;
pub mod checker;
pub mod config;
pub mod firewall;
pub mod lcf;
pub mod policy;
pub mod policy_dsl;
pub mod reconfig;
pub mod recovery;
pub mod taint;
pub mod thread_policy;

pub use alert::{Alert, Reaction, SecurityMonitor, WatchdogExpiry};
pub use checker::{CheckOutcome, Violation};
pub use config::ConfigMemory;
pub use firewall::{Decision, FirewallId, LocalFirewall, RateLimit, SbTiming};
pub use lcf::{
    brownout_posture, CryptoTiming, IcFailureMode, LcfRegionConfig, LocalCipheringFirewall,
    Protection, RekeyError,
};
pub use policy::{
    AdfSet, ConfidentialityMode, IntegrityMode, PolicyError, Rwa, SecurityPolicy, Spi,
};
pub use policy_dsl::{
    verify, CompiledPolicies, CompiledTable, Counterexample, DslError, PolicyProgram,
    PolicyVerifyError, VerifyReport,
};
pub use reconfig::{EpochError, EpochFailure, PolicyUpdate, ReconfigController};
pub use recovery::{
    PersistentState, RecoveryOutcome, RecoveryReport, SecureCheckpoint, TamperEvidence,
};
pub use taint::{TaintEngine, TaintTag, WriteVerdict};
pub use thread_policy::{ThreadId, ThreadPolicyTable};
