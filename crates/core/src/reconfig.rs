//! Run-time reconfiguration of security policies (paper §VI future work).
//!
//! > "We also plan to integrate reconfiguration of security services (i.e.
//! > modification of security policies) to counter some attacks against
//! > the system."
//!
//! The model: an update is *scheduled*, the target firewall keeps running
//! under the old table for a quiesce window (`swap_latency` cycles — the
//! hardware would drain its pipeline and rewrite the Configuration Memory),
//! and then the whole table is swapped atomically. A failed validation
//! (overlapping regions) leaves the old table in force — a half-applied
//! security policy would be worse than a stale one.
//!
//! Multi-firewall batches get the same guarantee through **policy
//! epochs** ([`ReconfigController::commit_epoch`]): every staged table is
//! validated against every target firewall first (*prepare*), and only if
//! all of them pass does a single commit point swap them all and bump the
//! epoch counter. One bad table means *no* firewall moves — the fleet is
//! never left straddling two security postures.

use secbus_sim::{Cycle, EventLog, Stats};

use crate::config::{ConfigMemory, PolicyOverlap};
use crate::firewall::{FirewallId, LocalFirewall};
use crate::policy::SecurityPolicy;
use crate::policy_dsl::PolicyVerifyError;

/// A staged replacement of one firewall's whole policy table.
#[derive(Debug, Clone)]
pub struct PolicyUpdate {
    /// The firewall whose Configuration Memory is rewritten.
    pub firewall: FirewallId,
    /// The complete new policy set.
    pub policies: Vec<SecurityPolicy>,
}

/// Why one firewall's staged table failed the prepare phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochFailure {
    /// The firewall whose staged table was rejected.
    pub firewall: FirewallId,
    /// The validation error (overlapping regions).
    pub cause: PolicyOverlap,
}

/// Why an epoch commit was refused — in every case, *no* firewall was
/// modified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// A staged table failed validation during prepare.
    Validation(EpochFailure),
    /// An update targets a firewall that is not in the commit set.
    UnknownFirewall(FirewallId),
    /// The master initiating the commit carries a taint tag: data from an
    /// unprotected source must never reach the policy configuration path
    /// (the config store is a DIFT sink), so the whole epoch is refused.
    TaintedInitiator(FirewallId),
    /// An injected fault hit the prepare/commit boundary after `staged`
    /// firewalls had already swapped; every one of them was rolled back to
    /// its pre-commit table and the epoch counter did not move.
    CommitFault {
        /// How many firewalls had swapped (and were rolled back) when the
        /// fault landed.
        staged: u8,
    },
    /// The staged tables failed exhaustive verification against the policy
    /// program's intent (see [`crate::policy_dsl::verify`]); the epoch was
    /// refused fail-secure before any firewall staged a table.
    Verifier(PolicyVerifyError),
}

impl EpochError {
    /// Stable mnemonic for traces and metrics.
    pub fn reason(&self) -> &'static str {
        match self {
            EpochError::Validation(_) => "validation",
            EpochError::UnknownFirewall(_) => "unknown_firewall",
            EpochError::TaintedInitiator(_) => "tainted_initiator",
            EpochError::CommitFault { .. } => "commit_fault",
            EpochError::Verifier(_) => "verifier",
        }
    }
}

/// Orchestrates staged policy swaps.
#[derive(Debug)]
pub struct ReconfigController {
    swap_latency: u64,
    queue: Vec<(Cycle, u64, PolicyUpdate)>,
    next_seq: u64,
    commit_fault: Option<u8>,
    log: EventLog<(FirewallId, u64)>,
    stats: Stats,
    epoch: u64,
    firewall_epochs: Vec<(FirewallId, u64)>,
}

impl ReconfigController {
    /// A controller whose updates take effect `swap_latency` cycles after
    /// being scheduled.
    pub fn new(swap_latency: u64) -> Self {
        ReconfigController {
            swap_latency,
            queue: Vec::new(),
            next_seq: 0,
            commit_fault: None,
            log: EventLog::new(256),
            stats: Stats::new(),
            epoch: 0,
            firewall_epochs: Vec::new(),
        }
    }

    /// The current committed policy epoch (0 = boot configuration).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch in which `fw`'s table was last swapped (0 if never).
    pub fn firewall_epoch(&self, fw: FirewallId) -> u64 {
        self.firewall_epochs
            .iter()
            .find(|(id, _)| *id == fw)
            .map_or(0, |(_, e)| *e)
    }

    /// Resume epoch numbering from a checkpoint (boot-time restore):
    /// epochs committed after the restore continue the old sequence
    /// instead of reusing numbers already handed out.
    pub fn resume_epoch(&mut self, epoch: u64) {
        debug_assert_eq!(self.epoch, 0, "resume before committing anything");
        self.epoch = epoch;
    }

    /// The configured quiesce window.
    pub fn swap_latency(&self) -> u64 {
        self.swap_latency
    }

    /// Stage an update; returns the cycle at which it becomes applicable.
    pub fn schedule(&mut self, update: PolicyUpdate, now: Cycle) -> Cycle {
        let ready_at = now + self.swap_latency;
        self.stats.incr("reconfig.scheduled");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push((ready_at, seq, update));
        ready_at
    }

    /// Updates whose quiesce window has elapsed at `now`, in a
    /// deterministic canonical order: ascending `(ready_at, firewall)`,
    /// with schedule order breaking ties for the *same* firewall. The
    /// order two same-cycle updates for different firewalls apply in is a
    /// property of the updates, never of queue insertion order — so an
    /// epoch's contents cannot depend on who called
    /// [`ReconfigController::schedule`] first. The caller applies each
    /// with [`ReconfigController::apply_to`].
    pub fn take_ready(&mut self, now: Cycle) -> Vec<PolicyUpdate> {
        let mut ready = Vec::new();
        let mut remaining = Vec::with_capacity(self.queue.len());
        for (at, seq, update) in self.queue.drain(..) {
            if at <= now {
                ready.push((at, seq, update));
            } else {
                remaining.push((at, seq, update));
            }
        }
        self.queue = remaining;
        ready.sort_by_key(|(at, seq, update)| (*at, update.firewall, *seq));
        ready.into_iter().map(|(_, _, update)| update).collect()
    }

    /// Number of updates still quiescing.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Earliest `ready_at` among still-quiescing updates, if any — the
    /// event-driven core's wake point for epoch swaps.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.queue.iter().map(|&(at, _, _)| at).min()
    }

    /// Arm a one-shot fault on the prepare/commit boundary: the next
    /// [`ReconfigController::commit_epoch`] will "lose power" after
    /// `stage` firewalls have swapped. The commit must (and does) roll
    /// back every staged swap and report
    /// [`EpochError::CommitFault`] — the fleet is never left straddling
    /// two epochs. Driven by `secbus-fault`'s `EpochCommitFault`.
    pub fn arm_commit_fault(&mut self, stage: u8) {
        self.commit_fault = Some(stage);
    }

    /// Whether a commit-boundary fault is currently armed.
    pub fn commit_fault_armed(&self) -> bool {
        self.commit_fault.is_some()
    }

    /// Record that `firewall` swapped in the just-opened epoch.
    fn note_swap(&mut self, firewall: FirewallId) {
        match self
            .firewall_epochs
            .iter_mut()
            .find(|(id, _)| *id == firewall)
        {
            Some((_, e)) => *e = self.epoch,
            None => self.firewall_epochs.push((firewall, self.epoch)),
        }
    }

    /// Apply a ready update to its firewall, recording the new generation.
    ///
    /// Also lifts an administrative block: reconfiguration is the paper's
    /// envisioned recovery path after an attack forced a lockdown.
    ///
    /// A single-firewall update is its own (degenerate) epoch: the swap
    /// either happens entirely or not at all, so success bumps the epoch
    /// counter. For multi-firewall batches use
    /// [`ReconfigController::commit_epoch`] — looping over `apply_to`
    /// would apply a prefix of the batch before discovering a bad table.
    pub fn apply_to(
        &mut self,
        fw: &mut LocalFirewall,
        update: PolicyUpdate,
    ) -> Result<u64, PolicyOverlap> {
        debug_assert_eq!(fw.id(), update.firewall, "update routed to wrong firewall");
        let generation = fw.config_mut().swap(update.policies)?;
        fw.unblock();
        self.epoch += 1;
        self.note_swap(update.firewall);
        self.stats.incr("reconfig.applied");
        self.log
            .push(Cycle(generation), (update.firewall, generation));
        Ok(generation)
    }

    /// Two-phase commit of a multi-firewall batch.
    ///
    /// **Prepare**: every update must target a firewall in `fws` and its
    /// staged table must validate. **Commit**: only when every table
    /// passed, swap them all and bump the epoch once. On `Err`, no
    /// firewall was touched and the error names the firewall that failed
    /// — the caller can drop just that update and retry the rest.
    ///
    /// Returns the new epoch on success.
    pub fn commit_epoch(
        &mut self,
        fws: &mut [&mut LocalFirewall],
        updates: Vec<PolicyUpdate>,
    ) -> Result<u64, EpochError> {
        // Phase 1: prepare. Validate every staged table against a
        // scratch Configuration Memory; nothing live is modified.
        for update in &updates {
            if !fws.iter().any(|f| f.id() == update.firewall) {
                self.stats.incr("reconfig.epoch_aborts");
                return Err(EpochError::UnknownFirewall(update.firewall));
            }
            if let Err(cause) = ConfigMemory::with_policies(update.policies.clone()) {
                self.stats.incr("reconfig.epoch_aborts");
                return Err(EpochError::Validation(EpochFailure {
                    firewall: update.firewall,
                    cause,
                }));
            }
        }
        // An armed commit-boundary fault interrupts the batch after
        // `stage` swaps. The partial swaps are rolled back to the exact
        // pre-commit tables (generation included) before returning: the
        // observable outcome of a faulted commit is indistinguishable
        // from a refused one.
        if let Some(stage) = self.commit_fault.take() {
            let staged = (stage as usize).min(updates.len());
            let mut undo: Vec<(FirewallId, ConfigMemory)> = Vec::with_capacity(staged);
            for update in updates.into_iter().take(staged) {
                let fw = fws
                    .iter_mut()
                    .find(|f| f.id() == update.firewall)
                    .expect("presence checked in prepare");
                undo.push((update.firewall, fw.config().clone()));
                fw.config_mut()
                    .swap(update.policies)
                    .expect("table validated in prepare");
            }
            for (id, saved) in undo.into_iter().rev() {
                let fw = fws
                    .iter_mut()
                    .find(|f| f.id() == id)
                    .expect("presence checked in prepare");
                *fw.config_mut() = saved;
            }
            self.stats.incr("reconfig.commit_faults");
            self.stats.incr("reconfig.epoch_aborts");
            return Err(EpochError::CommitFault {
                staged: staged as u8,
            });
        }
        // Phase 2: commit. Every swap below is infallible (validated
        // above), so the batch cannot stop halfway.
        self.epoch += 1;
        for update in updates {
            let fw = fws
                .iter_mut()
                .find(|f| f.id() == update.firewall)
                .expect("presence checked in prepare");
            let generation = fw
                .config_mut()
                .swap(update.policies)
                .expect("table validated in prepare");
            fw.unblock();
            self.note_swap(update.firewall);
            self.stats.incr("reconfig.applied");
            self.log
                .push(Cycle(generation), (update.firewall, generation));
        }
        self.stats.incr("reconfig.epochs_committed");
        Ok(self.epoch)
    }

    /// Audit log of applied swaps `(firewall, generation)`.
    pub fn log(&self) -> &EventLog<(FirewallId, u64)> {
        &self.log
    }

    /// Controller statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigMemory;
    use crate::policy::{AdfSet, Rwa, SecurityPolicy, Spi};
    use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};

    fn policy(spi: u16, base: u32) -> SecurityPolicy {
        SecurityPolicy::internal(
            spi,
            AddrRange::new(base, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )
    }

    fn fw() -> LocalFirewall {
        LocalFirewall::new(
            FirewallId(3),
            "LF",
            ConfigMemory::with_policies(vec![policy(1, 0x1000)]).unwrap(),
        )
    }

    fn txn(addr: u32) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op: Op::Read,
            addr,
            width: Width::Word,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn update_waits_for_quiesce_window() {
        let mut rc = ReconfigController::new(50);
        let ready_at = rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(2, 0x2000)],
            },
            Cycle(10),
        );
        assert_eq!(ready_at, Cycle(60));
        assert!(rc.take_ready(Cycle(59)).is_empty());
        assert_eq!(rc.pending(), 1);
        let ready = rc.take_ready(Cycle(60));
        assert_eq!(ready.len(), 1);
        assert_eq!(rc.pending(), 0);
    }

    #[test]
    fn applied_update_changes_enforcement() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        assert!(f.check(&txn(0x1000), Cycle(0)).allowed);
        assert!(!f.check(&txn(0x2000), Cycle(0)).allowed);

        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(2, 0x2000)],
            },
            Cycle(0),
        );
        for update in rc.take_ready(Cycle(0)) {
            rc.apply_to(&mut f, update).unwrap();
        }
        assert!(
            !f.check(&txn(0x1000), Cycle(1)).allowed,
            "old policy revoked"
        );
        assert!(
            f.check(&txn(0x2000), Cycle(1)).allowed,
            "new policy in force"
        );
        assert_eq!(rc.stats().counter("reconfig.applied"), 1);
    }

    #[test]
    fn reconfiguration_unblocks_a_contained_ip() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        f.block();
        assert!(!f.check(&txn(0x1000), Cycle(0)).allowed);
        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(1, 0x1000)],
            },
            Cycle(0),
        );
        for u in rc.take_ready(Cycle(0)) {
            rc.apply_to(&mut f, u).unwrap();
        }
        assert!(f.check(&txn(0x1000), Cycle(1)).allowed);
    }

    #[test]
    fn invalid_update_is_rejected_atomically() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(2, 0x2000), policy(3, 0x2080)], // overlap
            },
            Cycle(0),
        );
        for u in rc.take_ready(Cycle(0)) {
            assert!(rc.apply_to(&mut f, u).is_err());
        }
        // The old table still works.
        assert!(f.check(&txn(0x1000), Cycle(1)).allowed);
        assert_eq!(f.config().generation(), 0);
    }

    fn fw_with_id(id: u8, base: u32) -> LocalFirewall {
        LocalFirewall::new(
            FirewallId(id),
            "LF",
            ConfigMemory::with_policies(vec![policy(1, base)]).unwrap(),
        )
    }

    #[test]
    fn epoch_commit_is_all_or_nothing() {
        let mut rc = ReconfigController::new(0);
        let mut a = fw_with_id(0, 0x1000);
        let mut b = fw_with_id(1, 0x1000);
        let bad = PolicyUpdate {
            firewall: FirewallId(1),
            policies: vec![policy(2, 0x2000), policy(3, 0x2080)], // overlap
        };
        let good = PolicyUpdate {
            firewall: FirewallId(0),
            policies: vec![policy(2, 0x2000)],
        };
        let err = rc
            .commit_epoch(&mut [&mut a, &mut b], vec![good.clone(), bad])
            .unwrap_err();
        assert_eq!(
            err,
            EpochError::Validation(EpochFailure {
                firewall: FirewallId(1),
                cause: PolicyOverlap {
                    attempted: Spi(3),
                    existing: Spi(2)
                },
            }),
            "the error names the firewall whose table failed"
        );
        // The GOOD update earlier in the batch was not applied either.
        assert!(a.check(&txn(0x1000), Cycle(1)).allowed);
        assert!(!a.check(&txn(0x2000), Cycle(1)).allowed);
        assert_eq!(rc.epoch(), 0);
        assert_eq!(rc.stats().counter("reconfig.applied"), 0);

        // Retrying without the bad table commits one epoch for the rest.
        let epoch = rc.commit_epoch(&mut [&mut a, &mut b], vec![good]).unwrap();
        assert_eq!(epoch, 1);
        assert!(a.check(&txn(0x2000), Cycle(2)).allowed);
        assert_eq!(rc.firewall_epoch(FirewallId(0)), 1);
        assert_eq!(
            rc.firewall_epoch(FirewallId(1)),
            0,
            "untouched firewall keeps its epoch"
        );
    }

    #[test]
    fn epoch_commit_rejects_unknown_firewall() {
        let mut rc = ReconfigController::new(0);
        let mut a = fw_with_id(0, 0x1000);
        let err = rc
            .commit_epoch(
                &mut [&mut a],
                vec![PolicyUpdate {
                    firewall: FirewallId(9),
                    policies: vec![],
                }],
            )
            .unwrap_err();
        assert_eq!(err, EpochError::UnknownFirewall(FirewallId(9)));
        assert_eq!(rc.epoch(), 0);
    }

    #[test]
    fn single_firewall_apply_is_a_degenerate_epoch() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        rc.apply_to(
            &mut f,
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(2, 0x2000)],
            },
        )
        .unwrap();
        assert_eq!(rc.epoch(), 1);
        assert_eq!(rc.firewall_epoch(FirewallId(3)), 1);
    }

    #[test]
    fn multiple_updates_order_preserved() {
        let mut rc = ReconfigController::new(10);
        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(0),
                policies: vec![],
            },
            Cycle(0),
        );
        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(1),
                policies: vec![],
            },
            Cycle(5),
        );
        let ready = rc.take_ready(Cycle(20));
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].firewall, FirewallId(0));
        assert_eq!(ready[1].firewall, FirewallId(1));
    }

    #[test]
    fn same_cycle_updates_apply_in_canonical_order_not_insertion_order() {
        // Regression: two updates ready the same cycle used to come back
        // in insertion order, so the applied epoch depended on who called
        // schedule() first.
        let schedule = |order: &[u8]| {
            let mut rc = ReconfigController::new(10);
            for &id in order {
                rc.schedule(
                    PolicyUpdate {
                        firewall: FirewallId(id),
                        policies: vec![],
                    },
                    Cycle(0),
                );
            }
            rc.take_ready(Cycle(10))
                .into_iter()
                .map(|u| u.firewall)
                .collect::<Vec<_>>()
        };
        let canonical = vec![FirewallId(0), FirewallId(1), FirewallId(2)];
        assert_eq!(schedule(&[2, 0, 1]), canonical);
        assert_eq!(schedule(&[0, 1, 2]), canonical);
        assert_eq!(schedule(&[1, 2, 0]), canonical);
    }

    #[test]
    fn same_firewall_same_cycle_keeps_schedule_order() {
        // Two rewrites of the SAME table in one cycle: last write wins,
        // and "last" means schedule order, which is part of the key.
        let mut rc = ReconfigController::new(0);
        for spi in [7u16, 8] {
            rc.schedule(
                PolicyUpdate {
                    firewall: FirewallId(3),
                    policies: vec![policy(spi, 0x1000)],
                },
                Cycle(0),
            );
        }
        let ready = rc.take_ready(Cycle(0));
        assert_eq!(ready[0].policies[0].spi, Spi(7));
        assert_eq!(ready[1].policies[0].spi, Spi(8));
    }

    #[test]
    fn faulted_commit_rolls_back_every_staged_swap() {
        let mut rc = ReconfigController::new(0);
        let mut a = fw_with_id(0, 0x1000);
        let mut b = fw_with_id(1, 0x1000);
        let updates = vec![
            PolicyUpdate {
                firewall: FirewallId(0),
                policies: vec![policy(2, 0x2000)],
            },
            PolicyUpdate {
                firewall: FirewallId(1),
                policies: vec![policy(2, 0x2000)],
            },
        ];
        // Fault after ONE of the two swaps: the worst case — a mixed
        // fleet if the rollback were missing.
        rc.arm_commit_fault(1);
        let err = rc
            .commit_epoch(&mut [&mut a, &mut b], updates.clone())
            .unwrap_err();
        assert_eq!(err, EpochError::CommitFault { staged: 1 });
        assert_eq!(err.reason(), "commit_fault");
        for f in [&mut a, &mut b] {
            assert!(f.check(&txn(0x1000), Cycle(1)).allowed, "old epoch rules");
            assert!(!f.check(&txn(0x2000), Cycle(1)).allowed);
            assert_eq!(f.config().generation(), 0, "generation restored");
        }
        assert_eq!(rc.epoch(), 0, "epoch did not move");
        assert_eq!(rc.stats().counter("reconfig.commit_faults"), 1);
        assert_eq!(rc.stats().counter("reconfig.epoch_aborts"), 1);
        assert!(!rc.commit_fault_armed(), "the fault is one-shot");

        // The retry (no fault armed) commits cleanly.
        let epoch = rc.commit_epoch(&mut [&mut a, &mut b], updates).unwrap();
        assert_eq!(epoch, 1);
        for f in [&mut a, &mut b] {
            assert!(f.check(&txn(0x2000), Cycle(2)).allowed);
        }
    }

    #[test]
    fn faulted_commit_with_stage_beyond_batch_still_aborts() {
        let mut rc = ReconfigController::new(0);
        let mut a = fw_with_id(0, 0x1000);
        rc.arm_commit_fault(200);
        let err = rc
            .commit_epoch(
                &mut [&mut a],
                vec![PolicyUpdate {
                    firewall: FirewallId(0),
                    policies: vec![policy(2, 0x2000)],
                }],
            )
            .unwrap_err();
        assert_eq!(err, EpochError::CommitFault { staged: 1 });
        assert_eq!(a.config().generation(), 0);
        assert_eq!(rc.epoch(), 0);
    }
}
