//! Run-time reconfiguration of security policies (paper §VI future work).
//!
//! > "We also plan to integrate reconfiguration of security services (i.e.
//! > modification of security policies) to counter some attacks against
//! > the system."
//!
//! The model: an update is *scheduled*, the target firewall keeps running
//! under the old table for a quiesce window (`swap_latency` cycles — the
//! hardware would drain its pipeline and rewrite the Configuration Memory),
//! and then the whole table is swapped atomically. A failed validation
//! (overlapping regions) leaves the old table in force — a half-applied
//! security policy would be worse than a stale one.

use secbus_sim::{Cycle, EventLog, Stats};

use crate::config::PolicyOverlap;
use crate::firewall::{FirewallId, LocalFirewall};
use crate::policy::SecurityPolicy;

/// A staged replacement of one firewall's whole policy table.
#[derive(Debug, Clone)]
pub struct PolicyUpdate {
    /// The firewall whose Configuration Memory is rewritten.
    pub firewall: FirewallId,
    /// The complete new policy set.
    pub policies: Vec<SecurityPolicy>,
}

/// Orchestrates staged policy swaps.
#[derive(Debug)]
pub struct ReconfigController {
    swap_latency: u64,
    queue: Vec<(Cycle, PolicyUpdate)>,
    log: EventLog<(FirewallId, u64)>,
    stats: Stats,
}

impl ReconfigController {
    /// A controller whose updates take effect `swap_latency` cycles after
    /// being scheduled.
    pub fn new(swap_latency: u64) -> Self {
        ReconfigController {
            swap_latency,
            queue: Vec::new(),
            log: EventLog::new(256),
            stats: Stats::new(),
        }
    }

    /// The configured quiesce window.
    pub fn swap_latency(&self) -> u64 {
        self.swap_latency
    }

    /// Stage an update; returns the cycle at which it becomes applicable.
    pub fn schedule(&mut self, update: PolicyUpdate, now: Cycle) -> Cycle {
        let ready_at = now + self.swap_latency;
        self.stats.incr("reconfig.scheduled");
        self.queue.push((ready_at, update));
        ready_at
    }

    /// Updates whose quiesce window has elapsed at `now`, in schedule
    /// order. The caller applies each with
    /// [`ReconfigController::apply_to`].
    pub fn take_ready(&mut self, now: Cycle) -> Vec<PolicyUpdate> {
        let mut ready = Vec::new();
        let mut remaining = Vec::with_capacity(self.queue.len());
        for (at, update) in self.queue.drain(..) {
            if at <= now {
                ready.push(update);
            } else {
                remaining.push((at, update));
            }
        }
        self.queue = remaining;
        ready
    }

    /// Number of updates still quiescing.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Apply a ready update to its firewall, recording the new generation.
    ///
    /// Also lifts an administrative block: reconfiguration is the paper's
    /// envisioned recovery path after an attack forced a lockdown.
    pub fn apply_to(
        &mut self,
        fw: &mut LocalFirewall,
        update: PolicyUpdate,
    ) -> Result<u64, PolicyOverlap> {
        debug_assert_eq!(fw.id(), update.firewall, "update routed to wrong firewall");
        let generation = fw.config_mut().swap(update.policies)?;
        fw.unblock();
        self.stats.incr("reconfig.applied");
        self.log.push(Cycle(generation), (update.firewall, generation));
        Ok(generation)
    }

    /// Audit log of applied swaps `(firewall, generation)`.
    pub fn log(&self) -> &EventLog<(FirewallId, u64)> {
        &self.log
    }

    /// Controller statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigMemory;
    use crate::policy::{AdfSet, Rwa, SecurityPolicy};
    use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};

    fn policy(spi: u16, base: u32) -> SecurityPolicy {
        SecurityPolicy::internal(spi, AddrRange::new(base, 0x100), Rwa::ReadWrite, AdfSet::ALL)
    }

    fn fw() -> LocalFirewall {
        LocalFirewall::new(
            FirewallId(3),
            "LF",
            ConfigMemory::with_policies(vec![policy(1, 0x1000)]).unwrap(),
        )
    }

    fn txn(addr: u32) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op: Op::Read,
            addr,
            width: Width::Word,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn update_waits_for_quiesce_window() {
        let mut rc = ReconfigController::new(50);
        let ready_at =
            rc.schedule(PolicyUpdate { firewall: FirewallId(3), policies: vec![policy(2, 0x2000)] }, Cycle(10));
        assert_eq!(ready_at, Cycle(60));
        assert!(rc.take_ready(Cycle(59)).is_empty());
        assert_eq!(rc.pending(), 1);
        let ready = rc.take_ready(Cycle(60));
        assert_eq!(ready.len(), 1);
        assert_eq!(rc.pending(), 0);
    }

    #[test]
    fn applied_update_changes_enforcement() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        assert!(f.check(&txn(0x1000), Cycle(0)).allowed);
        assert!(!f.check(&txn(0x2000), Cycle(0)).allowed);

        rc.schedule(
            PolicyUpdate { firewall: FirewallId(3), policies: vec![policy(2, 0x2000)] },
            Cycle(0),
        );
        for update in rc.take_ready(Cycle(0)) {
            rc.apply_to(&mut f, update).unwrap();
        }
        assert!(!f.check(&txn(0x1000), Cycle(1)).allowed, "old policy revoked");
        assert!(f.check(&txn(0x2000), Cycle(1)).allowed, "new policy in force");
        assert_eq!(rc.stats().counter("reconfig.applied"), 1);
    }

    #[test]
    fn reconfiguration_unblocks_a_contained_ip() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        f.block();
        assert!(!f.check(&txn(0x1000), Cycle(0)).allowed);
        rc.schedule(
            PolicyUpdate { firewall: FirewallId(3), policies: vec![policy(1, 0x1000)] },
            Cycle(0),
        );
        for u in rc.take_ready(Cycle(0)) {
            rc.apply_to(&mut f, u).unwrap();
        }
        assert!(f.check(&txn(0x1000), Cycle(1)).allowed);
    }

    #[test]
    fn invalid_update_is_rejected_atomically() {
        let mut rc = ReconfigController::new(0);
        let mut f = fw();
        rc.schedule(
            PolicyUpdate {
                firewall: FirewallId(3),
                policies: vec![policy(2, 0x2000), policy(3, 0x2080)], // overlap
            },
            Cycle(0),
        );
        for u in rc.take_ready(Cycle(0)) {
            assert!(rc.apply_to(&mut f, u).is_err());
        }
        // The old table still works.
        assert!(f.check(&txn(0x1000), Cycle(1)).allowed);
        assert_eq!(f.config().generation(), 0);
    }

    #[test]
    fn multiple_updates_order_preserved() {
        let mut rc = ReconfigController::new(10);
        rc.schedule(PolicyUpdate { firewall: FirewallId(0), policies: vec![] }, Cycle(0));
        rc.schedule(PolicyUpdate { firewall: FirewallId(1), policies: vec![] }, Cycle(5));
        let ready = rc.take_ready(Cycle(20));
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].firewall, FirewallId(0));
        assert_eq!(ready[1].firewall, FirewallId(1));
    }
}
