//! The Security Builder's checking modules.
//!
//! > "When the secpol_req signal is received by SB, it reads the associated
//! > SP from the Configuration Memory. Then, SP parameters (security rules)
//! > are sent to specific checking modules that are embedded in the SB
//! > resource."
//!
//! Each checking module is a small pure function from `(policy,
//! transaction)` to an optional [`Violation`]; the Security Builder in
//! [`crate::firewall`] runs them all and aggregates the `check_results`.
//! Keeping them separate (rather than one big `if`) mirrors the hardware
//! structure and lets the area model attribute cost per module.

use core::fmt;

use crate::policy::SecurityPolicy;
use secbus_bus::Transaction;

/// A security-rule violation, as reported on the alert signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// No policy covers the requested address: default-deny.
    NoPolicy,
    /// RWA forbids reads of this region.
    UnauthorizedRead,
    /// RWA forbids writes to this region.
    UnauthorizedWrite,
    /// The access width is not in the Allowed Data Formats
    /// ("an unauthorized format may overwrite some protected data").
    FormatViolation,
    /// The burst runs past the end of the policy region — a transfer must
    /// be ruled by a single policy end to end.
    RegionOverrun,
    /// The address is not naturally aligned for the access width; hardware
    /// would tear such an access into partial beats with unpredictable
    /// side effects, so the firewall refuses it.
    Misaligned,
    /// The Integrity Core found the external-memory content inconsistent
    /// with the on-chip hash-tree root (spoofing / replay / relocation).
    IntegrityMismatch,
    /// The IP behind this firewall has been administratively blocked after
    /// repeated violations (the monitor's containment reaction).
    IpBlocked,
    /// The IP exceeded its traffic budget (rate-limit extension against
    /// the threat model's "injecting dummy data to create overwhelming
    /// traffic" DoS with otherwise-authorized requests).
    RateLimited,
    /// A watched transaction produced no completion within the monitor's
    /// watchdog window — a hung slave, a lost grant, or a dropped
    /// handshake; the transaction was cancelled instead of hanging the IP.
    WatchdogTimeout,
    /// A Configuration-Memory policy entry failed its parity check (storage
    /// upset); the entry was re-fetched from the golden image.
    ConfigCorruption,
    /// DIFT: data tainted by an unprotected or cipher-only source reached
    /// a protected-region write or a configuration store — an information
    /// flow the address-based rules alone cannot see (e.g. a compromised
    /// master laundering attacker-controlled words into protected memory).
    TaintedSink,
    /// Admission control refused the transaction because the fabric's
    /// bounded queues were full (overload shedding). Fail-secure: the
    /// transaction is *refused with this alert*, never silently dropped —
    /// under overload a shed must be as visible as a blocked attack.
    Shed,
}

impl Violation {
    /// Short stable mnemonic used in stats keys and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Violation::NoPolicy => "no_policy",
            Violation::UnauthorizedRead => "unauth_read",
            Violation::UnauthorizedWrite => "unauth_write",
            Violation::FormatViolation => "bad_format",
            Violation::RegionOverrun => "region_overrun",
            Violation::Misaligned => "misaligned",
            Violation::IntegrityMismatch => "integrity",
            Violation::IpBlocked => "ip_blocked",
            Violation::RateLimited => "rate_limited",
            Violation::WatchdogTimeout => "watchdog_timeout",
            Violation::ConfigCorruption => "config_corruption",
            Violation::TaintedSink => "tainted_sink",
            Violation::Shed => "shed",
        }
    }

    /// Full monitor stats key (`monitor.violation.<mnemonic>`),
    /// precomputed so the per-alert hot path never allocates.
    pub fn monitor_key(self) -> &'static str {
        match self {
            Violation::NoPolicy => "monitor.violation.no_policy",
            Violation::UnauthorizedRead => "monitor.violation.unauth_read",
            Violation::UnauthorizedWrite => "monitor.violation.unauth_write",
            Violation::FormatViolation => "monitor.violation.bad_format",
            Violation::RegionOverrun => "monitor.violation.region_overrun",
            Violation::Misaligned => "monitor.violation.misaligned",
            Violation::IntegrityMismatch => "monitor.violation.integrity",
            Violation::IpBlocked => "monitor.violation.ip_blocked",
            Violation::RateLimited => "monitor.violation.rate_limited",
            Violation::WatchdogTimeout => "monitor.violation.watchdog_timeout",
            Violation::ConfigCorruption => "monitor.violation.config_corruption",
            Violation::TaintedSink => "monitor.violation.tainted_sink",
            Violation::Shed => "monitor.violation.shed",
        }
    }

    /// Full firewall stats key (`fw.violation.<mnemonic>`), precomputed
    /// for the same reason as [`Violation::monitor_key`].
    pub fn fw_key(self) -> &'static str {
        match self {
            Violation::NoPolicy => "fw.violation.no_policy",
            Violation::UnauthorizedRead => "fw.violation.unauth_read",
            Violation::UnauthorizedWrite => "fw.violation.unauth_write",
            Violation::FormatViolation => "fw.violation.bad_format",
            Violation::RegionOverrun => "fw.violation.region_overrun",
            Violation::Misaligned => "fw.violation.misaligned",
            Violation::IntegrityMismatch => "fw.violation.integrity",
            Violation::IpBlocked => "fw.violation.ip_blocked",
            Violation::RateLimited => "fw.violation.rate_limited",
            Violation::WatchdogTimeout => "fw.violation.watchdog_timeout",
            Violation::ConfigCorruption => "fw.violation.config_corruption",
            Violation::TaintedSink => "fw.violation.tainted_sink",
            Violation::Shed => "fw.violation.shed",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Aggregated result of a Security Builder pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// All checking modules passed; the FI may forward the data.
    Pass,
    /// At least one module raised; the first violation (in module order)
    /// is reported on the alert signals.
    Fail(Violation),
}

impl CheckOutcome {
    /// Whether the transaction may proceed.
    pub fn passed(self) -> bool {
        matches!(self, CheckOutcome::Pass)
    }

    /// The violation, if any.
    pub fn violation(self) -> Option<Violation> {
        match self {
            CheckOutcome::Pass => None,
            CheckOutcome::Fail(v) => Some(v),
        }
    }
}

/// Checking module 1: RWA (read/write authorization).
pub fn check_rwa(policy: &SecurityPolicy, txn: &Transaction) -> Option<Violation> {
    if policy.rwa.allows(txn.op) {
        None
    } else {
        Some(match txn.op {
            secbus_bus::Op::Read => Violation::UnauthorizedRead,
            secbus_bus::Op::Write => Violation::UnauthorizedWrite,
        })
    }
}

/// Checking module 2: ADF (allowed data format).
pub fn check_adf(policy: &SecurityPolicy, txn: &Transaction) -> Option<Violation> {
    if policy.adf.allows(txn.width) {
        None
    } else {
        Some(Violation::FormatViolation)
    }
}

/// Checking module 3: address/region containment for the whole burst.
pub fn check_region(policy: &SecurityPolicy, txn: &Transaction) -> Option<Violation> {
    if txn.within(policy.region.base, policy.region.len) {
        None
    } else {
        Some(Violation::RegionOverrun)
    }
}

/// Checking module 4: natural alignment.
pub fn check_alignment(_policy: &SecurityPolicy, txn: &Transaction) -> Option<Violation> {
    if txn.aligned() {
        None
    } else {
        Some(Violation::Misaligned)
    }
}

/// The full Security Builder check: look up nothing (the caller already
/// fetched the policy from the Configuration Memory), run every module in
/// a fixed order, report the first violation.
pub fn check_all(policy: &SecurityPolicy, txn: &Transaction) -> CheckOutcome {
    // Direct calls in the fixed module order — a fn-pointer table here
    // defeats inlining on the hottest per-transaction path.
    if let Some(v) = check_region(policy, txn) {
        return CheckOutcome::Fail(v);
    }
    if let Some(v) = check_rwa(policy, txn) {
        return CheckOutcome::Fail(v);
    }
    if let Some(v) = check_adf(policy, txn) {
        return CheckOutcome::Fail(v);
    }
    if let Some(v) = check_alignment(policy, txn) {
        return CheckOutcome::Fail(v);
    }
    CheckOutcome::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdfSet, Rwa, SecurityPolicy};
    use secbus_bus::{AddrRange, MasterId, Op, TxnId, Width};
    use secbus_sim::Cycle;

    fn policy(rwa: Rwa, adf: AdfSet) -> SecurityPolicy {
        SecurityPolicy::internal(1, AddrRange::new(0x1000, 0x100), rwa, adf)
    }

    fn txn(op: Op, addr: u32, width: Width, burst: u16) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op,
            addr,
            width,
            data: 0,
            burst,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn clean_access_passes() {
        let p = policy(Rwa::ReadWrite, AdfSet::ALL);
        let t = txn(Op::Read, 0x1004, Width::Word, 1);
        assert_eq!(check_all(&p, &t), CheckOutcome::Pass);
        assert!(check_all(&p, &t).passed());
        assert_eq!(check_all(&p, &t).violation(), None);
    }

    #[test]
    fn rwa_blocks_wrong_direction() {
        let ro = policy(Rwa::ReadOnly, AdfSet::ALL);
        let t = txn(Op::Write, 0x1000, Width::Word, 1);
        assert_eq!(check_rwa(&ro, &t), Some(Violation::UnauthorizedWrite));
        assert_eq!(
            check_all(&ro, &t),
            CheckOutcome::Fail(Violation::UnauthorizedWrite)
        );
        let wo = policy(Rwa::WriteOnly, AdfSet::ALL);
        let t = txn(Op::Read, 0x1000, Width::Word, 1);
        assert_eq!(
            check_all(&wo, &t),
            CheckOutcome::Fail(Violation::UnauthorizedRead)
        );
    }

    #[test]
    fn adf_blocks_disallowed_widths() {
        let p = policy(Rwa::ReadWrite, AdfSet::WORD_ONLY);
        assert_eq!(
            check_all(&p, &txn(Op::Write, 0x1000, Width::Byte, 1)),
            CheckOutcome::Fail(Violation::FormatViolation)
        );
        assert_eq!(
            check_all(&p, &txn(Op::Write, 0x1000, Width::Half, 1)),
            CheckOutcome::Fail(Violation::FormatViolation)
        );
        assert!(check_all(&p, &txn(Op::Write, 0x1000, Width::Word, 1)).passed());
    }

    #[test]
    fn burst_escaping_region_is_caught() {
        let p = policy(Rwa::ReadWrite, AdfSet::ALL);
        // Region is 0x1000..0x1100; a 65-word burst from 0x1000 overruns.
        let t = txn(Op::Read, 0x1000, Width::Word, 65);
        assert_eq!(check_region(&p, &t), Some(Violation::RegionOverrun));
        // Exactly filling the region is fine.
        let t = txn(Op::Read, 0x1000, Width::Word, 64);
        assert_eq!(check_region(&p, &t), None);
    }

    #[test]
    fn start_outside_region_is_overrun() {
        let p = policy(Rwa::ReadWrite, AdfSet::ALL);
        let t = txn(Op::Read, 0x0fff, Width::Byte, 1);
        assert_eq!(
            check_all(&p, &t),
            CheckOutcome::Fail(Violation::RegionOverrun)
        );
    }

    #[test]
    fn misalignment_is_caught() {
        let p = policy(Rwa::ReadWrite, AdfSet::ALL);
        let t = txn(Op::Read, 0x1002, Width::Word, 1);
        assert_eq!(check_all(&p, &t), CheckOutcome::Fail(Violation::Misaligned));
        let t = txn(Op::Read, 0x1001, Width::Half, 1);
        assert_eq!(check_all(&p, &t), CheckOutcome::Fail(Violation::Misaligned));
        let t = txn(Op::Read, 0x1001, Width::Byte, 1);
        assert!(check_all(&p, &t).passed());
    }

    #[test]
    fn module_order_region_first() {
        // An access that is both out of region and mis-directed reports the
        // region violation (module order is fixed, as in hardware).
        let p = policy(Rwa::ReadOnly, AdfSet::ALL);
        let t = txn(Op::Write, 0x2000, Width::Word, 1);
        assert_eq!(
            check_all(&p, &t),
            CheckOutcome::Fail(Violation::RegionOverrun)
        );
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(Violation::NoPolicy.mnemonic(), "no_policy");
        assert_eq!(Violation::IntegrityMismatch.to_string(), "integrity");
    }
}
