//! Policy DSL: masters × regions × rights, compiled to sorted-range tables.
//!
//! AKER frames on-chip access control as a design-*and-verification*
//! problem: a policy is only as trustworthy as the proof that the compiled
//! enforcement tables mean what the author wrote. This module provides the
//! three pieces of that argument for the distributed-firewall fabric:
//!
//! 1. **A small DSL** ([`PolicyProgram::parse`]): named masters, named
//!    address regions (optionally with LCF confidentiality/integrity
//!    attributes), and ordered `allow`/`deny` rules. Semantics are
//!    *deny-by-default* with *first-match-wins* per master — the two
//!    properties a human auditor can actually reason about.
//! 2. **A compiler** ([`PolicyProgram::compile`]): flattens the ordered
//!    rule list into the non-overlapping, binary-searched
//!    [`ConfigMemory`] table format every firewall already enforces
//!    (each rule contributes the sub-intervals of its region not claimed
//!    by an earlier rule).
//! 3. **An exhaustive verifier** ([`verify`]): checks a set of compiled
//!    tables — whether produced by this compiler or staged by anything
//!    else — against the DSL intent over the full master × region matrix.
//!    Every rejection carries a concrete `(master, address, access)`
//!    counterexample; shadowed rules (rules that can never fire) are
//!    rejected too, naming the rule that eclipses them.
//!
//! Exhaustiveness argument: both the intent function and the table verdict
//! are piecewise-constant in the address between consecutive region
//! boundaries (for a fixed access width and alignment class), so checking
//! every `(op, width)` at every address within ±4 bytes of every region
//! boundary of *both* the program and the table covers every behaviour
//! class of the full 2³² space. A brute-force sweep over a small address
//! space cross-checks this sampling in the tests.

use core::fmt;

use secbus_bus::{AddrRange, Op, Width};

use crate::config::ConfigMemory;
use crate::policy::{AdfSet, ConfidentialityMode, IntegrityMode, Rwa, SecurityPolicy};

/// A parse/compile error, pointing at the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DslError {}

/// A declared enforcement point (a master behind a Local Firewall, or the
/// LCF's port in front of the external memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterDecl {
    /// DSL name.
    pub name: String,
    /// Stable index used to pair the master with its compiled table.
    pub index: u8,
    /// Declaration line.
    pub line: u32,
}

/// A named address region, optionally carrying LCF crypto attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDecl {
    /// DSL name.
    pub name: String,
    /// The byte range `[base, base+len)`.
    pub range: AddrRange,
    /// Confidentiality mode compiled into policies over this region.
    pub cm: ConfidentialityMode,
    /// Integrity mode compiled into policies over this region.
    pub im: IntegrityMode,
    /// Cipher key (present exactly when `cm` is `Encrypt`).
    pub key: Option<[u8; 16]>,
    /// Declaration line.
    pub line: u32,
}

/// Whether a rule grants or revokes access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// Grant the stated rights over the region remainder.
    Allow,
    /// Carve the region out of any *later* rule (deny-by-default already
    /// covers addresses no rule mentions).
    Deny,
}

/// One ordered rule: first matching rule per master wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Source line (the verifier's shadowing counterexamples cite it).
    pub line: u32,
    /// Index into [`PolicyProgram::masters`].
    pub master: usize,
    /// Index into [`PolicyProgram::regions`].
    pub region: usize,
    /// Allow or deny.
    pub action: RuleAction,
    /// Read/write rights (ignored for deny rules).
    pub rwa: Rwa,
    /// Allowed access widths (ignored for deny rules).
    pub adf: AdfSet,
}

/// A parsed policy program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyProgram {
    /// Declared enforcement points.
    pub masters: Vec<MasterDecl>,
    /// Declared regions.
    pub regions: Vec<RegionDecl>,
    /// Ordered rules (first match wins).
    pub rules: Vec<Rule>,
}

/// Parse a number token: decimal or `0x` hex, `_` separators allowed.
fn parse_num(tok: &str) -> Option<u64> {
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    match clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => clean.parse().ok(),
    }
}

fn parse_key(tok: &str) -> Option<[u8; 16]> {
    if tok.len() != 32 || !tok.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    let mut key = [0u8; 16];
    for (i, slot) in key.iter_mut().enumerate() {
        *slot = u8::from_str_radix(&tok[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(key)
}

fn parse_widths(tok: &str) -> Option<AdfSet> {
    let mut bits = 0u8;
    for part in tok.split([',', '|']) {
        bits |= match part {
            "byte" | "8" => 1,
            "half" | "16" => 2,
            "word" | "32" => 4,
            _ => return None,
        };
    }
    Some(AdfSet::from_bits(bits))
}

impl PolicyProgram {
    /// Parse DSL source. The grammar is line-oriented; `#` starts a
    /// comment. See `secbus policy template` for a worked example:
    ///
    /// ```text
    /// master <name> = <index>
    /// region <name> = <base> + <len> [encrypt [verify] key <32 hex digits>]
    /// allow  <master> <region> <ro|wo|rw> [byte,half,word | 8,16,32]
    /// deny   <master> <region>
    /// ```
    pub fn parse(src: &str) -> Result<PolicyProgram, DslError> {
        let mut prog = PolicyProgram {
            masters: Vec::new(),
            regions: Vec::new(),
            rules: Vec::new(),
        };
        for (i, raw) in src.lines().enumerate() {
            let line = (i + 1) as u32;
            let err = |msg: String| DslError { line, msg };
            let text = raw.split('#').next().unwrap_or("");
            let toks: Vec<&str> = text.split_whitespace().collect();
            if toks.is_empty() {
                continue;
            }
            match toks[0] {
                "master" => {
                    if toks.len() != 4 || toks[2] != "=" {
                        return Err(err("expected: master <name> = <index>".into()));
                    }
                    let (name, idx) = (toks[1], toks[3]);
                    let index = parse_num(idx)
                        .and_then(|n| u8::try_from(n).ok())
                        .ok_or_else(|| err(format!("master index {idx:?} must be 0..=255")))?;
                    if prog.masters.iter().any(|m| m.name == name) {
                        return Err(err(format!("master {name:?} declared twice")));
                    }
                    if prog.masters.iter().any(|m| m.index == index) {
                        return Err(err(format!("master index {index} declared twice")));
                    }
                    prog.masters.push(MasterDecl {
                        name: name.to_string(),
                        index,
                        line,
                    });
                }
                "region" => {
                    if toks.len() < 6 || toks[2] != "=" || toks[4] != "+" {
                        return Err(err(
                            "expected: region <name> = <base> + <len> [encrypt [verify] key <hex>]"
                                .into(),
                        ));
                    }
                    let name = toks[1];
                    if prog.regions.iter().any(|r| r.name == name) {
                        return Err(err(format!("region {name:?} declared twice")));
                    }
                    let base = parse_num(toks[3])
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| err(format!("bad region base {:?}", toks[3])))?;
                    let len = parse_num(toks[5])
                        .and_then(|n| u32::try_from(n).ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err(format!("bad region len {:?}", toks[5])))?;
                    if u64::from(base) + u64::from(len) > 1 << 32 {
                        return Err(err(format!(
                            "region {base:#x}+{len:#x} wraps the 32-bit address space"
                        )));
                    }
                    let mut cm = ConfidentialityMode::Bypass;
                    let mut im = IntegrityMode::Bypass;
                    let mut key = None;
                    let mut rest = toks[6..].iter();
                    while let Some(&attr) = rest.next() {
                        match attr {
                            "encrypt" => cm = ConfidentialityMode::Encrypt,
                            "verify" => im = IntegrityMode::Verify,
                            "key" => {
                                let hex = rest
                                    .next()
                                    .ok_or_else(|| err("key needs 32 hex digits".into()))?;
                                key = Some(parse_key(hex).ok_or_else(|| {
                                    err(format!("bad key {hex:?}: need 32 hex digits"))
                                })?);
                            }
                            other => {
                                return Err(err(format!("unknown region attribute {other:?}")))
                            }
                        }
                    }
                    // Reuse the policy validator so region attributes obey
                    // the same rules the firewalls enforce.
                    SecurityPolicy::validated(
                        0,
                        AddrRange::new(base, len),
                        Rwa::ReadWrite,
                        AdfSet::ALL,
                        cm,
                        im,
                        key,
                    )
                    .map_err(|e| err(e.to_string()))?;
                    prog.regions.push(RegionDecl {
                        name: name.to_string(),
                        range: AddrRange::new(base, len),
                        cm,
                        im,
                        key,
                        line,
                    });
                }
                "allow" | "deny" => {
                    let action = if toks[0] == "allow" {
                        RuleAction::Allow
                    } else {
                        RuleAction::Deny
                    };
                    let (&master_tok, &region_tok) = match (toks.get(1), toks.get(2)) {
                        (Some(m), Some(r)) => (m, r),
                        _ => return Err(err(format!("expected: {} <master> <region> …", toks[0]))),
                    };
                    let master = prog
                        .masters
                        .iter()
                        .position(|m| m.name == master_tok)
                        .ok_or_else(|| err(format!("unknown master {master_tok:?}")))?;
                    let region = prog
                        .regions
                        .iter()
                        .position(|r| r.name == region_tok)
                        .ok_or_else(|| err(format!("unknown region {region_tok:?}")))?;
                    let (rwa, adf) = match action {
                        RuleAction::Deny => {
                            if toks.len() > 3 {
                                return Err(err("deny takes no rights".into()));
                            }
                            (Rwa::ReadWrite, AdfSet::ALL)
                        }
                        RuleAction::Allow => {
                            let rwa = match toks.get(3).copied() {
                                Some("ro") => Rwa::ReadOnly,
                                Some("wo") => Rwa::WriteOnly,
                                Some("rw") => Rwa::ReadWrite,
                                other => {
                                    return Err(err(format!(
                                        "allow needs rights ro|wo|rw, got {other:?}"
                                    )))
                                }
                            };
                            let adf = match toks.get(4) {
                                None => AdfSet::ALL,
                                Some(w) => parse_widths(w).ok_or_else(|| {
                                    err(format!("bad width list {w:?} (byte,half,word)"))
                                })?,
                            };
                            if toks.len() > 5 {
                                return Err(err(format!("trailing tokens after {:?}", toks[4])));
                            }
                            (rwa, adf)
                        }
                    };
                    prog.rules.push(Rule {
                        line,
                        master,
                        region,
                        action,
                        rwa,
                        adf,
                    });
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        if prog.masters.is_empty() {
            return Err(DslError {
                line: 0,
                msg: "no masters declared".into(),
            });
        }
        Ok(prog)
    }

    /// The rule in force for `(master_index, addr)`: first match in
    /// program order, `None` when no rule covers the address
    /// (deny-by-default).
    fn ruling(&self, master: usize, addr: u32) -> Option<usize> {
        self.rules
            .iter()
            .position(|r| r.master == master && self.regions[r.region].range.contains(addr))
    }

    /// The DSL's *intent*: is `(master, addr, op, width)` authorized?
    ///
    /// Mirrors the hardware's enforcement granularity: the access must be
    /// naturally aligned, and every byte of the window must be first-match
    /// ruled by the *same* allow rule (a transfer is ruled by a single
    /// policy end to end).
    pub fn intent(&self, master_index: u8, addr: u32, op: Op, width: Width) -> bool {
        let Some(master) = self.masters.iter().position(|m| m.index == master_index) else {
            return false;
        };
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) || u64::from(addr) + u64::from(bytes) > 1 << 32 {
            return false;
        }
        let Some(first) = self.ruling(master, addr) else {
            return false;
        };
        let rule = &self.rules[first];
        if rule.action == RuleAction::Deny {
            return false;
        }
        // Every byte of the window must resolve to the same rule.
        for b in 1..bytes {
            if self.ruling(master, addr + b) != Some(first) {
                return false;
            }
        }
        rule.rwa.allows(op) && rule.adf.allows(width)
    }

    /// Compile every master's table. Shadowed rules still compile (they
    /// contribute nothing) — [`verify`] is what rejects them, with a
    /// counterexample; keeping compilation total lets the verifier be the
    /// single gate for both compiler output and foreign tables.
    pub fn compile(&self) -> Result<CompiledPolicies, DslError> {
        let mut tables = Vec::with_capacity(self.masters.len());
        for (mi, master) in self.masters.iter().enumerate() {
            let mut covered: Vec<(u64, u64)> = Vec::new();
            let mut policies = Vec::new();
            let mut next_spi: u32 = 1;
            for rule in self.rules.iter().filter(|r| r.master == mi) {
                let region = &self.regions[rule.region];
                let contribution =
                    subtract((u64::from(region.range.base), region.range.end()), &covered);
                for &(start, end) in &contribution {
                    covered.push((start, end));
                    if rule.action == RuleAction::Deny {
                        continue;
                    }
                    let spi = u16::try_from(next_spi).map_err(|_| DslError {
                        line: rule.line,
                        msg: format!("master {:?} exceeds 65535 policies", master.name),
                    })?;
                    next_spi += 1;
                    policies.push(
                        SecurityPolicy::validated(
                            spi,
                            AddrRange::new(start as u32, (end - start) as u32),
                            rule.rwa,
                            rule.adf,
                            region.cm,
                            region.im,
                            region.key,
                        )
                        .expect("region attributes validated at parse"),
                    );
                }
            }
            policies.sort_by_key(|p| p.region.base);
            tables.push(CompiledTable {
                master: master.index,
                name: master.name.clone(),
                policies,
            });
        }
        Ok(CompiledPolicies { tables })
    }
}

/// `range` minus the union of `covered`, as maximal disjoint intervals.
fn subtract(range: (u64, u64), covered: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut holes: Vec<(u64, u64)> = covered
        .iter()
        .copied()
        .filter(|&(s, e)| s < range.1 && e > range.0)
        .collect();
    holes.sort_unstable();
    let mut out = Vec::new();
    let mut cursor = range.0;
    for (s, e) in holes {
        if s > cursor {
            out.push((cursor, s.min(range.1)));
        }
        cursor = cursor.max(e);
        if cursor >= range.1 {
            break;
        }
    }
    if cursor < range.1 {
        out.push((cursor, range.1));
    }
    out
}

/// One master's compiled sorted-range table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTable {
    /// The master index from the `master` declaration.
    pub master: u8,
    /// The master's DSL name (reports and counterexamples).
    pub name: String,
    /// Non-overlapping policies, ascending by region base.
    pub policies: Vec<SecurityPolicy>,
}

/// The compiler's output: one table per declared master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPolicies {
    /// Tables in master declaration order.
    pub tables: Vec<CompiledTable>,
}

impl CompiledPolicies {
    /// The table compiled for `master_index`, if declared.
    pub fn table(&self, master_index: u8) -> Option<&CompiledTable> {
        self.tables.iter().find(|t| t.master == master_index)
    }

    /// Borrow the tables in the `(index, policies)` shape [`verify`] takes.
    pub fn as_views(&self) -> Vec<(u8, &[SecurityPolicy])> {
        self.tables
            .iter()
            .map(|t| (t.master, t.policies.as_slice()))
            .collect()
    }
}

/// A concrete `(master, address, access)` witness of an intent/table
/// disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Master DSL name.
    pub master: String,
    /// Master index.
    pub index: u8,
    /// Witness address.
    pub addr: u32,
    /// Access direction mnemonic (`"read"` / `"write"`).
    pub op: &'static str,
    /// Access width in bits (8/16/32).
    pub width_bits: u8,
    /// What the DSL says.
    pub intent_allows: bool,
    /// What the compiled table says.
    pub table_allows: bool,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "master {:?} (index {}), {}-bit {} at {:#010x}: intent {} but table {} — {}",
            self.master,
            self.index,
            self.width_bits,
            self.op,
            self.addr,
            if self.intent_allows {
                "allows"
            } else {
                "denies"
            },
            if self.table_allows {
                "allows"
            } else {
                "denies"
            },
            self.detail
        )
    }
}

/// Why a table set fails verification. In every case the tables must not
/// be put in force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyVerifyError {
    /// A rule can never fire: every address of its region is claimed by an
    /// earlier rule. Dead policy text is a latent misconfiguration — the
    /// author believes a right exists (or is revoked) that the earlier
    /// rule silently overrides.
    Shadowed {
        /// Master DSL name.
        master: String,
        /// The line of the rule that can never fire.
        rule_line: u32,
        /// The earlier rule that eclipses it.
        winner_line: u32,
        /// A concrete address both rules cover.
        addr: u32,
    },
    /// The table disagrees with the DSL intent at a concrete access.
    Mismatch(Counterexample),
    /// An allowed access is served with weaker confidentiality/integrity
    /// attributes than the region declares.
    AttrMismatch(Counterexample),
    /// A declared master has no staged table.
    MissingTable {
        /// Master DSL name.
        master: String,
        /// Master index.
        index: u8,
    },
    /// A staged table targets an index the program never declared.
    UnknownTable {
        /// The undeclared master index.
        index: u8,
    },
    /// The staged table is not a valid sorted-range table (overlaps).
    InvalidTable {
        /// Master DSL name.
        master: String,
        /// The overlap diagnosis.
        detail: String,
    },
}

impl fmt::Display for PolicyVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyVerifyError::Shadowed {
                master,
                rule_line,
                winner_line,
                addr,
            } => write!(
                f,
                "shadowed rule: master {master:?} line {rule_line} can never fire — \
                 line {winner_line} already rules address {addr:#010x}"
            ),
            PolicyVerifyError::Mismatch(ce) => write!(f, "intent mismatch: {ce}"),
            PolicyVerifyError::AttrMismatch(ce) => {
                write!(f, "protection-attribute mismatch: {ce}")
            }
            PolicyVerifyError::MissingTable { master, index } => {
                write!(f, "master {master:?} (index {index}) has no staged table")
            }
            PolicyVerifyError::UnknownTable { index } => {
                write!(f, "staged table targets undeclared master index {index}")
            }
            PolicyVerifyError::InvalidTable { master, detail } => {
                write!(f, "master {master:?}: invalid table: {detail}")
            }
        }
    }
}

impl std::error::Error for PolicyVerifyError {}

/// What a successful verification covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Masters checked.
    pub masters: usize,
    /// DSL rules checked for shadowing.
    pub rules: usize,
    /// Total compiled policies across tables.
    pub policies: usize,
    /// `(addr, op, width)` samples compared.
    pub samples: u64,
}

/// Table-side verdict replica: the same lookup + checking-module pass the
/// firewalls run, minus the transaction plumbing. Returns the ruling
/// policy when the access is allowed.
fn table_verdict(cm: &ConfigMemory, addr: u32, op: Op, width: Width) -> Option<&SecurityPolicy> {
    let bytes = width.bytes();
    if !addr.is_multiple_of(bytes) || u64::from(addr) + u64::from(bytes) > 1 << 32 {
        return None;
    }
    let p = cm.lookup(addr)?;
    let within = p.region.contains_span(addr, bytes);
    (within && p.rwa.allows(op) && p.adf.allows(width)).then_some(p)
}

const OPS: [(Op, &str); 2] = [(Op::Read, "read"), (Op::Write, "write")];
const WIDTHS: [(Width, u8); 3] = [(Width::Byte, 8), (Width::Half, 16), (Width::Word, 32)];

/// Exhaustively check staged tables against the program's intent.
///
/// `tables` pairs each master index with the complete policy set staged
/// for its firewall — [`CompiledPolicies::as_views`] for compiler output,
/// or the policy vectors of a
/// [`PolicyUpdate`](crate::reconfig::PolicyUpdate) batch at epoch
/// admission. Checks, in order: every declared master has exactly one
/// valid table and vice versa; no DSL rule is shadowed; and at every
/// boundary-adjacent `(addr, op, width)` sample the table verdict equals
/// the DSL intent, including the confidentiality/integrity attributes of
/// the region. The first failure is returned with its counterexample.
pub fn verify(
    program: &PolicyProgram,
    tables: &[(u8, &[SecurityPolicy])],
) -> Result<VerifyReport, PolicyVerifyError> {
    // Master <-> table pairing.
    for &(index, _) in tables {
        if !program.masters.iter().any(|m| m.index == index) {
            return Err(PolicyVerifyError::UnknownTable { index });
        }
    }
    // Shadowing: a rule whose region is fully claimed by earlier rules of
    // the same master can never fire.
    for (i, rule) in program.rules.iter().enumerate() {
        let region = &program.regions[rule.region];
        let earlier: Vec<(u64, u64)> = program.rules[..i]
            .iter()
            .filter(|r| r.master == rule.master)
            .map(|r| {
                let rr = &program.regions[r.region].range;
                (u64::from(rr.base), rr.end())
            })
            .collect();
        if subtract((u64::from(region.range.base), region.range.end()), &earlier).is_empty() {
            let winner = program.rules[..i]
                .iter()
                .find(|r| {
                    r.master == rule.master
                        && program.regions[r.region].range.contains(region.range.base)
                })
                .expect("a fully-covered region is covered at its base");
            return Err(PolicyVerifyError::Shadowed {
                master: program.masters[rule.master].name.clone(),
                rule_line: rule.line,
                winner_line: winner.line,
                addr: region.range.base,
            });
        }
    }
    let mut samples = 0u64;
    let mut policies = 0usize;
    for (mi, master) in program.masters.iter().enumerate() {
        let &(_, staged) = tables
            .iter()
            .find(|(idx, _)| *idx == master.index)
            .ok_or_else(|| PolicyVerifyError::MissingTable {
                master: master.name.clone(),
                index: master.index,
            })?;
        policies += staged.len();
        // Rebuild the real lookup structure; overlaps are refused here.
        let cm = ConfigMemory::with_policies(staged.to_vec()).map_err(|e| {
            PolicyVerifyError::InvalidTable {
                master: master.name.clone(),
                detail: e.to_string(),
            }
        })?;
        // Boundary set: every region endpoint of both the program's rules
        // for this master and the staged table.
        let mut edges: Vec<u64> = Vec::new();
        for rule in program.rules.iter().filter(|r| r.master == mi) {
            let r = &program.regions[rule.region].range;
            edges.push(u64::from(r.base));
            edges.push(r.end());
        }
        for p in staged {
            edges.push(u64::from(p.region.base));
            edges.push(p.region.end());
        }
        edges.sort_unstable();
        edges.dedup();
        let mut candidates: Vec<u32> = Vec::new();
        for &e in &edges {
            for a in e.saturating_sub(4)..(e + 4).min(1 << 32) {
                candidates.push(a as u32);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for &addr in &candidates {
            for (op, op_name) in OPS {
                for (width, bits) in WIDTHS {
                    samples += 1;
                    let want = program.intent(master.index, addr, op, width);
                    let got = table_verdict(&cm, addr, op, width);
                    if want != got.is_some() {
                        let detail = if want {
                            "a right the program grants is unenforceable"
                        } else {
                            "the table reaches an access the program denies"
                        };
                        return Err(PolicyVerifyError::Mismatch(Counterexample {
                            master: master.name.clone(),
                            index: master.index,
                            addr,
                            op: op_name,
                            width_bits: bits,
                            intent_allows: want,
                            table_allows: got.is_some(),
                            detail: detail.into(),
                        }));
                    }
                    if let Some(p) = got {
                        // Allowed on both sides: the serving policy must
                        // carry the region's declared protection.
                        let rule = program
                            .ruling(mi, addr)
                            .map(|ri| &program.rules[ri])
                            .expect("intent allowed, so a rule covers addr");
                        let region = &program.regions[rule.region];
                        if p.cm != region.cm || p.im != region.im || p.key != region.key {
                            return Err(PolicyVerifyError::AttrMismatch(Counterexample {
                                master: master.name.clone(),
                                index: master.index,
                                addr,
                                op: op_name,
                                width_bits: bits,
                                intent_allows: true,
                                table_allows: true,
                                detail: format!(
                                    "region {:?} declares cm={:?} im={:?} but the table \
                                     serves cm={:?} im={:?}",
                                    region.name, region.cm, region.im, p.cm, p.im
                                ),
                            }));
                        }
                    }
                }
            }
        }
    }
    Ok(VerifyReport {
        masters: program.masters.len(),
        rules: program.rules.len(),
        policies,
        samples,
    })
}

/// A worked example program (the CLI's `policy template`).
pub fn template() -> &'static str {
    "\
# secbus policy DSL — deny by default, first matching rule wins.
#
# master <name> = <index>           one per enforcement point
# region <name> = <base> + <len>    optional: encrypt [verify] key <hex32>
# allow  <master> <region> <ro|wo|rw> [byte,half,word]
# deny   <master> <region>          carve the region out of later rules

master cpu0 = 0
master dma  = 1

region boot = 0x0000_0000 + 0x2000
region bram = 0x2000_0000 + 0x1_0000
region ddr  = 0x8000_0000 + 0x100 encrypt verify key 00112233445566778899aabbccddeeff

allow cpu0 boot ro word
allow cpu0 bram rw
allow cpu0 ddr  rw word
deny  dma  boot
allow dma  bram rw word,half
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> PolicyProgram {
        PolicyProgram::parse(template()).expect("template parses")
    }

    #[test]
    fn template_parses_compiles_and_verifies() {
        let prog = program();
        assert_eq!(prog.masters.len(), 2);
        assert_eq!(prog.regions.len(), 3);
        let compiled = prog.compile().unwrap();
        let report = verify(&prog, &compiled.as_views()).unwrap();
        assert_eq!(report.masters, 2);
        assert!(report.samples > 0);
        // cpu0: boot ro word, bram rw all, ddr rw word.
        let cpu0 = compiled.table(0).unwrap();
        assert_eq!(cpu0.policies.len(), 3);
        // dma: deny boot contributes nothing, bram rw word/half.
        let dma = compiled.table(1).unwrap();
        assert_eq!(dma.policies.len(), 1);
        assert!(!dma.policies[0].adf.allows(secbus_bus::Width::Byte));
    }

    #[test]
    fn intent_is_deny_by_default_and_first_match() {
        let prog = program();
        assert!(prog.intent(0, 0x2000_0000, Op::Write, Width::Byte));
        assert!(
            !prog.intent(0, 0x3000_0000, Op::Read, Width::Word),
            "uncovered"
        );
        assert!(
            !prog.intent(0, 0x0000_0000, Op::Write, Width::Word),
            "boot is ro"
        );
        assert!(
            !prog.intent(0, 0x0000_0000, Op::Read, Width::Byte),
            "boot is word-only"
        );
        assert!(
            !prog.intent(1, 0x0000_0000, Op::Read, Width::Word),
            "dma denied boot"
        );
        assert!(
            !prog.intent(0, 0x2000_0001, Op::Read, Width::Word),
            "misaligned"
        );
        assert!(
            !prog.intent(9, 0x2000_0000, Op::Read, Width::Word),
            "unknown master"
        );
    }

    #[test]
    fn deny_carves_a_hole_out_of_a_later_allow() {
        let src = "\
master m = 0
region hole = 0x1000 + 0x100
region all  = 0x1000 + 0x1000
deny  m hole
allow m all rw
";
        let prog = PolicyProgram::parse(src).unwrap();
        let compiled = prog.compile().unwrap();
        verify(&prog, &compiled.as_views()).unwrap();
        let t = compiled.table(0).unwrap();
        assert_eq!(t.policies.len(), 1);
        assert_eq!(t.policies[0].region, AddrRange::new(0x1100, 0xF00));
        assert!(!prog.intent(0, 0x1080, Op::Read, Width::Word));
        assert!(prog.intent(0, 0x1100, Op::Read, Width::Word));
        // A word read at the carve boundary must not straddle policies.
        assert!(!prog.intent(0, 0x10FC, Op::Read, Width::Word));
    }

    #[test]
    fn shadowed_rule_is_rejected_with_lines_and_address() {
        let src = "\
master m = 0
region big   = 0x1000 + 0x1000
region small = 0x1400 + 0x100
allow m big rw
allow m small ro
";
        let prog = PolicyProgram::parse(src).unwrap();
        let compiled = prog.compile().unwrap();
        let err = verify(&prog, &compiled.as_views()).unwrap_err();
        assert_eq!(
            err,
            PolicyVerifyError::Shadowed {
                master: "m".into(),
                rule_line: 5,
                winner_line: 4,
                addr: 0x1400,
            }
        );
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn over_permissive_table_yields_concrete_counterexample() {
        let prog = program();
        let compiled = prog.compile().unwrap();
        // Tamper: widen dma's table with a policy the program never grants.
        let mut dma = compiled.table(1).unwrap().policies.clone();
        dma.push(SecurityPolicy::internal(
            99,
            AddrRange::new(0x5000_0000, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ));
        let cpu0 = &compiled.table(0).unwrap().policies;
        let err = verify(&prog, &[(0, cpu0.as_slice()), (1, dma.as_slice())]).unwrap_err();
        let PolicyVerifyError::Mismatch(ce) = err else {
            panic!("expected mismatch, got {err:?}");
        };
        assert_eq!(ce.master, "dma");
        assert!(!ce.intent_allows);
        assert!(ce.table_allows);
        assert!((0x5000_0000u32..0x5000_0100).contains(&ce.addr), "{ce}");
    }

    #[test]
    fn lost_right_yields_counterexample_too() {
        let prog = program();
        let compiled = prog.compile().unwrap();
        let cpu0: Vec<SecurityPolicy> = compiled.table(0).unwrap().policies[1..].to_vec();
        let dma = &compiled.table(1).unwrap().policies;
        let err = verify(&prog, &[(0, cpu0.as_slice()), (1, dma.as_slice())]).unwrap_err();
        let PolicyVerifyError::Mismatch(ce) = err else {
            panic!("expected mismatch, got {err:?}");
        };
        assert!(ce.intent_allows && !ce.table_allows, "{ce}");
    }

    #[test]
    fn weakened_protection_attributes_are_rejected() {
        let prog = program();
        let compiled = prog.compile().unwrap();
        let mut cpu0 = compiled.table(0).unwrap().policies.clone();
        for p in &mut cpu0 {
            if p.cm == ConfidentialityMode::Encrypt {
                // Strip the crypto: same reachability, weaker protection.
                p.cm = ConfidentialityMode::Bypass;
                p.im = IntegrityMode::Bypass;
                p.key = None;
            }
        }
        let dma = &compiled.table(1).unwrap().policies;
        let err = verify(&prog, &[(0, cpu0.as_slice()), (1, dma.as_slice())]).unwrap_err();
        assert!(matches!(err, PolicyVerifyError::AttrMismatch(_)), "{err}");
    }

    #[test]
    fn missing_and_unknown_tables_are_rejected() {
        let prog = program();
        let compiled = prog.compile().unwrap();
        let cpu0 = &compiled.table(0).unwrap().policies;
        assert!(matches!(
            verify(&prog, &[(0, cpu0.as_slice())]).unwrap_err(),
            PolicyVerifyError::MissingTable { index: 1, .. }
        ));
        let dma = &compiled.table(1).unwrap().policies;
        assert_eq!(
            verify(
                &prog,
                &[
                    (0, cpu0.as_slice()),
                    (1, dma.as_slice()),
                    (7, dma.as_slice())
                ]
            )
            .unwrap_err(),
            PolicyVerifyError::UnknownTable { index: 7 }
        );
    }

    #[test]
    fn boundary_sampling_matches_brute_force_on_a_small_space() {
        // Every behaviour the sampler claims to cover, checked at every
        // single address of a small space: the piecewise-constant argument
        // in the module docs, demonstrated.
        let src = "\
master m = 0
region a = 0x10 + 0x30
region b = 0x20 + 0x40
region c = 0x90 + 0x10
allow m a ro word
deny  m c
allow m b rw byte,half
";
        let prog = PolicyProgram::parse(src).unwrap();
        let compiled = prog.compile().unwrap();
        verify(&prog, &compiled.as_views()).unwrap();
        let cm = ConfigMemory::with_policies(compiled.table(0).unwrap().policies.clone()).unwrap();
        for addr in 0u32..0x100 {
            for (op, _) in OPS {
                for (width, _) in WIDTHS {
                    assert_eq!(
                        prog.intent(0, addr, op, width),
                        table_verdict(&cm, addr, op, width).is_some(),
                        "divergence at {addr:#x} {op:?} {width:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parse_errors_cite_the_line() {
        for (src, needle) in [
            ("master m", "expected: master"),
            ("region r = 5 + 0", "bad region len"),
            ("master m = 0\nallow m nowhere rw", "unknown region"),
            (
                "master m = 0\nregion r = 0 + 16\nallow m r sideways",
                "rights",
            ),
            ("master m = 0\nregion r = 0 + 16 encrypt", "no key"),
            ("master m = 0\nmaster m = 1", "declared twice"),
            ("bogus", "unknown directive"),
            ("", "no masters"),
        ] {
            let err = PolicyProgram::parse(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn subtract_covers_edge_cases() {
        assert_eq!(subtract((0, 10), &[]), vec![(0, 10)]);
        assert_eq!(subtract((0, 10), &[(0, 10)]), vec![]);
        assert_eq!(
            subtract((0, 10), &[(3, 5), (7, 8)]),
            vec![(0, 3), (5, 7), (8, 10)]
        );
        assert_eq!(subtract((5, 10), &[(0, 7)]), vec![(7, 10)]);
        assert_eq!(subtract((5, 10), &[(8, 20)]), vec![(5, 8)]);
    }
}
