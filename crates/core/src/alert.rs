//! Alert signals and the security monitor.
//!
//! The paper's security features (§III-C): *"If an error is detected, the
//! system must react as fast as possible"* and *"the attack must not reach
//! the communication architecture but be stopped in the interface
//! associated with the infected IP."*
//!
//! Each firewall raises [`Alert`]s; the [`SecurityMonitor`] aggregates them
//! and decides [`Reaction`]s. The monitor is intentionally thin — in the
//! distributed design the *enforcement* already happened locally (the
//! offending transaction was discarded before the bus); the monitor only
//! adds escalation (blocking a repeatedly-misbehaving IP) and an audit
//! trail.

use secbus_bus::Transaction;
use secbus_sim::{Cycle, EventLog, Stats};

use crate::checker::Violation;
use crate::firewall::FirewallId;

/// One alert, as carried by the `alert_signals` in the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The firewall that raised the alert.
    pub firewall: FirewallId,
    /// The violated rule.
    pub violation: Violation,
    /// The offending transaction.
    pub txn: Transaction,
    /// When the violation was detected.
    pub at: Cycle,
}

/// What the monitor tells the system to do about an alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reaction {
    /// Local discard was enough; nothing further.
    None,
    /// Block the IP behind `firewall` — stop accepting its traffic
    /// entirely (containment escalation).
    BlockIp(FirewallId),
    /// Block the IP, then automatically lift the block at the given
    /// cycle (quarantine): the transient-fault-tolerant variant of the
    /// escalation, for systems where a glitching IP should get another
    /// chance without operator intervention.
    Quarantine {
        /// The firewall to block.
        firewall: FirewallId,
        /// When the block lifts.
        until: Cycle,
    },
}

/// Aggregates alerts from every firewall and applies an escalation policy.
#[derive(Debug)]
pub struct SecurityMonitor {
    log: EventLog<Alert>,
    stats: Stats,
    /// Alerts per firewall id (index = FirewallId.0).
    per_firewall: Vec<u64>,
    /// Block an IP after this many violations (0 = never block).
    block_threshold: u64,
    /// If set, blocks become quarantines of this many cycles, and the
    /// per-firewall violation count resets on escalation so the IP gets a
    /// fresh budget after release.
    quarantine_cycles: Option<u64>,
}

impl SecurityMonitor {
    /// A monitor that blocks an IP after `block_threshold` violations
    /// (0 = log-and-discard only).
    pub fn new(block_threshold: u64) -> Self {
        SecurityMonitor {
            log: EventLog::new(4096),
            stats: Stats::new(),
            per_firewall: Vec::new(),
            block_threshold,
            quarantine_cycles: None,
        }
    }

    /// Convert block escalations into time-bounded quarantines.
    pub fn with_quarantine(mut self, cycles: u64) -> Self {
        self.quarantine_cycles = Some(cycles);
        self
    }

    /// Feed one alert; returns the reaction the system should apply.
    pub fn observe(&mut self, alert: Alert) -> Reaction {
        let idx = alert.firewall.0 as usize;
        if idx >= self.per_firewall.len() {
            self.per_firewall.resize(idx + 1, 0);
        }
        self.per_firewall[idx] += 1;
        self.stats.incr("monitor.alerts");
        self.stats
            .incr(&format!("monitor.violation.{}", alert.violation.mnemonic()));
        let at = alert.at;
        let fw = alert.firewall;
        self.log.push(at, alert);

        if self.block_threshold > 0 && self.per_firewall[idx] >= self.block_threshold {
            self.stats.incr("monitor.blocks");
            match self.quarantine_cycles {
                Some(q) => {
                    // Fresh violation budget after release.
                    self.per_firewall[idx] = 0;
                    Reaction::Quarantine { firewall: fw, until: at + q }
                }
                None => Reaction::BlockIp(fw),
            }
        } else {
            Reaction::None
        }
    }

    /// Total alerts observed.
    pub fn alert_count(&self) -> u64 {
        self.stats.counter("monitor.alerts")
    }

    /// Alerts observed from one firewall.
    pub fn alerts_from(&self, fw: FirewallId) -> u64 {
        self.per_firewall.get(fw.0 as usize).copied().unwrap_or(0)
    }

    /// The first alert ever recorded, if any (detection-latency metric).
    pub fn first_alert(&self) -> Option<&(Cycle, Alert)> {
        self.log.first()
    }

    /// The retained audit trail.
    pub fn log(&self) -> &EventLog<Alert> {
        &self.log
    }

    /// Monitor statistics (per-violation-kind counters etc.).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::{MasterId, Op, TxnId, Width};

    fn alert(fw: u8, v: Violation, at: u64) -> Alert {
        Alert {
            firewall: FirewallId(fw),
            violation: v,
            txn: Transaction {
                id: TxnId(0),
                master: MasterId(fw),
                op: Op::Write,
                addr: 0,
                width: Width::Word,
                data: 0,
                burst: 1,
                issued_at: Cycle(at),
            },
            at: Cycle(at),
        }
    }

    #[test]
    fn observe_counts_and_logs() {
        let mut m = SecurityMonitor::new(0);
        assert_eq!(m.observe(alert(0, Violation::FormatViolation, 5)), Reaction::None);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 9)), Reaction::None);
        assert_eq!(m.alert_count(), 2);
        assert_eq!(m.alerts_from(FirewallId(0)), 1);
        assert_eq!(m.alerts_from(FirewallId(1)), 1);
        assert_eq!(m.alerts_from(FirewallId(9)), 0);
        assert_eq!(m.first_alert().unwrap().0, Cycle(5));
        assert_eq!(m.stats().counter("monitor.violation.bad_format"), 1);
    }

    #[test]
    fn threshold_escalates_to_block() {
        let mut m = SecurityMonitor::new(3);
        assert_eq!(m.observe(alert(2, Violation::UnauthorizedWrite, 1)), Reaction::None);
        assert_eq!(m.observe(alert(2, Violation::UnauthorizedWrite, 2)), Reaction::None);
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 3)),
            Reaction::BlockIp(FirewallId(2))
        );
        // Alerts from other firewalls do not count toward fw 2's threshold.
        let mut m = SecurityMonitor::new(2);
        assert_eq!(m.observe(alert(0, Violation::NoPolicy, 1)), Reaction::None);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 2)), Reaction::None);
        assert_eq!(m.observe(alert(0, Violation::NoPolicy, 3)), Reaction::BlockIp(FirewallId(0)));
    }

    #[test]
    fn quarantine_reaction_carries_release_time() {
        let mut m = SecurityMonitor::new(2).with_quarantine(500);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 10)), Reaction::None);
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 20)),
            Reaction::Quarantine { firewall: FirewallId(1), until: Cycle(520) }
        );
        // The budget resets: two more violations re-escalate.
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 600)), Reaction::None);
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 610)),
            Reaction::Quarantine { firewall: FirewallId(1), until: Cycle(1110) }
        );
        assert_eq!(m.stats().counter("monitor.blocks"), 2);
    }

    #[test]
    fn zero_threshold_never_blocks() {
        let mut m = SecurityMonitor::new(0);
        for i in 0..100 {
            assert_eq!(m.observe(alert(0, Violation::NoPolicy, i)), Reaction::None);
        }
        assert_eq!(m.stats().counter("monitor.blocks"), 0);
    }
}
