//! Alert signals and the security monitor.
//!
//! The paper's security features (§III-C): *"If an error is detected, the
//! system must react as fast as possible"* and *"the attack must not reach
//! the communication architecture but be stopped in the interface
//! associated with the infected IP."*
//!
//! Each firewall raises [`Alert`]s; the [`SecurityMonitor`] aggregates them
//! and decides [`Reaction`]s. The monitor is intentionally thin — in the
//! distributed design the *enforcement* already happened locally (the
//! offending transaction was discarded before the bus); the monitor only
//! adds escalation (blocking a repeatedly-misbehaving IP) and an audit
//! trail.

use secbus_bus::{Transaction, TxnId};
use secbus_sim::{Cycle, EventLog, Stats, TraceEvent, Tracer};

use crate::checker::Violation;
use crate::firewall::FirewallId;

/// One alert, as carried by the `alert_signals` in the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The firewall that raised the alert.
    pub firewall: FirewallId,
    /// The violated rule.
    pub violation: Violation,
    /// The offending transaction.
    pub txn: Transaction,
    /// When the violation was detected.
    pub at: Cycle,
}

/// What the monitor tells the system to do about an alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reaction {
    /// Local discard was enough; nothing further.
    None,
    /// Block the IP behind `firewall` — stop accepting its traffic
    /// entirely (containment escalation).
    BlockIp(FirewallId),
    /// Block the IP, then automatically lift the block at the given
    /// cycle (quarantine): the transient-fault-tolerant variant of the
    /// escalation, for systems where a glitching IP should get another
    /// chance without operator intervention.
    Quarantine {
        /// The firewall to block.
        firewall: FirewallId,
        /// When the block lifts.
        until: Cycle,
    },
}

/// A watched transaction whose completion never arrived in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogExpiry {
    /// The transaction that timed out.
    pub txn: Transaction,
    /// The firewall guarding the issuing IP, if known (the SoC raises the
    /// timeout alert through it).
    pub firewall: Option<FirewallId>,
}

/// Aggregates alerts from every firewall and applies an escalation policy.
#[derive(Debug)]
pub struct SecurityMonitor {
    log: EventLog<Alert>,
    stats: Stats,
    /// Violation *budget* per firewall id (index = FirewallId.0): counts
    /// offenses toward the block threshold and resets on quarantine
    /// escalation. Not an audit total — see `alerts_total`.
    per_firewall: Vec<u64>,
    /// Monotonic alerts-observed total per firewall id, environment
    /// faults included; never reset.
    alerts_total: Vec<u64>,
    /// Observability spine, if attached.
    tracer: Option<Tracer>,
    /// Block an IP after this many violations (0 = never block).
    block_threshold: u64,
    /// If set, blocks become quarantines of this many cycles, and the
    /// per-firewall violation count resets on escalation so the IP gets a
    /// fresh budget after release.
    quarantine_cycles: Option<u64>,
    /// Outstanding-transaction timeout in cycles (`None` = no watchdog).
    watchdog_timeout: Option<u64>,
    /// Watched transactions: (deadline, txn, issuing firewall), insertion
    /// order preserved so expiries drain deterministically.
    watched: Vec<(Cycle, Transaction, Option<FirewallId>)>,
}

impl SecurityMonitor {
    /// A monitor that blocks an IP after `block_threshold` violations
    /// (0 = log-and-discard only).
    pub fn new(block_threshold: u64) -> Self {
        SecurityMonitor {
            log: EventLog::new(4096),
            stats: Stats::new(),
            per_firewall: Vec::new(),
            alerts_total: Vec::new(),
            tracer: None,
            block_threshold,
            quarantine_cycles: None,
            watchdog_timeout: None,
            watched: Vec::new(),
        }
    }

    /// Convert block escalations into time-bounded quarantines.
    pub fn with_quarantine(mut self, cycles: u64) -> Self {
        self.quarantine_cycles = Some(cycles);
        self
    }

    /// Arm a watchdog on outstanding transactions: anything watched that
    /// is not resolved within `timeout` cycles expires — the SoC cancels
    /// it and synthesizes an error response instead of hanging forever.
    ///
    /// # Panics
    /// Panics on a zero timeout.
    pub fn with_watchdog(mut self, timeout: u64) -> Self {
        assert!(timeout > 0, "watchdog timeout must be positive");
        self.watchdog_timeout = Some(timeout);
        self
    }

    /// The armed watchdog timeout, if any.
    pub fn watchdog_timeout(&self) -> Option<u64> {
        self.watchdog_timeout
    }

    /// Attach the observability spine; the monitor records a
    /// [`TraceEvent::Reaction`] for every escalation it decides.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Start watching a transaction issued at `now`. No-op without an
    /// armed watchdog. Watching an id that is already on the list
    /// *re-arms* it (the retry path re-issues the same `TxnId`); keeping
    /// both entries would leave an orphan that `resolve` never clears and
    /// that later fires a spurious `WatchdogTimeout`.
    pub fn watch(&mut self, txn: &Transaction, firewall: Option<FirewallId>, now: Cycle) {
        if let Some(timeout) = self.watchdog_timeout {
            let entry = (now + timeout, *txn, firewall);
            match self.watched.iter().position(|(_, t, _)| t.id == txn.id) {
                Some(idx) => self.watched[idx] = entry,
                None => self.watched.push(entry),
            }
        }
    }

    /// A watched transaction completed (successfully or not); stop its
    /// timer. Unknown ids are ignored (e.g. discards that were never
    /// watched).
    pub fn resolve(&mut self, txn: TxnId) {
        if let Some(idx) = self.watched.iter().position(|(_, t, _)| t.id == txn) {
            self.watched.remove(idx);
        }
    }

    /// Expire every watched transaction whose deadline has passed, in
    /// watch order. The caller turns each expiry into a cancellation plus
    /// a [`Violation::WatchdogTimeout`] alert.
    pub fn expire(&mut self, now: Cycle) -> Vec<WatchdogExpiry> {
        let mut expired = Vec::new();
        self.watched.retain(|&(deadline, txn, firewall)| {
            if deadline <= now {
                expired.push(WatchdogExpiry { txn, firewall });
                false
            } else {
                true
            }
        });
        // Only record when something actually expired: materializing a
        // zero-valued key on every watchdog-armed tick would make
        // otherwise-identical metrics snapshots differ by key set.
        if !expired.is_empty() {
            self.stats
                .add("monitor.watchdog_timeouts", expired.len() as u64);
        }
        expired
    }

    /// Number of transactions currently on the watchdog's list.
    pub fn watched_count(&self) -> usize {
        self.watched.len()
    }

    /// Earliest watchdog deadline, if any transaction is watched. The
    /// event-driven core must not fast-forward past it: `expire` fires
    /// (and alerts) exactly at the deadline cycle.
    pub fn next_watchdog_deadline(&self) -> Option<Cycle> {
        self.watched.iter().map(|&(deadline, _, _)| deadline).min()
    }

    /// Feed one alert; returns the reaction the system should apply.
    ///
    /// Environment faults ([`Violation::WatchdogTimeout`],
    /// [`Violation::ConfigCorruption`]) and overload sheds
    /// ([`Violation::Shed`]) are logged and counted but do not burn the
    /// IP's violation budget — a flaky or overloaded fabric must not get
    /// an innocent IP blocked (deliberate flooding escalates through
    /// [`Violation::RateLimited`] instead).
    pub fn observe(&mut self, alert: Alert) -> Reaction {
        let idx = alert.firewall.0 as usize;
        if idx >= self.per_firewall.len() {
            self.per_firewall.resize(idx + 1, 0);
            self.alerts_total.resize(idx + 1, 0);
        }
        self.alerts_total[idx] += 1;
        let offense = !matches!(
            alert.violation,
            Violation::WatchdogTimeout | Violation::ConfigCorruption | Violation::Shed
        );
        if offense {
            self.per_firewall[idx] += 1;
        }
        self.stats.incr("monitor.alerts");
        // Precomputed full key: this is the per-alert hot path and a
        // `format!` here showed up in the chaos-soak profile.
        self.stats.incr(alert.violation.monitor_key());
        let at = alert.at;
        let fw = alert.firewall;
        self.log.push(at, alert);

        if offense && self.block_threshold > 0 && self.per_firewall[idx] >= self.block_threshold {
            self.stats.incr("monitor.blocks");
            match self.quarantine_cycles {
                Some(q) => {
                    // Fresh violation budget after release.
                    self.per_firewall[idx] = 0;
                    if let Some(t) = &self.tracer {
                        t.record(
                            at,
                            TraceEvent::Reaction {
                                firewall: fw.0,
                                kind: "quarantine",
                            },
                        );
                    }
                    Reaction::Quarantine {
                        firewall: fw,
                        until: at + q,
                    }
                }
                None => {
                    if let Some(t) = &self.tracer {
                        t.record(
                            at,
                            TraceEvent::Reaction {
                                firewall: fw.0,
                                kind: "block",
                            },
                        );
                    }
                    Reaction::BlockIp(fw)
                }
            }
        } else {
            Reaction::None
        }
    }

    /// Total alerts observed.
    pub fn alert_count(&self) -> u64 {
        self.stats.counter("monitor.alerts")
    }

    /// Alerts observed from one firewall: a monotonic audit total that
    /// includes environment faults and survives quarantine escalations.
    pub fn alerts_from(&self, fw: FirewallId) -> u64 {
        self.alerts_total.get(fw.0 as usize).copied().unwrap_or(0)
    }

    /// Offenses currently counted toward `fw`'s block threshold. Resets
    /// to zero on quarantine escalation and excludes environment faults
    /// ([`Violation::WatchdogTimeout`], [`Violation::ConfigCorruption`]) —
    /// the escalation-policy view, not the audit total.
    pub fn violation_budget(&self, fw: FirewallId) -> u64 {
        self.per_firewall.get(fw.0 as usize).copied().unwrap_or(0)
    }

    /// The first alert ever recorded, if any (detection-latency metric).
    pub fn first_alert(&self) -> Option<&(Cycle, Alert)> {
        self.log.first()
    }

    /// The retained audit trail.
    pub fn log(&self) -> &EventLog<Alert> {
        &self.log
    }

    /// Monitor statistics (per-violation-kind counters etc.).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::{MasterId, Op, TxnId, Width};

    fn alert(fw: u8, v: Violation, at: u64) -> Alert {
        Alert {
            firewall: FirewallId(fw),
            violation: v,
            txn: Transaction {
                id: TxnId(0),
                master: MasterId(fw),
                op: Op::Write,
                addr: 0,
                width: Width::Word,
                data: 0,
                burst: 1,
                issued_at: Cycle(at),
            },
            at: Cycle(at),
        }
    }

    #[test]
    fn observe_counts_and_logs() {
        let mut m = SecurityMonitor::new(0);
        assert_eq!(
            m.observe(alert(0, Violation::FormatViolation, 5)),
            Reaction::None
        );
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 9)), Reaction::None);
        assert_eq!(m.alert_count(), 2);
        assert_eq!(m.alerts_from(FirewallId(0)), 1);
        assert_eq!(m.alerts_from(FirewallId(1)), 1);
        assert_eq!(m.alerts_from(FirewallId(9)), 0);
        assert_eq!(m.first_alert().unwrap().0, Cycle(5));
        assert_eq!(m.stats().counter("monitor.violation.bad_format"), 1);
    }

    #[test]
    fn threshold_escalates_to_block() {
        let mut m = SecurityMonitor::new(3);
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 1)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 2)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 3)),
            Reaction::BlockIp(FirewallId(2))
        );
        // Alerts from other firewalls do not count toward fw 2's threshold.
        let mut m = SecurityMonitor::new(2);
        assert_eq!(m.observe(alert(0, Violation::NoPolicy, 1)), Reaction::None);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 2)), Reaction::None);
        assert_eq!(
            m.observe(alert(0, Violation::NoPolicy, 3)),
            Reaction::BlockIp(FirewallId(0))
        );
    }

    #[test]
    fn quarantine_reaction_carries_release_time() {
        let mut m = SecurityMonitor::new(2).with_quarantine(500);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 10)), Reaction::None);
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 20)),
            Reaction::Quarantine {
                firewall: FirewallId(1),
                until: Cycle(520)
            }
        );
        // The budget resets: two more violations re-escalate.
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 600)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 610)),
            Reaction::Quarantine {
                firewall: FirewallId(1),
                until: Cycle(1110)
            }
        );
        assert_eq!(m.stats().counter("monitor.blocks"), 2);
    }

    #[test]
    fn zero_threshold_never_blocks() {
        let mut m = SecurityMonitor::new(0);
        for i in 0..100 {
            assert_eq!(m.observe(alert(0, Violation::NoPolicy, i)), Reaction::None);
        }
        assert_eq!(m.stats().counter("monitor.blocks"), 0);
    }

    #[test]
    fn watchdog_expires_only_overdue_transactions() {
        let mut m = SecurityMonitor::new(0).with_watchdog(50);
        assert_eq!(m.watchdog_timeout(), Some(50));
        let a = alert(0, Violation::NoPolicy, 0).txn;
        let mut b = a;
        b.id = TxnId(1);
        m.watch(&a, Some(FirewallId(0)), Cycle(10)); // deadline 60
        m.watch(&b, None, Cycle(30)); // deadline 80
        assert_eq!(m.watched_count(), 2);
        assert!(m.expire(Cycle(59)).is_empty());
        let expired = m.expire(Cycle(60));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].txn.id, a.id);
        assert_eq!(expired[0].firewall, Some(FirewallId(0)));
        assert_eq!(m.watched_count(), 1);
        let expired = m.expire(Cycle(1000));
        assert_eq!(expired[0].txn.id, b.id);
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 2);
    }

    #[test]
    fn resolved_transactions_never_expire() {
        let mut m = SecurityMonitor::new(0).with_watchdog(10);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, None, Cycle(0));
        m.resolve(t.id);
        m.resolve(TxnId(999)); // unknown ids are ignored
        assert_eq!(m.watched_count(), 0);
        assert!(m.expire(Cycle(100)).is_empty());
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 0);
    }

    #[test]
    fn watch_without_watchdog_is_a_noop() {
        let mut m = SecurityMonitor::new(0);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, None, Cycle(0));
        assert_eq!(m.watched_count(), 0);
    }

    #[test]
    fn environment_faults_do_not_burn_the_violation_budget() {
        let mut m = SecurityMonitor::new(2).with_quarantine(100);
        assert_eq!(
            m.observe(alert(3, Violation::WatchdogTimeout, 1)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(3, Violation::ConfigCorruption, 2)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(3, Violation::WatchdogTimeout, 3)),
            Reaction::None
        );
        // Overload sheds are environment pressure too, not IP malice.
        assert_eq!(m.observe(alert(3, Violation::Shed, 4)), Reaction::None);
        assert_eq!(
            m.violation_budget(FirewallId(3)),
            0,
            "logged but not held against the IP"
        );
        assert_eq!(
            m.alerts_from(FirewallId(3)),
            4,
            "the audit total still counts them"
        );
        assert_eq!(m.alert_count(), 4, "still in the audit trail");
        // Real offenses still escalate at the configured threshold.
        assert_eq!(m.observe(alert(3, Violation::NoPolicy, 4)), Reaction::None);
        assert_eq!(
            m.observe(alert(3, Violation::NoPolicy, 5)),
            Reaction::Quarantine {
                firewall: FirewallId(3),
                until: Cycle(105)
            }
        );
    }

    #[test]
    fn quarantine_lifts_on_schedule_and_reblocks_on_reoffense() {
        // Randomized (seed-pinned) sweep: whatever the threshold, the
        // quarantine length, and the interleaving of offenses, escalation
        // always fires at exactly the threshold-th offense, the release
        // cycle is exactly `at + q`, and a re-offending IP re-escalates
        // after another full budget.
        let mut rng = secbus_sim::SimRng::new(0x5ec_b05);
        for _ in 0..200 {
            let threshold = 1 + rng.below(6);
            let q = 1 + rng.below(2000);
            let fw = rng.below(4) as u8;
            let mut m = SecurityMonitor::new(threshold).with_quarantine(q);
            let mut at = rng.below(100);
            for round in 0u64..2 {
                for n in 1..=threshold {
                    let r = m.observe(alert(fw, Violation::UnauthorizedWrite, at));
                    if n < threshold {
                        assert_eq!(r, Reaction::None, "round {round}: offense {n}/{threshold}");
                    } else {
                        assert_eq!(
                            r,
                            Reaction::Quarantine {
                                firewall: FirewallId(fw),
                                until: Cycle(at + q)
                            },
                            "round {round}: escalation at the {threshold}-th offense"
                        );
                    }
                    at += 1 + rng.below(50);
                }
                // Budget reset: immediately after release the IP starts
                // from zero again (verified by the second round).
                assert_eq!(m.violation_budget(FirewallId(fw)), 0);
                // The audit total keeps counting through the reset.
                assert_eq!(m.alerts_from(FirewallId(fw)), (round + 1) * threshold);
                at += q; // past the release point
            }
            assert_eq!(m.stats().counter("monitor.blocks"), 2);
        }
    }

    /// Regression (accounting bug #1): `alerts_from` used to return the
    /// quarantine budget, which resets to zero on escalation and skips
    /// environment faults — so after a quarantine the audit claimed the
    /// offending IP had never alerted.
    #[test]
    fn alerts_from_is_monotonic_across_quarantine_rounds() {
        let mut m = SecurityMonitor::new(2).with_quarantine(100);
        m.observe(alert(1, Violation::WatchdogTimeout, 1)); // env fault
        m.observe(alert(1, Violation::UnauthorizedWrite, 2));
        assert_eq!(
            m.observe(alert(1, Violation::UnauthorizedWrite, 3)),
            Reaction::Quarantine {
                firewall: FirewallId(1),
                until: Cycle(103)
            }
        );
        assert_eq!(m.violation_budget(FirewallId(1)), 0, "budget reset");
        assert_eq!(m.alerts_from(FirewallId(1)), 3, "audit total survives");
        m.observe(alert(1, Violation::UnauthorizedWrite, 200));
        assert_eq!(m.alerts_from(FirewallId(1)), 4);
        assert_eq!(m.violation_budget(FirewallId(1)), 1);
    }

    /// Regression (accounting bug #2): `watch` used to append a second
    /// entry for an already-watched id (the bounded-retry path re-issues
    /// the same `TxnId`), while `resolve` removed only the first — the
    /// orphan later fired a spurious `WatchdogTimeout`.
    #[test]
    fn rewatching_a_txn_rearms_instead_of_duplicating() {
        let mut m = SecurityMonitor::new(0).with_watchdog(50);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, Some(FirewallId(0)), Cycle(0)); // deadline 50
        m.watch(&t, Some(FirewallId(0)), Cycle(40)); // retry: re-arm to 90
        assert_eq!(m.watched_count(), 1, "one entry per id");
        assert!(m.expire(Cycle(60)).is_empty(), "old deadline re-armed away");
        m.resolve(t.id);
        assert_eq!(m.watched_count(), 0);
        assert!(
            m.expire(Cycle(1000)).is_empty(),
            "no orphan fires after resolve"
        );
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 0);
    }

    /// Regression (snapshot determinism): an empty expiry sweep must not
    /// materialize a zero-valued `monitor.watchdog_timeouts` key, or
    /// watchdog-armed runs differ from unarmed ones by key set alone.
    #[test]
    fn empty_expiry_records_no_counter_key() {
        let mut m = SecurityMonitor::new(0).with_watchdog(10);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, None, Cycle(0));
        assert!(m.expire(Cycle(5)).is_empty());
        assert!(
            m.stats()
                .counters()
                .all(|(k, _)| k != "monitor.watchdog_timeouts"),
            "no key materialized by a no-op sweep"
        );
        assert_eq!(m.expire(Cycle(100)).len(), 1);
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 1);
    }

    /// The precomputed violation keys must match what the old `format!`
    /// produced, for every variant (metrics-key compatibility).
    #[test]
    fn static_violation_keys_match_format() {
        for v in [
            Violation::NoPolicy,
            Violation::UnauthorizedRead,
            Violation::UnauthorizedWrite,
            Violation::FormatViolation,
            Violation::RegionOverrun,
            Violation::Misaligned,
            Violation::IntegrityMismatch,
            Violation::IpBlocked,
            Violation::RateLimited,
            Violation::WatchdogTimeout,
            Violation::ConfigCorruption,
            Violation::TaintedSink,
            Violation::Shed,
        ] {
            assert_eq!(
                v.monitor_key(),
                format!("monitor.violation.{}", v.mnemonic())
            );
            assert_eq!(v.fw_key(), format!("fw.violation.{}", v.mnemonic()));
        }
    }

    #[test]
    fn monitor_traces_reactions() {
        let tracer = secbus_sim::Tracer::new(32);
        let mut m = SecurityMonitor::new(1).with_quarantine(10);
        m.set_tracer(tracer.clone());
        m.observe(alert(2, Violation::NoPolicy, 7));
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, Cycle(7));
        assert_eq!(
            snap[0].1,
            secbus_sim::TraceEvent::Reaction {
                firewall: 2,
                kind: "quarantine"
            }
        );
    }
}
