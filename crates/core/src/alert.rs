//! Alert signals and the security monitor.
//!
//! The paper's security features (§III-C): *"If an error is detected, the
//! system must react as fast as possible"* and *"the attack must not reach
//! the communication architecture but be stopped in the interface
//! associated with the infected IP."*
//!
//! Each firewall raises [`Alert`]s; the [`SecurityMonitor`] aggregates them
//! and decides [`Reaction`]s. The monitor is intentionally thin — in the
//! distributed design the *enforcement* already happened locally (the
//! offending transaction was discarded before the bus); the monitor only
//! adds escalation (blocking a repeatedly-misbehaving IP) and an audit
//! trail.

use secbus_bus::{Transaction, TxnId};
use secbus_sim::{Cycle, EventLog, Stats};

use crate::checker::Violation;
use crate::firewall::FirewallId;

/// One alert, as carried by the `alert_signals` in the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// The firewall that raised the alert.
    pub firewall: FirewallId,
    /// The violated rule.
    pub violation: Violation,
    /// The offending transaction.
    pub txn: Transaction,
    /// When the violation was detected.
    pub at: Cycle,
}

/// What the monitor tells the system to do about an alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reaction {
    /// Local discard was enough; nothing further.
    None,
    /// Block the IP behind `firewall` — stop accepting its traffic
    /// entirely (containment escalation).
    BlockIp(FirewallId),
    /// Block the IP, then automatically lift the block at the given
    /// cycle (quarantine): the transient-fault-tolerant variant of the
    /// escalation, for systems where a glitching IP should get another
    /// chance without operator intervention.
    Quarantine {
        /// The firewall to block.
        firewall: FirewallId,
        /// When the block lifts.
        until: Cycle,
    },
}

/// A watched transaction whose completion never arrived in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogExpiry {
    /// The transaction that timed out.
    pub txn: Transaction,
    /// The firewall guarding the issuing IP, if known (the SoC raises the
    /// timeout alert through it).
    pub firewall: Option<FirewallId>,
}

/// Aggregates alerts from every firewall and applies an escalation policy.
#[derive(Debug)]
pub struct SecurityMonitor {
    log: EventLog<Alert>,
    stats: Stats,
    /// Alerts per firewall id (index = FirewallId.0).
    per_firewall: Vec<u64>,
    /// Block an IP after this many violations (0 = never block).
    block_threshold: u64,
    /// If set, blocks become quarantines of this many cycles, and the
    /// per-firewall violation count resets on escalation so the IP gets a
    /// fresh budget after release.
    quarantine_cycles: Option<u64>,
    /// Outstanding-transaction timeout in cycles (`None` = no watchdog).
    watchdog_timeout: Option<u64>,
    /// Watched transactions: (deadline, txn, issuing firewall), insertion
    /// order preserved so expiries drain deterministically.
    watched: Vec<(Cycle, Transaction, Option<FirewallId>)>,
}

impl SecurityMonitor {
    /// A monitor that blocks an IP after `block_threshold` violations
    /// (0 = log-and-discard only).
    pub fn new(block_threshold: u64) -> Self {
        SecurityMonitor {
            log: EventLog::new(4096),
            stats: Stats::new(),
            per_firewall: Vec::new(),
            block_threshold,
            quarantine_cycles: None,
            watchdog_timeout: None,
            watched: Vec::new(),
        }
    }

    /// Convert block escalations into time-bounded quarantines.
    pub fn with_quarantine(mut self, cycles: u64) -> Self {
        self.quarantine_cycles = Some(cycles);
        self
    }

    /// Arm a watchdog on outstanding transactions: anything watched that
    /// is not resolved within `timeout` cycles expires — the SoC cancels
    /// it and synthesizes an error response instead of hanging forever.
    ///
    /// # Panics
    /// Panics on a zero timeout.
    pub fn with_watchdog(mut self, timeout: u64) -> Self {
        assert!(timeout > 0, "watchdog timeout must be positive");
        self.watchdog_timeout = Some(timeout);
        self
    }

    /// The armed watchdog timeout, if any.
    pub fn watchdog_timeout(&self) -> Option<u64> {
        self.watchdog_timeout
    }

    /// Start watching a transaction issued at `now`. No-op without an
    /// armed watchdog.
    pub fn watch(&mut self, txn: &Transaction, firewall: Option<FirewallId>, now: Cycle) {
        if let Some(timeout) = self.watchdog_timeout {
            self.watched.push((now + timeout, *txn, firewall));
        }
    }

    /// A watched transaction completed (successfully or not); stop its
    /// timer. Unknown ids are ignored (e.g. discards that were never
    /// watched).
    pub fn resolve(&mut self, txn: TxnId) {
        if let Some(idx) = self.watched.iter().position(|(_, t, _)| t.id == txn) {
            self.watched.remove(idx);
        }
    }

    /// Expire every watched transaction whose deadline has passed, in
    /// watch order. The caller turns each expiry into a cancellation plus
    /// a [`Violation::WatchdogTimeout`] alert.
    pub fn expire(&mut self, now: Cycle) -> Vec<WatchdogExpiry> {
        let mut expired = Vec::new();
        self.watched.retain(|&(deadline, txn, firewall)| {
            if deadline <= now {
                expired.push(WatchdogExpiry { txn, firewall });
                false
            } else {
                true
            }
        });
        self.stats
            .add("monitor.watchdog_timeouts", expired.len() as u64);
        expired
    }

    /// Number of transactions currently on the watchdog's list.
    pub fn watched_count(&self) -> usize {
        self.watched.len()
    }

    /// Feed one alert; returns the reaction the system should apply.
    ///
    /// Environment faults ([`Violation::WatchdogTimeout`],
    /// [`Violation::ConfigCorruption`]) are logged and counted but do not
    /// burn the IP's violation budget — a flaky fabric must not get an
    /// innocent IP blocked.
    pub fn observe(&mut self, alert: Alert) -> Reaction {
        let idx = alert.firewall.0 as usize;
        if idx >= self.per_firewall.len() {
            self.per_firewall.resize(idx + 1, 0);
        }
        let offense = !matches!(
            alert.violation,
            Violation::WatchdogTimeout | Violation::ConfigCorruption
        );
        if offense {
            self.per_firewall[idx] += 1;
        }
        self.stats.incr("monitor.alerts");
        self.stats
            .incr(&format!("monitor.violation.{}", alert.violation.mnemonic()));
        let at = alert.at;
        let fw = alert.firewall;
        self.log.push(at, alert);

        if offense && self.block_threshold > 0 && self.per_firewall[idx] >= self.block_threshold {
            self.stats.incr("monitor.blocks");
            match self.quarantine_cycles {
                Some(q) => {
                    // Fresh violation budget after release.
                    self.per_firewall[idx] = 0;
                    Reaction::Quarantine {
                        firewall: fw,
                        until: at + q,
                    }
                }
                None => Reaction::BlockIp(fw),
            }
        } else {
            Reaction::None
        }
    }

    /// Total alerts observed.
    pub fn alert_count(&self) -> u64 {
        self.stats.counter("monitor.alerts")
    }

    /// Alerts observed from one firewall.
    pub fn alerts_from(&self, fw: FirewallId) -> u64 {
        self.per_firewall.get(fw.0 as usize).copied().unwrap_or(0)
    }

    /// The first alert ever recorded, if any (detection-latency metric).
    pub fn first_alert(&self) -> Option<&(Cycle, Alert)> {
        self.log.first()
    }

    /// The retained audit trail.
    pub fn log(&self) -> &EventLog<Alert> {
        &self.log
    }

    /// Monitor statistics (per-violation-kind counters etc.).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::{MasterId, Op, TxnId, Width};

    fn alert(fw: u8, v: Violation, at: u64) -> Alert {
        Alert {
            firewall: FirewallId(fw),
            violation: v,
            txn: Transaction {
                id: TxnId(0),
                master: MasterId(fw),
                op: Op::Write,
                addr: 0,
                width: Width::Word,
                data: 0,
                burst: 1,
                issued_at: Cycle(at),
            },
            at: Cycle(at),
        }
    }

    #[test]
    fn observe_counts_and_logs() {
        let mut m = SecurityMonitor::new(0);
        assert_eq!(
            m.observe(alert(0, Violation::FormatViolation, 5)),
            Reaction::None
        );
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 9)), Reaction::None);
        assert_eq!(m.alert_count(), 2);
        assert_eq!(m.alerts_from(FirewallId(0)), 1);
        assert_eq!(m.alerts_from(FirewallId(1)), 1);
        assert_eq!(m.alerts_from(FirewallId(9)), 0);
        assert_eq!(m.first_alert().unwrap().0, Cycle(5));
        assert_eq!(m.stats().counter("monitor.violation.bad_format"), 1);
    }

    #[test]
    fn threshold_escalates_to_block() {
        let mut m = SecurityMonitor::new(3);
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 1)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 2)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(2, Violation::UnauthorizedWrite, 3)),
            Reaction::BlockIp(FirewallId(2))
        );
        // Alerts from other firewalls do not count toward fw 2's threshold.
        let mut m = SecurityMonitor::new(2);
        assert_eq!(m.observe(alert(0, Violation::NoPolicy, 1)), Reaction::None);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 2)), Reaction::None);
        assert_eq!(
            m.observe(alert(0, Violation::NoPolicy, 3)),
            Reaction::BlockIp(FirewallId(0))
        );
    }

    #[test]
    fn quarantine_reaction_carries_release_time() {
        let mut m = SecurityMonitor::new(2).with_quarantine(500);
        assert_eq!(m.observe(alert(1, Violation::NoPolicy, 10)), Reaction::None);
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 20)),
            Reaction::Quarantine {
                firewall: FirewallId(1),
                until: Cycle(520)
            }
        );
        // The budget resets: two more violations re-escalate.
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 600)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(1, Violation::NoPolicy, 610)),
            Reaction::Quarantine {
                firewall: FirewallId(1),
                until: Cycle(1110)
            }
        );
        assert_eq!(m.stats().counter("monitor.blocks"), 2);
    }

    #[test]
    fn zero_threshold_never_blocks() {
        let mut m = SecurityMonitor::new(0);
        for i in 0..100 {
            assert_eq!(m.observe(alert(0, Violation::NoPolicy, i)), Reaction::None);
        }
        assert_eq!(m.stats().counter("monitor.blocks"), 0);
    }

    #[test]
    fn watchdog_expires_only_overdue_transactions() {
        let mut m = SecurityMonitor::new(0).with_watchdog(50);
        assert_eq!(m.watchdog_timeout(), Some(50));
        let a = alert(0, Violation::NoPolicy, 0).txn;
        let mut b = a;
        b.id = TxnId(1);
        m.watch(&a, Some(FirewallId(0)), Cycle(10)); // deadline 60
        m.watch(&b, None, Cycle(30)); // deadline 80
        assert_eq!(m.watched_count(), 2);
        assert!(m.expire(Cycle(59)).is_empty());
        let expired = m.expire(Cycle(60));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].txn.id, a.id);
        assert_eq!(expired[0].firewall, Some(FirewallId(0)));
        assert_eq!(m.watched_count(), 1);
        let expired = m.expire(Cycle(1000));
        assert_eq!(expired[0].txn.id, b.id);
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 2);
    }

    #[test]
    fn resolved_transactions_never_expire() {
        let mut m = SecurityMonitor::new(0).with_watchdog(10);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, None, Cycle(0));
        m.resolve(t.id);
        m.resolve(TxnId(999)); // unknown ids are ignored
        assert_eq!(m.watched_count(), 0);
        assert!(m.expire(Cycle(100)).is_empty());
        assert_eq!(m.stats().counter("monitor.watchdog_timeouts"), 0);
    }

    #[test]
    fn watch_without_watchdog_is_a_noop() {
        let mut m = SecurityMonitor::new(0);
        let t = alert(0, Violation::NoPolicy, 0).txn;
        m.watch(&t, None, Cycle(0));
        assert_eq!(m.watched_count(), 0);
    }

    #[test]
    fn environment_faults_do_not_burn_the_violation_budget() {
        let mut m = SecurityMonitor::new(2).with_quarantine(100);
        assert_eq!(
            m.observe(alert(3, Violation::WatchdogTimeout, 1)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(3, Violation::ConfigCorruption, 2)),
            Reaction::None
        );
        assert_eq!(
            m.observe(alert(3, Violation::WatchdogTimeout, 3)),
            Reaction::None
        );
        assert_eq!(
            m.alerts_from(FirewallId(3)),
            0,
            "logged but not held against the IP"
        );
        assert_eq!(m.alert_count(), 3, "still in the audit trail");
        // Real offenses still escalate at the configured threshold.
        assert_eq!(m.observe(alert(3, Violation::NoPolicy, 4)), Reaction::None);
        assert_eq!(
            m.observe(alert(3, Violation::NoPolicy, 5)),
            Reaction::Quarantine {
                firewall: FirewallId(3),
                until: Cycle(105)
            }
        );
    }

    #[test]
    fn quarantine_lifts_on_schedule_and_reblocks_on_reoffense() {
        // Randomized (seed-pinned) sweep: whatever the threshold, the
        // quarantine length, and the interleaving of offenses, escalation
        // always fires at exactly the threshold-th offense, the release
        // cycle is exactly `at + q`, and a re-offending IP re-escalates
        // after another full budget.
        let mut rng = secbus_sim::SimRng::new(0x5ec_b05);
        for _ in 0..200 {
            let threshold = 1 + rng.below(6);
            let q = 1 + rng.below(2000);
            let fw = rng.below(4) as u8;
            let mut m = SecurityMonitor::new(threshold).with_quarantine(q);
            let mut at = rng.below(100);
            for round in 0..2 {
                for n in 1..=threshold {
                    let r = m.observe(alert(fw, Violation::UnauthorizedWrite, at));
                    if n < threshold {
                        assert_eq!(r, Reaction::None, "round {round}: offense {n}/{threshold}");
                    } else {
                        assert_eq!(
                            r,
                            Reaction::Quarantine {
                                firewall: FirewallId(fw),
                                until: Cycle(at + q)
                            },
                            "round {round}: escalation at the {threshold}-th offense"
                        );
                    }
                    at += 1 + rng.below(50);
                }
                // Budget reset: immediately after release the IP starts
                // from zero again (verified by the second round).
                assert_eq!(m.alerts_from(FirewallId(fw)), 0);
                at += q; // past the release point
            }
            assert_eq!(m.stats().counter("monitor.blocks"), 2);
        }
    }
}
