//! Boot-time recovery types for the LCF's crash-consistent state.
//!
//! The recovery procedure itself lives on
//! [`crate::lcf::LocalCipheringFirewall::recover_from`] (it needs the
//! LCF's private region state); this module defines what goes in and
//! what comes out.
//!
//! The central design point is **classification**: after a power cut
//! the persisted surface (DDR ciphertext + [`SecureStateImage`] +
//! write-ahead journal + monotonic counter) can disagree with itself in
//! exactly two ways, and they must be told apart:
//!
//! * **Crash artifacts** — a dangling journal intent whose DDR burst
//!   never started / completed / half-landed, or a torn journal tail.
//!   These are *explainable* by the two-phase write protocol, confined
//!   to the single in-flight block, and are repaired (roll back, roll
//!   forward, or deterministic block repair with logged data loss).
//! * **Tamper evidence** — a forged or rolled-back image, a journal
//!   that violates the sequential protocol, or DDR contents that fail
//!   to reproduce any authenticated root even after accounting for the
//!   in-flight write. No crash produces these; the region is
//!   quarantined, never silently re-baselined.

use secbus_crypto::{MonotonicCounter, SecureStateImage, WriteAheadJournal};

/// Evidence that persisted state was tampered with (not merely torn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperEvidence {
    /// The [`SecureStateImage`] fails its MAC, or its shape does not
    /// match the LCF's region layout.
    BadImage,
    /// The image's sequence number is behind the monotonic counter:
    /// someone restored an old checkpoint (rollback attack).
    RolledBackImage,
    /// The image claims a sequence number this chip never ratcheted to
    /// (forged future state).
    ForgedSequence,
    /// The journal violates the sequential write protocol (a commit
    /// with no intent, an abandoned non-final intent, an out-of-epoch
    /// record): a crash cannot produce this shape, a forger can.
    ForgedJournal,
    /// A region's DDR contents do not reproduce the authenticated root,
    /// and no crash window explains the difference.
    RootMismatch {
        /// Index of the offending region.
        region: usize,
    },
}

impl TamperEvidence {
    /// Stable short name for stats/report keys.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TamperEvidence::BadImage => "bad_image",
            TamperEvidence::RolledBackImage => "rolled_back_image",
            TamperEvidence::ForgedSequence => "forged_sequence",
            TamperEvidence::ForgedJournal => "forged_journal",
            TamperEvidence::RootMismatch { .. } => "root_mismatch",
        }
    }
}

/// How a recovery run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// State reconstructed exactly; nothing was in flight.
    Clean,
    /// State reconstructed after resolving crash artifacts (rolled a
    /// write forward/back, discarded a torn journal tail, or repaired a
    /// torn block with bounded data loss).
    Repaired,
    /// Tamper evidence found: the LCF is blocked, the region state must
    /// not be trusted.
    Quarantined(TamperEvidence),
}

/// What recovery did, for logs, benches and the SoC monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    pub outcome: RecoveryOutcome,
    /// Committed journal writes folded into the recovered state.
    pub replayed: u64,
    /// Dangling intents whose DDR burst had completed (rolled forward).
    pub rolled_forward: u64,
    /// Dangling intents whose DDR burst never started (rolled back).
    pub rolled_back: u64,
    /// Blocks whose burst half-landed and were deterministically
    /// re-initialized — the bounded data loss of a torn write.
    pub repaired_blocks: u64,
    /// Journal entries discarded because their MAC failed (torn tail).
    pub torn_discarded: u64,
    /// Journal records from an older checkpoint epoch, skipped.
    pub stale_discarded: u64,
    /// Modeled recovery latency in cycles (journal scan + tree
    /// rebuilds + repair passes).
    pub cycles: u64,
}

impl RecoveryReport {
    pub fn is_quarantined(&self) -> bool {
        matches!(self.outcome, RecoveryOutcome::Quarantined(_))
    }
}

/// The LCF state that survives a power cut: everything recovery needs
/// except the DDR itself and the on-chip key/counter.
///
/// This is what [`crate::lcf::LocalCipheringFirewall::persistent_state`]
/// hands out and what a reboot passes back in. It is attacker-reachable
/// storage: both halves are authenticated, so the worst an attacker can
/// do without the key is make them *invalid* (or roll them back, which
/// the counter catches).
#[derive(Debug, Clone)]
pub struct PersistentState {
    pub image: SecureStateImage,
    pub journal: WriteAheadJournal,
}

/// A full secure-state checkpoint as captured by the SoC for
/// deterministic resume: the persisted surface plus the (on-chip,
/// crash-surviving) monotonic counter.
#[derive(Debug, Clone)]
pub struct SecureCheckpoint {
    pub state: PersistentState,
    pub counter: MonotonicCounter,
    /// Policy epoch in force when the checkpoint was taken.
    pub policy_epoch: u64,
}
