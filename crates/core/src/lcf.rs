//! The Local Ciphering Firewall (LCF): LF + Confidentiality + Integrity.
//!
//! > "Local Ciphering Firewall (LCF) monitors the exchanges between
//! > internal IPs and the external memory. The main feature of LCF is the
//! > protection of the external memory in terms of confidentiality and
//! > integrity."
//!
//! Structure: an embedded [`LocalFirewall`] performs the same Security
//! Builder checks as any LF; on top of it, per-region **Confidentiality
//! Cores** (AES-128 counter mode bound to address + time-stamp) and the
//! **Integrity Core** (SHA-256 hash tree keyed by block index and
//! time-stamp) protect the stored bits. Regions come straight from the
//! external policies' CM/IM modes, so the three protection levels of the
//! threat model exist side by side:
//!
//! * **unprotected** — the deliberate cost-saving hole attackers exploit;
//! * **cipher-only** — confidential, but blind tampering (DoS) is not
//!   *detected*, only garbled;
//! * **cipher + integrity** — replay / relocation / spoofing all caught.
//!
//! ## Timing
//!
//! Table II gives the cores' pipeline latencies (CC 11 cycles, IC 20
//! cycles) and sustained throughputs (450 / 131 Mb/s). [`CryptoTiming`]
//! carries both: single-block accesses are charged the pipeline latency;
//! streaming transfers additionally pay the sustained rate
//! ([`CryptoTiming::cc_stream_cycles`] / [`CryptoTiming::ic_stream_cycles`]),
//! which is what the Table II bench measures at the 100 MHz system clock.

use secbus_bus::{Op, Transaction};
use secbus_crypto::merkle::leaf_digest;
use secbus_crypto::sha256::Digest;
use secbus_crypto::{
    CryptoBackend, IntentRecord, MemoryCipher, MerkleTree, MonotonicCounter, NodeCache,
    RegionImage, SecureStateImage, TimestampTable, WriteAheadJournal,
};
use secbus_mem::{ExternalDdr, MemDevice};
use secbus_sim::{Cycle, Stats, TraceEvent, Tracer};

use crate::alert::Alert;
use crate::checker::Violation;
use crate::config::ConfigMemory;
use crate::firewall::{FirewallId, LocalFirewall, SbTiming};
use crate::policy::{ConfidentialityMode, IntegrityMode, SecurityPolicy};
use crate::recovery::{PersistentState, RecoveryOutcome, RecoveryReport, TamperEvidence};

/// Protection granularity: one AES block.
pub const PROTECTION_BLOCK: u32 = 16;

/// Modeled cycles for one persistence operation (journal append, commit
/// mark, image slot write) on the LCF's NVRAM-backed state store.
pub const JOURNAL_PERSIST_CYCLES: u64 = 4;

/// Protection level of an external-memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Plaintext, unauthenticated.
    None,
    /// Ciphered (CC), not authenticated.
    CipherOnly,
    /// Ciphered (CC) and hash-tree authenticated (IC).
    CipherIntegrity,
}

impl Protection {
    fn of(policy: &SecurityPolicy) -> Protection {
        match (policy.cm, policy.im) {
            (ConfidentialityMode::Bypass, _) => Protection::None,
            (ConfidentialityMode::Encrypt, IntegrityMode::Bypass) => Protection::CipherOnly,
            (ConfidentialityMode::Encrypt, IntegrityMode::Verify) => Protection::CipherIntegrity,
        }
    }
}

/// Latency/throughput parameters of the crypto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoTiming {
    /// Confidentiality Core pipeline latency (Table II: 11 cycles).
    pub cc_latency: u64,
    /// CC sustained rate in millibits per cycle (4500 = 4.5 b/cycle =
    /// 450 Mb/s at 100 MHz).
    pub cc_millibits_per_cycle: u64,
    /// Integrity Core pipeline latency (Table II: 20 cycles).
    pub ic_latency: u64,
    /// IC sustained rate in millibits per cycle (1310 = 131 Mb/s @100 MHz).
    pub ic_millibits_per_cycle: u64,
    /// Extra IC cycles per hash-tree level traversed (0 = the paper's
    /// flat 20-cycle pipeline, which amortises the tree walk; nonzero
    /// exposes the depth dependence for the tree-scaling ablation).
    pub ic_per_level_cycles: u64,
}

impl CryptoTiming {
    /// The paper's Table II calibration.
    pub const PAPER: CryptoTiming = CryptoTiming {
        cc_latency: 11,
        cc_millibits_per_cycle: 4500,
        ic_latency: 20,
        ic_millibits_per_cycle: 1310,
        ic_per_level_cycles: 0,
    };

    /// Table II timing with an explicit per-tree-level cost (ablation).
    pub fn with_tree_cost(per_level: u64) -> CryptoTiming {
        CryptoTiming {
            ic_per_level_cycles: per_level,
            ..CryptoTiming::PAPER
        }
    }

    /// IC cycles for one block verification against a tree of `levels`.
    pub fn ic_verify_cycles(&self, levels: u32) -> u64 {
        self.ic_latency + self.ic_per_level_cycles * u64::from(levels)
    }

    /// Cycles for the CC to stream `bits` bits (latency + sustained rate).
    pub fn cc_stream_cycles(&self, bits: u64) -> u64 {
        self.cc_latency + (bits * 1000).div_ceil(self.cc_millibits_per_cycle)
    }

    /// Cycles for the IC to stream `bits` bits (latency + sustained rate).
    pub fn ic_stream_cycles(&self, bits: u64) -> u64 {
        self.ic_latency + (bits * 1000).div_ceil(self.ic_millibits_per_cycle)
    }
}

impl Default for CryptoTiming {
    fn default() -> Self {
        CryptoTiming::PAPER
    }
}

/// Fail-secure degradation policy when the Integrity Core itself fails
/// (transient mis-computation, glitched verdict) — per region, because the
/// right trade-off is data-dependent: key material must never leave the
/// chip on a doubtful verdict, while a frame buffer may prefer liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IcFailureMode {
    /// Refuse the access (the default): a failed or doubtful verification
    /// blocks the data exactly like a genuine integrity violation.
    #[default]
    BlockReads,
    /// Serve the data anyway but raise the [`Violation::IntegrityMismatch`]
    /// alert — degraded operation for availability-critical regions.
    ServeWithAlert,
}

/// Explicit region configuration (derived from external policies).
#[derive(Debug, Clone)]
pub struct LcfRegionConfig {
    /// Bus-address range of the region.
    pub base: u32,
    /// Region length in bytes (multiple of [`PROTECTION_BLOCK`]).
    pub len: u32,
    /// Protection level.
    pub protection: Protection,
    /// AES key when ciphered.
    pub key: Option<[u8; 16]>,
    /// What to do when integrity verification cannot be trusted.
    pub ic_failure: IcFailureMode,
}

struct Region {
    base: u32,
    len: u32,
    protection: Protection,
    cipher: Option<MemoryCipher>,
    tree: Option<MerkleTree>,
    timestamps: TimestampTable,
    ic_failure: IcFailureMode,
    /// AEGIS-style trusted interior-node cache (cost model only — the
    /// verdict is identical to an uncached root walk).
    ic_cache: Option<NodeCache>,
}

impl Region {
    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && u64::from(addr) < u64::from(self.base) + u64::from(self.len)
    }

    fn block_index(&self, addr: u32) -> usize {
        ((addr - self.base) / PROTECTION_BLOCK) as usize
    }
}

/// Why a re-key request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyError {
    /// No LCF region covers the address.
    NoRegion,
    /// The region is unprotected (there is no key to roll).
    NotCiphered,
}

impl std::fmt::Display for RekeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RekeyError::NoRegion => "no LCF region covers this address",
            RekeyError::NotCiphered => "region is not ciphered",
        })
    }
}

impl std::error::Error for RekeyError {}

/// A successful LCF access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcfAccess {
    /// Read data (0 for writes).
    pub data: u32,
    /// Total cycles charged: SB check + DDR + crypto cores.
    pub latency: u64,
}

/// The crash-consistency state of a journaling LCF: the on-chip key and
/// counter plus the persisted image/journal pair.
struct JournalState {
    key: [u8; 16],
    /// Commits between checkpoints (journal-fold interval).
    interval: u64,
    commits_since: u64,
    image: SecureStateImage,
    journal: WriteAheadJournal,
    counter: MonotonicCounter,
}

/// The Local Ciphering Firewall guarding the external memory.
pub struct LocalCipheringFirewall {
    fw: LocalFirewall,
    timing: CryptoTiming,
    /// Bus address at which the DDR device is mapped (bus addr − base =
    /// device offset).
    ddr_base: u32,
    regions: Vec<Region>,
    sealed: bool,
    stats: Stats,
    /// Fault injection: the next IC verification returns the wrong verdict.
    ic_glitch: bool,
    /// Fault injection: the next CC pass produces garbled output.
    cc_glitch: bool,
    /// Crash-consistency layer (None = the paper's volatile-only model).
    journal: Option<JournalState>,
    /// Set when power died mid-burst (torn write): no further accesses
    /// happen on this boot.
    crashed: bool,
    /// Trusted-node cache capacity per integrity region (None = the
    /// paper's uncached root walk). Fresh caches are issued wherever a
    /// tree is (re)built.
    ic_cache_entries: Option<usize>,
    /// Last-hit region slot: bursts overwhelmingly land in the region of
    /// the previous access, so try it before the binary search.
    last_region: Option<usize>,
    /// Brownout (graceful degradation under overload): read-path
    /// integrity verification is skipped — the cheaper
    /// [`Protection::CipherOnly`] posture — while the cipher stays on
    /// and every write still updates the tree, so re-tightening after
    /// the burst drains is sound and tampering during the brownout is
    /// still caught by the first post-brownout verify.
    brownout: bool,
    /// Observability spine, if attached.
    tracer: Option<Tracer>,
}

/// The declared-safe degradation lattice: under overload a region may
/// step down exactly one posture, from full integrity verification to
/// cipher-only. Ciphering is never dropped — there is no edge to
/// [`Protection::None`], so a brownout can weaken freshness checking but
/// never expose plaintext or lift enforcement entirely.
pub fn brownout_posture(p: Protection) -> Protection {
    match p {
        Protection::CipherIntegrity => Protection::CipherOnly,
        // Already at (or below) the cipher floor: no further step exists.
        other => other,
    }
}

impl LocalCipheringFirewall {
    /// Build an LCF from external policies. Every policy with
    /// `cm == Encrypt` becomes a protected region; its range must be
    /// 16-byte aligned and sized.
    pub fn new(
        id: FirewallId,
        label: impl Into<String>,
        config: ConfigMemory,
        ddr_base: u32,
        timing: CryptoTiming,
    ) -> Self {
        let regions: Vec<Region> = config
            .policies()
            .iter()
            .map(|p| {
                let protection = Protection::of(p);
                if protection != Protection::None {
                    assert!(
                        p.region.base % PROTECTION_BLOCK == 0
                            && p.region.len % PROTECTION_BLOCK == 0,
                        "protected region must be 16-byte aligned and sized"
                    );
                }
                let blocks = (p.region.len / PROTECTION_BLOCK).max(1) as usize;
                Region {
                    base: p.region.base,
                    len: p.region.len,
                    protection,
                    cipher: p.key.as_ref().map(MemoryCipher::new),
                    tree: None, // built at seal time
                    timestamps: TimestampTable::new(blocks),
                    ic_failure: IcFailureMode::default(),
                    ic_cache: None,
                }
            })
            .collect();
        debug_assert!(
            regions.windows(2).all(|w| w[0].base < w[1].base),
            "ConfigMemory keeps policies sorted and non-overlapping"
        );
        LocalCipheringFirewall {
            fw: LocalFirewall::new(id, label, config),
            timing,
            ddr_base,
            regions,
            sealed: false,
            stats: Stats::new(),
            ic_glitch: false,
            cc_glitch: false,
            journal: None,
            crashed: false,
            ic_cache_entries: None,
            last_region: None,
            brownout: false,
            tracer: None,
        }
    }

    /// Enter or leave the brownout posture (see [`brownout_posture`]).
    /// The SecurityMonitor drives this from its overload hysteresis; the
    /// LCF itself just applies the cheaper read path while set.
    pub fn set_brownout(&mut self, on: bool) {
        self.brownout = on;
    }

    /// Whether the brownout posture is active.
    pub fn brownout(&self) -> bool {
        self.brownout
    }

    /// Attach the observability spine to the LCF and its embedded
    /// firewall: records cipher, IC-verify, and journal-commit events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fw.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// Turn on the AEGIS-style Integrity-Core node cache: every
    /// integrity-protected region gets a bounded LRU cache of `entries`
    /// trusted interior nodes, so a verification stops at the first
    /// cached ancestor instead of walking to the root. This is purely a
    /// *cost* model — the volatile tree stays fully current and the
    /// cache is kept coherent on writes, so verdicts, roots and alerts
    /// are identical to the uncached walk. May be called at any time;
    /// existing caches are reset.
    pub fn enable_ic_cache(&mut self, entries: usize) {
        assert!(entries > 0, "IC node cache needs a positive capacity");
        self.ic_cache_entries = Some(entries);
        for region in &mut self.regions {
            if region.protection == Protection::CipherIntegrity {
                region.ic_cache = Some(NodeCache::new(entries));
            }
        }
    }

    /// Whether the Integrity-Core node cache is enabled.
    pub fn ic_cache_enabled(&self) -> bool {
        self.ic_cache_entries.is_some()
    }

    /// Turn on the crash-consistency layer: a write-ahead journal with
    /// shadow-root two-phase commit, folded into a MAC-sealed
    /// [`SecureStateImage`] every `interval` commits, guarded by a
    /// monotonic anti-rollback counter. `state_key` never leaves the
    /// chip. Call before [`LocalCipheringFirewall::seal`] (the seal then
    /// takes the initial checkpoint); enabling after seal checkpoints
    /// immediately.
    pub fn enable_journal(&mut self, interval: u64, state_key: [u8; 16]) {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.journal = Some(JournalState {
            key: state_key,
            interval,
            commits_since: 0,
            image: SecureStateImage::seal(&state_key, 0, Vec::new()),
            journal: WriteAheadJournal::new(state_key),
            counter: MonotonicCounter::new(),
        });
        if self.sealed {
            self.checkpoint_inner();
        }
    }

    /// Whether the crash-consistency layer is on.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Whether a torn burst killed this boot (power died mid-write).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The persisted surface (image + journal) as it would be found
    /// after a power cut. `None` when journaling is off.
    pub fn persistent_state(&self) -> Option<PersistentState> {
        self.journal.as_ref().map(|js| PersistentState {
            image: js.image.clone(),
            journal: js.journal.clone(),
        })
    }

    /// The on-chip monotonic counter (survives power cuts by
    /// construction). `None` when journaling is off.
    pub fn anti_rollback_counter(&self) -> Option<&MonotonicCounter> {
        self.journal.as_ref().map(|js| &js.counter)
    }

    /// Force a checkpoint now (SoC-level secure-state capture). Returns
    /// the modeled cycles, 0 when journaling is off.
    pub fn force_checkpoint(&mut self) -> u64 {
        if self.journal.is_some() && self.sealed {
            self.checkpoint_inner()
        } else {
            0
        }
    }

    /// Fold the current volatile state into a fresh image, ratchet the
    /// counter, truncate the journal.
    fn checkpoint_inner(&mut self) -> u64 {
        let regions: Vec<RegionImage> = self
            .regions
            .iter()
            .map(|r| match r.protection {
                Protection::None => RegionImage {
                    root: None,
                    timestamps: Vec::new(),
                },
                _ => RegionImage {
                    root: r.tree.as_ref().map(|t| t.root()),
                    timestamps: r.timestamps.tags().to_vec(),
                },
            })
            .collect();
        let js = self.journal.as_mut().expect("checkpoint without journal");
        let seq = js.counter.value() + 1;
        js.image = SecureStateImage::seal(&js.key, seq, regions);
        let ratcheted = js.counter.ratchet_to(seq);
        debug_assert!(ratcheted, "counter+1 is always forward");
        js.journal.truncate();
        js.commits_since = 0;
        self.stats.incr("lcf.checkpoints");
        // One image-slot write plus the counter ratchet.
        JOURNAL_PERSIST_CYCLES * 2
    }

    /// Fault injection: the next hash-tree verification flips its verdict
    /// (a clean block looks tampered; a tampered one looks clean).
    pub fn inject_ic_glitch(&mut self) {
        self.ic_glitch = true;
    }

    /// Fault injection: the next cipher pass garbles its output.
    pub fn inject_cc_glitch(&mut self) {
        self.cc_glitch = true;
    }

    /// Set the IC-failure degradation mode of the region containing
    /// `addr`. Returns `false` if no region covers it.
    pub fn set_ic_failure_mode(&mut self, addr: u32, mode: IcFailureMode) -> bool {
        match self.region_of(addr) {
            Some(i) => {
                self.regions[i].ic_failure = mode;
                true
            }
            None => false,
        }
    }

    /// The current region layout as passive configs (reports, recovery).
    pub fn region_configs(&self) -> Vec<LcfRegionConfig> {
        self.regions
            .iter()
            .map(|r| LcfRegionConfig {
                base: r.base,
                len: r.len,
                protection: r.protection,
                key: None, // keys never leave the sealed state
                ic_failure: r.ic_failure,
            })
            .collect()
    }

    /// Override the embedded Security Builder timing.
    pub fn with_sb_timing(mut self, timing: SbTiming) -> Self {
        self.fw = std::mem::replace(
            &mut self.fw,
            LocalFirewall::new(FirewallId(0), "", ConfigMemory::new()),
        )
        .with_timing(timing);
        self
    }

    /// Seal the external memory: encrypt every protected region's current
    /// (boot-image) contents in place and build the integrity trees.
    /// Returns the cycles the operation would take (boot-time cost).
    pub fn seal(&mut self, ddr: &mut ExternalDdr) -> u64 {
        assert!(!self.sealed, "seal() must run exactly once");
        let cache_entries = self.ic_cache_entries;
        let mut cycles = 0;
        for region in &mut self.regions {
            if region.protection == Protection::None {
                continue;
            }
            let cipher = region.cipher.as_ref().expect("protected region has a key");
            let dev_off = region.base - self.ddr_base;
            let mut buf = ddr.snoop(dev_off, region.len).to_vec();
            cipher.apply(u64::from(region.base), 0, &mut buf);
            self.stats
                .add("lcf.cc_bytes_ciphered", u64::from(region.len));
            cycles += self.timing.cc_stream_cycles(u64::from(region.len) * 8);
            ddr.tamper(dev_off, &buf);
            if region.protection == Protection::CipherIntegrity {
                let leaves: Vec<_> = buf
                    .chunks_exact(PROTECTION_BLOCK as usize)
                    .enumerate()
                    .map(|(i, chunk)| leaf_digest(i as u64, 0, chunk))
                    .collect();
                region.tree = Some(MerkleTree::build(&leaves));
                region.ic_cache = cache_entries.map(NodeCache::new);
                cycles += self.timing.ic_stream_cycles(u64::from(region.len) * 8);
            }
        }
        self.sealed = true;
        if self.journal.is_some() {
            cycles += self.checkpoint_inner();
        }
        self.stats.add("lcf.seal_cycles", cycles);
        cycles
    }

    /// Whether [`LocalCipheringFirewall::seal`] has run.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Index of the region containing `addr`: the last-hit slot first
    /// (bursts overwhelmingly stay in one region), then a binary search
    /// over the base-sorted, non-overlapping region table.
    fn region_of(&mut self, addr: u32) -> Option<usize> {
        if let Some(i) = self.last_region {
            if self.regions[i].contains(addr) {
                return Some(i);
            }
        }
        let found = Self::region_index(&self.regions, addr);
        if found.is_some() {
            self.last_region = found;
        }
        found
    }

    /// Binary search over regions sorted by base (the order
    /// [`ConfigMemory`] maintains for its policies).
    fn region_index(regions: &[Region], addr: u32) -> Option<usize> {
        let idx = regions.partition_point(|r| r.base <= addr);
        idx.checked_sub(1).filter(|&i| regions[i].contains(addr))
    }

    /// Handle one transaction against the external memory.
    ///
    /// On a violation (policy or integrity) the access is discarded and
    /// `Err((violation, cycles_spent))` is returned; the data never moves.
    pub fn handle(
        &mut self,
        ddr: &mut ExternalDdr,
        txn: &Transaction,
        now: Cycle,
    ) -> Result<LcfAccess, (Violation, u64)> {
        debug_assert!(self.sealed, "handle() before seal()");
        let decision = self.fw.check(txn, now);
        let mut latency = decision.latency;
        if !decision.allowed {
            return Err((
                decision.violation.expect("denied without violation"),
                latency,
            ));
        }

        let Some(region_idx) = self.region_of(txn.addr) else {
            // A policy allowed it but no region covers it — treat like an
            // unprotected direct access (policy region == crypto region by
            // construction, so this only happens for Protection::None).
            return self.direct_access(ddr, txn, latency);
        };
        if self.regions[region_idx].protection == Protection::None {
            return self.direct_access(ddr, txn, latency);
        }

        // Protected path: operate on the containing 16-byte block.
        let block_bus_addr = txn.addr & !(PROTECTION_BLOCK - 1);
        let dev_off = block_bus_addr - self.ddr_base;
        latency += ddr.latency(dev_off, txn.op == Op::Write);

        let region = &mut self.regions[region_idx];
        let block_idx = region.block_index(txn.addr);
        let ts = region.timestamps.get(block_idx);
        let mut block: [u8; 16] = ddr
            .snoop(dev_off, PROTECTION_BLOCK)
            .try_into()
            .expect("16-byte block");

        // Integrity Core: verify the stored ciphertext against the tree.
        // Under brownout the read-path verification (and its IC cycles)
        // is skipped — the CipherOnly posture — while writes below still
        // keep the tree current, so leaving the brownout restores full
        // verification with no rebuild, and a tamper landed during the
        // brownout fails the first post-brownout verify of its block.
        if region.protection == Protection::CipherIntegrity && self.brownout {
            self.stats.incr("lcf.brownout_skipped_verifies");
        } else if region.protection == Protection::CipherIntegrity {
            let expected = leaf_digest(block_idx as u64, ts, &block);
            let tree = region.tree.as_ref().expect("integrity region has a tree");
            let full_levels = tree.height();
            let (raw_verdict, levels, cache_hit) = match region.ic_cache.as_mut() {
                Some(cache) => {
                    let v = tree.verify_leaf_cached(block_idx, &expected, cache);
                    self.stats.incr(if v.cache_hit {
                        "lcf.ic_cache_hits"
                    } else {
                        "lcf.ic_cache_misses"
                    });
                    (v.verified, v.levels_hashed, v.cache_hit)
                }
                None => (tree.verify_leaf(block_idx, &expected), full_levels, false),
            };
            let charged = self.timing.ic_verify_cycles(levels);
            latency += charged;
            self.stats.add("lcf.ic_cycles", charged);
            self.stats.record("lcf.ic_verify_cycles", charged);
            if let Some(t) = &self.tracer {
                t.record(
                    now,
                    TraceEvent::IcVerify {
                        txn: txn.id.0,
                        cycles: charged,
                        cache_hit,
                    },
                );
            }
            if region.ic_cache.is_some() {
                self.stats.add(
                    "lcf.ic_cycles_saved",
                    self.timing.ic_verify_cycles(full_levels) - charged,
                );
            }
            let mut verified = raw_verdict;
            if self.ic_glitch {
                // Transient IC mis-computation: the verdict is inverted
                // for this one verification.
                self.ic_glitch = false;
                self.stats.incr("lcf.fault.ic_glitches");
                verified = !verified;
            }
            if !verified {
                self.stats.incr("lcf.integrity_failures");
                match region.ic_failure {
                    IcFailureMode::BlockReads => {
                        let d = self
                            .fw
                            .note_violation(txn, Violation::IntegrityMismatch, now);
                        debug_assert!(!d.allowed);
                        return Err((Violation::IntegrityMismatch, latency));
                    }
                    IcFailureMode::ServeWithAlert => {
                        // Degraded operation: keep the region live, but the
                        // monitor hears about every doubtful serve.
                        self.stats.incr("lcf.degraded_serves");
                        self.fw.raise_alert(txn, Violation::IntegrityMismatch, now);
                    }
                }
            }
        }

        // Confidentiality Core: decrypt.
        latency += self.timing.cc_latency;
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::CcCipher {
                    txn: txn.id.0,
                    encrypt: false,
                    latency: self.timing.cc_latency,
                },
            );
        }
        let cipher = region.cipher.as_ref().expect("ciphered region has a key");
        let mut plain = block;
        cipher.apply(u64::from(block_bus_addr), ts, &mut plain);
        self.stats
            .add("lcf.cc_bytes_ciphered", u64::from(PROTECTION_BLOCK));
        if self.cc_glitch {
            // Transient CC mis-computation: the decrypted block is garbled.
            self.cc_glitch = false;
            self.stats.incr("lcf.fault.cc_glitches");
            for b in &mut plain {
                *b ^= 0xA5;
            }
        }

        let offset_in_block = (txn.addr - block_bus_addr) as usize;
        match txn.op {
            Op::Read => {
                let mut raw = [0u8; 4];
                let n = txn.width.bytes() as usize;
                raw[..n].copy_from_slice(&plain[offset_in_block..offset_in_block + n]);
                self.stats.incr("lcf.protected_reads");
                Ok(LcfAccess {
                    data: u32::from_le_bytes(raw),
                    latency,
                })
            }
            Op::Write => {
                // Read-modify-write: patch, bump the time-stamp, re-seal.
                let n = txn.width.bytes() as usize;
                plain[offset_in_block..offset_in_block + n]
                    .copy_from_slice(&txn.data.to_le_bytes()[..n]);
                let new_ts = region.timestamps.bump(block_idx);
                block = plain;
                cipher.apply(u64::from(block_bus_addr), new_ts, &mut block);
                self.stats
                    .add("lcf.cc_bytes_ciphered", u64::from(PROTECTION_BLOCK));
                latency += self.timing.cc_latency; // re-encryption pass
                if let Some(t) = &self.tracer {
                    t.record(
                        now,
                        TraceEvent::CcCipher {
                            txn: txn.id.0,
                            encrypt: true,
                            latency: self.timing.cc_latency,
                        },
                    );
                }

                // Volatile tree update *before* the DDR burst: the
                // shadow root must exist when the journal intent is
                // persisted, so recovery always has a post-state root.
                let mut new_root = None;
                if region.protection == Protection::CipherIntegrity {
                    let new_leaf = leaf_digest(block_idx as u64, new_ts, &block);
                    let tree = region.tree.as_mut().expect("integrity region has a tree");
                    let full_levels = tree.height();
                    let levels = match region.ic_cache.as_mut() {
                        Some(cache) => tree.update_leaf_cached(block_idx, new_leaf, cache),
                        None => tree.update_leaf(block_idx, new_leaf),
                    };
                    let charged = self.timing.ic_verify_cycles(levels);
                    latency += charged;
                    self.stats.add("lcf.ic_cycles", charged);
                    self.stats.record("lcf.ic_verify_cycles", charged);
                    if region.ic_cache.is_some() {
                        self.stats.add(
                            "lcf.ic_cycles_saved",
                            self.timing.ic_verify_cycles(full_levels) - charged,
                        );
                    }
                    if let Some(t) = &self.tracer {
                        t.record(
                            now,
                            TraceEvent::IcVerify {
                                txn: txn.id.0,
                                cycles: charged,
                                cache_hit: levels < full_levels,
                            },
                        );
                    }
                    new_root = Some(tree.root());
                }

                // Phase 1: persist the intent before any DDR bit moves.
                let write_id = match self.journal.as_mut() {
                    Some(js) => {
                        let id = js.journal.begin(IntentRecord {
                            seq: js.image.seq,
                            write_id: 0, // assigned by the journal
                            region: region_idx,
                            block: block_idx,
                            new_ts,
                            new_leaf: leaf_digest(block_idx as u64, new_ts, &block),
                            new_root,
                        });
                        latency += JOURNAL_PERSIST_CYCLES;
                        self.stats.incr("lcf.journal_appends");
                        Some(id)
                    }
                    None => None,
                };

                // The DDR burst — the one window a torn write can hit.
                if let Some(keep) = ddr.take_tear() {
                    // Power died mid-burst: a prefix lands, the rest of
                    // the block keeps its old bits, and the commit mark
                    // is never written.
                    let keep = (keep as usize).min(block.len());
                    ddr.tamper(dev_off, &block[..keep]);
                    self.crashed = true;
                    self.stats.incr("lcf.torn_bursts");
                    return Ok(LcfAccess { data: 0, latency });
                }
                ddr.tamper(dev_off, &block);
                latency += ddr.latency(dev_off, true);

                // Phase 2: the commit mark, and maybe a checkpoint fold.
                if let Some(id) = write_id {
                    let js = self.journal.as_mut().expect("journal present in phase 1");
                    js.journal.commit(id);
                    js.commits_since += 1;
                    latency += JOURNAL_PERSIST_CYCLES;
                    self.stats.incr("lcf.journal_commits");
                    if let Some(t) = &self.tracer {
                        t.record(now, TraceEvent::JournalCommit { txn: txn.id.0 });
                    }
                    let due = js.commits_since >= js.interval;
                    if due {
                        latency += self.checkpoint_inner();
                    }
                }

                self.stats.incr("lcf.protected_writes");
                Ok(LcfAccess { data: 0, latency })
            }
        }
    }

    fn direct_access(
        &mut self,
        ddr: &mut ExternalDdr,
        txn: &Transaction,
        mut latency: u64,
    ) -> Result<LcfAccess, (Violation, u64)> {
        use secbus_mem::MemDevice;
        let dev_off = txn.addr - self.ddr_base;
        latency += ddr.latency(dev_off, txn.op == Op::Write);
        self.stats.incr("lcf.unprotected_accesses");
        match txn.op {
            Op::Read => match ddr.read(dev_off, txn.width) {
                Ok(data) => Ok(LcfAccess { data, latency }),
                Err(_) => Err((Violation::RegionOverrun, latency)),
            },
            Op::Write => match ddr.write(dev_off, txn.width, txn.data) {
                Ok(()) => Ok(LcfAccess { data: 0, latency }),
                Err(_) => Err((Violation::RegionOverrun, latency)),
            },
        }
    }

    /// Roll the Cryptographic Key of the region containing `region_addr`
    /// to `new_key`: every protection block is decrypted under the old key
    /// and re-sealed under the new one, and the integrity tree is rebuilt
    /// over the fresh ciphertext. Returns the cycles the operation costs
    /// (one CC stream pass per direction plus an IC rebuild), or an error
    /// if the address is not inside a ciphered region.
    ///
    /// This is the CK half of the paper's §VI "reconfiguration of security
    /// services": after a suspected key compromise the region is re-keyed
    /// in place without rebooting the system.
    pub fn rekey(
        &mut self,
        ddr: &mut ExternalDdr,
        region_addr: u32,
        new_key: [u8; 16],
    ) -> Result<u64, RekeyError> {
        debug_assert!(self.sealed, "rekey() before seal()");
        let ddr_base = self.ddr_base;
        let timing = self.timing;
        let region_idx = self.region_of(region_addr).ok_or(RekeyError::NoRegion)?;
        let region = &mut self.regions[region_idx];
        if region.protection == Protection::None {
            return Err(RekeyError::NotCiphered);
        }
        let old_cipher = region.cipher.as_ref().expect("ciphered region has a key");
        let new_cipher = MemoryCipher::new(&new_key);
        let dev_off = region.base - ddr_base;
        let mut cycles = 0;

        let mut new_leaves = Vec::new();
        let blocks = (region.len / PROTECTION_BLOCK) as usize;
        for i in 0..blocks {
            let block_off = dev_off + i as u32 * PROTECTION_BLOCK;
            let bus_addr = u64::from(region.base) + u64::from(i as u32 * PROTECTION_BLOCK);
            let ts = region.timestamps.get(i);
            let mut block: [u8; 16] = ddr
                .snoop(block_off, PROTECTION_BLOCK)
                .try_into()
                .expect("16-byte block");
            old_cipher.apply(bus_addr, ts, &mut block); // decrypt
            new_cipher.apply(bus_addr, ts, &mut block); // re-encrypt
            ddr.tamper(block_off, &block);
            if region.protection == Protection::CipherIntegrity {
                new_leaves.push(leaf_digest(i as u64, ts, &block));
            }
        }
        cycles += 2 * timing.cc_stream_cycles(u64::from(region.len) * 8);
        if region.protection == Protection::CipherIntegrity {
            region.tree = Some(MerkleTree::build(&new_leaves));
            region.ic_cache = self.ic_cache_entries.map(NodeCache::new);
            cycles += timing.ic_stream_cycles(u64::from(region.len) * 8);
        }
        region.cipher = Some(new_cipher);
        self.stats
            .add("lcf.cc_bytes_ciphered", 2 * u64::from(region.len));
        self.stats.incr("lcf.rekeys");
        self.stats.add("lcf.rekey_cycles", cycles);
        Ok(cycles)
    }

    /// Rebuild the integrity tree of the region containing `region_addr`
    /// from the ciphertext currently in memory (quarantine recovery: after
    /// a burst of faults the tree state is re-baselined rather than left
    /// permanently poisoned). Returns the IC cycles the rebuild costs;
    /// cipher-only regions rebuild nothing and cost 0.
    ///
    /// Note the trust consequence: whatever is in external memory at
    /// rebuild time becomes the new baseline. Tampering *after* the
    /// rebuild is detected as usual, but the rebuild itself cannot tell a
    /// fault-garbled block from a genuine one — which is why the SoC only
    /// triggers it as part of an explicit quarantine-recovery policy.
    pub fn rebuild_region(
        &mut self,
        ddr: &mut ExternalDdr,
        region_addr: u32,
    ) -> Result<u64, RekeyError> {
        debug_assert!(self.sealed, "rebuild_region() before seal()");
        let ddr_base = self.ddr_base;
        let timing = self.timing;
        let region_idx = self.region_of(region_addr).ok_or(RekeyError::NoRegion)?;
        let region = &mut self.regions[region_idx];
        if region.protection == Protection::None {
            return Err(RekeyError::NotCiphered);
        }
        if region.protection != Protection::CipherIntegrity {
            return Ok(0);
        }
        let dev_off = region.base - ddr_base;
        let blocks = (region.len / PROTECTION_BLOCK) as usize;
        let leaves: Vec<_> = (0..blocks)
            .map(|i| {
                let block: [u8; 16] = ddr
                    .snoop(dev_off + i as u32 * PROTECTION_BLOCK, PROTECTION_BLOCK)
                    .try_into()
                    .expect("16-byte block");
                leaf_digest(i as u64, region.timestamps.get(i), &block)
            })
            .collect();
        region.tree = Some(MerkleTree::build(&leaves));
        region.ic_cache = self.ic_cache_entries.map(NodeCache::new);
        let cycles = timing.ic_stream_cycles(u64::from(region.len) * 8);
        self.stats.incr("lcf.tree_rebuilds");
        self.stats.add("lcf.rebuild_cycles", cycles);
        Ok(cycles)
    }

    /// The protection level at `addr`, if a region covers it.
    pub fn protection_at(&self, addr: u32) -> Option<Protection> {
        Self::region_index(&self.regions, addr).map(|i| self.regions[i].protection)
    }

    /// Number of protection blocks in region `idx` (0 for unprotected).
    fn region_blocks(region: &Region) -> usize {
        match region.protection {
            Protection::None => 0,
            _ => (region.len / PROTECTION_BLOCK).max(1) as usize,
        }
    }

    /// Does the image's shape match this LCF's region layout?
    fn image_shape_ok(&self, image: &SecureStateImage) -> bool {
        image.regions.len() == self.regions.len()
            && self.regions.iter().zip(&image.regions).all(|(r, ri)| {
                ri.timestamps.len() == Self::region_blocks(r)
                    && ri.root.is_some() == (r.protection == Protection::CipherIntegrity)
            })
    }

    /// Build placeholder volatile state from whatever is in DDR (used on
    /// a quarantined boot so the object stays consistent while blocked).
    fn adopt_ddr_state(&mut self, ddr: &ExternalDdr) {
        let ddr_base = self.ddr_base;
        let cache_entries = self.ic_cache_entries;
        for region in &mut self.regions {
            if region.protection != Protection::CipherIntegrity {
                continue;
            }
            let dev_off = region.base - ddr_base;
            let leaves: Vec<Digest> = (0..Self::region_blocks(region))
                .map(|i| {
                    let block: [u8; 16] = ddr
                        .snoop(dev_off + i as u32 * PROTECTION_BLOCK, PROTECTION_BLOCK)
                        .try_into()
                        .expect("16-byte block");
                    leaf_digest(i as u64, region.timestamps.get(i), &block)
                })
                .collect();
            region.tree = Some(MerkleTree::build(&leaves));
            region.ic_cache = cache_entries.map(NodeCache::new);
        }
    }

    /// Fail-secure end of a recovery boot: adopt placeholder state,
    /// block the firewall, record why.
    fn quarantine_boot(
        &mut self,
        ddr: &ExternalDdr,
        mut report: RecoveryReport,
        evidence: TamperEvidence,
    ) -> RecoveryReport {
        self.adopt_ddr_state(ddr);
        self.sealed = true;
        self.fw.block();
        self.stats.incr("lcf.recovery_quarantines");
        self.stats
            .incr(&format!("lcf.recovery_quarantine.{}", evidence.mnemonic()));
        report.outcome = RecoveryOutcome::Quarantined(evidence);
        report
    }

    /// Boot-time recovery: reconstruct the secure state from the
    /// persisted surface instead of sealing a fresh boot image.
    ///
    /// This replaces [`LocalCipheringFirewall::seal`] on a resume boot:
    /// `ddr` holds the ciphertext that survived the power cut, `state`
    /// is the (attacker-reachable) image + journal, `state_key` is the
    /// on-chip key and `counter` the on-chip anti-rollback ratchet
    /// (`None` models a journal-less design, which skips the rollback
    /// check and has no journal to replay).
    ///
    /// The procedure distinguishes crash artifacts from tampering:
    ///
    /// 1. authenticate the image (MAC + shape) — else quarantine;
    /// 2. compare `image.seq` with the counter — behind = rollback
    ///    attack, far ahead = forgery, one ahead = crash mid-checkpoint
    ///    (ratchet and continue);
    /// 3. replay the journal under *our* key: a torn tail is discarded
    ///    (crash artifact), a protocol violation is forgery;
    /// 4. fold committed records into the image state; the at-most-one
    ///    dangling intent is resolved against DDR via Merkle-proof
    ///    surgery — burst absent → roll back, complete → roll forward,
    ///    half-landed with every *other* block consistent → repair the
    ///    single torn block (bounded, logged data loss); anything else
    ///    is tampering;
    /// 5. rebuild the volatile trees and, when a counter was supplied,
    ///    open a fresh checkpoint epoch.
    ///
    /// On success the region state is live; on quarantine the embedded
    /// firewall is blocked and every access is refused until an
    /// explicit administrative release.
    pub fn recover_from(
        &mut self,
        ddr: &mut ExternalDdr,
        state: &PersistentState,
        state_key: [u8; 16],
        counter: Option<MonotonicCounter>,
        interval: u64,
    ) -> RecoveryReport {
        assert!(
            !self.sealed,
            "recover_from() replaces seal() on a resume boot"
        );
        let mut report = RecoveryReport {
            outcome: RecoveryOutcome::Clean,
            replayed: 0,
            rolled_forward: 0,
            rolled_back: 0,
            repaired_blocks: 0,
            torn_discarded: 0,
            stale_discarded: 0,
            cycles: 0,
        };

        // 1. Authenticate the image.
        if !state.image.verify(&state_key) || !self.image_shape_ok(&state.image) {
            return self.quarantine_boot(ddr, report, TamperEvidence::BadImage);
        }

        // 2. Anti-rollback.
        let mut counter = counter;
        if let Some(c) = counter.as_mut() {
            if state.image.seq < c.value() {
                return self.quarantine_boot(ddr, report, TamperEvidence::RolledBackImage);
            }
            if state.image.seq > c.value() + 1 {
                return self.quarantine_boot(ddr, report, TamperEvidence::ForgedSequence);
            }
            // Equal, or one ahead (crash between image write and
            // ratchet): bring the ratchet up to date.
            c.ratchet_to(state.image.seq);
        }

        // 3. Replay the journal under OUR key — never the journal's.
        let replay = state.journal.replay_with(&state_key);
        report.torn_discarded = replay.torn_discarded as u64;
        report.cycles += JOURNAL_PERSIST_CYCLES * state.journal.len() as u64;
        if replay.forged {
            return self.quarantine_boot(ddr, report, TamperEvidence::ForgedJournal);
        }

        // 4a. Fold records into the image state.
        let mut ts: Vec<Vec<u64>> = state
            .image
            .regions
            .iter()
            .map(|r| r.timestamps.clone())
            .collect();
        let mut roots: Vec<Option<Digest>> = state.image.regions.iter().map(|r| r.root).collect();
        let mut dangling: Option<IntentRecord> = None;
        for (rec, committed) in &replay.writes {
            if rec.seq < state.image.seq {
                // Folded into the image by the checkpoint that bumped
                // seq; a crash between ratchet and truncate leaves them.
                report.stale_discarded += 1;
                continue;
            }
            let in_range = rec.seq == state.image.seq
                && rec.region < self.regions.len()
                && rec.block < ts[rec.region].len()
                && (self.regions[rec.region].protection == Protection::CipherIntegrity)
                    == rec.new_root.is_some();
            if !in_range {
                return self.quarantine_boot(ddr, report, TamperEvidence::ForgedJournal);
            }
            if *committed {
                ts[rec.region][rec.block] = rec.new_ts;
                if let Some(r) = rec.new_root {
                    roots[rec.region] = Some(r);
                }
                report.replayed += 1;
            } else {
                // replay() guarantees only the final write can dangle.
                dangling = Some(rec.clone());
            }
        }

        // 4b. Reconcile every region with the DDR contents. Each
        // integrity region's tree is built from DDR exactly once here and
        // kept for installation in 5b (with at most one leaf patched),
        // instead of being rebuilt from scratch a second time.
        let ddr_base = self.ddr_base;
        let timing = self.timing;
        let mut repairs: Vec<(usize, usize, u64)> = Vec::new();
        let mut rebuilt: Vec<Option<MerkleTree>> = (0..self.regions.len()).map(|_| None).collect();
        let mut evidence: Option<TamperEvidence> = None;
        for (idx, region) in self.regions.iter().enumerate() {
            let in_flight = dangling.as_ref().filter(|r| r.region == idx);
            match region.protection {
                Protection::None => {}
                Protection::CipherOnly => {
                    if in_flight.is_some() {
                        // No tree: whether the burst landed is not
                        // observable. Roll back deterministically — the
                        // write was never acknowledged; if the burst did
                        // land the block reads garbled, which is inside
                        // the cipher-only threat model.
                        report.rolled_back += 1;
                    }
                }
                Protection::CipherIntegrity => {
                    let expected_root = roots[idx].expect("shape-checked above");
                    let dev_off = region.base - ddr_base;
                    let blocks = Self::region_blocks(region);
                    let leaf_at = |i: usize, t: u64| {
                        let block: [u8; 16] = ddr
                            .snoop(dev_off + i as u32 * PROTECTION_BLOCK, PROTECTION_BLOCK)
                            .try_into()
                            .expect("16-byte block");
                        leaf_digest(i as u64, t, &block)
                    };
                    let ddr_leaves: Vec<Digest> =
                        (0..blocks).map(|i| leaf_at(i, ts[idx][i])).collect();
                    report.cycles += timing.ic_stream_cycles(u64::from(region.len) * 8);
                    let mut ddr_tree = MerkleTree::build(&ddr_leaves);
                    let Some(rec) = in_flight else {
                        if ddr_tree.root() != expected_root {
                            evidence = Some(TamperEvidence::RootMismatch { region: idx });
                            break;
                        }
                        rebuilt[idx] = Some(ddr_tree);
                        continue;
                    };
                    // One write was in flight at the crash. Its sibling
                    // path is a function of the OTHER blocks only, so it
                    // can arbitrate all three crash windows.
                    let b = rec.block;
                    let shadow_root = rec.new_root.expect("checked in 4a");
                    let path = ddr_tree.proof(b);
                    let ddr_leaf_old = ddr_leaves[b];
                    let ddr_leaf_new = leaf_at(b, rec.new_ts);
                    let others_match_shadow =
                        MerkleTree::verify_proof(&shadow_root, b, &rec.new_leaf, &path);
                    if MerkleTree::verify_proof(&expected_root, b, &ddr_leaf_old, &path) {
                        // Burst never started: pre-state intact.
                        report.rolled_back += 1;
                    } else if ddr_leaf_new == rec.new_leaf && others_match_shadow {
                        // Burst completed: finish the commit.
                        ts[idx][b] = rec.new_ts;
                        roots[idx] = Some(shadow_root);
                        report.rolled_forward += 1;
                        ddr_tree.update_leaf(b, rec.new_leaf);
                    } else if others_match_shadow {
                        // Every block EXCEPT the in-flight one is
                        // consistent with the shadow root: the burst
                        // half-landed. Crash artifact, confined to block
                        // `b` — repair it, count the loss. The stored
                        // tree gets its `b` leaf patched in 5a once the
                        // repaired ciphertext exists.
                        repairs.push((idx, b, rec.new_ts));
                        ts[idx][b] = rec.new_ts;
                        report.repaired_blocks += 1;
                    } else {
                        // Neither pre- nor post-state explains the other
                        // blocks: tampering, not a crash.
                        evidence = Some(TamperEvidence::RootMismatch { region: idx });
                        break;
                    }
                    rebuilt[idx] = Some(ddr_tree);
                }
            }
        }
        if let Some(ev) = evidence {
            return self.quarantine_boot(ddr, report, ev);
        }

        // 5a. Repair torn blocks: deterministic re-initialization (zero
        // plaintext sealed under the recorded tag). The content is lost
        // — and logged — but confidentiality and freshness are not.
        for &(ridx, b, new_ts) in &repairs {
            let region = &self.regions[ridx];
            let cipher = region.cipher.as_ref().expect("integrity region has a key");
            let dev_off = region.base - ddr_base + b as u32 * PROTECTION_BLOCK;
            let bus_addr = u64::from(region.base) + u64::from(b as u32 * PROTECTION_BLOCK);
            let mut block = [0u8; PROTECTION_BLOCK as usize];
            cipher.apply(bus_addr, new_ts, &mut block);
            ddr.tamper(dev_off, &block);
            rebuilt[ridx]
                .as_mut()
                .expect("repaired region was reconciled in 4b")
                .update_leaf(b, leaf_digest(b as u64, new_ts, &block));
            report.cycles += timing.cc_latency + JOURNAL_PERSIST_CYCLES;
        }

        // 5b. Install the recovered volatile state — the trees built
        // during reconciliation, not a second from-scratch rebuild.
        let cache_entries = self.ic_cache_entries;
        for (idx, region) in self.regions.iter_mut().enumerate() {
            if region.protection == Protection::None {
                continue;
            }
            region.timestamps = TimestampTable::from_tags(ts[idx].clone());
            if region.protection == Protection::CipherIntegrity {
                let tree = rebuilt[idx]
                    .take()
                    .expect("integrity region was reconciled in 4b");
                debug_assert!(
                    !repairs.is_empty() || roots[idx].is_none_or(|r| r == tree.root()),
                    "non-repaired region must reproduce its authenticated root"
                );
                region.tree = Some(tree);
                region.ic_cache = cache_entries.map(NodeCache::new);
            }
        }
        self.sealed = true;
        let disturbed = report.rolled_forward
            + report.rolled_back
            + report.repaired_blocks
            + report.torn_discarded
            + report.stale_discarded;
        report.outcome = if disturbed > 0 {
            RecoveryOutcome::Repaired
        } else {
            RecoveryOutcome::Clean
        };
        self.stats.incr("lcf.recoveries");
        if report.repaired_blocks > 0 {
            self.stats
                .add("lcf.recovery_repaired_blocks", report.repaired_blocks);
        }

        // 5c. Open a fresh checkpoint epoch under the surviving counter.
        if let Some(c) = counter {
            self.journal = Some(JournalState {
                key: state_key,
                interval,
                commits_since: 0,
                image: SecureStateImage::seal(&state_key, 0, Vec::new()),
                journal: WriteAheadJournal::new(state_key),
                counter: c,
            });
            report.cycles += self.checkpoint_inner();
        }
        report
    }

    /// Alerts raised since the last drain (policy + integrity).
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        self.fw.drain_alerts()
    }

    /// Whether alerts are waiting to be drained (event-core skip check).
    pub fn has_pending_alerts(&self) -> bool {
        self.fw.has_pending_alerts()
    }

    /// The embedded Local Firewall (policy table, id, block state).
    pub fn firewall(&self) -> &LocalFirewall {
        &self.fw
    }

    /// Mutable access to the embedded firewall (reconfiguration, blocking).
    pub fn firewall_mut(&mut self) -> &mut LocalFirewall {
        &mut self.fw
    }

    /// The crypto timing parameters in force.
    pub fn timing(&self) -> CryptoTiming {
        self.timing
    }

    /// LCF-specific statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The crypto backend the Confidentiality Core's batched hot path
    /// actually runs on (`soft` or `accel`).
    ///
    /// Deliberately an accessor and **not** a [`Stats`] counter: backend
    /// identity is host trivia, and keeping it out of the stats keeps
    /// metrics snapshots — and therefore every soak JSON — byte-identical
    /// whichever backend the host selected (the `ticks_executed` rule).
    pub fn cc_backend(&self) -> CryptoBackend {
        self.regions
            .iter()
            .find_map(|r| r.cipher.as_ref().map(MemoryCipher::backend))
            .unwrap_or_else(secbus_crypto::active_backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdfSet, Rwa};
    use secbus_bus::{AddrRange, MasterId, TxnId, Width};

    const DDR_BASE: u32 = 0x8000_0000;
    const KEY: [u8; 16] = [0xAA; 16];

    fn make_unsealed() -> (LocalCipheringFirewall, ExternalDdr) {
        // 0x000..0x100: cipher+integrity, rw
        // 0x100..0x200: cipher only, rw
        // 0x200..0x300: unprotected, rw
        // 0x300..0x400: cipher+integrity, read-only
        let config = ConfigMemory::with_policies(vec![
            SecurityPolicy::external(
                1,
                AddrRange::new(DDR_BASE, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
                ConfidentialityMode::Encrypt,
                IntegrityMode::Verify,
                Some(KEY),
            ),
            SecurityPolicy::external(
                2,
                AddrRange::new(DDR_BASE + 0x100, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
                ConfidentialityMode::Encrypt,
                IntegrityMode::Bypass,
                Some([0xBB; 16]),
            ),
            SecurityPolicy::external(
                3,
                AddrRange::new(DDR_BASE + 0x200, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
                ConfidentialityMode::Bypass,
                IntegrityMode::Bypass,
                None,
            ),
            SecurityPolicy::external(
                4,
                AddrRange::new(DDR_BASE + 0x300, 0x100),
                Rwa::ReadOnly,
                AdfSet::ALL,
                ConfidentialityMode::Encrypt,
                IntegrityMode::Verify,
                Some(KEY),
            ),
        ])
        .unwrap();
        let mut ddr = ExternalDdr::new(0x1000);
        // Recognisable boot image.
        for i in 0..0x400u32 {
            ddr.load(i, &[(i % 251) as u8]);
        }
        let lcf = LocalCipheringFirewall::new(
            FirewallId(9),
            "LCF ext-mem",
            config,
            DDR_BASE,
            CryptoTiming::PAPER,
        );
        (lcf, ddr)
    }

    fn make_lcf() -> (LocalCipheringFirewall, ExternalDdr) {
        let (mut lcf, mut ddr) = make_unsealed();
        lcf.seal(&mut ddr);
        (lcf, ddr)
    }

    const STATE_KEY: [u8; 16] = [0xCC; 16];

    /// A journaled LCF (checkpoint every `interval` commits), sealed.
    fn make_journaled(interval: u64) -> (LocalCipheringFirewall, ExternalDdr) {
        let (mut lcf, mut ddr) = make_unsealed();
        lcf.enable_journal(interval, STATE_KEY);
        lcf.seal(&mut ddr);
        (lcf, ddr)
    }

    /// Model a reboot: capture the persisted surface + on-chip counter,
    /// build a fresh (unsealed) LCF and recover on the surviving DDR.
    fn reboot_and_recover(
        lcf: &LocalCipheringFirewall,
        ddr: &mut ExternalDdr,
        state: &PersistentState,
    ) -> (LocalCipheringFirewall, RecoveryReport) {
        let counter = lcf.anti_rollback_counter().expect("journaled").clone();
        let (mut fresh, _) = make_unsealed();
        let report = fresh.recover_from(ddr, state, STATE_KEY, Some(counter), 1024);
        (fresh, report)
    }

    fn txn(op: Op, addr: u32, width: Width, data: u32) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op,
            addr,
            width,
            data,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn seal_encrypts_protected_regions_only() {
        let (_lcf, ddr) = make_lcf();
        // Protected region bytes no longer equal the boot image...
        assert_ne!(
            ddr.snoop(0, 16),
            &(0..16).map(|i| (i % 251) as u8).collect::<Vec<_>>()[..]
        );
        // ...but the unprotected region is untouched plaintext.
        let expect: Vec<u8> = (0x200..0x210).map(|i| (i % 251) as u8).collect();
        assert_eq!(ddr.snoop(0x200, 16), &expect[..]);
    }

    #[test]
    fn read_decrypts_sealed_contents() {
        let (mut lcf, mut ddr) = make_lcf();
        let r = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + 4, Width::Byte, 0),
                Cycle(0),
            )
            .unwrap();
        assert_eq!(r.data, 4);
        // SB (12) + DDR + IC (20) + CC (11) at least.
        assert!(r.latency >= 12 + 20 + 11, "latency {}", r.latency);
    }

    #[test]
    fn write_then_read_roundtrip_protected() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x20;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0xfeed_f00d),
            Cycle(1),
        )
        .unwrap();
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(2))
            .unwrap();
        assert_eq!(r.data, 0xfeed_f00d);
        // The stored ciphertext is NOT the plaintext.
        assert_ne!(ddr.snoop(0x20, 4), &0xfeed_f00du32.to_le_bytes());
    }

    #[test]
    fn cipher_only_region_roundtrips() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x140;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Half, 0xbeef),
            Cycle(0),
        )
        .unwrap();
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Half, 0), Cycle(1))
            .unwrap();
        assert_eq!(r.data, 0xbeef);
    }

    #[test]
    fn unprotected_region_is_plain_and_cheap() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x240;
        lcf.handle(&mut ddr, &txn(Op::Write, addr, Width::Word, 77), Cycle(0))
            .unwrap();
        assert_eq!(ddr.snoop(0x240, 4), &77u32.to_le_bytes());
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        assert_eq!(r.data, 77);
        // No crypto charge: latency < SB + IC.
        assert!(r.latency < 12 + 20, "latency {}", r.latency);
    }

    #[test]
    fn tampering_integrity_region_is_detected() {
        let (mut lcf, mut ddr) = make_lcf();
        // Attacker flips one stored bit in the protected region.
        let mut b = ddr.snoop(0x40, 16).to_vec();
        b[3] ^= 0x80;
        ddr.tamper(0x40, &b);
        let err = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + 0x40, Width::Word, 0),
                Cycle(5),
            )
            .unwrap_err();
        assert_eq!(err.0, Violation::IntegrityMismatch);
        assert_eq!(lcf.stats().counter("lcf.integrity_failures"), 1);
        let alerts = lcf.drain_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].violation, Violation::IntegrityMismatch);
    }

    #[test]
    fn replayed_block_is_detected() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x10;
        // Genuine v1 ciphertext.
        lcf.handle(&mut ddr, &txn(Op::Write, addr, Width::Word, 1), Cycle(0))
            .unwrap();
        let old = ddr.snoop(0x10, 16).to_vec();
        // Genuine v2 write.
        lcf.handle(&mut ddr, &txn(Op::Write, addr, Width::Word, 2), Cycle(1))
            .unwrap();
        // Attacker replays v1 ciphertext.
        ddr.tamper(0x10, &old);
        let err = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(2))
            .unwrap_err();
        assert_eq!(err.0, Violation::IntegrityMismatch);
    }

    #[test]
    fn relocated_block_is_detected() {
        let (mut lcf, mut ddr) = make_lcf();
        // Copy ciphertext block 0x00 over block 0x40 (same region).
        let src = ddr.snoop(0x00, 16).to_vec();
        ddr.tamper(0x40, &src);
        let err = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + 0x40, Width::Word, 0),
                Cycle(0),
            )
            .unwrap_err();
        assert_eq!(err.0, Violation::IntegrityMismatch);
    }

    #[test]
    fn cipher_only_tamper_garbles_but_is_not_detected() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x100;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0x1234_5678),
            Cycle(0),
        )
        .unwrap();
        let mut b = ddr.snoop(0x100, 16).to_vec();
        b[0] ^= 0xff;
        ddr.tamper(0x100, &b);
        // The read "succeeds" (no integrity core on this region)…
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        // …but the attacker could not choose the plaintext: it is garbled.
        assert_ne!(r.data, 0x1234_5678);
        assert_ne!(r.data, 0x1234_56FF);
    }

    #[test]
    fn readonly_policy_blocks_writes_before_crypto() {
        let (mut lcf, mut ddr) = make_lcf();
        let err = lcf
            .handle(
                &mut ddr,
                &txn(Op::Write, DDR_BASE + 0x300, Width::Word, 9),
                Cycle(0),
            )
            .unwrap_err();
        assert_eq!(err.0, Violation::UnauthorizedWrite);
        assert_eq!(err.1, 12, "discarded after the SB check only");
    }

    #[test]
    fn unmapped_address_denied() {
        let (mut lcf, mut ddr) = make_lcf();
        let err = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + 0x800, Width::Word, 0),
                Cycle(0),
            )
            .unwrap_err();
        assert_eq!(err.0, Violation::NoPolicy);
    }

    #[test]
    fn stream_cycle_model_matches_table2_throughput() {
        let t = CryptoTiming::PAPER;
        // 1 MiB stream at 100 MHz: throughput must come out at the paper's
        // numbers (± the latency term, negligible at this size).
        let bits = 8 * 1024 * 1024 * 8u64;
        let cc_mbps = bits as f64 / (t.cc_stream_cycles(bits) as f64 / 100e6) / 1e6;
        let ic_mbps = bits as f64 / (t.ic_stream_cycles(bits) as f64 / 100e6) / 1e6;
        assert!((cc_mbps - 450.0).abs() < 1.0, "CC {cc_mbps} Mb/s");
        assert!((ic_mbps - 131.0).abs() < 1.0, "IC {ic_mbps} Mb/s");
    }

    #[test]
    fn protection_levels_reported() {
        let (lcf, _) = make_lcf();
        assert_eq!(
            lcf.protection_at(DDR_BASE),
            Some(Protection::CipherIntegrity)
        );
        assert_eq!(
            lcf.protection_at(DDR_BASE + 0x180),
            Some(Protection::CipherOnly)
        );
        assert_eq!(lcf.protection_at(DDR_BASE + 0x2ff), Some(Protection::None));
        assert_eq!(lcf.protection_at(DDR_BASE + 0x900), None);
    }

    #[test]
    fn per_level_tree_cost_scales_with_region_size() {
        let make = |len: u32| {
            let config = ConfigMemory::with_policies(vec![SecurityPolicy::external(
                1,
                AddrRange::new(DDR_BASE, len),
                Rwa::ReadWrite,
                AdfSet::ALL,
                ConfidentialityMode::Encrypt,
                IntegrityMode::Verify,
                Some(KEY),
            )])
            .unwrap();
            let mut ddr = ExternalDdr::new(len);
            let mut lcf = LocalCipheringFirewall::new(
                FirewallId(0),
                "LCF",
                config,
                DDR_BASE,
                CryptoTiming::with_tree_cost(2),
            );
            lcf.seal(&mut ddr);
            (lcf, ddr)
        };
        let (mut small, mut sddr) = make(0x100); // 16 blocks -> 4 levels
        let (mut big, mut bddr) = make(0x10000); // 4096 blocks -> 12 levels
        let rs = small
            .handle(
                &mut sddr,
                &txn(Op::Read, DDR_BASE, Width::Word, 0),
                Cycle(0),
            )
            .unwrap();
        let rb = big
            .handle(
                &mut bddr,
                &txn(Op::Read, DDR_BASE, Width::Word, 0),
                Cycle(0),
            )
            .unwrap();
        assert!(
            rb.latency > rs.latency,
            "deeper tree must cost more: {} vs {}",
            rb.latency,
            rs.latency
        );
        assert_eq!(rb.latency - rs.latency, 2 * (12 - 4));
    }

    #[test]
    fn paper_timing_has_flat_ic_cost() {
        assert_eq!(CryptoTiming::PAPER.ic_verify_cycles(4), 20);
        assert_eq!(CryptoTiming::PAPER.ic_verify_cycles(20), 20);
        assert_eq!(CryptoTiming::with_tree_cost(3).ic_verify_cycles(10), 50);
    }

    #[test]
    fn rekey_preserves_data_and_changes_ciphertext() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x30;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0xabc0_0123),
            Cycle(0),
        )
        .unwrap();
        let old_ct = ddr.snoop(0x30, 16).to_vec();
        let cycles = lcf.rekey(&mut ddr, DDR_BASE, *b"fresh-new-key-01").unwrap();
        assert!(cycles > 0);
        // Ciphertext rotated…
        assert_ne!(ddr.snoop(0x30, 16), &old_ct[..]);
        // …but the plaintext still reads back, integrity intact.
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        assert_eq!(r.data, 0xabc0_0123);
        assert_eq!(lcf.stats().counter("lcf.rekeys"), 1);
    }

    #[test]
    fn rekey_invalidates_old_key_snapshots() {
        // An attacker who captured ciphertext (or even the OLD key) cannot
        // replay it after the roll: the tree covers the new ciphertext.
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x50;
        lcf.handle(&mut ddr, &txn(Op::Write, addr, Width::Word, 7), Cycle(0))
            .unwrap();
        let snapshot = ddr.snoop(0x50, 16).to_vec();
        lcf.rekey(&mut ddr, DDR_BASE, *b"fresh-new-key-02").unwrap();
        ddr.tamper(0x50, &snapshot); // replay pre-rekey ciphertext
        let err = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap_err();
        assert_eq!(err.0, Violation::IntegrityMismatch);
    }

    #[test]
    fn rekey_cipher_only_region_roundtrips() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x180;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0x51ca_ffee),
            Cycle(0),
        )
        .unwrap();
        lcf.rekey(&mut ddr, DDR_CIPHER_BASE_TEST, *b"fresh-new-key-03")
            .unwrap();
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        assert_eq!(r.data, 0x51ca_ffee);
    }

    #[test]
    fn rekey_refuses_unprotected_and_unmapped() {
        let (mut lcf, mut ddr) = make_lcf();
        assert_eq!(
            lcf.rekey(&mut ddr, DDR_BASE + 0x240, [0; 16]),
            Err(RekeyError::NotCiphered)
        );
        assert_eq!(
            lcf.rekey(&mut ddr, DDR_BASE + 0x900, [0; 16]),
            Err(RekeyError::NoRegion)
        );
        assert!(RekeyError::NoRegion.to_string().contains("no LCF region"));
    }

    const DDR_CIPHER_BASE_TEST: u32 = DDR_BASE + 0x100;

    #[test]
    #[should_panic(expected = "exactly once")]
    fn double_seal_panics() {
        let (mut lcf, mut ddr) = make_lcf();
        lcf.seal(&mut ddr);
    }

    #[test]
    fn ic_glitch_fails_a_clean_read_once() {
        let (mut lcf, mut ddr) = make_lcf();
        let t = txn(Op::Read, DDR_BASE + 4, Width::Word, 0);
        lcf.inject_ic_glitch();
        let err = lcf.handle(&mut ddr, &t, Cycle(0)).unwrap_err();
        assert_eq!(
            err.0,
            Violation::IntegrityMismatch,
            "glitched verdict blocks the read"
        );
        assert_eq!(lcf.stats().counter("lcf.fault.ic_glitches"), 1);
        // One-shot: the next verification is honest again.
        assert!(lcf.handle(&mut ddr, &t, Cycle(1)).is_ok());
    }

    #[test]
    fn ic_glitch_can_mask_real_tampering() {
        let (mut lcf, mut ddr) = make_lcf();
        let mut b = ddr.snoop(0x40, 16).to_vec();
        b[0] ^= 1;
        ddr.tamper(0x40, &b);
        let t = txn(Op::Read, DDR_BASE + 0x40, Width::Word, 0);
        lcf.inject_ic_glitch();
        // False negative: the inverted verdict lets the tampered block by
        // (served garbled, since the ciphertext no longer matches).
        assert!(lcf.handle(&mut ddr, &t, Cycle(0)).is_ok());
        // Without the glitch the tampering is caught as usual.
        assert_eq!(
            lcf.handle(&mut ddr, &t, Cycle(1)).unwrap_err().0,
            Violation::IntegrityMismatch
        );
    }

    #[test]
    fn serve_with_alert_keeps_the_region_live() {
        let (mut lcf, mut ddr) = make_lcf();
        assert!(lcf.set_ic_failure_mode(DDR_BASE, IcFailureMode::ServeWithAlert));
        assert!(!lcf.set_ic_failure_mode(DDR_BASE + 0x900, IcFailureMode::ServeWithAlert));
        lcf.inject_ic_glitch();
        let r = lcf
            .handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + 4, Width::Byte, 0),
                Cycle(0),
            )
            .expect("degraded mode serves the data");
        assert_eq!(
            r.data, 4,
            "clean block decrypts correctly despite the doubtful verdict"
        );
        assert_eq!(lcf.stats().counter("lcf.degraded_serves"), 1);
        let alerts = lcf.drain_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].violation, Violation::IntegrityMismatch);
        assert_eq!(
            lcf.region_configs()[0].ic_failure,
            IcFailureMode::ServeWithAlert,
            "mode visible in the region configs"
        );
    }

    #[test]
    fn cc_glitch_garbles_one_read() {
        let (mut lcf, mut ddr) = make_lcf();
        let t = txn(Op::Read, DDR_BASE + 4, Width::Byte, 0);
        lcf.inject_cc_glitch();
        let r = lcf.handle(&mut ddr, &t, Cycle(0)).unwrap();
        assert_eq!(r.data, 4 ^ 0xA5, "garbled by the glitched cipher pass");
        assert_eq!(lcf.stats().counter("lcf.fault.cc_glitches"), 1);
        let r = lcf.handle(&mut ddr, &t, Cycle(1)).unwrap();
        assert_eq!(r.data, 4, "one-shot: next pass is clean");
    }

    #[test]
    fn rebuild_recovers_a_poisoned_tree() {
        let (mut lcf, mut ddr) = make_lcf();
        // Fault garbles a stored block (e.g. an SEU on the raw DDR): every
        // read of it now fails integrity — the region is effectively dead.
        let mut b = ddr.snoop(0x60, 16).to_vec();
        b[5] ^= 0x10;
        ddr.tamper(0x60, &b);
        let t = txn(Op::Read, DDR_BASE + 0x60, Width::Word, 0);
        assert!(lcf.handle(&mut ddr, &t, Cycle(0)).is_err());
        // Recovery: re-baseline the tree over the current ciphertext.
        let cycles = lcf.rebuild_region(&mut ddr, DDR_BASE).unwrap();
        assert!(cycles > 0);
        assert!(
            lcf.handle(&mut ddr, &t, Cycle(1)).is_ok(),
            "region live again"
        );
        assert_eq!(lcf.stats().counter("lcf.tree_rebuilds"), 1);
        // Tampering after the rebuild is still detected.
        let mut b = ddr.snoop(0x60, 16).to_vec();
        b[0] ^= 2;
        ddr.tamper(0x60, &b);
        assert_eq!(
            lcf.handle(&mut ddr, &t, Cycle(2)).unwrap_err().0,
            Violation::IntegrityMismatch
        );
    }

    #[test]
    fn rebuild_respects_region_kinds() {
        let (mut lcf, mut ddr) = make_lcf();
        assert_eq!(
            lcf.rebuild_region(&mut ddr, DDR_CIPHER_BASE_TEST),
            Ok(0),
            "cipher-only"
        );
        assert_eq!(
            lcf.rebuild_region(&mut ddr, DDR_BASE + 0x240),
            Err(RekeyError::NotCiphered)
        );
        assert_eq!(
            lcf.rebuild_region(&mut ddr, DDR_BASE + 0x900),
            Err(RekeyError::NoRegion)
        );
    }

    // ---- crash consistency: journal, checkpoints, recovery ----

    #[test]
    fn journaled_write_is_two_phase() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        assert!(lcf.journal_enabled());
        let addr = DDR_BASE + 0x20;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0xfeed_f00d),
            Cycle(1),
        )
        .unwrap();
        assert_eq!(lcf.stats().counter("lcf.journal_appends"), 1);
        assert_eq!(lcf.stats().counter("lcf.journal_commits"), 1);
        // Intent + commit mark.
        assert_eq!(lcf.persistent_state().unwrap().journal.len(), 2);
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(2))
            .unwrap();
        assert_eq!(r.data, 0xfeed_f00d);
    }

    #[test]
    fn checkpoint_folds_the_journal() {
        let (mut lcf, mut ddr) = make_journaled(2);
        // Seal performed the initial checkpoint (seq 1).
        assert_eq!(lcf.persistent_state().unwrap().image.seq, 1);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x10, Width::Word, 1),
            Cycle(0),
        )
        .unwrap();
        assert_eq!(lcf.persistent_state().unwrap().journal.len(), 2);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x14, Width::Word, 2),
            Cycle(1),
        )
        .unwrap();
        // Second commit hit the interval: journal folded into image seq 2.
        let state = lcf.persistent_state().unwrap();
        assert!(state.journal.is_empty());
        assert_eq!(state.image.seq, 2);
        assert_eq!(lcf.anti_rollback_counter().unwrap().value(), 2);
        assert_eq!(lcf.stats().counter("lcf.checkpoints"), 2);
    }

    #[test]
    fn recovery_from_checkpoint_is_clean() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x30, Width::Word, 42),
            Cycle(0),
        )
        .unwrap();
        lcf.force_checkpoint();
        let state = lcf.persistent_state().unwrap();
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(report.outcome, RecoveryOutcome::Clean);
        assert!(report.cycles > 0);
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x30, Width::Word, 0),
            Cycle(1),
        );
        assert_eq!(r.unwrap().data, 42);
        assert_eq!(fresh.stats().counter("lcf.recoveries"), 1);
    }

    #[test]
    fn recovery_replays_committed_journal_writes() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        for (i, v) in [(0u32, 7u32), (4, 8), (0x44, 9)] {
            lcf.handle(
                &mut ddr,
                &txn(Op::Write, DDR_BASE + i, Width::Word, v),
                Cycle(0),
            )
            .unwrap();
        }
        let state = lcf.persistent_state().unwrap();
        assert!(!state.journal.is_empty(), "no checkpoint since the writes");
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(
            report.outcome,
            RecoveryOutcome::Clean,
            "all writes committed"
        );
        assert_eq!(report.replayed, 3);
        for (i, v) in [(0u32, 7u32), (4, 8), (0x44, 9)] {
            let r = fresh.handle(
                &mut ddr,
                &txn(Op::Read, DDR_BASE + i, Width::Word, 0),
                Cycle(1),
            );
            assert_eq!(r.unwrap().data, v);
        }
    }

    #[test]
    fn recovery_rolls_forward_a_dangling_intent_whose_burst_landed() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x50, Width::Word, 0xd00d),
            Cycle(0),
        )
        .unwrap();
        let mut state = lcf.persistent_state().unwrap();
        // Crash between the DDR burst and the commit mark.
        state.journal.drop_tail(1);
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(report.outcome, RecoveryOutcome::Repaired);
        assert_eq!(report.rolled_forward, 1);
        assert_eq!(report.repaired_blocks, 0);
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x50, Width::Word, 0),
            Cycle(1),
        );
        assert_eq!(r.unwrap().data, 0xd00d);
    }

    #[test]
    fn recovery_rolls_back_a_dangling_intent_whose_burst_never_started() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x50, Width::Word, 1),
            Cycle(0),
        )
        .unwrap();
        lcf.force_checkpoint();
        let pre = ddr.snoop(0x50, 16).to_vec();
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x50, Width::Word, 2),
            Cycle(1),
        )
        .unwrap();
        let mut state = lcf.persistent_state().unwrap();
        // Crash after the intent persisted but before the burst: undo the
        // DDR write and drop the commit mark.
        ddr.tamper(0x50, &pre);
        state.journal.drop_tail(1);
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(report.outcome, RecoveryOutcome::Repaired);
        assert_eq!(report.rolled_back, 1);
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x50, Width::Word, 0),
            Cycle(2),
        );
        assert_eq!(r.unwrap().data, 1, "pre-crash value back in force");
    }

    #[test]
    fn torn_burst_is_repaired_not_quarantined() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x70, Width::Word, 5),
            Cycle(0),
        )
        .unwrap();
        // Power dies mid-burst on the next store: only 6 bytes land.
        ddr.tear_next_store(6);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x70, Width::Word, 6),
            Cycle(1),
        )
        .unwrap();
        assert!(lcf.crashed());
        assert_eq!(lcf.stats().counter("lcf.torn_bursts"), 1);
        let state = lcf.persistent_state().unwrap();
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(report.outcome, RecoveryOutcome::Repaired);
        assert_eq!(
            report.repaired_blocks, 1,
            "torn block repaired, not quarantined"
        );
        assert!(!report.is_quarantined());
        // The block was deterministically re-initialized (bounded loss)
        // and the region is fully live again.
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x70, Width::Word, 0),
            Cycle(2),
        );
        assert_eq!(r.unwrap().data, 0, "repaired block reads as zero fill");
        let r2 = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x40, Width::Word, 0),
            Cycle(3),
        );
        assert!(r2.is_ok(), "other blocks unaffected");
    }

    #[test]
    fn recovery_quarantines_a_rolled_back_image() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE, Width::Word, 1),
            Cycle(0),
        )
        .unwrap();
        lcf.force_checkpoint();
        let old_state = lcf.persistent_state().unwrap();
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE, Width::Word, 2),
            Cycle(1),
        )
        .unwrap();
        lcf.force_checkpoint();
        // Attacker restores the older (validly MAC'd) image + journal.
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &old_state);
        assert_eq!(
            report.outcome,
            RecoveryOutcome::Quarantined(TamperEvidence::RolledBackImage)
        );
        // Quarantine blocks the embedded firewall outright.
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x240, Width::Word, 0),
            Cycle(2),
        );
        assert!(r.is_err(), "quarantined LCF refuses even unprotected reads");
        assert_eq!(fresh.stats().counter("lcf.recovery_quarantines"), 1);
        assert_eq!(
            fresh
                .stats()
                .counter("lcf.recovery_quarantine.rolled_back_image"),
            1
        );
    }

    #[test]
    fn recovery_quarantines_a_doctored_image() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.force_checkpoint();
        let mut state = lcf.persistent_state().unwrap();
        // Attacker edits the image without the key: MAC no longer holds.
        state.image.seq += 1;
        let (_fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(
            report.outcome,
            RecoveryOutcome::Quarantined(TamperEvidence::BadImage)
        );
    }

    #[test]
    fn recovery_quarantines_offline_ddr_tampering() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x10, Width::Word, 3),
            Cycle(0),
        )
        .unwrap();
        lcf.force_checkpoint();
        let state = lcf.persistent_state().unwrap();
        // While power is off, the attacker flips a stored bit.
        let mut b = ddr.snoop(0x80, 16).to_vec();
        b[0] ^= 1;
        ddr.tamper(0x80, &b);
        let (_fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(
            report.outcome,
            RecoveryOutcome::Quarantined(TamperEvidence::RootMismatch { region: 0 })
        );
    }

    #[test]
    fn recovery_discards_a_torn_journal_tail() {
        let (mut lcf, mut ddr) = make_journaled(1024);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x10, Width::Word, 3),
            Cycle(0),
        )
        .unwrap();
        let pre = ddr.snoop(0x10, 16).to_vec();
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x10, Width::Word, 4),
            Cycle(1),
        )
        .unwrap();
        let mut state = lcf.persistent_state().unwrap();
        // Crash tore the intent append itself; its burst never ran.
        ddr.tamper(0x10, &pre);
        state.journal.drop_tail(1); // commit mark
        state.journal.corrupt_entry(state.journal.len() - 1); // torn intent
        let (mut fresh, report) = reboot_and_recover(&lcf, &mut ddr, &state);
        assert_eq!(report.outcome, RecoveryOutcome::Repaired);
        assert_eq!(report.torn_discarded, 1);
        assert_eq!(report.replayed, 1, "first write survives");
        let r = fresh.handle(
            &mut ddr,
            &txn(Op::Read, DDR_BASE + 0x10, Width::Word, 0),
            Cycle(2),
        );
        assert_eq!(r.unwrap().data, 3);
    }

    #[test]
    fn journal_off_recovery_false_alarms_on_legitimate_writes() {
        // The ablation the journal exists to fix: persist only a seal-time
        // image, write normally, crash — recovery cannot tell legitimate
        // post-image writes from tampering.
        let (mut lcf, mut ddr) = make_journaled(1024);
        let stale = lcf.persistent_state().unwrap(); // journal empty: image only
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, DDR_BASE + 0x10, Width::Word, 9),
            Cycle(0),
        )
        .unwrap();
        let (_fresh, report) = reboot_and_recover(&lcf, &mut ddr, &stale);
        assert_eq!(
            report.outcome,
            RecoveryOutcome::Quarantined(TamperEvidence::RootMismatch { region: 0 }),
            "journal-off boot cannot explain its own legitimate writes"
        );
    }

    #[test]
    fn brownout_lattice_never_reaches_bypass() {
        assert_eq!(
            brownout_posture(Protection::CipherIntegrity),
            Protection::CipherOnly
        );
        // The lattice has no edge that drops the cipher.
        assert_eq!(
            brownout_posture(Protection::CipherOnly),
            Protection::CipherOnly
        );
        assert_eq!(brownout_posture(Protection::None), Protection::None);
        // Iterating the lattice from full protection can never lift the
        // cipher, no matter how long the overload lasts.
        let mut p = Protection::CipherIntegrity;
        for _ in 0..10 {
            p = brownout_posture(p);
            assert_ne!(p, Protection::None);
        }
    }

    #[test]
    fn brownout_skips_read_verify_but_keeps_the_cipher() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x10;
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0xFEED_BEEF),
            Cycle(0),
        )
        .unwrap();
        let full = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        lcf.set_brownout(true);
        let cheap = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(2))
            .unwrap();
        assert_eq!(cheap.data, 0xFEED_BEEF, "cipher still on: data intact");
        assert!(
            cheap.latency < full.latency,
            "brownout must be cheaper: {} vs {}",
            cheap.latency,
            full.latency
        );
        assert_eq!(lcf.stats().counter("lcf.brownout_skipped_verifies"), 1);
        // Ciphertext in DDR is still not plaintext.
        assert_ne!(ddr.snoop(0x10, 4), 0xFEED_BEEFu32.to_le_bytes());
    }

    #[test]
    fn writes_during_brownout_keep_the_tree_current() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x20;
        lcf.set_brownout(true);
        lcf.handle(
            &mut ddr,
            &txn(Op::Write, addr, Width::Word, 0x1234_5678),
            Cycle(0),
        )
        .unwrap();
        // Re-tighten: the very next verified read must pass (the write
        // updated the tree even while verification was off).
        lcf.set_brownout(false);
        let r = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap();
        assert_eq!(r.data, 0x1234_5678);
        assert_eq!(lcf.stats().counter("lcf.integrity_failures"), 0);
    }

    #[test]
    fn tamper_during_brownout_is_caught_after_exit() {
        let (mut lcf, mut ddr) = make_lcf();
        let addr = DDR_BASE + 0x40;
        lcf.set_brownout(true);
        // Attacker flips stored ciphertext while verification is off: the
        // brownout read serves it without noticing (the accepted risk)...
        ddr.tamper(0x40, &[0xFF; 16]);
        lcf.handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(0))
            .unwrap();
        assert_eq!(lcf.stats().counter("lcf.integrity_failures"), 0);
        // ...but the first verified read after re-tightening catches it.
        lcf.set_brownout(false);
        let err = lcf
            .handle(&mut ddr, &txn(Op::Read, addr, Width::Word, 0), Cycle(1))
            .unwrap_err();
        assert_eq!(err.0, Violation::IntegrityMismatch);
        assert_eq!(lcf.stats().counter("lcf.integrity_failures"), 1);
    }
}
