//! The Local Firewall: Security Builder + Firewall Interface.
//!
//! One [`LocalFirewall`] sits at each IP's bus interface. Its behaviour,
//! from the paper §IV-B-1:
//!
//! > "For a write operation, before reaching the bus all data are checked.
//! > If the security rules are respected the data can be sent to the bus.
//! > For a read operation, all data are checked before reaching the IP. …
//! > In case there is a violation of one of the security rules, the data is
//! > discarded."
//!
//! [`LocalFirewall::check`] is the Security Builder pass (Configuration
//! Memory lookup + checking modules) and returns a [`Decision`] carrying
//! the pass/discard verdict, the [`SbTiming`] latency the SoC must charge,
//! and the violation for the alert signals. The datapath gating itself
//! (the Firewall Interface) is performed by the SoC adapters, which either
//! forward the transaction or synthesize a discard response — this split
//! matches the LFCB/SB/FI structure in Figure 1.

use crate::alert::Alert;
use crate::checker::{check_all, CheckOutcome, Violation};
use crate::config::ConfigMemory;
use secbus_bus::Transaction;
use secbus_sim::{Cycle, Stats, TraceEvent, Tracer};

/// Identifies a firewall instance (the `firewall_id` signal of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FirewallId(pub u8);

/// Timing of the Security Builder pipeline.
///
/// Table II reports 12 cycles for the security-rules checking. The default
/// reproduces that constant; [`SbTiming::scaled`] models the paper's
/// observation that "the cost of firewalls is also related to the number
/// of security rules that must be monitored" for the S-1 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbTiming {
    /// Cycles to fetch the SP from the Configuration Memory.
    pub lookup_cycles: u64,
    /// Cycles for the checking modules to evaluate and aggregate.
    pub module_cycles: u64,
}

impl SbTiming {
    /// The paper's measured checking latency: 12 cycles total.
    pub const PAPER: SbTiming = SbTiming {
        lookup_cycles: 6,
        module_cycles: 6,
    };

    /// Rule-count-dependent timing: lookup grows with the depth of the
    /// policy CAM (log2 of the rule count), module time is fixed. At the
    /// case study's ~8 rules per firewall this evaluates to the paper's 12.
    pub fn scaled(total_rules: u32) -> SbTiming {
        let n = total_rules.max(1);
        let depth = u64::from(32 - (n - 1).leading_zeros().min(31));
        SbTiming {
            lookup_cycles: 3 + depth.max(1),
            module_cycles: 6,
        }
    }

    /// Total check latency in cycles.
    pub fn total(self) -> u64 {
        self.lookup_cycles + self.module_cycles
    }
}

impl Default for SbTiming {
    fn default() -> Self {
        SbTiming::PAPER
    }
}

/// A traffic budget for one IP: at most `max_requests` accesses per
/// `window_cycles`-cycle window. Requests beyond the budget are discarded
/// with [`Violation::RateLimited`] — a firewall-level answer to the
/// threat model's traffic-flooding DoS that RWA/ADF checks cannot catch
/// when the flood uses authorized addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Window length in cycles.
    pub window_cycles: u64,
    /// Requests admitted per window.
    pub max_requests: u32,
}

impl RateLimit {
    /// Construct a rate limit.
    ///
    /// # Panics
    /// Panics on a zero window or zero budget.
    pub fn new(window_cycles: u64, max_requests: u32) -> Self {
        assert!(window_cycles > 0, "rate-limit window must be positive");
        assert!(max_requests > 0, "rate-limit budget must be positive");
        RateLimit {
            window_cycles,
            max_requests,
        }
    }
}

/// The Firewall Interface's verdict on one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Whether the data may pass (to the bus, or to the IP).
    pub allowed: bool,
    /// Cycles the check occupied the interface.
    pub latency: u64,
    /// The violated rule, when `allowed` is false.
    pub violation: Option<Violation>,
}

/// A Local Firewall instance.
#[derive(Debug)]
pub struct LocalFirewall {
    id: FirewallId,
    label: String,
    config: ConfigMemory,
    timing: SbTiming,
    blocked: bool,
    rate_limit: Option<RateLimit>,
    window_start: u64,
    window_count: u32,
    stats: Stats,
    pending_alerts: Vec<Alert>,
    /// Last-hit policy index for [`ConfigMemory::lookup_hinted`].
    last_policy: usize,
    /// Observability spine, if attached.
    tracer: Option<Tracer>,
}

impl LocalFirewall {
    /// Create a firewall with the paper's fixed 12-cycle check timing.
    pub fn new(id: FirewallId, label: impl Into<String>, config: ConfigMemory) -> Self {
        LocalFirewall {
            id,
            label: label.into(),
            config,
            timing: SbTiming::PAPER,
            blocked: false,
            rate_limit: None,
            window_start: 0,
            window_count: 0,
            stats: Stats::new(),
            pending_alerts: Vec::new(),
            last_policy: 0,
            tracer: None,
        }
    }

    /// Attach the observability spine; the firewall records a
    /// [`TraceEvent::FwVerdict`] per check and a [`TraceEvent::Alert`]
    /// per alert it raises.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attach a traffic budget (DoS mitigation extension).
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Override the Security Builder timing (ablation benches).
    pub fn with_timing(mut self, timing: SbTiming) -> Self {
        self.timing = timing;
        self
    }

    /// This firewall's identifier.
    pub fn id(&self) -> FirewallId {
        self.id
    }

    /// Display label ("LF cpu0" etc.).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The active Security Builder timing.
    pub fn timing(&self) -> SbTiming {
        self.timing
    }

    /// Run the Security Builder over one transaction.
    ///
    /// Used on both datapath directions: outbound (IP → bus, checked
    /// "before reaching the bus") and inbound (bus → IP, checked "before
    /// reaching the IP").
    pub fn check(&mut self, txn: &Transaction, now: Cycle) -> Decision {
        self.stats.incr("fw.checked");
        // Parity-scrub the Configuration Memory ahead of the lookup: a
        // storage upset must never be *enforced*. Repairs re-fetch from
        // the golden image and raise an informational alert (the monitor
        // does not hold environment faults against the IP).
        let repaired = self.config.scrub();
        if repaired > 0 {
            self.stats.add("fw.parity_repairs", repaired as u64);
            self.raise_alert(txn, Violation::ConfigCorruption, now);
        }
        if self.blocked {
            return self.deny(txn, Violation::IpBlocked, 1, now);
        }
        if let Some(limit) = self.rate_limit {
            let window = now.get() / limit.window_cycles;
            if window != self.window_start {
                self.window_start = window;
                self.window_count = 0;
            }
            self.window_count += 1;
            if self.window_count > limit.max_requests {
                // Over budget: discarded cheaply, before the SB pipeline.
                return self.deny(txn, Violation::RateLimited, 1, now);
            }
        }
        let latency = self.timing.total();
        let outcome = match self.config.lookup_hinted(txn.addr, &mut self.last_policy) {
            None => CheckOutcome::Fail(Violation::NoPolicy),
            Some(policy) => check_all(policy, txn),
        };
        match outcome {
            CheckOutcome::Pass => {
                self.stats.incr("fw.passed");
                if let Some(t) = &self.tracer {
                    t.record(
                        now,
                        TraceEvent::FwVerdict {
                            txn: txn.id.0,
                            firewall: self.id.0,
                            passed: true,
                            latency,
                        },
                    );
                }
                Decision {
                    allowed: true,
                    latency,
                    violation: None,
                }
            }
            CheckOutcome::Fail(v) => self.deny(txn, v, latency, now),
        }
    }

    fn deny(&mut self, txn: &Transaction, v: Violation, latency: u64, now: Cycle) -> Decision {
        self.stats.incr("fw.discarded");
        // Precomputed full key: `deny` is on the per-transaction hot path.
        self.stats.incr(v.fw_key());
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::FwVerdict {
                    txn: txn.id.0,
                    firewall: self.id.0,
                    passed: false,
                    latency,
                },
            );
            t.record(
                now,
                TraceEvent::Alert {
                    firewall: self.id.0,
                    violation: v.mnemonic(),
                },
            );
        }
        self.pending_alerts.push(Alert {
            firewall: self.id,
            violation: v,
            txn: *txn,
            at: now,
        });
        Decision {
            allowed: false,
            latency,
            violation: Some(v),
        }
    }

    /// Record a violation detected *outside* the Security Builder pipeline
    /// (the Integrity Core's hash-tree mismatch is the one caller): counts
    /// it, raises the alert, and reports the discard decision.
    pub fn note_violation(&mut self, txn: &Transaction, v: Violation, now: Cycle) -> Decision {
        self.deny(txn, v, 0, now)
    }

    /// Raise an alert without discarding anything: informational events
    /// (parity repairs, watchdog cancellations, degraded serves) that must
    /// reach the monitor's audit trail but are not themselves discards.
    pub fn raise_alert(&mut self, txn: &Transaction, v: Violation, now: Cycle) {
        self.stats.incr(v.fw_key());
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::Alert {
                    firewall: self.id.0,
                    violation: v.mnemonic(),
                },
            );
        }
        self.pending_alerts.push(Alert {
            firewall: self.id,
            violation: v,
            txn: *txn,
            at: now,
        });
    }

    /// Administratively block the IP behind this firewall (containment
    /// escalation from the monitor). Every subsequent access is discarded.
    pub fn block(&mut self) {
        self.blocked = true;
    }

    /// Lift an administrative block (e.g. after reconfiguration).
    pub fn unblock(&mut self) {
        self.blocked = false;
    }

    /// Whether the IP is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Take the alerts raised since the last drain (the SoC routes them to
    /// the monitor each cycle).
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// Whether alerts are waiting to be drained (event-core skip check;
    /// queues are empty between ticks, but the invariant is verified
    /// rather than assumed).
    pub fn has_pending_alerts(&self) -> bool {
        !self.pending_alerts.is_empty()
    }

    /// The Configuration Memory (for the area model and reports).
    pub fn config(&self) -> &ConfigMemory {
        &self.config
    }

    /// Mutable Configuration Memory access (reconfiguration only).
    pub fn config_mut(&mut self) -> &mut ConfigMemory {
        &mut self.config
    }

    /// Firewall statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdfSet, Rwa, SecurityPolicy};
    use secbus_bus::{AddrRange, MasterId, Op, TxnId, Width};

    fn fw() -> LocalFirewall {
        let config = ConfigMemory::with_policies(vec![
            SecurityPolicy::internal(
                1,
                AddrRange::new(0x1000, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
            ),
            SecurityPolicy::internal(
                2,
                AddrRange::new(0x2000, 0x100),
                Rwa::ReadOnly,
                AdfSet::WORD_ONLY,
            ),
        ])
        .unwrap();
        LocalFirewall::new(FirewallId(0), "LF test", config)
    }

    fn txn(op: Op, addr: u32, width: Width) -> Transaction {
        Transaction {
            id: TxnId(1),
            master: MasterId(0),
            op,
            addr,
            width,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn authorized_access_passes_with_paper_latency() {
        let mut f = fw();
        let d = f.check(&txn(Op::Write, 0x1004, Width::Word), Cycle(0));
        assert!(d.allowed);
        assert_eq!(d.latency, 12, "Table II: checking = 12 cycles");
        assert_eq!(d.violation, None);
        assert_eq!(f.stats().counter("fw.passed"), 1);
        assert!(f.drain_alerts().is_empty());
    }

    #[test]
    fn uncovered_address_is_denied_by_default() {
        let mut f = fw();
        let d = f.check(&txn(Op::Read, 0x9000, Width::Word), Cycle(3));
        assert!(!d.allowed);
        assert_eq!(d.violation, Some(Violation::NoPolicy));
        let alerts = f.drain_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].at, Cycle(3));
        assert_eq!(alerts[0].firewall, FirewallId(0));
    }

    #[test]
    fn readonly_region_rejects_writes() {
        let mut f = fw();
        let d = f.check(&txn(Op::Write, 0x2000, Width::Word), Cycle(0));
        assert_eq!(d.violation, Some(Violation::UnauthorizedWrite));
        assert_eq!(f.stats().counter("fw.violation.unauth_write"), 1);
    }

    #[test]
    fn format_violation_detected() {
        let mut f = fw();
        let d = f.check(&txn(Op::Read, 0x2000, Width::Byte), Cycle(0));
        assert_eq!(d.violation, Some(Violation::FormatViolation));
    }

    #[test]
    fn alerts_accumulate_until_drained() {
        let mut f = fw();
        f.check(&txn(Op::Write, 0x2000, Width::Word), Cycle(1));
        f.check(&txn(Op::Read, 0x9000, Width::Word), Cycle(2));
        let alerts = f.drain_alerts();
        assert_eq!(alerts.len(), 2);
        assert!(f.drain_alerts().is_empty());
    }

    #[test]
    fn blocked_ip_is_denied_everything() {
        let mut f = fw();
        f.block();
        assert!(f.is_blocked());
        let d = f.check(&txn(Op::Read, 0x1000, Width::Word), Cycle(0));
        assert_eq!(d.violation, Some(Violation::IpBlocked));
        assert_eq!(d.latency, 1, "block short-circuits the SB pipeline");
        f.unblock();
        assert!(
            f.check(&txn(Op::Read, 0x1000, Width::Word), Cycle(1))
                .allowed
        );
    }

    #[test]
    fn paper_timing_is_twelve_cycles() {
        assert_eq!(SbTiming::PAPER.total(), 12);
        assert_eq!(SbTiming::default().total(), 12);
    }

    #[test]
    fn scaled_timing_grows_logarithmically() {
        let t1 = SbTiming::scaled(1).total();
        let t8 = SbTiming::scaled(8).total();
        let t64 = SbTiming::scaled(64).total();
        assert_eq!(t8, 12, "case-study rule count reproduces the paper");
        assert!(t1 <= t8 && t8 <= t64);
        assert!(t64 - t8 <= 6, "growth is logarithmic, not linear");
    }

    #[test]
    fn rate_limit_caps_requests_per_window() {
        let mut f = fw().with_rate_limit(RateLimit::new(100, 3));
        let t = txn(Op::Write, 0x1000, Width::Word);
        // First three in the window pass the budget (and the policy).
        for i in 0..3 {
            assert!(f.check(&t, Cycle(i)).allowed, "request {i}");
        }
        // Fourth is rate-limited.
        let d = f.check(&t, Cycle(3));
        assert_eq!(d.violation, Some(Violation::RateLimited));
        assert_eq!(d.latency, 1, "rejected before the SB pipeline");
        // A new window resets the budget.
        assert!(f.check(&t, Cycle(100)).allowed);
        assert_eq!(f.stats().counter("fw.violation.rate_limited"), 1);
    }

    #[test]
    fn rate_limit_counts_denied_requests_too() {
        // A flood of violating requests still burns the budget: the rogue
        // cannot alternate junk and legitimate traffic to evade the cap.
        let mut f = fw().with_rate_limit(RateLimit::new(100, 2));
        let junk = txn(Op::Write, 0x9000, Width::Word);
        let good = txn(Op::Write, 0x1000, Width::Word);
        assert!(!f.check(&junk, Cycle(0)).allowed);
        assert!(!f.check(&junk, Cycle(1)).allowed);
        let d = f.check(&good, Cycle(2));
        assert_eq!(d.violation, Some(Violation::RateLimited));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        RateLimit::new(0, 1);
    }

    #[test]
    fn corrupted_policy_is_repaired_before_enforcement() {
        let mut f = fw();
        // Upset the RWA code of the read-only 0x2000 policy (entry 1):
        // without the scrub, a write there might be wrongly admitted.
        assert!(f.config_mut().corrupt_entry_bit(1, 84));
        let d = f.check(&txn(Op::Write, 0x2000, Width::Word), Cycle(5));
        assert_eq!(
            d.violation,
            Some(Violation::UnauthorizedWrite),
            "enforcement sees the repaired entry, not the corrupted one"
        );
        assert_eq!(f.stats().counter("fw.parity_repairs"), 1);
        let alerts = f.drain_alerts();
        assert_eq!(alerts.len(), 2, "config-corruption alert + the denial");
        assert_eq!(alerts[0].violation, Violation::ConfigCorruption);
        // The repair sticks: the next check scrubs nothing.
        f.check(&txn(Op::Read, 0x2000, Width::Word), Cycle(6));
        assert_eq!(f.stats().counter("fw.parity_repairs"), 1);
    }

    #[test]
    fn reconfiguration_changes_decisions() {
        use crate::policy::SecurityPolicy;
        let mut f = fw();
        let t = txn(Op::Write, 0x2000, Width::Word);
        assert!(!f.check(&t, Cycle(0)).allowed);
        f.config_mut()
            .swap(vec![SecurityPolicy::internal(
                9,
                AddrRange::new(0x2000, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )])
            .unwrap();
        assert!(f.check(&t, Cycle(1)).allowed);
        assert_eq!(f.config().generation(), 1);
    }
}
