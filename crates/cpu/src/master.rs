//! The interface between an IP and whatever sits between it and the bus.
//!
//! An IP (processor, DMA, dedicated IP) only ever sees [`MasterAccess`]:
//! "issue a request, poll for a response". In an unprotected system the SoC
//! wires this straight to the shared bus; in the protected system a Local
//! Firewall implements the same trait and interposes its checks. The IP
//! cannot tell the difference — the paper's requirement that the security
//! layer sit *above* the communication protocol without modifying it.

use secbus_bus::{Op, Response, TxnId, Width};
use secbus_sim::{Cycle, Stats, Wake};

/// What an IP can do with its bus connection.
pub trait MasterAccess {
    /// Issue a request; returns the transaction id for correlation.
    fn issue(&mut self, op: Op, addr: u32, width: Width, data: u32, burst: u16) -> TxnId;

    /// Poll for the next completed response, if any.
    fn poll(&mut self) -> Option<Response>;
}

/// A device that drives a master port, ticked once per cycle.
pub trait BusMaster: Send {
    /// Downcast support, so the SoC can hand typed references back to
    /// callers (e.g. reading a core's registers after a run).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Advance one cycle; `mem` is the IP's view of the interconnect.
    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle);

    /// Whether the device has finished all the work it will ever do.
    fn halted(&self) -> bool {
        false
    }

    /// Declare when the next `tick` can change state (the event-driven
    /// core's skip seam; see `secbus_sim::Wake` for the purity
    /// contract). The default is the conservative `Wake::Now` — a
    /// device that does not implement this is simply ticked every
    /// cycle, exactly as under the stepped core.
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::Now
    }

    /// Stable display name for traces and reports.
    fn label(&self) -> &str;

    /// The device's own statistics.
    fn stats(&self) -> &Stats;
}

/// A direct, zero-latency-adapter test double for [`MasterAccess`]: every
/// request completes against a flat byte memory and is delivered on the
/// next poll. Used by unit tests in this crate; integration-level timing
/// comes from `secbus-soc`.
#[derive(Debug, Default)]
pub struct InstantMem {
    /// Backing bytes.
    pub bytes: Vec<u8>,
    next_id: u64,
    pending: std::collections::VecDeque<Response>,
    /// Issued transactions, for assertions.
    pub issued: Vec<(Op, u32, Width, u32)>,
}

impl InstantMem {
    /// A zeroed instant memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        InstantMem {
            bytes: vec![0; size],
            ..Default::default()
        }
    }

    /// Load bytes at an offset.
    pub fn load(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Read a little-endian word (test helper).
    pub fn word(&self, addr: usize) -> u32 {
        u32::from_le_bytes(self.bytes[addr..addr + 4].try_into().unwrap())
    }
}

impl MasterAccess for InstantMem {
    fn issue(&mut self, op: Op, addr: u32, width: Width, data: u32, burst: u16) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.issued.push((op, addr, width, data));
        let a = addr as usize;
        let result = if a + width.bytes() as usize * burst.max(1) as usize <= self.bytes.len() {
            Ok(())
        } else {
            Err(secbus_bus::BusError::Decode)
        };
        let mut read_back = 0;
        if result.is_ok() {
            match op {
                Op::Read => {
                    let mut raw = [0u8; 4];
                    raw[..width.bytes() as usize]
                        .copy_from_slice(&self.bytes[a..a + width.bytes() as usize]);
                    read_back = u32::from_le_bytes(raw);
                }
                Op::Write => {
                    let le = data.to_le_bytes();
                    self.bytes[a..a + width.bytes() as usize]
                        .copy_from_slice(&le[..width.bytes() as usize]);
                }
            }
        }
        self.pending.push_back(Response {
            txn: id,
            data: read_back,
            result,
            completed_at: Cycle::ZERO,
        });
        id
    }

    fn poll(&mut self) -> Option<Response> {
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_mem_write_then_read() {
        let mut m = InstantMem::new(64);
        m.issue(Op::Write, 8, Width::Word, 0x1234_5678, 1);
        assert!(m.poll().unwrap().is_ok());
        m.issue(Op::Read, 8, Width::Half, 0, 1);
        assert_eq!(m.poll().unwrap().data, 0x5678);
        assert_eq!(m.word(8), 0x1234_5678);
    }

    #[test]
    fn instant_mem_out_of_range_errors() {
        let mut m = InstantMem::new(4);
        m.issue(Op::Read, 4, Width::Word, 0, 1);
        assert!(!m.poll().unwrap().is_ok());
    }

    #[test]
    fn responses_arrive_in_order() {
        let mut m = InstantMem::new(16);
        let a = m.issue(Op::Write, 0, Width::Word, 1, 1);
        let b = m.issue(Op::Write, 4, Width::Word, 2, 1);
        assert_eq!(m.poll().unwrap().txn, a);
        assert_eq!(m.poll().unwrap().txn, b);
        assert!(m.poll().is_none());
    }
}
