//! A two-pass assembler for MB32.
//!
//! Enough surface to write the example workloads as readable source:
//! labels, decimal/hex immediates, `lw r1, 4(r2)` addressing, branch
//! targets by label, `.word`/`.space` data directives and the `li`/`mv`/`j`
//! pseudo-instructions. Errors carry the 1-based source line.
//!
//! ```
//! use secbus_cpu::assemble;
//! let words = assemble(r"
//!     li   r1, 0x44A00000   ; IP register base
//!     addi r2, r0, 7
//!     sw   r2, 0(r1)
//!     halt
//! ").unwrap();
//! assert_eq!(words.len(), 5); // li expands to lui+ori
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, Cond, Instr, MemSize, Reg};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// One source item after pass 1.
enum Item {
    Instr {
        line: usize,
        mnemonic: String,
        args: Vec<String>,
    },
    Word(u32),
}

/// Assemble MB32 source into instruction words.
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut consts: HashMap<String, i64> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();

    // Pass 1: strip comments, record labels, expand pseudo sizes.
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err(line_no, format!("bad label {label:?}"));
            }
            if labels.insert(label.to_owned(), items.len()).is_some() {
                return err(line_no, format!("duplicate label {label:?}"));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, args_str) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m, a),
            None => (rest, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let args: Vec<String> = args_str
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();

        match mnemonic.as_str() {
            ".equ" => {
                // `.equ NAME, value` — a named constant usable wherever an
                // immediate is accepted.
                if args.len() != 2 {
                    return err(line_no, ".equ takes NAME, value");
                }
                let name = args[0].clone();
                if !name.chars().all(|c| c.is_alphanumeric() || c == '_')
                    || name.chars().next().is_none_or(|c| c.is_ascii_digit())
                {
                    return err(line_no, format!("bad constant name {name:?}"));
                }
                let value = parse_imm(&args[1]).ok_or(AsmError {
                    line: line_no,
                    msg: format!("bad .equ value {:?}", args[1]),
                })?;
                if consts.insert(name.clone(), value).is_some() {
                    return err(line_no, format!("duplicate constant {name:?}"));
                }
            }
            ".word" => {
                for a in &args {
                    let v = parse_imm(a).ok_or(AsmError {
                        line: line_no,
                        msg: format!("bad .word value {a:?}"),
                    })?;
                    items.push(Item::Word(v as u32));
                }
            }
            ".space" => {
                let n = args
                    .first()
                    .and_then(|a| parse_imm(a))
                    .filter(|&n| n >= 0 && n % 4 == 0)
                    .ok_or(AsmError {
                        line: line_no,
                        msg: ".space needs a non-negative multiple of 4".into(),
                    })?;
                for _ in 0..(n / 4) {
                    items.push(Item::Word(0));
                }
            }
            "li" => {
                // Always two words (lui+ori) so label offsets are stable.
                if args.len() != 2 {
                    return err(line_no, "li takes rd, imm32");
                }
                items.push(Item::Instr {
                    line: line_no,
                    mnemonic: "li_hi".into(),
                    args: args.clone(),
                });
                items.push(Item::Instr {
                    line: line_no,
                    mnemonic: "li_lo".into(),
                    args,
                });
            }
            _ => items.push(Item::Instr {
                line: line_no,
                mnemonic,
                args,
            }),
        }
    }

    // Pass 2: encode, substituting named constants into immediate slots.
    let mut out = Vec::with_capacity(items.len());
    for (pc, item) in items.iter().enumerate() {
        match item {
            Item::Word(w) => out.push(*w),
            Item::Instr {
                line,
                mnemonic,
                args,
            } => {
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match consts.get(a.trim()) {
                        Some(v) => v.to_string(),
                        None => a.clone(),
                    })
                    .collect();
                let instr = encode_one(*line, mnemonic, &args, pc, &labels)?;
                out.push(instr.encode());
            }
        }
    }
    Ok(out)
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let body = s
        .strip_prefix('r')
        .or_else(|| s.strip_prefix('R'))
        .ok_or(AsmError {
            line,
            msg: format!("expected register, got {s:?}"),
        })?;
    match body.parse::<u8>() {
        Ok(n) if n < 16 => Ok(Reg(n)),
        _ => err(line, format!("bad register {s:?}")),
    }
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn imm16(line: usize, s: &str) -> Result<i16, AsmError> {
    let v = parse_imm(s).ok_or(AsmError {
        line,
        msg: format!("bad immediate {s:?}"),
    })?;
    // Accept both signed (-32768..=32767) and unsigned (..=65535) spellings.
    if (-(1 << 15)..(1 << 16)).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        err(line, format!("immediate {v} does not fit in 16 bits"))
    }
}

/// Parse `off(reg)` memory operands.
fn parse_mem(line: usize, s: &str) -> Result<(i16, Reg), AsmError> {
    let open = s.find('(').ok_or(AsmError {
        line,
        msg: format!("expected off(reg), got {s:?}"),
    })?;
    if !s.ends_with(')') {
        return err(line, format!("expected off(reg), got {s:?}"));
    }
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        imm16(line, off_str)?
    };
    let reg = parse_reg(line, s[open + 1..s.len() - 1].trim())?;
    Ok((off, reg))
}

fn branch_target(
    line: usize,
    s: &str,
    pc: usize,
    labels: &HashMap<String, usize>,
) -> Result<i16, AsmError> {
    let target = if let Some(&t) = labels.get(s) {
        t as i64
    } else if let Some(v) = parse_imm(s) {
        return i16::try_from(v).map_err(|_| AsmError {
            line,
            msg: format!("branch offset {v} out of range"),
        });
    } else {
        return err(line, format!("unknown label {s:?}"));
    };
    let off = target - (pc as i64 + 1);
    i16::try_from(off).map_err(|_| AsmError {
        line,
        msg: format!("branch to {s:?} out of range"),
    })
}

fn encode_one(
    line: usize,
    mnemonic: &str,
    args: &[String],
    pc: usize,
    labels: &HashMap<String, usize>,
) -> Result<Instr, AsmError> {
    let argc = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("{mnemonic} takes {n} operand(s), got {}", args.len()),
            )
        }
    };

    let alu3 = |op: AluOp, args: &[String]| -> Result<Instr, AsmError> {
        Ok(Instr::Alu {
            op,
            rd: parse_reg(line, &args[0])?,
            ra: parse_reg(line, &args[1])?,
            rb: parse_reg(line, &args[2])?,
        })
    };
    let alui = |op: AluOp, args: &[String]| -> Result<Instr, AsmError> {
        Ok(Instr::AluImm {
            op,
            rd: parse_reg(line, &args[0])?,
            ra: parse_reg(line, &args[1])?,
            imm: imm16(line, &args[2])?,
        })
    };
    let load = |size: MemSize, signed: bool, args: &[String]| -> Result<Instr, AsmError> {
        let (off, ra) = parse_mem(line, &args[1])?;
        Ok(Instr::Load {
            size,
            signed,
            rd: parse_reg(line, &args[0])?,
            ra,
            off,
        })
    };
    let store = |size: MemSize, args: &[String]| -> Result<Instr, AsmError> {
        let (off, ra) = parse_mem(line, &args[1])?;
        Ok(Instr::Store {
            size,
            rb: parse_reg(line, &args[0])?,
            ra,
            off,
        })
    };
    let branch = |cond: Cond, args: &[String]| -> Result<Instr, AsmError> {
        Ok(Instr::Branch {
            cond,
            ra: parse_reg(line, &args[0])?,
            rb: parse_reg(line, &args[1])?,
            off: branch_target(line, &args[2], pc, labels)?,
        })
    };

    match mnemonic {
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "mul" | "slt" | "sltu" => {
            argc(3)?;
            alu3(alu_by_name(mnemonic), args)
        }
        "addi" | "subi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "muli" | "slti"
        | "sltui" => {
            argc(3)?;
            alui(alu_by_name(mnemonic.trim_end_matches('i')), args)
        }
        "lui" => {
            argc(2)?;
            let v = parse_imm(&args[1])
                .filter(|&v| (0..65536).contains(&v))
                .ok_or(AsmError {
                    line,
                    msg: format!("bad lui immediate {:?}", args[1]),
                })?;
            Ok(Instr::Lui {
                rd: parse_reg(line, &args[0])?,
                imm: v as u16,
            })
        }
        "li_hi" => {
            let v = parse_imm(&args[1])
                .filter(|&v| {
                    (0..=u32::MAX as i64).contains(&v) || (i32::MIN as i64..0).contains(&v)
                })
                .ok_or(AsmError {
                    line,
                    msg: format!("bad li immediate {:?}", args[1]),
                })? as u32;
            Ok(Instr::Lui {
                rd: parse_reg(line, &args[0])?,
                imm: (v >> 16) as u16,
            })
        }
        "li_lo" => {
            let v = parse_imm(&args[1]).unwrap_or(0) as u32;
            let rd = parse_reg(line, &args[0])?;
            Ok(Instr::AluImm {
                op: AluOp::Or,
                rd,
                ra: rd,
                imm: (v & 0xffff) as u16 as i16,
            })
        }
        "mv" => {
            argc(2)?;
            Ok(Instr::AluImm {
                op: AluOp::Add,
                rd: parse_reg(line, &args[0])?,
                ra: parse_reg(line, &args[1])?,
                imm: 0,
            })
        }
        "lb" => {
            argc(2)?;
            load(MemSize::Byte, true, args)
        }
        "lbu" => {
            argc(2)?;
            load(MemSize::Byte, false, args)
        }
        "lh" => {
            argc(2)?;
            load(MemSize::Half, true, args)
        }
        "lhu" => {
            argc(2)?;
            load(MemSize::Half, false, args)
        }
        "lw" => {
            argc(2)?;
            load(MemSize::Word, true, args)
        }
        "sb" => {
            argc(2)?;
            store(MemSize::Byte, args)
        }
        "sh" => {
            argc(2)?;
            store(MemSize::Half, args)
        }
        "sw" => {
            argc(2)?;
            store(MemSize::Word, args)
        }
        "beq" => {
            argc(3)?;
            branch(Cond::Eq, args)
        }
        "bne" => {
            argc(3)?;
            branch(Cond::Ne, args)
        }
        "blt" => {
            argc(3)?;
            branch(Cond::Lt, args)
        }
        "bge" => {
            argc(3)?;
            branch(Cond::Ge, args)
        }
        // Pseudo-branches: swap the operands of blt/bge.
        "bgt" => {
            argc(3)?;
            let swapped = vec![args[1].clone(), args[0].clone(), args[2].clone()];
            branch(Cond::Lt, &swapped)
        }
        "ble" => {
            argc(3)?;
            let swapped = vec![args[1].clone(), args[0].clone(), args[2].clone()];
            branch(Cond::Ge, &swapped)
        }
        "jal" => {
            argc(2)?;
            Ok(Instr::Jal {
                rd: parse_reg(line, &args[0])?,
                off: branch_target(line, &args[1], pc, labels)?,
            })
        }
        "j" | "b" => {
            argc(1)?;
            Ok(Instr::Jal {
                rd: Reg::ZERO,
                off: branch_target(line, &args[0], pc, labels)?,
            })
        }
        "jalr" => {
            argc(2)?;
            Ok(Instr::Jalr {
                rd: parse_reg(line, &args[0])?,
                ra: parse_reg(line, &args[1])?,
            })
        }
        "halt" => {
            argc(0)?;
            Ok(Instr::Halt)
        }
        "nop" => {
            argc(0)?;
            Ok(Instr::Nop)
        }
        other => err(line, format!("unknown mnemonic {other:?}")),
    }
}

fn alu_by_name(name: &str) -> AluOp {
    match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "mul" => AluOp::Mul,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => unreachable!("alu_by_name called with {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn decode_all(words: &[u32]) -> Vec<Instr> {
        words.iter().map(|&w| Instr::decode(w).unwrap()).collect()
    }

    #[test]
    fn basic_program() {
        let words = assemble(
            r"
            start:
                addi r1, r0, 10
                add  r2, r1, r1
                halt
            ",
        )
        .unwrap();
        assert_eq!(
            decode_all(&words),
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    ra: Reg(0),
                    imm: 10
                },
                Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg(2),
                    ra: Reg(1),
                    rb: Reg(1)
                },
                Instr::Halt,
            ]
        );
    }

    #[test]
    fn loads_stores_and_offsets() {
        let words = assemble("lw r1, 4(r2)\nsw r1, -8(r3)\nlbu r4, (r5)").unwrap();
        assert_eq!(
            decode_all(&words),
            vec![
                Instr::Load {
                    size: MemSize::Word,
                    signed: true,
                    rd: Reg(1),
                    ra: Reg(2),
                    off: 4
                },
                Instr::Store {
                    size: MemSize::Word,
                    rb: Reg(1),
                    ra: Reg(3),
                    off: -8
                },
                Instr::Load {
                    size: MemSize::Byte,
                    signed: false,
                    rd: Reg(4),
                    ra: Reg(5),
                    off: 0
                },
            ]
        );
    }

    #[test]
    fn branches_resolve_labels_forward_and_back() {
        let words = assemble(
            r"
            loop:
                addi r1, r1, 1
                bne  r1, r2, loop
                beq  r0, r0, end
                nop
            end:
                halt
            ",
        )
        .unwrap();
        let instrs = decode_all(&words);
        // bne at pc=1 targets 0: off = 0 - 2 = -2
        assert_eq!(
            instrs[1],
            Instr::Branch {
                cond: Cond::Ne,
                ra: Reg(1),
                rb: Reg(2),
                off: -2
            }
        );
        // beq at pc=2 targets 4: off = 4 - 3 = 1
        assert_eq!(
            instrs[2],
            Instr::Branch {
                cond: Cond::Eq,
                ra: Reg(0),
                rb: Reg(0),
                off: 1
            }
        );
    }

    #[test]
    fn li_expands_to_two_words() {
        let words = assemble("li r1, 0x44A01234\nhalt").unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(
            decode_all(&words)[..2],
            [
                Instr::Lui {
                    rd: Reg(1),
                    imm: 0x44A0
                },
                Instr::AluImm {
                    op: AluOp::Or,
                    rd: Reg(1),
                    ra: Reg(1),
                    imm: 0x1234
                },
            ]
        );
    }

    #[test]
    fn li_keeps_label_arithmetic_stable() {
        // A branch across an li must account for its two words.
        let words = assemble(
            r"
                beq r0, r0, done
                li  r1, 0x12345678
            done:
                halt
            ",
        )
        .unwrap();
        assert_eq!(
            decode_all(&words)[0],
            Instr::Branch {
                cond: Cond::Eq,
                ra: Reg(0),
                rb: Reg(0),
                off: 2
            }
        );
    }

    #[test]
    fn word_and_space_directives() {
        let words = assemble(".word 0xdeadbeef, 7\n.space 8\nhalt").unwrap();
        assert_eq!(words[0], 0xdead_beef);
        assert_eq!(words[1], 7);
        assert_eq!(words[2], 0);
        assert_eq!(words[3], 0);
        assert_eq!(words.len(), 5);
    }

    #[test]
    fn pseudo_mv_and_j() {
        let words = assemble("mv r3, r7\nj next\nnop\nnext: halt").unwrap();
        let instrs = decode_all(&words);
        assert_eq!(
            instrs[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(3),
                ra: Reg(7),
                imm: 0
            }
        );
        assert_eq!(instrs[1], Instr::Jal { rd: Reg(0), off: 1 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let words = assemble("; full comment\n  # another\n halt ; trailing\n\n").unwrap();
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn equ_constants_substitute_into_immediates() {
        let words = assemble(
            r"
            .equ BUFSZ, 48
            .equ NEG, -5
                addi r1, r0, BUFSZ
                addi r2, r0, NEG
                halt
            ",
        )
        .unwrap();
        assert_eq!(
            decode_all(&words)[..2],
            [
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    ra: Reg(0),
                    imm: 48
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    ra: Reg(0),
                    imm: -5
                },
            ]
        );
    }

    #[test]
    fn equ_errors() {
        assert!(assemble(".equ 1BAD, 3").is_err());
        assert!(assemble(
            ".equ A, 1
.equ A, 2"
        )
        .is_err());
        assert!(assemble(".equ A, zz").is_err());
    }

    #[test]
    fn bgt_ble_swap_operands() {
        let words = assemble(
            "loop: bgt r1, r2, loop
ble r1, r2, loop
halt",
        )
        .unwrap();
        let instrs = decode_all(&words);
        assert_eq!(
            instrs[0],
            Instr::Branch {
                cond: Cond::Lt,
                ra: Reg(2),
                rb: Reg(1),
                off: -1
            }
        );
        assert_eq!(
            instrs[1],
            Instr::Branch {
                cond: Cond::Ge,
                ra: Reg(2),
                rb: Reg(1),
                off: -2
            }
        );
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("nop\nbadop r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("badop"));
    }

    #[test]
    fn error_on_unknown_label() {
        let e = assemble("beq r0, r0, nowhere").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn error_on_duplicate_label() {
        let e = assemble("a: nop\na: nop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn error_on_bad_register() {
        assert!(assemble("addi r16, r0, 1").is_err());
        assert!(assemble("addi x1, r0, 1").is_err());
    }

    #[test]
    fn error_on_oversize_immediate() {
        assert!(assemble("addi r1, r0, 70000").is_err());
        assert!(assemble("addi r1, r0, 65535").is_ok()); // unsigned spelling ok
    }

    #[test]
    fn error_on_wrong_arity() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.msg.contains("3 operand"));
    }
}
