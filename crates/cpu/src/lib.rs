//! # secbus-cpu — the MB32 soft core and traffic-generating IPs
//!
//! The paper's case study contains "3 MicroBlaze softcore microprocessors
//! … and one dedicated IP". Firewalls never look inside a processor; they
//! see its *bus traffic* — addresses, access widths, read/write direction,
//! timing. So the reproduction needs processors that generate real,
//! program-driven traffic, not a cycle-exact MicroBlaze. MB32 is a compact
//! 32-bit RISC (16 registers, load/store, byte/half/word accesses — the
//! width variety matters because the paper's ADF checks gate on it) with a
//! two-pass assembler so example workloads are written as source, not hex.
//!
//! * [`isa`] — instruction set, binary encoding and decoding.
//! * [`asm`] — the assembler.
//! * [`core`] — the MB32 interpreter as a bus master.
//! * [`traffic`] — non-programmable masters: a DMA engine, a streaming
//!   dedicated IP and a configurable synthetic master used by the
//!   parameter-sweep benches.
//! * [`master`] — the [`BusMaster`]/[`MasterAccess`] traits through which
//!   every IP reaches the bus; the SoC inserts a Local Firewall behind
//!   this interface without the IP noticing (the paper's "the application
//!   designer does not have to deal with the security mechanisms").

pub mod asm;
pub mod cache;
pub mod core;
pub mod disasm;
pub mod isa;
pub mod master;
pub mod traffic;

pub use crate::core::Mb32Core;
pub use asm::{assemble, AsmError};
pub use cache::{CacheConfig, CachedMaster};
pub use disasm::{disasm, disasm_listing};
pub use isa::{Instr, Reg};
pub use master::{BusMaster, MasterAccess};
pub use traffic::{
    DmaEngine, OpenLoopConfig, OpenLoopMaster, StreamIp, SyntheticConfig, SyntheticMaster,
};
