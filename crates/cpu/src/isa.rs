//! The MB32 instruction set and its 32-bit binary encoding.
//!
//! Encoding layout (big fields first):
//!
//! ```text
//! R-type:  [31:26 op][25:22 rd][21:18 ra][17:14 rb][13:0  zero]
//! I-type:  [31:26 op][25:22 rd][21:18 ra][15:0  imm16]
//! branch:  [31:26 op][25:22 ra][21:18 rb][15:0  word offset]
//! ```
//!
//! Note `rd`/`ra` fields sit above bit 16, so they never collide with the
//! 16-bit immediate. Branch/jump offsets are signed *word* offsets relative
//! to the instruction after the branch.

use core::fmt;

/// A register index, `r0`–`r15`. `r0` always reads as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register for `jal`.
    pub const LINK: Reg = Reg(15);

    /// Construct, panicking on an out-of-range index.
    pub fn new(i: u8) -> Self {
        assert!(i < 16, "register index out of range: r{i}");
        Reg(i)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary ALU operations (R-type and, for most, an immediate form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rb/imm & 31).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Set if less-than, signed.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

/// Memory access sizes (loads also carry signedness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

/// One decoded MB32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `op rd, ra, rb`
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// `opi rd, ra, imm` (imm sign-extended; shifts use low 5 bits)
    AluImm {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        imm: i16,
    },
    /// `lui rd, imm` — load `imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// `l{b,h,w}[u] rd, off(ra)`
    Load {
        size: MemSize,
        signed: bool,
        rd: Reg,
        ra: Reg,
        off: i16,
    },
    /// `s{b,h,w} rb, off(ra)`
    Store {
        size: MemSize,
        rb: Reg,
        ra: Reg,
        off: i16,
    },
    /// `b{eq,ne,lt,ge} ra, rb, off` — signed word offset from pc+4.
    Branch {
        cond: Cond,
        ra: Reg,
        rb: Reg,
        off: i16,
    },
    /// `jal rd, off` — rd = pc+4, pc += 4 + off*4.
    Jal { rd: Reg, off: i16 },
    /// `jalr rd, ra` — rd = pc+4, pc = ra.
    Jalr { rd: Reg, ra: Reg },
    /// Stop the core.
    Halt,
    /// Do nothing.
    Nop,
}

// Opcode assignments.
const OP_ALU_BASE: u32 = 0x00; // +AluOp as u32 (0..=10)
const OP_ALUI_BASE: u32 = 0x10; // +AluOp (0..=10)
const OP_LUI: u32 = 0x1f;
const OP_LOAD_BASE: u32 = 0x20; // +size*2+signed (lb=0x20,lbu=0x21 flip: see below)
const OP_STORE_BASE: u32 = 0x28; // +size
const OP_BRANCH_BASE: u32 = 0x30; // +cond
const OP_JAL: u32 = 0x38;
const OP_JALR: u32 = 0x39;
const OP_HALT: u32 = 0x3e;
const OP_NOP: u32 = 0x3f;

fn alu_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Mul => 8,
        AluOp::Slt => 9,
        AluOp::Sltu => 10,
    }
}

fn alu_from(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Mul,
        9 => AluOp::Slt,
        10 => AluOp::Sltu,
        _ => return None,
    })
}

fn size_code(s: MemSize) -> u32 {
    match s {
        MemSize::Byte => 0,
        MemSize::Half => 1,
        MemSize::Word => 2,
    }
}

fn size_from(code: u32) -> Option<MemSize> {
    Some(match code {
        0 => MemSize::Byte,
        1 => MemSize::Half,
        2 => MemSize::Word,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u32 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
    }
}

impl Instr {
    /// Encode to a 32-bit word.
    pub fn encode(self) -> u32 {
        let r = |op: u32, rd: Reg, ra: Reg, rb: Reg| {
            (op << 26) | (u32::from(rd.0) << 22) | (u32::from(ra.0) << 18) | (u32::from(rb.0) << 14)
        };
        let i = |op: u32, rd: Reg, ra: Reg, imm: u16| {
            (op << 26) | (u32::from(rd.0) << 22) | (u32::from(ra.0) << 18) | u32::from(imm)
        };
        match self {
            Instr::Alu { op, rd, ra, rb } => r(OP_ALU_BASE + alu_code(op), rd, ra, rb),
            Instr::AluImm { op, rd, ra, imm } => i(OP_ALUI_BASE + alu_code(op), rd, ra, imm as u16),
            Instr::Lui { rd, imm } => i(OP_LUI, rd, Reg::ZERO, imm),
            Instr::Load {
                size,
                signed,
                rd,
                ra,
                off,
            } => {
                let op = OP_LOAD_BASE + size_code(size) * 2 + u32::from(!signed);
                i(op, rd, ra, off as u16)
            }
            Instr::Store { size, rb, ra, off } => {
                i(OP_STORE_BASE + size_code(size), rb, ra, off as u16)
            }
            Instr::Branch { cond, ra, rb, off } => {
                i(OP_BRANCH_BASE + cond_code(cond), ra, rb, off as u16)
            }
            Instr::Jal { rd, off } => i(OP_JAL, rd, Reg::ZERO, off as u16),
            Instr::Jalr { rd, ra } => i(OP_JALR, rd, ra, 0),
            Instr::Halt => OP_HALT << 26,
            Instr::Nop => OP_NOP << 26,
        }
    }

    /// Decode a 32-bit word, `None` for illegal encodings.
    pub fn decode(word: u32) -> Option<Instr> {
        let op = word >> 26;
        let rd = Reg(((word >> 22) & 0xf) as u8);
        let ra = Reg(((word >> 18) & 0xf) as u8);
        let rb = Reg(((word >> 14) & 0xf) as u8);
        let imm = (word & 0xffff) as u16;
        Some(match op {
            o if o < OP_ALUI_BASE && alu_from(o).is_some() => Instr::Alu {
                op: alu_from(o)?,
                rd,
                ra,
                rb,
            },
            o if (OP_ALUI_BASE..OP_ALUI_BASE + 11).contains(&o) => Instr::AluImm {
                op: alu_from(o - OP_ALUI_BASE)?,
                rd,
                ra,
                imm: imm as i16,
            },
            OP_LUI => Instr::Lui { rd, imm },
            o if (OP_LOAD_BASE..OP_LOAD_BASE + 6).contains(&o) => {
                let code = o - OP_LOAD_BASE;
                let size = size_from(code / 2)?;
                // Word loads have no sign distinction; canonicalise so
                // decode(encode(x)) is the identity on `Instr`.
                let signed = code.is_multiple_of(2) || size == MemSize::Word;
                Instr::Load {
                    size,
                    signed,
                    rd,
                    ra,
                    off: imm as i16,
                }
            }
            o if (OP_STORE_BASE..OP_STORE_BASE + 3).contains(&o) => Instr::Store {
                size: size_from(o - OP_STORE_BASE)?,
                rb: rd,
                ra,
                off: imm as i16,
            },
            o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 4).contains(&o) => {
                let cond = match o - OP_BRANCH_BASE {
                    0 => Cond::Eq,
                    1 => Cond::Ne,
                    2 => Cond::Lt,
                    _ => Cond::Ge,
                };
                Instr::Branch {
                    cond,
                    ra: rd,
                    rb: ra,
                    off: imm as i16,
                }
            }
            OP_JAL => Instr::Jal {
                rd,
                off: imm as i16,
            },
            OP_JALR => Instr::Jalr { rd, ra },
            OP_HALT => Instr::Halt,
            OP_NOP => Instr::Nop,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instr> {
        let r1 = Reg(1);
        let r2 = Reg(2);
        let r3 = Reg(3);
        let mut v = Vec::new();
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Mul,
            AluOp::Slt,
            AluOp::Sltu,
        ] {
            v.push(Instr::Alu {
                op,
                rd: r1,
                ra: r2,
                rb: r3,
            });
            v.push(Instr::AluImm {
                op,
                rd: r3,
                ra: r1,
                imm: -42,
            });
        }
        for size in [MemSize::Byte, MemSize::Half, MemSize::Word] {
            v.push(Instr::Load {
                size,
                signed: true,
                rd: r1,
                ra: r2,
                off: 16,
            });
            if size != MemSize::Word {
                // Word loads canonicalise to signed (no sign distinction).
                v.push(Instr::Load {
                    size,
                    signed: false,
                    rd: r1,
                    ra: r2,
                    off: -4,
                });
            }
            v.push(Instr::Store {
                size,
                rb: r3,
                ra: r2,
                off: 8,
            });
        }
        for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge] {
            v.push(Instr::Branch {
                cond,
                ra: r1,
                rb: r2,
                off: -3,
            });
        }
        v.push(Instr::Lui {
            rd: r2,
            imm: 0x4400,
        });
        v.push(Instr::Jal {
            rd: Reg::LINK,
            off: 100,
        });
        v.push(Instr::Jalr {
            rd: Reg::ZERO,
            ra: Reg::LINK,
        });
        v.push(Instr::Halt);
        v.push(Instr::Nop);
        v
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        for i in all_samples() {
            let w = i.encode();
            assert_eq!(Instr::decode(w), Some(i), "word {w:#010x} from {i:?}");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let samples = all_samples();
        for (a, ia) in samples.iter().enumerate() {
            for ib in samples.iter().skip(a + 1) {
                assert_ne!(ia.encode(), ib.encode(), "{ia:?} vs {ib:?}");
            }
        }
    }

    #[test]
    fn illegal_opcodes_decode_to_none() {
        for op in [
            0x0b_u32, 0x0f, 0x1b, 0x1e, 0x26, 0x27, 0x2b, 0x2f, 0x34, 0x3a, 0x3d,
        ] {
            assert_eq!(Instr::decode(op << 26), None, "opcode {op:#x}");
        }
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg(1),
            imm: -1,
        };
        match Instr::decode(i.encode()).unwrap() {
            Instr::AluImm { imm, .. } => assert_eq!(imm, -1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reg_constructor_bounds() {
        assert_eq!(Reg::new(15).0, 15);
        assert_eq!(Reg::ZERO.to_string(), "r0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_16_panics() {
        Reg::new(16);
    }

    /// Randomized: decode never panics, and re-encoding a decoded
    /// instruction decodes identically (encoding may canonicalise ignored
    /// bits).
    #[test]
    fn decode_never_panics_and_reencode_is_stable() {
        let mut rng = secbus_sim::SimRng::new(0x15a);
        for _ in 0..8192 {
            let word = rng.next_u32();
            if let Some(i) = Instr::decode(word) {
                assert_eq!(Instr::decode(i.encode()), Some(i), "word {word:#010x}");
            }
        }
    }
}
