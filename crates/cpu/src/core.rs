//! The MB32 processor core.
//!
//! A compact in-order interpreter that drives a bus master port. Code can
//! execute from a **local instruction memory** (the common MicroBlaze
//! arrangement: code in LMB BRAM next to the core, one instruction per
//! cycle) or be **fetched over the bus** (code in shared/external memory —
//! the arrangement the paper's threat model worries about, since that code
//! crosses the attacker-reachable external bus).

use secbus_bus::{Op, Response, TxnId, Width};
use secbus_sim::{Cycle, Stats, Wake};

use crate::isa::{AluOp, Cond, Instr, MemSize, Reg};
use crate::master::{BusMaster, MasterAccess};

/// Where the core's instructions come from.
#[derive(Debug, Clone)]
pub enum FetchSource {
    /// Private instruction memory; `pc` indexes into it from `base`.
    Local {
        /// Address of `words[0]`.
        base: u32,
        /// The program image.
        words: Vec<u32>,
    },
    /// Fetch each instruction over the bus from address `pc`.
    Bus,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ready to fetch the instruction at `pc`.
    Fetch,
    /// Waiting for an instruction word from the bus.
    WaitFetch(TxnId),
    /// Waiting for a data access; on arrival write `rd` (loads).
    WaitMem {
        txn: TxnId,
        rd: Option<Reg>,
        size: MemSize,
        signed: bool,
        issued_at: Cycle,
    },
    /// Stopped (HALT executed, or a fetch failed fatally).
    Halted,
}

/// The MB32 soft core.
pub struct Mb32Core {
    label: String,
    regs: [u32; 16],
    pc: u32,
    fetch: FetchSource,
    state: State,
    stats: Stats,
}

impl Mb32Core {
    /// Create a core executing `program` from a local instruction memory
    /// based at `base`, with `pc` starting at `base`.
    pub fn with_local_program(label: impl Into<String>, base: u32, program: Vec<u32>) -> Self {
        Mb32Core {
            label: label.into(),
            regs: [0; 16],
            pc: base,
            fetch: FetchSource::Local {
                base,
                words: program,
            },
            state: State::Fetch,
            stats: Stats::new(),
        }
    }

    /// Create a core fetching instructions over the bus, starting at the
    /// reset vector `pc`.
    pub fn with_bus_fetch(label: impl Into<String>, pc: u32) -> Self {
        Mb32Core {
            label: label.into(),
            regs: [0; 16],
            pc,
            fetch: FetchSource::Bus,
            state: State::Fetch,
            stats: Stats::new(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Read a register (r0 is always zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Set a register (writes to r0 are ignored), e.g. to pass arguments.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    fn write_rd(&mut self, rd: Reg, v: u32) {
        self.set_reg(rd, v);
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        }
    }

    /// Execute one decoded instruction; may issue a memory transaction and
    /// move to `WaitMem`. `pc` has NOT been advanced yet on entry.
    fn execute(&mut self, instr: Instr, mem: &mut dyn MasterAccess, now: Cycle) {
        self.stats.incr("core.instructions");
        let next_pc = self.pc.wrapping_add(4);
        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                let v = Self::alu(op, self.reg(ra), self.reg(rb));
                self.write_rd(rd, v);
                self.pc = next_pc;
            }
            Instr::AluImm { op, rd, ra, imm } => {
                // Logical ops take the immediate zero-extended; arithmetic
                // and comparisons sign-extend, like most RISC ISAs.
                let b = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor => u32::from(imm as u16),
                    _ => imm as i32 as u32,
                };
                let v = Self::alu(op, self.reg(ra), b);
                self.write_rd(rd, v);
                self.pc = next_pc;
            }
            Instr::Lui { rd, imm } => {
                self.write_rd(rd, u32::from(imm) << 16);
                self.pc = next_pc;
            }
            Instr::Load {
                size,
                signed,
                rd,
                ra,
                off,
            } => {
                let addr = self.reg(ra).wrapping_add(off as i32 as u32);
                let width = width_of(size);
                let txn = mem.issue(Op::Read, addr, width, 0, 1);
                self.stats.incr("core.loads");
                self.state = State::WaitMem {
                    txn,
                    rd: Some(rd),
                    size,
                    signed,
                    issued_at: now,
                };
                self.pc = next_pc;
                return;
            }
            Instr::Store { size, rb, ra, off } => {
                let addr = self.reg(ra).wrapping_add(off as i32 as u32);
                let width = width_of(size);
                let data = self.reg(rb) & width.mask();
                let txn = mem.issue(Op::Write, addr, width, data, 1);
                self.stats.incr("core.stores");
                self.state = State::WaitMem {
                    txn,
                    rd: None,
                    size,
                    signed: false,
                    issued_at: now,
                };
                self.pc = next_pc;
                return;
            }
            Instr::Branch { cond, ra, rb, off } => {
                let (a, b) = (self.reg(ra), self.reg(rb));
                let taken = match cond {
                    Cond::Eq => a == b,
                    Cond::Ne => a != b,
                    Cond::Lt => (a as i32) < (b as i32),
                    Cond::Ge => (a as i32) >= (b as i32),
                };
                if taken {
                    self.stats.incr("core.branches_taken");
                    self.pc = next_pc.wrapping_add((off as i32 as u32).wrapping_mul(4));
                } else {
                    self.pc = next_pc;
                }
            }
            Instr::Jal { rd, off } => {
                self.write_rd(rd, next_pc);
                self.pc = next_pc.wrapping_add((off as i32 as u32).wrapping_mul(4));
            }
            Instr::Jalr { rd, ra } => {
                let target = self.reg(ra) & !3;
                self.write_rd(rd, next_pc);
                self.pc = target;
            }
            Instr::Halt => {
                self.state = State::Halted;
                return;
            }
            Instr::Nop => {
                self.pc = next_pc;
            }
        }
        self.state = State::Fetch;
    }

    fn complete_mem(
        &mut self,
        resp: Response,
        rd: Option<Reg>,
        size: MemSize,
        signed: bool,
        issued_at: Cycle,
        now: Cycle,
    ) {
        if let Err(e) = resp.result {
            // The access was refused (firewall discard, decode error…).
            // The core keeps running — the paper's containment story is
            // that the *system* is protected, not that the infected IP is
            // given a clean error model. Loads return zero.
            self.stats.incr("core.access_errors");
            let _ = e;
            if let Some(rd) = rd {
                self.write_rd(rd, 0);
            }
        } else if let Some(rd) = rd {
            let v = match (size, signed) {
                (MemSize::Byte, true) => resp.data as u8 as i8 as i32 as u32,
                (MemSize::Byte, false) => u32::from(resp.data as u8),
                (MemSize::Half, true) => resp.data as u16 as i16 as i32 as u32,
                (MemSize::Half, false) => u32::from(resp.data as u16),
                (MemSize::Word, _) => resp.data,
            };
            self.write_rd(rd, v);
        }
        self.stats
            .record("core.mem_latency", now.saturating_since(issued_at));
        self.state = State::Fetch;
    }
}

fn width_of(size: MemSize) -> Width {
    match size {
        MemSize::Byte => Width::Byte,
        MemSize::Half => Width::Half,
        MemSize::Word => Width::Word,
    }
}

impl BusMaster for Mb32Core {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        match self.state {
            State::Halted => {}
            State::Fetch => {
                let word = match &self.fetch {
                    FetchSource::Local { base, words } => {
                        let idx = self.pc.wrapping_sub(*base) / 4;
                        match words.get(idx as usize) {
                            Some(&w) => Some(w),
                            None => {
                                // Running off the end of the image halts.
                                self.stats.incr("core.fetch_faults");
                                self.state = State::Halted;
                                return;
                            }
                        }
                    }
                    FetchSource::Bus => {
                        let txn = mem.issue(Op::Read, self.pc, Width::Word, 0, 1);
                        self.state = State::WaitFetch(txn);
                        None
                    }
                };
                if let Some(word) = word {
                    match Instr::decode(word) {
                        Some(i) => self.execute(i, mem, now),
                        None => {
                            self.stats.incr("core.illegal_instructions");
                            self.state = State::Halted;
                        }
                    }
                }
            }
            State::WaitFetch(txn) => {
                if let Some(resp) = mem.poll() {
                    if resp.txn != txn {
                        // Dead letter for an id a watchdog verdict
                        // already answered; account it, keep waiting
                        // for the live fetch.
                        self.stats.incr("core.stale_responses");
                        return;
                    }
                    if !resp.is_ok() {
                        self.stats.incr("core.fetch_faults");
                        self.state = State::Halted;
                        return;
                    }
                    match Instr::decode(resp.data) {
                        Some(i) => self.execute(i, mem, now),
                        None => {
                            self.stats.incr("core.illegal_instructions");
                            self.state = State::Halted;
                        }
                    }
                }
            }
            State::WaitMem {
                txn,
                rd,
                size,
                signed,
                issued_at,
            } => {
                if let Some(resp) = mem.poll() {
                    if resp.txn != txn {
                        self.stats.incr("core.stale_responses");
                        return;
                    }
                    self.complete_mem(resp, rd, size, signed, issued_at, now);
                }
            }
        }
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        match self.state {
            // A halted core never acts again; undelivered responses
            // sit in its queue as dead letters under both cores.
            State::Halted => Wake::Never,
            // Fetch executes (or issues) every cycle.
            State::Fetch => Wake::Now,
            // Wait states only poll; pure while no response is queued.
            State::WaitFetch(_) | State::WaitMem { .. } => Wake::Waiting,
        }
    }

    fn halted(&self) -> bool {
        self.state == State::Halted
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::master::InstantMem;

    /// Run a local-imem core against an instant memory until halt.
    fn run(src: &str, mem: &mut InstantMem, max_cycles: u64) -> Mb32Core {
        let program = assemble(src).expect("assembly failed");
        let mut core = Mb32Core::with_local_program("cpu0", 0, program);
        for c in 0..max_cycles {
            if core.halted() {
                break;
            }
            core.tick(mem, Cycle(c));
        }
        assert!(core.halted(), "program did not halt");
        core
    }

    #[test]
    fn arithmetic_program() {
        let mut mem = InstantMem::new(64);
        let core = run(
            r"
            addi r1, r0, 6
            addi r2, r0, 7
            mul  r3, r1, r2
            sub  r4, r3, r1
            halt
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.reg(Reg(3)), 42);
        assert_eq!(core.reg(Reg(4)), 36);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let mut mem = InstantMem::new(64);
        let core = run(
            r"
                addi r1, r0, 0    ; sum
                addi r2, r0, 1    ; i
                addi r3, r0, 11   ; bound
            loop:
                add  r1, r1, r2
                addi r2, r2, 1
                bne  r2, r3, loop
                halt
            ",
            &mut mem,
            200,
        );
        assert_eq!(core.reg(Reg(1)), 55);
    }

    #[test]
    fn loads_and_stores_via_memory() {
        let mut mem = InstantMem::new(64);
        mem.load(32, &0x0000_00ffu32.to_le_bytes());
        let core = run(
            r"
            addi r1, r0, 32
            lw   r2, 0(r1)
            addi r2, r2, 1
            sw   r2, 4(r1)
            halt
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.reg(Reg(2)), 0x100);
        assert_eq!(mem.word(36), 0x100);
    }

    #[test]
    fn byte_and_half_accesses_with_sign_extension() {
        let mut mem = InstantMem::new(64);
        mem.load(0x10, &[0x80, 0xff, 0xfe, 0xff]);
        let core = run(
            r"
            addi r1, r0, 16
            lb   r2, 0(r1)   ; 0x80 -> sign-extended
            lbu  r3, 0(r1)   ; 0x80 -> zero-extended
            lh   r4, 2(r1)   ; 0xfffe -> -2
            lhu  r5, 2(r1)
            sb   r3, 8(r1)
            sh   r4, 10(r1)
            halt
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.reg(Reg(2)), 0xffff_ff80);
        assert_eq!(core.reg(Reg(3)), 0x80);
        assert_eq!(core.reg(Reg(4)), 0xffff_fffe);
        assert_eq!(core.reg(Reg(5)), 0xfffe);
        assert_eq!(mem.bytes[0x18], 0x80);
        assert_eq!(&mem.bytes[0x1a..0x1c], &[0xfe, 0xff]);
    }

    #[test]
    fn jal_and_jalr_subroutine() {
        let mut mem = InstantMem::new(64);
        let core = run(
            r"
                addi r1, r0, 5
                jal  r15, double
                jal  r15, double
                halt
            double:
                add  r1, r1, r1
                jalr r0, r15
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.reg(Reg(1)), 20);
    }

    #[test]
    fn li_builds_full_words() {
        let mut mem = InstantMem::new(64);
        let core = run("li r7, 0xdeadbeef\nhalt", &mut mem, 20);
        assert_eq!(core.reg(Reg(7)), 0xdead_beef);
    }

    #[test]
    fn r0_stays_zero() {
        let mut mem = InstantMem::new(64);
        let core = run("addi r0, r0, 99\nhalt", &mut mem, 20);
        assert_eq!(core.reg(Reg::ZERO), 0);
    }

    #[test]
    fn illegal_instruction_halts() {
        let mut core = Mb32Core::with_local_program("c", 0, vec![0xf400_0000]);
        let mut mem = InstantMem::new(4);
        core.tick(&mut mem, Cycle(0));
        assert!(core.halted());
        assert_eq!(core.stats().counter("core.illegal_instructions"), 1);
    }

    #[test]
    fn running_off_image_halts() {
        let program = assemble("nop").unwrap();
        let mut core = Mb32Core::with_local_program("c", 0, program);
        let mut mem = InstantMem::new(4);
        for c in 0..4 {
            core.tick(&mut mem, Cycle(c));
        }
        assert!(core.halted());
        assert_eq!(core.stats().counter("core.fetch_faults"), 1);
    }

    #[test]
    fn bus_fetch_executes_from_memory_image() {
        let program = assemble("addi r1, r0, 3\naddi r1, r1, 4\nhalt").unwrap();
        let mut mem = InstantMem::new(64);
        for (i, w) in program.iter().enumerate() {
            mem.load(i * 4, &w.to_le_bytes());
        }
        let mut core = Mb32Core::with_bus_fetch("c", 0);
        for c in 0..40 {
            if core.halted() {
                break;
            }
            core.tick(&mut mem, Cycle(c));
        }
        assert!(core.halted());
        assert_eq!(core.reg(Reg(1)), 7);
        // Each instruction needed a bus read.
        let fetch_reads = mem.issued.iter().filter(|(op, ..)| *op == Op::Read).count();
        assert_eq!(fetch_reads, 3);
    }

    #[test]
    fn denied_load_returns_zero_and_counts_error() {
        // Out-of-range load in InstantMem produces an error response.
        let mut mem = InstantMem::new(16);
        let core = run(
            r"
            addi r1, r0, 9
            li   r2, 0x1000
            lw   r1, 0(r2)  ; out of range -> error -> r1 = 0
            halt
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.reg(Reg(1)), 0);
        assert_eq!(core.stats().counter("core.access_errors"), 1);
    }

    /// Randomized: arbitrary word soups never panic the core — illegal
    /// opcodes halt it, legal ones execute with memory accesses confined
    /// to the device or reported as errors.
    #[test]
    fn random_images_never_panic() {
        let mut rng = secbus_sim::SimRng::new(0xf022);
        for _ in 0..48 {
            let len = 1 + rng.below(63) as usize;
            let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
            let mut core = Mb32Core::with_local_program("fuzz", 0, words);
            let mut mem = InstantMem::new(256);
            for c in 0..2_000u64 {
                if c > 0 && core.halted() {
                    break;
                }
                core.tick(&mut mem, Cycle(c));
            }
            // No assertion beyond "we got here": the property is absence
            // of panics and of runaway memory growth.
        }
    }

    /// Randomized: the interpreter is deterministic — the same image and
    /// memory produce identical register files.
    #[test]
    fn execution_is_deterministic() {
        let mut rng = secbus_sim::SimRng::new(0xde7e);
        for _ in 0..48 {
            let len = 1 + rng.below(31) as usize;
            let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
            let run = || {
                let mut core = Mb32Core::with_local_program("d", 0, words.clone());
                let mut mem = InstantMem::new(128);
                for c in 0..500u64 {
                    if core.halted() {
                        break;
                    }
                    core.tick(&mut mem, Cycle(c));
                }
                let regs: Vec<u32> = (0..16).map(|i| core.reg(Reg(i))).collect();
                (regs, mem.bytes)
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn stats_count_instruction_mix() {
        let mut mem = InstantMem::new(64);
        let core = run(
            r"
            addi r1, r0, 2
            sw   r1, 0(r0)
            lw   r2, 0(r0)
            beq  r1, r2, done
            nop
            done: halt
            ",
            &mut mem,
            100,
        );
        assert_eq!(core.stats().counter("core.loads"), 1);
        assert_eq!(core.stats().counter("core.stores"), 1);
        assert_eq!(core.stats().counter("core.branches_taken"), 1);
        assert!(core.stats().counter("core.instructions") >= 5);
    }
}
