//! Non-programmable bus masters: DMA, a streaming dedicated IP, and a
//! configurable synthetic traffic generator.
//!
//! The paper's case study includes "one dedicated IP" alongside the three
//! MicroBlazes; the overhead analysis in §V depends on "the percentage of
//! computation time versus communication time" and "the percentage of
//! internal communication versus external communication" — the
//! [`SyntheticMaster`] exists precisely to sweep those two ratios in the
//! S-2 ablation bench.

use secbus_bus::{Op, TxnId, Width};
use secbus_sim::{Cycle, SimRng, Stats, Wake};

use crate::master::{BusMaster, MasterAccess};

/// Configuration for a [`SyntheticMaster`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Address windows the master targets, with relative weights.
    pub windows: Vec<(u32, u32, u32)>,
    /// Probability an access is a read (vs write).
    pub read_ratio: f64,
    /// Access widths to draw from, uniformly.
    pub widths: Vec<Width>,
    /// Beats per transaction.
    pub burst: u16,
    /// A new access is attempted every `period` cycles ("computation time"
    /// between communications); 1 = back-to-back.
    pub period: u64,
    /// Stop after this many accesses (0 = unbounded).
    pub total_ops: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            windows: vec![(0, 0x1000, 1)],
            read_ratio: 0.5,
            widths: vec![Width::Word],
            burst: 1,
            period: 1,
            total_ops: 0,
        }
    }
}

/// A master issuing a configurable random mix of reads and writes.
pub struct SyntheticMaster {
    label: String,
    config: SyntheticConfig,
    rng: SimRng,
    outstanding: Option<(TxnId, Cycle)>,
    issued: u64,
    next_issue_at: u64,
    stats: Stats,
}

impl SyntheticMaster {
    /// Create a generator with its own RNG stream.
    pub fn new(label: impl Into<String>, config: SyntheticConfig, rng: SimRng) -> Self {
        assert!(
            !config.windows.is_empty(),
            "need at least one address window"
        );
        assert!(!config.widths.is_empty(), "need at least one width");
        SyntheticMaster {
            label: label.into(),
            config,
            rng,
            outstanding: None,
            issued: 0,
            next_issue_at: 0,
            stats: Stats::new(),
        }
    }

    fn pick_address(&mut self, width: Width, burst: u16) -> u32 {
        let total_weight: u32 = self.config.windows.iter().map(|w| w.2).sum();
        let mut roll = self.rng.below(u64::from(total_weight.max(1))) as u32;
        let mut chosen = self.config.windows[0];
        for w in &self.config.windows {
            if roll < w.2 {
                chosen = *w;
                break;
            }
            roll -= w.2;
        }
        let (base, len, _) = chosen;
        let span = u32::from(burst.max(1)) * width.bytes();
        let slots = (len / span).max(1);
        let slot = self.rng.below(u64::from(slots)) as u32;
        base + slot * span
    }

    /// Accesses issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl BusMaster for SyntheticMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        if let Some((txn, issued_at)) = self.outstanding {
            if let Some(resp) = mem.poll() {
                if resp.txn != txn {
                    // A dead letter for a transaction this master has
                    // already been answered for (e.g. a watchdog verdict
                    // raced a late completion). Account it and keep
                    // waiting for the live one.
                    self.stats.incr("traffic.stale_responses");
                    return;
                }
                self.stats
                    .record("traffic.latency", now.saturating_since(issued_at));
                if resp.is_ok() {
                    self.stats.incr("traffic.ok");
                } else {
                    self.stats.incr("traffic.err");
                }
                self.outstanding = None;
                self.next_issue_at = now.get() + self.config.period;
            }
            return;
        }
        if self.config.total_ops != 0 && self.issued >= self.config.total_ops {
            return;
        }
        if now.get() < self.next_issue_at {
            return;
        }
        let width = *self.rng.pick(&self.config.widths);
        let burst = self.config.burst;
        let op = if self.rng.chance(self.config.read_ratio) {
            Op::Read
        } else {
            Op::Write
        };
        let addr = self.pick_address(width, burst);
        let data = self.rng.next_u32();
        let txn = mem.issue(op, addr, width, data, burst);
        self.outstanding = Some((txn, now));
        self.issued += 1;
        self.stats.incr("traffic.issued");
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        if self.outstanding.is_some() {
            // Tick only polls; pure while no response is queued.
            return Wake::Waiting;
        }
        if self.config.total_ops != 0 && self.issued >= self.config.total_ops {
            return Wake::Never;
        }
        if now.get() < self.next_issue_at {
            return Wake::At(Cycle(self.next_issue_at));
        }
        Wake::Now
    }

    fn halted(&self) -> bool {
        self.config.total_ops != 0
            && self.issued >= self.config.total_ops
            && self.outstanding.is_none()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// A block-copy DMA engine: reads `burst` beats from the source, writes
/// them to the destination, until `len_bytes` have moved.
pub struct DmaEngine {
    label: String,
    src: u32,
    dst: u32,
    len_bytes: u32,
    burst: u16,
    moved: u32,
    phase: DmaPhase,
    stats: Stats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DmaPhase {
    ReadNext,
    WaitRead(TxnId),
    WaitWrite(TxnId),
    Done,
}

impl DmaEngine {
    /// Program a copy of `len_bytes` from `src` to `dst` in word beats.
    ///
    /// # Panics
    /// Panics unless addresses and length are word-aligned and non-empty.
    pub fn new(label: impl Into<String>, src: u32, dst: u32, len_bytes: u32, burst: u16) -> Self {
        assert!(
            len_bytes > 0 && len_bytes.is_multiple_of(4),
            "length must be words"
        );
        assert!(
            src.is_multiple_of(4) && dst.is_multiple_of(4),
            "addresses must be aligned"
        );
        DmaEngine {
            label: label.into(),
            src,
            dst,
            len_bytes,
            burst: burst.max(1),
            moved: 0,
            phase: DmaPhase::ReadNext,
            stats: Stats::new(),
        }
    }

    /// Bytes copied so far.
    pub fn moved(&self) -> u32 {
        self.moved
    }

    fn chunk_bytes(&self) -> u32 {
        (u32::from(self.burst) * 4).min(self.len_bytes - self.moved)
    }
}

impl BusMaster for DmaEngine {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, _now: Cycle) {
        match self.phase {
            DmaPhase::Done => {}
            DmaPhase::ReadNext => {
                let beats = (self.chunk_bytes() / 4) as u16;
                let txn = mem.issue(Op::Read, self.src + self.moved, Width::Word, 0, beats);
                self.phase = DmaPhase::WaitRead(txn);
            }
            DmaPhase::WaitRead(txn) => {
                if let Some(resp) = mem.poll() {
                    if resp.txn != txn {
                        // Dead letter for an already-answered id; see
                        // `SyntheticMaster::tick`.
                        self.stats.incr("dma.stale_responses");
                        return;
                    }
                    if !resp.is_ok() {
                        self.stats.incr("dma.errors");
                        self.phase = DmaPhase::Done;
                        return;
                    }
                    let beats = (self.chunk_bytes() / 4) as u16;
                    let t = mem.issue(
                        Op::Write,
                        self.dst + self.moved,
                        Width::Word,
                        resp.data,
                        beats,
                    );
                    self.phase = DmaPhase::WaitWrite(t);
                }
            }
            DmaPhase::WaitWrite(txn) => {
                if let Some(resp) = mem.poll() {
                    if resp.txn != txn {
                        self.stats.incr("dma.stale_responses");
                        return;
                    }
                    if !resp.is_ok() {
                        self.stats.incr("dma.errors");
                        self.phase = DmaPhase::Done;
                        return;
                    }
                    let chunk = self.chunk_bytes();
                    self.moved += chunk;
                    self.stats.add("dma.bytes", u64::from(chunk));
                    self.phase = if self.moved >= self.len_bytes {
                        DmaPhase::Done
                    } else {
                        DmaPhase::ReadNext
                    };
                }
            }
        }
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        match self.phase {
            DmaPhase::Done => Wake::Never,
            DmaPhase::ReadNext => Wake::Now,
            DmaPhase::WaitRead(_) | DmaPhase::WaitWrite(_) => Wake::Waiting,
        }
    }

    fn halted(&self) -> bool {
        self.phase == DmaPhase::Done
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// A dedicated streaming IP: writes an incrementing sample to a FIFO
/// register every `period` cycles — the kind of fixed-function block the
/// paper attaches a Local Firewall to.
pub struct StreamIp {
    label: String,
    fifo_addr: u32,
    period: u64,
    samples: u64,
    sent: u64,
    outstanding: Option<TxnId>,
    next_at: u64,
    stats: Stats,
}

impl StreamIp {
    /// Stream `samples` words to `fifo_addr`, one every `period` cycles
    /// (0 samples = stream forever).
    pub fn new(label: impl Into<String>, fifo_addr: u32, period: u64, samples: u64) -> Self {
        StreamIp {
            label: label.into(),
            fifo_addr,
            period: period.max(1),
            samples,
            sent: 0,
            outstanding: None,
            next_at: 0,
            stats: Stats::new(),
        }
    }

    /// Samples pushed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl BusMaster for StreamIp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        if let Some(txn) = self.outstanding {
            if let Some(resp) = mem.poll() {
                if resp.txn != txn {
                    // Dead letter for an already-answered id; see
                    // `SyntheticMaster::tick`.
                    self.stats.incr("stream.stale_responses");
                    return;
                }
                if resp.is_ok() {
                    self.stats.incr("stream.acked");
                } else {
                    self.stats.incr("stream.rejected");
                }
                self.outstanding = None;
            }
            return;
        }
        if (self.samples != 0 && self.sent >= self.samples) || now.get() < self.next_at {
            return;
        }
        let txn = mem.issue(Op::Write, self.fifo_addr, Width::Word, self.sent as u32, 1);
        self.outstanding = Some(txn);
        self.sent += 1;
        self.next_at = now.get() + self.period;
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        if self.outstanding.is_some() {
            return Wake::Waiting;
        }
        if self.samples != 0 && self.sent >= self.samples {
            return Wake::Never;
        }
        if now.get() < self.next_at {
            return Wake::At(Cycle(self.next_at));
        }
        Wake::Now
    }

    fn halted(&self) -> bool {
        self.samples != 0 && self.sent >= self.samples && self.outstanding.is_none()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// Configuration for an [`OpenLoopMaster`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Address window the accesses land in (base, length in bytes).
    pub window: (u32, u32),
    /// Probability an access is a read (vs write).
    pub read_ratio: f64,
    /// Accesses issued every cycle of the window, regardless of
    /// completions.
    pub per_tick: u32,
    /// Last issue cycle (exclusive); after it the source only drains
    /// responses.
    pub until: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            window: (0, 0x1000),
            read_ratio: 0.5,
            per_tick: 1,
            until: 1_000,
        }
    }
}

/// An *open-loop* source: it issues [`OpenLoopConfig::per_tick`] accesses
/// every cycle of its window whether or not earlier ones completed — the
/// offered load does not slow down when the fabric does. The closed-loop
/// masters above can never overflow a bounded queue (they wait for each
/// response), so overload experiments need one of these. Refusals
/// ([`secbus_bus::BusError::Overload`]) are counted separately from
/// completions and other errors, which is exactly the conservation law
/// the S-19 soak checks: issued == completed + shed + errors.
pub struct OpenLoopMaster {
    label: String,
    config: OpenLoopConfig,
    rng: SimRng,
    stats: Stats,
    issued: u64,
    completed: u64,
    shed: u64,
    errors: u64,
}

impl OpenLoopMaster {
    /// Create a source with its own RNG stream.
    ///
    /// # Panics
    /// Panics on an empty address window.
    pub fn new(label: impl Into<String>, config: OpenLoopConfig, rng: SimRng) -> Self {
        assert!(config.window.1 >= 4, "window must hold at least one word");
        OpenLoopMaster {
            label: label.into(),
            config,
            rng,
            stats: Stats::new(),
            issued: 0,
            completed: 0,
            shed: 0,
            errors: 0,
        }
    }

    /// Accesses issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Responses that completed OK.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Refusals at admission ([`secbus_bus::BusError::Overload`]).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Any other error outcome (discards, decode errors, timeouts).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Whether every issued access has resolved one way or another.
    pub fn resolved(&self) -> bool {
        self.issued == self.completed + self.shed + self.errors
    }
}

impl BusMaster for OpenLoopMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        while let Some(resp) = mem.poll() {
            match resp.result {
                Ok(()) => {
                    self.completed += 1;
                    self.stats.incr("openloop.completed");
                }
                Err(secbus_bus::BusError::Overload) => {
                    self.shed += 1;
                    self.stats.incr("openloop.shed");
                }
                Err(_) => {
                    self.errors += 1;
                    self.stats.incr("openloop.errors");
                }
            }
        }
        if now.get() >= self.config.until {
            return;
        }
        for _ in 0..self.config.per_tick {
            let (base, len) = self.config.window;
            let slot = self.rng.below(u64::from((len / 4).max(1))) as u32;
            let op = if self.rng.chance(self.config.read_ratio) {
                Op::Read
            } else {
                Op::Write
            };
            let data = self.rng.next_u32();
            mem.issue(op, base + slot * 4, Width::Word, data, 1);
            self.issued += 1;
            self.stats.incr("openloop.issued");
        }
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        if now.get() < self.config.until {
            // Issues (and draws randomness) every window cycle.
            Wake::Now
        } else {
            // Window closed: tick only drains stragglers.
            Wake::Waiting
        }
    }

    fn halted(&self) -> bool {
        // The window may have closed, but the source never *finishes*:
        // stragglers keep draining as long as the system runs.
        false
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::InstantMem;

    fn drive(m: &mut dyn BusMaster, mem: &mut InstantMem, cycles: u64) {
        for c in 0..cycles {
            if m.halted() {
                break;
            }
            m.tick(mem, Cycle(c));
        }
    }

    #[test]
    fn synthetic_respects_total_ops() {
        let cfg = SyntheticConfig {
            total_ops: 10,
            ..Default::default()
        };
        let mut m = SyntheticMaster::new("syn", cfg, SimRng::new(1));
        let mut mem = InstantMem::new(0x1000);
        drive(&mut m, &mut mem, 1000);
        assert!(m.halted());
        assert_eq!(m.issued(), 10);
        assert_eq!(m.stats().counter("traffic.issued"), 10);
        assert_eq!(m.stats().counter("traffic.ok"), 10);
    }

    #[test]
    fn synthetic_addresses_stay_in_windows() {
        let cfg = SyntheticConfig {
            windows: vec![(0x100, 0x100, 1), (0x800, 0x80, 3)],
            total_ops: 200,
            widths: vec![Width::Byte, Width::Half, Width::Word],
            ..Default::default()
        };
        let mut m = SyntheticMaster::new("syn", cfg, SimRng::new(7));
        let mut mem = InstantMem::new(0x1000);
        drive(&mut m, &mut mem, 10_000);
        assert!(!mem.issued.is_empty());
        for &(_, addr, width, _) in &mem.issued {
            let in_a = (0x100..0x200).contains(&addr);
            let in_b = (0x800..0x880).contains(&addr);
            assert!(in_a || in_b, "addr {addr:#x} escaped the windows");
            assert_eq!(addr % width.bytes(), 0, "unaligned access generated");
        }
    }

    #[test]
    fn synthetic_read_ratio_is_respected() {
        let cfg = SyntheticConfig {
            read_ratio: 0.8,
            total_ops: 500,
            ..Default::default()
        };
        let mut m = SyntheticMaster::new("syn", cfg, SimRng::new(3));
        let mut mem = InstantMem::new(0x1000);
        drive(&mut m, &mut mem, 50_000);
        let reads = mem.issued.iter().filter(|(op, ..)| *op == Op::Read).count();
        assert!((330..470).contains(&reads), "reads={reads} of 500");
    }

    #[test]
    fn synthetic_period_spaces_requests() {
        let cfg = SyntheticConfig {
            period: 10,
            total_ops: 5,
            ..Default::default()
        };
        let mut m = SyntheticMaster::new("syn", cfg, SimRng::new(5));
        let mut mem = InstantMem::new(0x1000);
        let mut issue_cycles = Vec::new();
        for c in 0..200 {
            let before = mem.issued.len();
            m.tick(&mut mem, Cycle(c));
            if mem.issued.len() > before {
                issue_cycles.push(c);
            }
        }
        assert_eq!(issue_cycles.len(), 5);
        for pair in issue_cycles.windows(2) {
            assert!(pair[1] - pair[0] >= 10, "{issue_cycles:?}");
        }
    }

    #[test]
    fn dma_copies_exact_bytes() {
        let mut mem = InstantMem::new(0x400);
        for i in 0..64u32 {
            mem.load((0x100 + i) as usize, &[i as u8]);
        }
        let mut dma = DmaEngine::new("dma", 0x100, 0x200, 64, 4);
        drive(&mut dma, &mut mem, 1000);
        assert!(dma.halted());
        assert_eq!(dma.moved(), 64);
        assert_eq!(dma.stats().counter("dma.bytes"), 64);
        // First word of each burst is copied by the simplified datapath.
        assert_eq!(mem.word(0x200), mem.word(0x100));
    }

    #[test]
    fn dma_error_stops_engine() {
        let mut mem = InstantMem::new(0x100);
        let mut dma = DmaEngine::new("dma", 0x80, 0x200, 16, 1); // dst out of range
        drive(&mut dma, &mut mem, 100);
        assert!(dma.halted());
        assert_eq!(dma.stats().counter("dma.errors"), 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn dma_rejects_unaligned() {
        DmaEngine::new("dma", 2, 0, 4, 1);
    }

    #[test]
    fn open_loop_source_does_not_wait_for_completions() {
        let mut mem = InstantMem::new(0x100);
        let cfg = OpenLoopConfig {
            window: (0, 0x100),
            read_ratio: 0.0,
            per_tick: 3,
            until: 10,
        };
        let mut m = OpenLoopMaster::new("flood", cfg, SimRng::new(7));
        drive(&mut m, &mut mem, 40);
        assert_eq!(m.issued(), 30, "3 per cycle for 10 cycles, no throttling");
        assert!(m.resolved(), "all stragglers drained after the window");
        assert_eq!(m.completed(), 30);
        assert_eq!(m.shed() + m.errors(), 0);
    }

    #[test]
    fn stream_ip_pushes_samples_on_schedule() {
        let mut mem = InstantMem::new(0x100);
        let mut ip = StreamIp::new("ip", 0x40, 4, 8);
        drive(&mut ip, &mut mem, 200);
        assert!(ip.halted());
        assert_eq!(ip.sent(), 8);
        assert_eq!(ip.stats().counter("stream.acked"), 8);
        // Last sample written is 7.
        assert_eq!(mem.word(0x40), 7);
    }
}
