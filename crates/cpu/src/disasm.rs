//! MB32 disassembler.
//!
//! Produces assembler-compatible text: `assemble(disasm(word)) == word`
//! for every legal instruction (branch/jump targets are emitted as
//! numeric word offsets, which the assembler accepts). Used by trace
//! tooling and the code-injection forensics in the attack reports.

use crate::isa::{AluOp, Cond, Instr, MemSize};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Mul => "mul",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn load_name(size: MemSize, signed: bool) -> &'static str {
    match (size, signed) {
        (MemSize::Byte, true) => "lb",
        (MemSize::Byte, false) => "lbu",
        (MemSize::Half, true) => "lh",
        (MemSize::Half, false) => "lhu",
        (MemSize::Word, _) => "lw",
    }
}

fn store_name(size: MemSize) -> &'static str {
    match size {
        MemSize::Byte => "sb",
        MemSize::Half => "sh",
        MemSize::Word => "sw",
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
    }
}

/// Disassemble one decoded instruction.
pub fn disasm_instr(i: Instr) -> String {
    match i {
        Instr::Alu { op, rd, ra, rb } => format!("{} {rd}, {ra}, {rb}", alu_name(op)),
        Instr::AluImm { op, rd, ra, imm } => {
            format!("{}i {rd}, {ra}, {imm}", alu_name(op))
        }
        Instr::Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Instr::Load {
            size,
            signed,
            rd,
            ra,
            off,
        } => {
            format!("{} {rd}, {off}({ra})", load_name(size, signed))
        }
        Instr::Store { size, rb, ra, off } => {
            format!("{} {rb}, {off}({ra})", store_name(size))
        }
        Instr::Branch { cond, ra, rb, off } => format!("{} {ra}, {rb}, {off}", cond_name(cond)),
        Instr::Jal { rd, off } => format!("jal {rd}, {off}"),
        Instr::Jalr { rd, ra } => format!("jalr {rd}, {ra}"),
        Instr::Halt => "halt".into(),
        Instr::Nop => "nop".into(),
    }
}

/// Disassemble a raw word (illegal encodings render as `.word 0x…`).
pub fn disasm(word: u32) -> String {
    match Instr::decode(word) {
        Some(i) => disasm_instr(i),
        None => format!(".word 0x{word:08x}"),
    }
}

/// Disassemble a program image with word addresses.
pub fn disasm_listing(base: u32, words: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        out.push_str(&format!(
            "{:#010x}: {:08x}  {}\n",
            base + 4 * i as u32,
            w,
            disasm(w)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn representative_forms() {
        use crate::isa::Reg;
        assert_eq!(
            disasm_instr(Instr::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                ra: Reg(2),
                rb: Reg(3)
            }),
            "add r1, r2, r3"
        );
        assert_eq!(
            disasm_instr(Instr::Load {
                size: MemSize::Byte,
                signed: false,
                rd: Reg(4),
                ra: Reg(5),
                off: -8
            }),
            "lbu r4, -8(r5)"
        );
        assert_eq!(disasm(Instr::Halt.encode()), "halt");
        assert!(disasm(0xf400_0000).starts_with(".word"));
    }

    #[test]
    fn roundtrip_through_assembler() {
        let src = r"
            addi r1, r0, 5
            lui  r2, 0x4400
            lw   r3, 4(r2)
            sw   r3, -4(r2)
            beq  r1, r3, 2
            jal  r15, 10
            jalr r0, r15
            mul  r4, r1, r3
            halt
        ";
        let words = assemble(src).unwrap();
        for &w in &words {
            let text = disasm(w);
            let again = assemble(&text).unwrap();
            assert_eq!(again, vec![w], "{text}");
        }
    }

    #[test]
    fn listing_contains_addresses() {
        let words = assemble("nop\nhalt").unwrap();
        let listing = disasm_listing(0x8008_0000, &words);
        assert!(listing.contains("0x80080000"));
        assert!(listing.contains("0x80080004"));
        assert!(listing.contains("halt"));
    }

    /// Randomized: every legal decoded word disassembles to text the
    /// assembler maps back to an equivalently-decoding word.
    #[test]
    fn decode_disasm_assemble_roundtrip() {
        let mut rng = secbus_sim::SimRng::new(0xd15a);
        for _ in 0..4096 {
            let word = rng.next_u32();
            if let Some(i) = Instr::decode(word) {
                let text = disasm_instr(i);
                let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
                assert_eq!(reassembled.len(), 1);
                assert_eq!(Instr::decode(reassembled[0]), Some(i), "{text}");
            }
        }
    }
}
