//! A private direct-mapped cache between an IP and its bus interface.
//!
//! The paper's §V argues that overhead depends on "the percentage of
//! computation time versus communication time": a cache changes exactly
//! that ratio by absorbing repeated reads before they ever reach the
//! firewall and the bus. [`CachedMaster`] wraps any [`BusMaster`] and
//! filters its port traffic:
//!
//! * **read hit** — served locally, zero bus transactions, zero checks;
//! * **read miss** — the whole line is fetched word by word (honest
//!   traffic: every fill word is a checked bus transaction);
//! * **write** — write-through: always forwarded; a cached word is
//!   updated in place, narrower writes invalidate the line.
//!
//! The cache is *private*: coherence with other masters is out of scope
//! (use it for thread-private data, as the tests do). Security-wise the
//! cache sits on the IP side of the Local Firewall, so everything that
//! does reach the interface is still checked — a hit never bypasses a
//! *new* authorization, it reuses data that was already checked on the
//! fill (the classic cache/MPU interaction, preserved faithfully).

use std::collections::VecDeque;

use secbus_bus::{Op, Response, TxnId, Width};
use secbus_sim::{Cycle, Stats};

use crate::master::{BusMaster, MasterAccess};

/// Cache shape.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of lines (power of two).
    pub lines: usize,
    /// Words per line (power of two).
    pub line_words: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            lines: 64,
            line_words: 4,
        }
    }
}

struct Line {
    tag: Option<u32>,
    words: Vec<u32>,
}

/// The cache core: lookup/install/update on word addresses.
struct CacheArray {
    config: CacheConfig,
    lines: Vec<Line>,
}

impl CacheArray {
    fn new(config: CacheConfig) -> Self {
        assert!(
            config.lines.is_power_of_two(),
            "lines must be a power of two"
        );
        assert!(
            config.line_words.is_power_of_two(),
            "line words must be a power of two"
        );
        CacheArray {
            lines: (0..config.lines)
                .map(|_| Line {
                    tag: None,
                    words: vec![0; config.line_words],
                })
                .collect(),
            config,
        }
    }

    fn line_bytes(&self) -> u32 {
        (self.config.line_words * 4) as u32
    }

    fn split(&self, addr: u32) -> (u32, usize, usize) {
        let line_base = addr & !(self.line_bytes() - 1);
        let index = ((line_base / self.line_bytes()) as usize) & (self.config.lines - 1);
        let word = ((addr - line_base) / 4) as usize;
        (line_base, index, word)
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        let (line_base, index, word) = self.split(addr);
        let line = &self.lines[index];
        (line.tag == Some(line_base)).then(|| line.words[word])
    }

    fn install(&mut self, line_base: u32, words: Vec<u32>) {
        let (_, index, _) = self.split(line_base);
        debug_assert_eq!(words.len(), self.config.line_words);
        self.lines[index] = Line {
            tag: Some(line_base),
            words,
        };
    }

    fn update_word(&mut self, addr: u32, value: u32) {
        let (line_base, index, word) = self.split(addr);
        let line = &mut self.lines[index];
        if line.tag == Some(line_base) {
            line.words[word] = value;
        }
    }

    fn invalidate(&mut self, addr: u32) {
        let (line_base, index, _) = self.split(addr);
        let line = &mut self.lines[index];
        if line.tag == Some(line_base) {
            line.tag = None;
        }
    }
}

/// An in-progress line fill.
struct Fill {
    /// The id handed to the wrapped device.
    local_id: TxnId,
    /// The device's original request.
    addr: u32,
    width: Width,
    line_base: u32,
    collected: Vec<u32>,
    outstanding: Option<TxnId>,
}

/// A [`BusMaster`] wrapper adding a private direct-mapped read cache.
pub struct CachedMaster {
    device: Box<dyn BusMaster>,
    cache: CacheArray,
    fill: Option<Fill>,
    /// Synthesized hit responses awaiting the device's poll.
    hits: VecDeque<Response>,
    /// Local ids for cache-served transactions (top bit set so they can
    /// never collide with bus-allocated ids in any realistic run).
    next_local: u64,
    stats: Stats,
}

impl CachedMaster {
    /// Wrap `device` with a cache of the given shape.
    pub fn new(device: Box<dyn BusMaster>, config: CacheConfig) -> Self {
        CachedMaster {
            device,
            cache: CacheArray::new(config),
            fill: None,
            hits: VecDeque::new(),
            next_local: 1 << 63,
            stats: Stats::new(),
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.stats.counter("cache.hits")
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.stats.counter("cache.misses")
    }

    /// Hit rate in [0, 1]; `None` before any cacheable access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits() + self.misses();
        (total > 0).then(|| self.hits() as f64 / total as f64)
    }
}

fn extract(word: u32, addr: u32, width: Width) -> u32 {
    let shift = (addr & 3) * 8;
    (word >> shift) & width.mask()
}

/// The port the wrapped device sees.
struct CachePort<'a> {
    real: &'a mut dyn MasterAccess,
    cache: &'a mut CacheArray,
    fill: &'a mut Option<Fill>,
    hits: &'a mut VecDeque<Response>,
    next_local: &'a mut u64,
    stats: &'a mut Stats,
    now: Cycle,
}

impl CachePort<'_> {
    fn alloc_local(&mut self) -> TxnId {
        let id = TxnId(*self.next_local);
        *self.next_local += 1;
        id
    }

    /// Drive an in-progress fill forward: issue the next word and absorb
    /// fill responses. Returns a completed device response when done.
    fn pump_fill(&mut self) -> Option<Response> {
        let fill = self.fill.as_mut()?;
        if fill.outstanding.is_none() {
            let word_idx = fill.collected.len();
            if word_idx < self.cache.config.line_words {
                let addr = fill.line_base + (word_idx as u32) * 4;
                let id = self.real.issue(Op::Read, addr, Width::Word, 0, 1);
                fill.outstanding = Some(id);
            }
        }
        if let Some(resp) = self.real.poll() {
            let fill = self.fill.as_mut().expect("fill in progress");
            if Some(resp.txn) != fill.outstanding {
                // A dead letter for an already-answered fill word must
                // not be collected into the line; account and drop it.
                self.stats.incr("cache.stale_responses");
                return None;
            }
            fill.outstanding = None;
            if !resp.is_ok() {
                // A fill word was refused (firewall discard, decode…):
                // abort the fill and surface the error for the original
                // access. Nothing is installed.
                let fill = self.fill.take().expect("fill present");
                self.stats.incr("cache.fill_errors");
                return Some(Response {
                    txn: fill.local_id,
                    data: 0,
                    result: resp.result,
                    completed_at: resp.completed_at,
                });
            }
            let fill = self.fill.as_mut().expect("fill in progress");
            fill.collected.push(resp.data);
            if fill.collected.len() == self.cache.config.line_words {
                let fill = self.fill.take().expect("fill present");
                let word = fill.collected[((fill.addr - fill.line_base) / 4) as usize];
                self.cache.install(fill.line_base, fill.collected);
                return Some(Response {
                    txn: fill.local_id,
                    data: extract(word, fill.addr, fill.width),
                    result: Ok(()),
                    completed_at: resp.completed_at,
                });
            }
        }
        None
    }
}

impl MasterAccess for CachePort<'_> {
    fn issue(&mut self, op: Op, addr: u32, width: Width, data: u32, burst: u16) -> TxnId {
        match op {
            Op::Read if burst <= 1 => {
                if let Some(word) = self.cache.lookup(addr & !3) {
                    self.stats.incr("cache.hits");
                    let id = self.alloc_local();
                    self.hits.push_back(Response {
                        txn: id,
                        data: extract(word, addr, width),
                        result: Ok(()),
                        completed_at: self.now,
                    });
                    id
                } else {
                    self.stats.incr("cache.misses");
                    debug_assert!(self.fill.is_none(), "single outstanding device access");
                    let id = self.alloc_local();
                    *self.fill = Some(Fill {
                        local_id: id,
                        addr,
                        width,
                        line_base: addr & !(self.cache.line_bytes() - 1),
                        collected: Vec::with_capacity(self.cache.config.line_words),
                        outstanding: None,
                    });
                    id
                }
            }
            Op::Write => {
                // Write-through; keep a cached word coherent, drop the
                // line for narrower-than-word updates.
                if width == Width::Word {
                    self.cache.update_word(addr, data);
                } else {
                    self.cache.invalidate(addr);
                }
                self.stats.incr("cache.write_through");
                self.real.issue(op, addr, width, data, burst)
            }
            _ => {
                // Burst reads (DMA-style) bypass the cache entirely.
                self.real.issue(op, addr, width, data, burst)
            }
        }
    }

    fn poll(&mut self) -> Option<Response> {
        if let Some(hit) = self.hits.pop_front() {
            return Some(hit);
        }
        if self.fill.is_some() {
            return self.pump_fill();
        }
        self.real.poll()
    }
}

impl BusMaster for CachedMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        let mut port = CachePort {
            real: mem,
            cache: &mut self.cache,
            fill: &mut self.fill,
            hits: &mut self.hits,
            next_local: &mut self.next_local,
            stats: &mut self.stats,
            now,
        };
        self.device.tick(&mut port, now);
    }

    fn halted(&self) -> bool {
        self.device.halted() && self.fill.is_none()
    }

    fn label(&self) -> &str {
        self.device.label()
    }

    fn stats(&self) -> &Stats {
        // The wrapped device's own counters remain authoritative for its
        // work; cache counters are read via hits()/misses().
        self.device.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::core::Mb32Core;
    use crate::master::InstantMem;

    fn run(master: &mut CachedMaster, mem: &mut InstantMem, max: u64) {
        for c in 0..max {
            if master.halted() {
                return;
            }
            master.tick(mem, Cycle(c));
        }
        panic!("did not halt");
    }

    #[test]
    fn repeated_reads_hit_after_one_fill() {
        // Loop reading the same word 32 times.
        let src = r"
            addi r1, r0, 64
            addi r3, r0, 32
            addi r4, r0, 0
        loop:
            lw   r2, 0(r1)
            addi r4, r4, 1
            blt  r4, r3, loop
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(Box::new(core), CacheConfig::default());
        let mut mem = InstantMem::new(256);
        mem.load(64, &0xfeed_beefu32.to_le_bytes());
        run(&mut cached, &mut mem, 10_000);
        assert_eq!(cached.misses(), 1, "one fill");
        assert_eq!(cached.hits(), 31);
        // Only the 4 fill words hit the memory.
        let reads = mem.issued.iter().filter(|(op, ..)| *op == Op::Read).count();
        assert_eq!(reads, 4);
    }

    #[test]
    fn read_data_is_correct_through_the_cache() {
        let src = r"
            addi r1, r0, 16
            lw   r2, 0(r1)    ; miss -> fill
            lw   r3, 4(r1)    ; hit (same line)
            lb   r4, 1(r1)    ; hit, byte extract
            lhu  r5, 6(r1)    ; hit, half extract
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(
            Box::new(core),
            CacheConfig {
                lines: 4,
                line_words: 4,
            },
        );
        let mut mem = InstantMem::new(64);
        mem.load(16, &0x4433_2211u32.to_le_bytes());
        mem.load(20, &0x8877_6655u32.to_le_bytes());
        run(&mut cached, &mut mem, 10_000);
        let core = cached.device.as_any().downcast_ref::<Mb32Core>().unwrap();
        assert_eq!(core.reg(crate::isa::Reg(2)), 0x4433_2211);
        assert_eq!(core.reg(crate::isa::Reg(3)), 0x8877_6655);
        assert_eq!(core.reg(crate::isa::Reg(4)), 0x22);
        assert_eq!(core.reg(crate::isa::Reg(5)), 0x8877);
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 3);
    }

    #[test]
    fn word_writes_keep_the_cache_coherent() {
        let src = r"
            addi r1, r0, 32
            lw   r2, 0(r1)    ; fill
            addi r3, r0, 99
            sw   r3, 0(r1)    ; write-through + cache update
            lw   r4, 0(r1)    ; hit must see 99
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(Box::new(core), CacheConfig::default());
        let mut mem = InstantMem::new(64);
        run(&mut cached, &mut mem, 10_000);
        let core = cached.device.as_any().downcast_ref::<Mb32Core>().unwrap();
        assert_eq!(core.reg(crate::isa::Reg(4)), 99);
        // The write also reached memory (write-through).
        assert_eq!(mem.word(32), 99);
    }

    #[test]
    fn narrow_writes_invalidate() {
        let src = r"
            addi r1, r0, 32
            lw   r2, 0(r1)    ; fill
            addi r3, r0, 0xAB
            sb   r3, 0(r1)    ; narrow write -> line invalidated
            lw   r4, 0(r1)    ; must MISS and refetch the true value
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(Box::new(core), CacheConfig::default());
        let mut mem = InstantMem::new(64);
        run(&mut cached, &mut mem, 10_000);
        let core = cached.device.as_any().downcast_ref::<Mb32Core>().unwrap();
        assert_eq!(core.reg(crate::isa::Reg(4)), 0xAB);
        assert_eq!(cached.misses(), 2, "the sb dropped the line");
    }

    #[test]
    fn fill_errors_propagate_to_the_device() {
        // Reading past the device: the fill word errors, the core records
        // an access error and keeps going.
        let src = r"
            addi r1, r0, 0
            li   r2, 0x1000
            lw   r3, 0(r2)   ; fill errors out of range
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(Box::new(core), CacheConfig::default());
        let mut mem = InstantMem::new(64);
        run(&mut cached, &mut mem, 10_000);
        let core = cached.device.as_any().downcast_ref::<Mb32Core>().unwrap();
        assert_eq!(core.stats().counter("core.access_errors"), 1);
        assert_eq!(cached.stats_cache_fill_errors(), 1);
    }

    impl CachedMaster {
        fn stats_cache_fill_errors(&self) -> u64 {
            self.stats.counter("cache.fill_errors")
        }
    }

    #[test]
    fn conflicting_lines_evict() {
        // Two addresses mapping to the same set (lines=4, line=16B:
        // stride 64 collides).
        let src = r"
            addi r1, r0, 0
            addi r2, r0, 64
            lw   r3, 0(r1)   ; miss
            lw   r4, 0(r2)   ; miss, evicts line 0
            lw   r5, 0(r1)   ; miss again
            halt
        ";
        let core = Mb32Core::with_local_program("c", 0, assemble(src).unwrap());
        let mut cached = CachedMaster::new(
            Box::new(core),
            CacheConfig {
                lines: 4,
                line_words: 4,
            },
        );
        let mut mem = InstantMem::new(128);
        run(&mut cached, &mut mem, 10_000);
        assert_eq!(cached.misses(), 3);
        assert_eq!(cached.hits(), 0);
    }

    #[test]
    fn hit_rate_reporting() {
        let cachedless = CachedMaster::new(
            Box::new(Mb32Core::with_local_program("c", 0, vec![])),
            CacheConfig::default(),
        );
        assert_eq!(cachedless.hit_rate(), None);
    }
}
