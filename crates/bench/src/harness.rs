//! Shared scaffolding for the soak binaries.
//!
//! Every soak (S-13 chaos, S-14 crash, S-15 NoC, S-16 perf, S-18
//! campaign, S-19 overload) speaks the same tiny CLI dialect — `--seed
//! N`, `--smoke`, `--serial` — and ends the same way: print the JSON
//! report, exit non-zero iff a wedge (or gate failure) was detected. The
//! parsing and exit logic live here so the binaries only describe their
//! sweep, and so a new soak can't drift from the dialect by accident.

use secbus_sim::Json;

/// The arguments every soak binary understands. `--serial` is consumed
/// separately by [`crate::sweep_threads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakArgs {
    /// Sweep seed: same seed → byte-identical JSON.
    pub seed: u64,
    /// CI-sized subset of the sweep.
    pub smoke: bool,
}

impl SoakArgs {
    /// Parse `--seed N` / `--smoke` from the process arguments; an
    /// absent `--seed` falls back to the binary's default.
    ///
    /// # Panics
    /// Panics (with a usage message) when `--seed` is present without a
    /// parseable u64 — a soak silently running the wrong seed would
    /// defeat the reproducibility contract.
    pub fn parse(default_seed: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_slice(&args, default_seed)
    }

    /// Testable core of [`SoakArgs::parse`].
    pub fn from_slice(args: &[String], default_seed: u64) -> Self {
        let seed = args
            .iter()
            .skip_while(|a| a.as_str() != "--seed")
            .nth(1)
            .map(|s| s.parse::<u64>().expect("--seed takes a u64"))
            .unwrap_or(default_seed);
        let smoke = args.iter().any(|a| a == "--smoke");
        SoakArgs { seed, smoke }
    }
}

/// Print the report and terminate: exit code 1 with `reason` on stderr
/// when the sweep detected a wedge or gate failure, 0 otherwise. The
/// report is printed either way — a failing soak still hands CI its
/// evidence.
pub fn finish(bin: &str, report: &Json, failed: bool, reason: &str) -> ! {
    println!("{}", report.render_pretty());
    if failed {
        eprintln!("{bin}: {reason}");
        std::process::exit(1);
    }
    std::process::exit(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_apply_when_flags_are_absent() {
        let a = SoakArgs::from_slice(&argv(&["soak"]), 0xABC);
        assert_eq!(
            a,
            SoakArgs {
                seed: 0xABC,
                smoke: false
            }
        );
    }

    #[test]
    fn seed_and_smoke_are_parsed_anywhere_in_the_line() {
        let a = SoakArgs::from_slice(&argv(&["soak", "--smoke", "--seed", "42"]), 1);
        assert_eq!(
            a,
            SoakArgs {
                seed: 42,
                smoke: true
            }
        );
        let b = SoakArgs::from_slice(&argv(&["soak", "--seed", "7"]), 1);
        assert_eq!(b.seed, 7);
        assert!(!b.smoke);
    }

    #[test]
    #[should_panic(expected = "--seed takes a u64")]
    fn a_malformed_seed_is_refused_loudly() {
        SoakArgs::from_slice(&argv(&["soak", "--seed", "banana"]), 1);
    }
}
