//! S-22: host-side crypto throughput across backends — the measurement
//! logic behind `perf_soak`'s `host` section.
//!
//! The paper's Cryptographic Core and Integrity Core are hardware
//! blocks; this module prices how close the software model's hot paths
//! get to "as fast as the hardware allows" on the *host*:
//!
//! * **CTR ciphering** — the per-16-byte software reference loop vs the
//!   batched keystream on the soft backend vs the batched keystream on
//!   the accel (AES-NI multi-lane) backend, in GB/s;
//! * **SHA-256** — bulk hashing on the soft vs accel (SHA-NI) backend;
//! * **Merkle** — serial vs parallel tree build, and bulk leaf
//!   verification throughput (verifies/s).
//!
//! Every optimized path is also checked byte-identical against its
//! reference inside the measurement ([`HostPerf::outputs_match`]), so a
//! fast-but-wrong backend can never post a number.
//!
//! Timing discipline follows [`crate::perf::compare_cc`]: process CPU
//! time where available (immune to preemption), wall clock as the
//! fallback, all paths timed back-to-back in paired rounds with the
//! median round (by the headline accel-vs-per-block ratio) reported, so
//! slow frequency drift cancels out of every ratio. Each path gets its
//! own rep count so that even the multi-GB/s windows stay long enough
//! for the 100 Hz CPU clock.

use std::time::Instant;

use secbus_crypto::merkle::leaf_digest;
use secbus_crypto::{host_caps, sha256_with, CryptoBackend, MemoryCipher, MerkleTree};

/// Shape of the host-throughput workload.
#[derive(Debug, Clone, Copy)]
pub struct HostWorkload {
    /// Bytes per cipher/hash burst (the working buffer size).
    pub burst_bytes: usize,
    /// Total bytes through the per-block soft CTR reference.
    pub ctr_per_block_bytes: usize,
    /// Total bytes through the batched soft CTR path.
    pub ctr_soft_bytes: usize,
    /// Total bytes through the batched accel CTR path.
    pub ctr_accel_bytes: usize,
    /// Total bytes through soft SHA-256.
    pub sha_soft_bytes: usize,
    /// Total bytes through accel SHA-256.
    pub sha_accel_bytes: usize,
    /// Leaves in the Merkle build/verify comparison.
    pub merkle_leaves: usize,
    /// Consecutive builds per timed window — a single build is shorter
    /// than the 100 Hz CPU-clock tick, so windows are stretched and the
    /// per-build time divided back out.
    pub merkle_build_reps: usize,
    /// Paired timing rounds (the median round is reported).
    pub rounds: usize,
}

impl HostWorkload {
    /// Baseline-recording sizes: every window comfortably past the CPU
    /// clock granularity even at multi-GB/s.
    pub fn full() -> Self {
        HostWorkload {
            burst_bytes: 64 * 1024,
            ctr_per_block_bytes: 48 << 20,
            ctr_soft_bytes: 96 << 20,
            ctr_accel_bytes: 768 << 20,
            sha_soft_bytes: 96 << 20,
            sha_accel_bytes: 512 << 20,
            merkle_leaves: 1 << 15,
            merkle_build_reps: 16,
            rounds: 5,
        }
    }

    /// CI sizes. The windows shrink but stay tens of milliseconds —
    /// ratios (which is all the gates compare) survive; absolute GB/s
    /// get noisier, which the trajectory consumers know.
    pub fn smoke() -> Self {
        HostWorkload {
            burst_bytes: 64 * 1024,
            ctr_per_block_bytes: 16 << 20,
            ctr_soft_bytes: 32 << 20,
            ctr_accel_bytes: 256 << 20,
            sha_soft_bytes: 32 << 20,
            sha_accel_bytes: 192 << 20,
            merkle_leaves: 1 << 14,
            merkle_build_reps: 16,
            rounds: 3,
        }
    }
}

/// One timed path: total bytes moved in total nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Payload bytes processed.
    pub bytes: u64,
    /// Host (CPU-time preferred) nanoseconds.
    pub ns: u64,
}

impl Throughput {
    /// Gigabytes (1e9) per second.
    pub fn gbps(&self) -> f64 {
        self.bytes as f64 / self.ns.max(1) as f64
    }
}

/// The measured host-throughput comparison.
#[derive(Debug, Clone, Copy)]
pub struct HostPerf {
    /// Host has AES-NI.
    pub aesni: bool,
    /// Host has the SHA extensions.
    pub shani: bool,
    /// Per-16-byte-block CTR on the software backend (the reference
    /// the ≥10x acceptance gate is measured against).
    pub ctr_per_block_soft: Throughput,
    /// Batched CTR on the software backend.
    pub ctr_batched_soft: Throughput,
    /// Batched CTR on the accel backend (AES-NI multi-lane; identical
    /// to soft when the host lacks it).
    pub ctr_batched_accel: Throughput,
    /// Bulk SHA-256 on the software backend.
    pub sha_soft: Throughput,
    /// Bulk SHA-256 on the accel backend.
    pub sha_accel: Throughput,
    /// Leaves in the Merkle comparison.
    pub merkle_leaves: usize,
    /// Worker threads the parallel build used.
    pub merkle_threads: usize,
    /// Single-threaded tree build, nanoseconds.
    pub merkle_build_serial_ns: u64,
    /// Parallel tree build, nanoseconds.
    pub merkle_build_parallel_ns: u64,
    /// Bulk leaf verifications per second ([`MerkleTree::verify_all`]).
    pub merkle_verifies_per_sec: f64,
    /// Every optimized path matched its reference byte-for-byte:
    /// soft/accel ciphertext, soft/accel digests, serial/parallel roots.
    pub outputs_match: bool,
}

impl HostPerf {
    /// The headline ratio: batched accel CTR over the per-block soft
    /// reference — the "≥10x on AES-NI hosts" acceptance number.
    pub fn ctr_accel_vs_per_block(&self) -> f64 {
        self.ctr_batched_accel.gbps() / self.ctr_per_block_soft.gbps().max(f64::MIN_POSITIVE)
    }

    /// Batched soft CTR over the per-block soft reference (what
    /// batching alone buys, no hardware involved).
    pub fn ctr_batched_vs_per_block(&self) -> f64 {
        self.ctr_batched_soft.gbps() / self.ctr_per_block_soft.gbps().max(f64::MIN_POSITIVE)
    }

    /// Accel SHA-256 over soft SHA-256.
    pub fn sha_speedup(&self) -> f64 {
        self.sha_accel.gbps() / self.sha_soft.gbps().max(f64::MIN_POSITIVE)
    }

    /// Serial Merkle build over parallel build.
    pub fn merkle_build_speedup(&self) -> f64 {
        self.merkle_build_serial_ns as f64 / self.merkle_build_parallel_ns.max(1) as f64
    }
}

/// Process CPU time preferred, wall clock fallback (same contract as
/// `perf::compare_cc`).
fn timed(work: &mut dyn FnMut()) -> u64 {
    let cpu_ns = || -> Option<u64> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let mut fields = stat[stat.rfind(')')? + 1..].split_whitespace();
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        Some((utime + stime) * 10_000_000)
    };
    let wall = Instant::now();
    let cpu = cpu_ns();
    work();
    match (cpu, cpu_ns()) {
        (Some(before), Some(after)) if after > before => after - before,
        _ => wall.elapsed().as_nanos() as u64,
    }
}

/// Measure the host-throughput comparison.
pub fn measure_host(w: &HostWorkload) -> HostPerf {
    let caps = host_caps();
    let key = b"s22-host-perfkey";
    let soft = MemoryCipher::with_backend(key, CryptoBackend::Soft);
    let accel = MemoryCipher::with_backend(key, CryptoBackend::Accel);
    let addr = 0x4000_0000u64;

    // Correctness witnesses first — a fast-but-wrong path must never
    // post a number.
    let mut outputs_match = true;
    {
        let mut a = vec![0x5au8; w.burst_bytes];
        let mut b = a.clone();
        soft.apply(addr, 7, &mut a);
        accel.apply(addr, 7, &mut b);
        let mut per_block = vec![0x5au8; w.burst_bytes];
        for (i, chunk) in per_block.chunks_mut(16).enumerate() {
            soft.apply(addr + 16 * i as u64, 7, chunk);
        }
        outputs_match &= a == b && a == per_block;
        let data = vec![0xc3u8; w.burst_bytes + 13]; // straddle a block edge
        outputs_match &=
            sha256_with(&data, CryptoBackend::Soft) == sha256_with(&data, CryptoBackend::Accel);
    }

    let leaves: Vec<_> = (0..w.merkle_leaves)
        .map(|i| leaf_digest(i as u64, 0, &(i as u64).to_le_bytes()))
        .collect();
    let threads = crate::sweep_threads();

    let reps = |total: usize| (total / w.burst_bytes).max(1) as u32;
    let mut buf = vec![0xa5u8; w.burst_bytes];

    // Paired rounds: every path timed back-to-back, median round by the
    // headline ratio.
    struct Round {
        per_block_ns: u64,
        soft_ns: u64,
        accel_ns: u64,
        sha_soft_ns: u64,
        sha_accel_ns: u64,
        build_serial_ns: u64,
        build_parallel_ns: u64,
        verify_ns: u64,
    }
    let mut rounds: Vec<Round> = (0..w.rounds.max(1))
        .map(|_| {
            let per_block_ns = timed(&mut || {
                for _ in 0..reps(w.ctr_per_block_bytes) {
                    for (i, chunk) in buf.chunks_mut(16).enumerate() {
                        soft.apply(addr + 16 * i as u64, 3, chunk);
                    }
                }
            });
            let soft_ns = timed(&mut || {
                for _ in 0..reps(w.ctr_soft_bytes) {
                    soft.apply(addr, 3, &mut buf);
                }
            });
            let accel_ns = timed(&mut || {
                for _ in 0..reps(w.ctr_accel_bytes) {
                    accel.apply(addr, 3, &mut buf);
                }
            });
            let sha_soft_ns = timed(&mut || {
                for _ in 0..reps(w.sha_soft_bytes) {
                    std::hint::black_box(sha256_with(&buf, CryptoBackend::Soft));
                }
            });
            let sha_accel_ns = timed(&mut || {
                for _ in 0..reps(w.sha_accel_bytes) {
                    std::hint::black_box(sha256_with(&buf, CryptoBackend::Accel));
                }
            });
            let build_reps = w.merkle_build_reps.max(1) as u64;
            let mut serial_root = None;
            let build_serial_ns = timed(&mut || {
                for _ in 0..build_reps {
                    serial_root = Some(MerkleTree::build_with_threads(&leaves, 1).root());
                }
            }) / build_reps;
            let mut parallel_tree = None;
            let build_parallel_ns = timed(&mut || {
                for _ in 0..build_reps {
                    parallel_tree = Some(MerkleTree::build_with_threads(&leaves, threads));
                }
            }) / build_reps;
            let tree = parallel_tree.expect("parallel build ran");
            outputs_match &= serial_root == Some(tree.root());
            let mut verdicts = Vec::new();
            let verify_ns = timed(&mut || {
                verdicts = tree.verify_all(&leaves);
            });
            outputs_match &= verdicts.iter().all(|&v| v);
            Round {
                per_block_ns,
                soft_ns,
                accel_ns,
                sha_soft_ns,
                sha_accel_ns,
                build_serial_ns,
                build_parallel_ns,
                verify_ns,
            }
        })
        .collect();
    // Median by (per-block ns/byte) / (accel ns/byte), cross-multiplied
    // in integers. Tie-break by accel window length for determinism.
    let pb_bytes = u64::from(reps(w.ctr_per_block_bytes)) * w.burst_bytes as u64;
    let ac_bytes = u64::from(reps(w.ctr_accel_bytes)) * w.burst_bytes as u64;
    rounds.sort_by(|a, b| {
        (u128::from(a.per_block_ns) * u128::from(b.accel_ns))
            .cmp(&(u128::from(b.per_block_ns) * u128::from(a.accel_ns)))
            .then(a.accel_ns.cmp(&b.accel_ns))
    });
    let r = &rounds[rounds.len() / 2];

    HostPerf {
        aesni: caps.aesni,
        shani: caps.shani,
        ctr_per_block_soft: Throughput {
            bytes: pb_bytes,
            ns: r.per_block_ns,
        },
        ctr_batched_soft: Throughput {
            bytes: u64::from(reps(w.ctr_soft_bytes)) * w.burst_bytes as u64,
            ns: r.soft_ns,
        },
        ctr_batched_accel: Throughput {
            bytes: ac_bytes,
            ns: r.accel_ns,
        },
        sha_soft: Throughput {
            bytes: u64::from(reps(w.sha_soft_bytes)) * w.burst_bytes as u64,
            ns: r.sha_soft_ns,
        },
        sha_accel: Throughput {
            bytes: u64::from(reps(w.sha_accel_bytes)) * w.burst_bytes as u64,
            ns: r.sha_accel_ns,
        },
        merkle_leaves: w.merkle_leaves,
        merkle_threads: threads,
        merkle_build_serial_ns: r.build_serial_ns,
        merkle_build_parallel_ns: r.build_parallel_ns,
        merkle_verifies_per_sec: w.merkle_leaves as f64 / (r.verify_ns.max(1) as f64 / 1e9),
        outputs_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny workload end-to-end: outputs match, every window is
    /// nonzero, and the speedup accessors are finite.
    #[test]
    fn tiny_workload_measures_and_matches() {
        let w = HostWorkload {
            burst_bytes: 4096,
            ctr_per_block_bytes: 64 * 1024,
            ctr_soft_bytes: 64 * 1024,
            ctr_accel_bytes: 64 * 1024,
            sha_soft_bytes: 64 * 1024,
            sha_accel_bytes: 64 * 1024,
            merkle_leaves: 256,
            merkle_build_reps: 2,
            rounds: 1,
        };
        let p = measure_host(&w);
        assert!(p.outputs_match, "cross-backend outputs diverged");
        assert!(p.ctr_per_block_soft.ns > 0 && p.ctr_batched_accel.ns > 0);
        assert!(p.ctr_accel_vs_per_block().is_finite());
        assert!(p.sha_speedup().is_finite());
        assert!(p.merkle_build_speedup().is_finite());
        assert!(p.merkle_verifies_per_sec > 0.0);
        // Capability flags agree with the crypto crate's probe.
        let caps = host_caps();
        assert_eq!(p.aesni, caps.aesni);
        assert_eq!(p.shani, caps.shani);
    }

    #[test]
    fn throughput_gbps_is_bytes_per_ns() {
        let t = Throughput {
            bytes: 2_000_000_000,
            ns: 1_000_000_000,
        };
        assert!((t.gbps() - 2.0).abs() < 1e-9);
    }
}
