//! S-2: execution-time overhead vs traffic shape.
//!
//! The paper (§V-A): "The impact of the protection mechanisms on the
//! global execution time depends on the percentage of computation time
//! versus communication time. Furthermore the latency overhead is also
//! impacted by the percentage of internal communication versus external
//! communication."
//!
//! Both knobs are swept here: `period` (cycles of computation between
//! accesses) and `external_pct` (share of accesses that go to the
//! LCF-protected external memory instead of internal BRAM). Overhead is
//! the protected/unprotected ratio of the cycles needed to complete a
//! fixed number of accesses.

use secbus_bus::{AddrRange, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::SimRng;
use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN, DDR_PRIVATE_BASE};
use secbus_soc::{Soc, SocBuilder};

const BRAM_BASE: u32 = 0x2000_0000;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Computation cycles between accesses.
    pub period: u64,
    /// Percentage of accesses targeting external memory.
    pub external_pct: u32,
    /// Cycles to finish the workload, unprotected.
    pub baseline_cycles: u64,
    /// Cycles to finish the workload, with firewalls + LCF.
    pub protected_cycles: u64,
}

impl OverheadRow {
    /// Execution-time overhead in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_cycles == 0 {
            return 0.0;
        }
        (self.protected_cycles as f64 / self.baseline_cycles as f64 - 1.0) * 100.0
    }
}

fn build_soc(period: u64, external_pct: u32, total_ops: u64, protected: bool, seed: u64) -> Soc {
    let internal_weight = 100 - external_pct.min(100);
    let mut windows = Vec::new();
    if internal_weight > 0 {
        windows.push((BRAM_BASE, 0x400u32, internal_weight));
    }
    if external_pct > 0 {
        windows.push((DDR_PRIVATE_BASE, 0x400u32, external_pct));
    }
    let master = SyntheticMaster::new(
        "gen",
        SyntheticConfig {
            windows,
            read_ratio: 0.5,
            widths: vec![Width::Word],
            burst: 1,
            period,
            total_ops,
        },
        SimRng::new(seed),
    );
    let policies = ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(DDR_PRIVATE_BASE, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
    ])
    .unwrap();
    let mut b = SocBuilder::new();
    if !protected {
        b = b.without_security();
    }
    b.add_protected_master(Box::new(master), policies)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ExternalDdr::new(DDR_LEN),
            Some(lcf_policies()),
        )
        .build()
}

/// Measure one sweep point: cycles to complete `total_ops` accesses.
pub fn traffic_overhead(period: u64, external_pct: u32, total_ops: u64, seed: u64) -> OverheadRow {
    let budget = 10_000_000;
    let mut base = build_soc(period, external_pct, total_ops, false, seed);
    let baseline_cycles = base.run_until_halt(budget);
    let mut prot = build_soc(period, external_pct, total_ops, true, seed);
    let protected_cycles = prot.run_until_halt(budget);
    assert!(
        baseline_cycles < budget && protected_cycles < budget,
        "workload did not finish"
    );
    OverheadRow {
        period,
        external_pct,
        baseline_cycles,
        protected_cycles,
    }
}

/// Multi-seed statistics for one sweep point.
#[derive(Debug, Clone)]
pub struct OverheadStat {
    /// Computation period.
    pub period: u64,
    /// External-access percentage.
    pub external_pct: u32,
    /// Mean overhead across seeds (%).
    pub mean_pct: f64,
    /// Smallest overhead observed (%).
    pub min_pct: f64,
    /// Largest overhead observed (%).
    pub max_pct: f64,
}

/// Evaluate one grid point over several seeds (reported as mean and
/// range, so EXPERIMENTS.md trends are not one-seed artefacts).
pub fn traffic_overhead_multi(
    period: u64,
    external_pct: u32,
    total_ops: u64,
    seeds: &[u64],
) -> OverheadStat {
    assert!(!seeds.is_empty());
    let pcts: Vec<f64> = crate::par_map(seeds.to_vec(), |s| {
        traffic_overhead(period, external_pct, total_ops, s).overhead_pct()
    });
    let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
    OverheadStat {
        period,
        external_pct,
        mean_pct: mean,
        min_pct: pcts.iter().copied().fold(f64::INFINITY, f64::min),
        max_pct: pcts.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// The full sweep grid, evaluated in parallel (independent simulations).
pub fn sweep_traffic(
    periods: &[u64],
    external_pcts: &[u32],
    total_ops: u64,
    seed: u64,
) -> Vec<OverheadRow> {
    let grid: Vec<(u64, u32)> = periods
        .iter()
        .flat_map(|&p| external_pcts.iter().map(move |&e| (p, e)))
        .collect();
    crate::par_map(grid, |(p, e)| traffic_overhead(p, e, total_ops, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_costs_cycles() {
        let row = traffic_overhead(4, 0, 100, 1);
        assert!(row.protected_cycles > row.baseline_cycles);
        assert!(row.overhead_pct() > 0.0);
    }

    #[test]
    fn more_computation_means_less_overhead() {
        // The paper: promoting computation over communication improves the
        // picture — overhead shrinks as the period grows.
        let busy = traffic_overhead(1, 50, 150, 2);
        let relaxed = traffic_overhead(64, 50, 150, 2);
        assert!(
            relaxed.overhead_pct() < busy.overhead_pct(),
            "relaxed {:.1}% vs busy {:.1}%",
            relaxed.overhead_pct(),
            busy.overhead_pct()
        );
    }

    #[test]
    fn external_traffic_costs_more_than_internal() {
        // The paper: external communications have a larger overhead due to
        // the cryptography resources.
        let internal = traffic_overhead(4, 0, 150, 3);
        let external = traffic_overhead(4, 100, 150, 3);
        assert!(
            external.overhead_pct() > internal.overhead_pct(),
            "external {:.1}% vs internal {:.1}%",
            external.overhead_pct(),
            internal.overhead_pct()
        );
    }

    #[test]
    fn multi_seed_stats_bracket_the_mean() {
        let stat = traffic_overhead_multi(4, 50, 80, &[1, 2, 3]);
        assert!(stat.min_pct <= stat.mean_pct && stat.mean_pct <= stat.max_pct);
        assert!(stat.mean_pct > 0.0);
    }

    #[test]
    fn sweep_covers_grid_in_order_independent_way() {
        let rows = sweep_traffic(&[1, 16], &[0, 100], 60, 4);
        assert_eq!(rows.len(), 4);
        // Deterministic per point regardless of parallel scheduling.
        let again = sweep_traffic(&[1, 16], &[0, 100], 60, 4);
        for (a, b) in rows.iter().zip(again.iter()) {
            assert_eq!(a.protected_cycles, b.protected_cycles);
        }
    }
}
