//! Activity collection for the energy model (S-10): harvest the event
//! counters a run left behind and hand them to `secbus-area`'s model.

use secbus_area::{ActivityCounts, EnergyModel, EnergyReport};
use secbus_sim::Cycle;
use secbus_soc::Soc;

/// Collect activity counts from a finished run (`since` = run start).
pub fn collect_activity(soc: &Soc, since: Cycle) -> ActivityCounts {
    let bus = soc.bus().stats();
    let mut sb_checks = 0;
    for i in 0..soc.master_count() {
        if let Some(fw) = soc.master_firewall(i) {
            sb_checks += fw.stats().counter("fw.checked");
        }
    }
    let (mut aes_blocks, mut hash_blocks, mut ddr_accesses) = (0, 0, 0);
    if let Some(lcf) = soc.lcf() {
        sb_checks += lcf.firewall().stats().counter("fw.checked");
        let reads = lcf.stats().counter("lcf.protected_reads");
        let writes = lcf.stats().counter("lcf.protected_writes");
        // Read = 1 decrypt; write = decrypt + re-encrypt.
        aes_blocks = reads + 2 * writes;
        // Verify on every protected access + path update on writes
        // (approximate the tree walk as one hash per access here; the
        // cycle-accurate cost lives in CryptoTiming).
        hash_blocks = reads + 2 * writes;
        ddr_accesses = reads + writes + lcf.stats().counter("lcf.unprotected_accesses");
    }
    if let Some(ddr) = soc.ddr() {
        // Row-level activity is a better proxy when the LCF is absent.
        ddr_accesses = ddr_accesses.max(ddr.row_hits() + ddr.row_misses());
    }
    let bus_grants = bus.counter("bus.grants");
    // Everything granted that didn't go external hit internal memory.
    let bram_accesses = bus_grants.saturating_sub(ddr_accesses);
    ActivityCounts {
        bus_grants,
        sb_checks,
        aes_blocks,
        hash_blocks,
        bram_accesses,
        ddr_accesses,
        cycles: soc.now().saturating_since(since),
    }
}

/// Run the case study (protected / unprotected) and estimate its energy.
pub fn case_study_energy(security: bool) -> (ActivityCounts, EnergyReport) {
    use secbus_soc::casestudy::{case_study, CaseStudyConfig};
    let mut soc = case_study(CaseStudyConfig {
        security,
        ..Default::default()
    });
    let start = soc.now();
    soc.run_until_halt(5_000_000);
    let activity = collect_activity(&soc, start);
    let report = EnergyModel::default().estimate(&activity);
    (activity, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_run_costs_more_dynamic_energy() {
        let (_, plain) = case_study_energy(false);
        let (act, prot) = case_study_energy(true);
        assert!(prot.dynamic_nj > plain.dynamic_nj);
        assert!(act.sb_checks > 0);
        assert!(act.aes_blocks > 0);
    }

    #[test]
    fn crypto_share_is_visible_in_protected_runs() {
        let (_, prot) = case_study_energy(true);
        assert!(prot.share("AES (CC)") > 0.0);
        assert!(prot.share("hash tree (IC)") > 0.0);
    }
}
