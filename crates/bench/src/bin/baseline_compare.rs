//! S-4: distributed Local Firewalls vs a centralized SECA-style SEM.

use secbus_area::{AreaModel, DEFAULT_RULES_PER_FIREWALL};
use secbus_baseline::{centralized_area, compare_check_latency};

fn main() {
    println!("S-4 — DISTRIBUTED vs CENTRALIZED CHECKING\n");
    println!(
        "{:>4} {:>7} {:>14} {:>14} {:>10} {:>12} {:>10}",
        "IPs", "load", "distrib mean", "central mean", "slowdown", "central p99", "bus txns"
    );
    for (ips, load) in [
        (2u32, 0.01),
        (4, 0.01),
        (4, 0.04),
        (8, 0.04),
        (8, 0.08),
        (16, 0.08),
    ] {
        let row = compare_check_latency(ips, load, 50_000, 7);
        println!(
            "{:>4} {:>7.2} {:>14.1} {:>14.1} {:>9.1}x {:>12} {:>10}",
            row.ips,
            row.load,
            row.distributed_mean,
            row.centralized_mean,
            row.slowdown(),
            row.centralized_p99,
            row.centralized_bus_txns
        );
    }

    println!("\nAREA — distributed firewalls vs centralized SEM+SEIs");
    let m = AreaModel;
    println!(
        "{:>4} {:>18} {:>18}",
        "IPs", "distributed LUTs", "centralized LUTs"
    );
    for ips in [2u32, 4, 8, 16] {
        let distributed = m.local_firewall(DEFAULT_RULES_PER_FIREWALL) * ips;
        let centralized = centralized_area(ips, DEFAULT_RULES_PER_FIREWALL);
        println!(
            "{:>4} {:>18} {:>18}",
            ips, distributed.slice_luts, centralized.slice_luts
        );
    }
    println!("\nshape: distributed checking is constant-latency and adds zero bus");
    println!("traffic; the centralized verdict latency grows with offered load and");
    println!("every check costs two interconnect transactions (the paper's case");
    println!("for distributing the security policy to each interface).");
}
