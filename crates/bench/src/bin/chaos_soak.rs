//! S-13: chaos soak — the case-study SoC under randomized hardware
//! faults, swept over fault rate × protection mode.
//!
//! For every cell the same seed generates the same [`FaultPlan`], so the
//! three modes face *identical* fault schedules and the whole report is
//! byte-identical across runs of the same seed (`--seed N` to change it).
//!
//! Modes:
//! * `generic` — no firewalls (the Table I baseline): faults land
//!   silently, nothing is detected.
//! * `detect-only` — the paper's system as published: firewalls and the
//!   LCF raise alerts, but nothing recovers.
//! * `hardened` — this repo's resilience stack on top: watchdog, bounded
//!   retry with backoff, config-parity scrubbing, quarantine with
//!   automatic integrity-tree recovery.
//!
//! Reported per cell: faults fired, detection counters (watchdog
//! timeouts, config-corruption repairs, integrity mismatches, corrupted
//! reads caught inbound), an estimated false-negative count, recovery
//! work (retries, their latency, quarantine recoveries) and throughput
//! degradation against the same mode's zero-fault cell.

use secbus_fault::{FaultPlan, FaultRates, FaultSpec};
use secbus_sim::Json;
use secbus_soc::casestudy::{
    case_study, CaseResilience, CaseStudyConfig, CPU0_PROGRAM, CPU1_PROGRAM, CPU2_PROGRAM,
};
use secbus_soc::Soc;

/// Soak length in cycles (long enough for all three cores to finish and
/// the dedicated IP to keep streaming throughout).
const DURATION: u64 = 60_000;
/// Expected injections per fault class at rate factor 1.0.
const BASE_RATE: f64 = 4.0;
/// Fault-rate sweep (factor on [`BASE_RATE`]); 0.0 is the baseline cell.
const FACTORS: &[f64] = &[0.0, 0.5, 2.0, 8.0];

struct Mode {
    name: &'static str,
    security: bool,
    resilient: bool,
}

const MODES: &[Mode] = &[
    Mode {
        name: "generic",
        security: false,
        resilient: false,
    },
    Mode {
        name: "detect-only",
        security: true,
        resilient: false,
    },
    Mode {
        name: "hardened",
        security: true,
        resilient: true,
    },
];

/// Rewrite a core program to loop forever instead of halting, so memory
/// traffic (and therefore fault exposure) persists for the whole soak.
fn looping(src: &str) -> String {
    format!("top:\n{}", src.replace("halt", "beq  r0, r0, top"))
}

fn build(mode: &Mode) -> Soc {
    case_study(CaseStudyConfig {
        security: mode.security,
        programs: Some([
            looping(CPU0_PROGRAM),
            looping(CPU1_PROGRAM),
            looping(CPU2_PROGRAM),
        ]),
        // Escalate after a burst of violations so quarantine recovery
        // actually exercises; detect-only keeps the paper's log-only
        // monitor to show the contrast.
        monitor_threshold: if mode.resilient { 8 } else { 0 },
        ip_samples: 0, // stream forever: throughput stays meaningful
        resilience: mode.resilient.then(|| CaseResilience {
            rekey: true,
            ..CaseResilience::default()
        }),
        ic_cache: None,
        trace: None,
        taint: false,
    })
}

fn counter(soc: &Soc, key: &str) -> u64 {
    soc.stats().counter(key)
}

fn run_cell(mode: &Mode, factor: f64, seed: u64) -> (Json, u64) {
    let mut soc = build(mode);
    let spec = FaultSpec {
        duration: DURATION,
        ddr_bytes: 0x10_0000,
        firewalls: if mode.security { 5 } else { 0 }, // 4 LFs + the LCF
        slaves: 2,
        noc_nodes: 0, // bus-only target: the NoC classes land in S-15
        rates: FaultRates::uniform(BASE_RATE * factor),
    };
    let plan = FaultPlan::generate(seed, &spec);
    let planned = plan.len() as u64;
    soc.attach_fault_plan(plan);
    soc.run(DURATION);

    let fired = planned - soc.fault_plan().remaining() as u64;
    let completions = soc.bus().stats().counter("bus.completions");

    // Detections: every alert stream a fault can end up in.
    let fw_stats = soc.firewall_stats();
    let watchdog = soc.monitor().stats().counter("monitor.watchdog_timeouts");
    let config_repairs = fw_stats.counter("fw.parity_repairs");
    let integrity = fw_stats.counter("lcf.integrity_failures");
    let detections = watchdog + config_repairs + integrity;

    // Faults that *could* have been seen by a detector but never showed
    // up in any alert stream. Bit flips in the public DDR region and
    // glitches that hit idle hardware are genuinely silent — this is the
    // honest upper bound on escaped faults, not a claim they all matter.
    let false_negatives = fired.saturating_sub(detections);

    let retry_latency = soc
        .stats()
        .histogram("soc.retry_latency")
        .and_then(|h| h.mean())
        .unwrap_or(0.0);

    let cell = Json::Obj(vec![
        ("mode".into(), Json::str(mode.name)),
        ("rate_factor".into(), Json::Num(factor)),
        ("faults_planned".into(), Json::uint(planned)),
        ("faults_fired".into(), Json::uint(fired)),
        ("detections".into(), Json::uint(detections)),
        ("watchdog_timeouts".into(), Json::uint(watchdog)),
        ("config_repairs".into(), Json::uint(config_repairs)),
        ("integrity_alerts".into(), Json::uint(integrity)),
        ("false_negatives".into(), Json::uint(false_negatives)),
        ("retries".into(), Json::uint(counter(&soc, "soc.retries"))),
        (
            "retry_successes".into(),
            Json::uint(counter(&soc, "soc.retry_successes")),
        ),
        ("mean_retry_latency".into(), Json::Num(retry_latency)),
        (
            "quarantines".into(),
            Json::uint(soc.monitor().stats().counter("monitor.blocks")),
        ),
        (
            "recoveries".into(),
            Json::uint(counter(&soc, "soc.recoveries")),
        ),
        (
            "quarantine_releases".into(),
            Json::uint(counter(&soc, "soc.quarantine_releases")),
        ),
        ("bus_completions".into(), Json::uint(completions)),
        // The cores loop forever: a cell with zero completions means the
        // whole system deadlocked under fault injection.
        ("wedged".into(), Json::Bool(completions == 0)),
        // The unified observability snapshot: key-sorted and, per seed,
        // byte-identical whether the sweep ran serial or parallel.
        ("metrics".into(), soc.metrics_snapshot().to_json()),
    ]);
    (cell, completions)
}

fn main() {
    let seed = secbus_bench::SoakArgs::parse(0xC4A05).seed;

    // Every (mode, factor) cell is a pure function of its inputs, so the
    // sweep fans out across threads and merges back in input order — the
    // JSON is byte-identical to a serial run (`--serial` to force one).
    let specs: Vec<(usize, usize)> = (0..MODES.len())
        .flat_map(|mi| (0..FACTORS.len()).map(move |fi| (mi, fi)))
        .collect();
    let results = secbus_bench::par_map_with(secbus_bench::sweep_threads(), specs, |(mi, fi)| {
        // Same plan seed per factor across modes: every mode faces the
        // identical fault schedule.
        run_cell(&MODES[mi], FACTORS[fi], seed + fi as u64)
    });

    let mut cells = Vec::new();
    let mut wedged = false;
    let mut results = results.into_iter();
    for _ in MODES {
        // The first factor of each mode is its zero-fault baseline.
        let mut baseline_completions = None;
        for _ in FACTORS {
            let (mut cell, completions) = results.next().expect("one result per spec");
            wedged |= completions == 0;
            let base = *baseline_completions.get_or_insert(completions);
            let degradation = if base == 0 {
                0.0
            } else {
                100.0 * (base.saturating_sub(completions)) as f64 / base as f64
            };
            if let Json::Obj(fields) = &mut cell {
                fields.push(("throughput_degradation_pct".into(), Json::Num(degradation)));
            }
            cells.push(cell);
        }
    }

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-13 chaos soak")),
        ("duration_cycles".into(), Json::uint(DURATION)),
        ("seed".into(), Json::uint(seed)),
        ("base_rate_per_class".into(), Json::Num(BASE_RATE)),
        ("cells".into(), Json::Arr(cells)),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "chaos_soak",
        &report,
        wedged,
        "wedged cell detected (zero bus completions)",
    )
}
