//! Regenerates the paper's Table II (latency results of the firewalls).

use secbus_bench::measure_table2;

fn main() {
    let t = measure_table2();
    println!("TABLE II — LATENCY RESULTS OF THE FIREWALLS");
    println!("(SB measured in-system; CC/IC streamed through the functional cores\n at the 100 MHz case-study clock)\n");
    print!("{}", t.render());
    println!();
    println!("paper: SB 12 cycles | CC 11 cycles, 450 Mb/s | IC 20 cycles, 131 Mb/s");
}
