//! Interconnect comparison: the paper's shared bus vs the related-work
//! NoC (§II, refs \[2\]\[3\]\[4\]), with the SAME distributed checking machinery
//! at the interfaces. Measures mean round-trip latency to a hot-spot
//! memory as the endpoint count grows, protected and unprotected.

use secbus_bus::{AddrRange, RoundRobin, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_mem::Bram;
use secbus_noc::run_noc_workload;
use secbus_sim::SimRng;
use secbus_soc::SocBuilder;

const BRAM_BASE: u32 = 0x2000_0000;

/// Bus-side hot-spot workload mirroring the NoC one: n masters, one
/// shared memory, single outstanding read per master, every `period`.
fn run_bus_workload(n: usize, period: u64, cycles: u64, protected: bool) -> (Option<f64>, u64) {
    // Round-robin keeps the comparison fair: fixed priority would starve
    // the tail masters and bias the mean toward the fast ones.
    let mut b = SocBuilder::new().arbiter(Box::new(RoundRobin::default()));
    if !protected {
        b = b.without_security();
    }
    for i in 0..n {
        let window = (BRAM_BASE + (i as u32) * 0x100, 0x100u32, 1u32);
        let master = SyntheticMaster::new(
            format!("m{i}"),
            SyntheticConfig {
                windows: vec![window],
                read_ratio: 1.0,
                widths: vec![Width::Word],
                burst: 2, // 2 beats ≈ the 2-flit NoC packets
                period,
                total_ops: 0,
            },
            SimRng::new(1000 + i as u64),
        );
        let policies = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            i as u16 + 1,
            AddrRange::new(window.0, window.1),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )])
        .unwrap();
        b = b.add_protected_master(Box::new(master), policies);
    }
    let mut soc = b
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x10000),
            Bram::new(0x10000),
            None,
        )
        .build();
    soc.run(cycles);
    let mut total = 0.0;
    let mut count = 0u64;
    let mut completed = 0u64;
    for i in 0..n {
        let st = soc.master_device(i).stats();
        if let Some(h) = st.histogram("traffic.latency") {
            total += h.sum() as f64;
            count += h.count();
        }
        completed += st.counter("traffic.ok");
    }
    let mean = (count > 0).then(|| total / count as f64);
    (mean, completed)
}

fn main() {
    let period = 16;
    let cycles = 30_000;
    println!("BUS vs NoC — hot-spot read round trips, {cycles} cycles, period {period}\n");
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14}",
        "IPs", "bus plain", "bus protected", "noc plain", "noc protected"
    );
    for n in [2usize, 4, 8, 12, 16] {
        let (bus_plain, _) = run_bus_workload(n, period, cycles, false);
        let (bus_prot, _) = run_bus_workload(n, period, cycles, true);
        let noc_plain = run_noc_workload(n, period, cycles, false);
        let noc_prot = run_noc_workload(n, period, cycles, true);
        let f = |v: Option<f64>| v.map_or("starved".into(), |x| format!("{x:.1}"));
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14}",
            n,
            f(bus_plain),
            f(bus_prot),
            f(noc_plain.mean_latency),
            f(noc_prot.mean_latency),
        );
    }
    println!("\nshape: the shared bus is cheaper at small scale but saturates as");
    println!("masters multiply (the serialized medium), while the mesh degrades");
    println!("gracefully; the distributed check costs the SAME ~12 cycles per");
    println!("access in both placements — the paper's mechanism is interconnect-");
    println!("agnostic, matching its 'layer above the communication protocol' claim.");
}
