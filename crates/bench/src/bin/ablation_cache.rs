//! Cache ablation: a private read cache changes the computation/
//! communication ratio the paper's §V overhead discussion hinges on —
//! repeated reads stop paying the firewall + crypto path entirely.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, CacheConfig, CachedMaster, Mb32Core};
use secbus_mem::{Bram, ExternalDdr};
use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN};
use secbus_soc::SocBuilder;

const BRAM_BASE: u32 = 0x2000_0000;

/// Sum a 16-word table in the PRIVATE (cipher+integrity) DDR region,
/// `reps` times over.
fn workload(reps: u32) -> String {
    format!(
        r"
        li   r1, 0x80000000
        addi r9, r0, {reps}
        addi r10, r0, 0
    rep:
        addi r3, r0, 16
        addi r4, r0, 0
        addi r11, r0, 0
    inner:
        add  r5, r4, r4
        add  r5, r5, r5
        add  r6, r1, r5
        lw   r7, 0(r6)
        add  r11, r11, r7
        addi r4, r4, 1
        blt  r4, r3, inner
        addi r10, r10, 1
        blt  r10, r9, rep
        li   r8, 0x20000000
        sw   r11, 0(r8)
        halt
        "
    )
}

fn run(cache: Option<CacheConfig>, protected: bool) -> (u64, u64, Option<f64>) {
    let core = Mb32Core::with_local_program("cpu0", 0, assemble(&workload(64)).unwrap());
    let device: Box<dyn secbus_cpu::BusMaster> = match cache {
        Some(cfg) => Box::new(CachedMaster::new(Box::new(core), cfg)),
        None => Box::new(core),
    };
    let policies = ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(DDR_BASE, 0x1000),
            Rwa::ReadOnly,
            AdfSet::ALL,
        ),
    ])
    .unwrap();
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for i in 0..16u32 {
        ddr.load(4 * i, &(i + 1).to_le_bytes());
    }
    let mut b = SocBuilder::new();
    if !protected {
        b = b.without_security();
    }
    let mut soc = b
        .add_protected_master(device, policies)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ddr,
            Some(lcf_policies()),
        )
        .build();
    let cycles = soc.run_until_halt(10_000_000);
    // Validate the computation survived the cache: sum(1..=16)*64 reps.
    let bram = soc.bram_contents().unwrap();
    let sum = u32::from_le_bytes(bram[0..4].try_into().unwrap());
    assert_eq!(sum, (1..=16).sum::<u32>(), "workload result wrong");
    let protected_reads = soc
        .lcf()
        .map(|l| l.stats().counter("lcf.protected_reads"))
        .unwrap_or(0);
    let hit_rate = soc.master_as::<CachedMaster>(0).and_then(|c| c.hit_rate());
    (cycles, protected_reads, hit_rate)
}

fn main() {
    println!("CACHE ABLATION — 64 passes over a 16-word protected table\n");
    println!(
        "{:<26} {:>10} {:>16} {:>10}",
        "configuration", "cycles", "LCF reads", "hit rate"
    );
    let rows: [(&str, Option<CacheConfig>, bool); 5] = [
        ("generic, no cache", None, false),
        (
            "generic, 1KiB cache",
            Some(CacheConfig {
                lines: 16,
                line_words: 4,
            }),
            false,
        ),
        ("protected, no cache", None, true),
        (
            "protected, 1KiB cache",
            Some(CacheConfig {
                lines: 16,
                line_words: 4,
            }),
            true,
        ),
        (
            "protected, 4KiB cache",
            Some(CacheConfig {
                lines: 64,
                line_words: 4,
            }),
            true,
        ),
    ];
    // Overhead is reported against the like-for-like generic baseline:
    // uncached configs against the uncached generic, cached against the
    // cached generic.
    let mut base_nocache = 0u64;
    let mut base_cache = 0u64;
    for (name, cache, protected) in rows {
        let cached = cache.is_some();
        let (cycles, lcf_reads, hit_rate) = run(cache, protected);
        if name.starts_with("generic") {
            if cached {
                base_cache = cycles;
            } else {
                base_nocache = cycles;
            }
        }
        let base = if cached { base_cache } else { base_nocache };
        let overhead = (cycles as f64 / base as f64 - 1.0) * 100.0;
        println!(
            "{:<26} {:>10} {:>16} {:>10} ({overhead:+.1}% vs like generic)",
            name,
            cycles,
            lcf_reads,
            hit_rate.map_or("-".into(), |h| format!("{:.0}%", h * 100.0)),
        );
    }
    println!("\nshape: the cache collapses repeated protected reads into one fill");
    println!("per line, so the security overhead shrinks toward zero as locality");
    println!("rises — computation is promoted over communication (paper §V).");
}
