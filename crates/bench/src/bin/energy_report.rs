//! S-10: activity-based energy estimate of the case study, with and
//! without the security layer (parametric model — see secbus-area docs).

use secbus_bench::case_study_energy;

fn main() {
    println!("ENERGY ESTIMATE — case study (parametric activity model)\n");
    for security in [false, true] {
        let (activity, report) = case_study_energy(security);
        println!(
            "== {} ==",
            if security {
                "with firewalls"
            } else {
                "generic"
            }
        );
        println!(
            "  activity: {} grants, {} checks, {} AES blocks, {} hashes, {} DDR accesses",
            activity.bus_grants,
            activity.sb_checks,
            activity.aes_blocks,
            activity.hash_blocks,
            activity.ddr_accesses
        );
        for (name, nj) in &report.breakdown {
            println!(
                "  {name:<16} {nj:>10.2} nJ ({:>4.1}%)",
                report.share(name) * 100.0
            );
        }
        println!(
            "  dynamic total    {:>10.2} nJ | static over run {:>10.2} nJ\n",
            report.dynamic_nj, report.static_nj
        );
    }
    println!("shape: the security layer's dynamic-energy adder is dominated by the");
    println!("crypto cores on external traffic; checking itself is in the noise —");
    println!("the energy restatement of the paper's area and latency findings.");
}
