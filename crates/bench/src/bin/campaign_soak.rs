//! S-18: campaign soak — the full adversarial-campaign matrix
//! (campaign kind × protection mode × seed), with DIFT kill-chain
//! accounting.
//!
//! Every cell runs one seed-deterministic staged campaign from
//! `secbus-attack` and reports its kill chain (`foothold → pivot →
//! detection → reaction`), taint counters and damage. The report is
//! byte-identical for a given `--seed`, serial or parallel.
//!
//! The S-18 gate (exit code 1 on failure):
//! * **protected mode** must show 0 undetected policy bypasses and
//!   0 unalerted tainted-sink reaches across the whole matrix, and every
//!   detection must carry a complete kill chain;
//! * a protected campaign that strands (aborts before its kill chain
//!   completes) marks the report `"wedged": true`.
//!
//! Bare mode is the contrast column: bypasses and damage words are
//! *expected* there and never gate.
//!
//! `--smoke` shrinks the seed sweep to CI size.

use secbus_attack::{run_campaign, CampaignConfig, CampaignKind, CampaignOutcome};
use secbus_sim::Json;

/// Seeds per (campaign, mode) cell in the full sweep.
const FULL_SEEDS: u64 = 4;
/// Seeds in `--smoke` mode.
const SMOKE_SEEDS: u64 = 1;

const MODES: &[(&str, bool)] = &[("protected", true), ("bare", false)];

fn outcome_json(o: &CampaignOutcome) -> Json {
    let stages = o
        .stages
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("label".into(), Json::str(s.label)),
                ("fired".into(), Json::Bool(s.fired)),
                ("foothold".into(), Json::Bool(s.foothold)),
            ])
        })
        .collect();
    let chain = o
        .kill_chain
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("cycle".into(), Json::uint(e.cycle)),
                ("stage".into(), Json::str(e.stage)),
                ("phase".into(), Json::str(e.phase)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("campaign".into(), Json::str(o.kind.name())),
        (
            "mode".into(),
            Json::str(if o.protected { "protected" } else { "bare" }),
        ),
        ("seed".into(), Json::uint(o.seed)),
        ("stages".into(), Json::Arr(stages)),
        ("aborted".into(), Json::Bool(o.aborted)),
        ("detected".into(), Json::Bool(o.detected)),
        (
            "detection_cycle".into(),
            o.detection_cycle.map_or(Json::Null, Json::uint),
        ),
        ("reaction".into(), Json::str(o.reaction)),
        ("alerts".into(), Json::uint(o.alerts)),
        ("policy_bypasses".into(), Json::uint(o.policy_bypasses)),
        ("sinks_blocked".into(), Json::uint(o.sinks_blocked)),
        ("sinks_unalerted".into(), Json::uint(o.sinks_unalerted)),
        ("faults_injected".into(), Json::uint(o.faults_injected)),
        (
            "orphan_completions".into(),
            Json::uint(o.orphan_completions),
        ),
        ("damage_words".into(), Json::uint(o.damage_words)),
        (
            "kill_chain_complete".into(),
            Json::Bool(kill_chain_complete(o)),
        ),
        ("kill_chain".into(), Json::Arr(chain)),
    ])
}

/// A detection's kill chain is complete when all four phases appear in
/// cycle order.
fn kill_chain_complete(o: &CampaignOutcome) -> bool {
    let mut last = 0u64;
    for want in ["foothold", "pivot", "detection", "reaction"] {
        match o.kill_chain.iter().find(|e| e.phase == want) {
            Some(e) if e.cycle >= last => last = e.cycle,
            _ => return false,
        }
    }
    true
}

fn main() {
    let secbus_bench::SoakArgs { seed, smoke } = secbus_bench::SoakArgs::parse(0x5_EC18);
    let seeds = if smoke { SMOKE_SEEDS } else { FULL_SEEDS };

    // Every cell is a pure function of (kind, mode, seed): the sweep fans
    // out across threads and merges in input order, so the JSON matches a
    // serial run byte for byte (`--serial` forces one).
    let specs: Vec<CampaignConfig> = CampaignKind::ALL
        .iter()
        .flat_map(|&kind| {
            MODES.iter().flat_map(move |&(_, protected)| {
                (0..seeds).map(move |s| CampaignConfig {
                    kind,
                    seed: seed + s,
                    protected,
                })
            })
        })
        .collect();
    let outcomes = secbus_bench::par_map_with(secbus_bench::sweep_threads(), specs, run_campaign);

    let mut bypasses = 0u64;
    let mut unalerted = 0u64;
    let mut undetected_protected = 0u64;
    let mut incomplete_chains = 0u64;
    let mut wedged = false;
    let mut bare_damage = 0u64;
    for o in &outcomes {
        if o.protected {
            bypasses += o.policy_bypasses;
            unalerted += o.sinks_unalerted;
            if !o.detected {
                undetected_protected += 1;
            }
            if o.detected && !kill_chain_complete(o) {
                incomplete_chains += 1;
            }
            // A protected campaign that aborted mid-chain left its
            // traffic stranded: the gate treats that as a wedge.
            wedged |= o.aborted;
        } else {
            bare_damage += o.damage_words;
        }
    }
    let gate_failed =
        bypasses > 0 || unalerted > 0 || undetected_protected > 0 || incomplete_chains > 0;

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-18 campaign soak")),
        ("seed".into(), Json::uint(seed)),
        ("seeds_per_cell".into(), Json::uint(seeds)),
        ("smoke".into(), Json::Bool(smoke)),
        (
            "cells".into(),
            Json::Arr(outcomes.iter().map(outcome_json).collect()),
        ),
        ("protected_policy_bypasses".into(), Json::uint(bypasses)),
        ("protected_unalerted_sinks".into(), Json::uint(unalerted)),
        (
            "protected_undetected".into(),
            Json::uint(undetected_protected),
        ),
        (
            "incomplete_kill_chains".into(),
            Json::uint(incomplete_chains),
        ),
        ("bare_damage_words".into(), Json::uint(bare_damage)),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "campaign_soak",
        &report,
        wedged || gate_failed,
        &format!(
            "gate failed (bypasses={bypasses}, unalerted_sinks={unalerted}, \
             undetected={undetected_protected}, \
             incomplete_chains={incomplete_chains}, wedged={wedged})"
        ),
    )
}
