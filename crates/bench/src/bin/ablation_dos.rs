//! DoS mitigation ablation: a compromised IP floods the bus with
//! *authorized* requests (address checks cannot stop it). Compare the
//! victim's latency under (a) no mitigation, (b) the rate-limit extension
//! at the flooder's Local Firewall, (c) TDMA arbitration.

use secbus_attack::DosFlooder;
use secbus_bus::{AddrRange, MasterId, Tdma, Width};
use secbus_core::{AdfSet, ConfigMemory, RateLimit, Rwa, SecurityPolicy};
use secbus_cpu::{SyntheticConfig, SyntheticMaster};
use secbus_mem::Bram;
use secbus_sim::SimRng;
use secbus_soc::SocBuilder;

const BRAM_BASE: u32 = 0x2000_0000;

#[derive(Clone, Copy, PartialEq)]
enum Mitigation {
    None,
    RateLimit,
    Tdma,
}

fn run(mitigation: Mitigation) -> (Option<f64>, u64, u64) {
    // The flooder targets an address it is ALLOWED to write: pure
    // bandwidth exhaustion. Flooder is master 0 (highest fixed priority =
    // worst case for the victim).
    let flooder = DosFlooder::new("flooder", BRAM_BASE + 0x800, 0).with_burst(16);
    let flood_policy = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        1,
        AddrRange::new(BRAM_BASE + 0x800, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap();
    let victim = SyntheticMaster::new(
        "victim",
        SyntheticConfig {
            windows: vec![(BRAM_BASE, 0x100, 1)],
            read_ratio: 0.5,
            widths: vec![Width::Word],
            burst: 1,
            period: 2,
            total_ops: 0,
        },
        SimRng::new(9),
    );
    let victim_policy = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        2,
        AddrRange::new(BRAM_BASE, 0x100),
        Rwa::ReadWrite,
        AdfSet::ALL,
    )])
    .unwrap();

    let mut b = SocBuilder::new();
    if mitigation == Mitigation::Tdma {
        b = b.arbiter(Box::new(Tdma::new(vec![MasterId(0), MasterId(1)], 16)));
    }
    b = match mitigation {
        Mitigation::RateLimit => b.add_rate_limited_master(
            Box::new(flooder),
            flood_policy,
            RateLimit::new(100, 4), // ~4% duty cycle budget
        ),
        _ => b.add_protected_master(Box::new(flooder), flood_policy),
    };
    let mut soc = b
        .add_protected_master(Box::new(victim), victim_policy)
        .add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .build();
    soc.run(30_000);
    let victim_latency = soc
        .master_device(1)
        .stats()
        .histogram("traffic.latency")
        .and_then(|h| h.mean());
    let flooder_granted = soc
        .bus()
        .trace()
        .iter()
        .filter(|(_, t)| t.master == MasterId(0))
        .count() as u64;
    let victim_completed = soc.master_device(1).stats().counter("traffic.ok");
    (victim_latency, flooder_granted, victim_completed)
}

fn main() {
    println!("DoS ABLATION — authorized-traffic flood, victim latency\n");
    println!(
        "{:<28} {:>20} {:>16} {:>18}",
        "mitigation", "victim mean latency", "victim ops done", "flood txns on bus"
    );
    for (name, m) in [
        ("none (fixed priority)", Mitigation::None),
        ("LF rate limit (4%)", Mitigation::RateLimit),
        ("TDMA arbitration", Mitigation::Tdma),
    ] {
        let (latency, granted, done) = run(m);
        let lat = latency.map_or("STARVED".to_string(), |l| format!("{l:.1}"));
        println!("{name:<28} {lat:>20} {done:>16} {granted:>18}");
    }
    println!("\nshape: address-based checks alone cannot stop an authorized flood;");
    println!("the rate-limit extension chokes it at its own interface (distributed");
    println!("enforcement), while TDMA bounds the damage at the arbiter instead.");
}
