//! S-1: area and checking latency vs number of security rules.
//!
//! The paper (§V-A): "The cost of firewalls is also related to the number
//! of security rules that must be monitored. A more aggressive security
//! policy will lead to a larger cost in terms of area. This point will be
//! further analyzed in future work." — analyzed here.

use secbus_area::{AreaModel, SystemShape};
use secbus_core::SbTiming;

fn main() {
    let m = AreaModel;
    println!("S-1 — FIREWALL COST vs NUMBER OF SECURITY RULES\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "rules", "LF regs", "LF LUTs", "LCF LUTs", "system LUTs", "SB cycles"
    );
    for rules in [4u32, 8, 16, 32, 64, 128] {
        let lf = m.local_firewall(rules);
        let lcf = m.ciphering_firewall(rules);
        let sys = m.system_with_firewalls(SystemShape::CASE_STUDY, rules);
        let sb = SbTiming::scaled(rules);
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
            rules,
            lf.slice_regs,
            lf.slice_luts,
            lcf.slice_luts,
            sys.slice_luts,
            sb.total()
        );
    }
    println!("\nshape: area grows linearly with rules; check latency grows with");
    println!("log2(rules) (deeper policy lookup), matching the paper's 12 cycles");
    println!("at the case-study rule count (8).");
}
