//! S-3: the threat model, executed — detection latency and containment
//! for every attack class of §III.

use secbus_attack::run_all_scenarios;

fn main() {
    println!("S-3 — ATTACK DETECTION AND CONTAINMENT (seed 42)\n");
    println!(
        "{:<40} {:>9} {:>12} {:>10} {:>12}",
        "scenario", "detected", "latency(cyc)", "contained", "compromised"
    );
    for o in run_all_scenarios(42) {
        println!(
            "{:<40} {:>9} {:>12} {:>10} {:>12}",
            o.scenario.name(),
            if o.detected() { "yes" } else { "NO" },
            o.detection_latency.map_or("-".into(), |l| l.to_string()),
            if o.contained { "yes" } else { "NO" },
            if o.data_compromised { "YES" } else { "no" },
        );
    }
    println!("\nshape: everything behind cipher+integrity is detected within tens");
    println!("of cycles and contained at the interface; the cipher-only region");
    println!("garbles but cannot detect; the unprotected region is the paper's");
    println!("§III-B attack vector and is compromised by construction.");
}
