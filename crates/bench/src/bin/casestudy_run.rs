//! Runs the paper's case study end to end and prints the run report —
//! the qualitative 'validation by case study' of §V.

use secbus_sim::Cycle;
use secbus_soc::casestudy::{case_study, CaseStudyConfig};
use secbus_soc::Report;

fn main() {
    for security in [false, true] {
        let mut soc = case_study(CaseStudyConfig {
            security,
            ..Default::default()
        });
        let cycles = soc.run_until_halt(5_000_000);
        let report = Report::collect(&soc, Cycle(0));
        println!(
            "== case study, {} ==",
            if security {
                "WITH firewalls"
            } else {
                "without firewalls (generic)"
            }
        );
        println!("completed in {cycles} cycles");
        println!("{report}");
    }
}
