//! S-14: crash soak — power-cut recovery of the LCF's secure state,
//! swept over crash cycle × protection mode × journal on/off.
//!
//! Every cell runs the same deterministic write workload against an LCF
//! and cuts power mid-burst (the last store is torn: only part of the
//! 16-byte ciphertext block lands). Recovery then reconstructs the
//! secure state from what survives:
//!
//! * **journal on** — the authenticated [`SecureStateImage`] checkpoint,
//!   the write-ahead journal and the monotonic anti-rollback counter.
//!   Acceptance: *zero* false tamper alerts (a crash is never read as an
//!   attack) and *zero* undetected tampering (offline DDR rollback and
//!   bit flips are always quarantined), at every swept crash cycle.
//! * **journal off** — the ablation: only a seal-time image persists, no
//!   journal, no counter. Both failure modes appear: legitimate
//!   post-seal writes quarantine the region on reboot (false alarms),
//!   and an attacker restoring seal-time ciphertext passes as clean
//!   (undetected rollback).
//!
//! A second section exercises the same machinery at system level:
//! [`FaultKind::PowerCut`] / [`FaultKind::TornWrite`] take the whole SoC
//! down mid-workload, and the next life resumes from the checkpoint. A
//! cell whose pre-crash run completed no bus transactions is **wedged**:
//! the report carries `"wedged": true` and the process exits non-zero.
//!
//! Same seed → byte-identical JSON (`--seed N` to change it).
//!
//! [`SecureStateImage`]: secbus_crypto::SecureStateImage
//! [`FaultKind::PowerCut`]: secbus_fault::FaultKind::PowerCut
//! [`FaultKind::TornWrite`]: secbus_fault::FaultKind::TornWrite

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, PersistentState, RecoveryOutcome, RecoveryReport, Rwa, SecurityPolicy,
};
use secbus_cpu::{assemble, Mb32Core};
use secbus_crypto::MonotonicCounter;
use secbus_fault::{FaultEvent, FaultKind, FaultPlan};
use secbus_mem::ExternalDdr;
use secbus_sim::{Cycle, Json, SimRng};
use secbus_soc::{Soc, SocBuilder};

const DDR_BASE: u32 = 0x8000_0000;
const DDR_LEN: u32 = 0x1000;
const STATE_KEY: [u8; 16] = *b"s14-crash-state!";
/// Journal-fold interval (commits per checkpoint) for journal-on cells:
/// small enough that the crash-cycle sweep crosses checkpoint
/// boundaries, so replay sees both fresh and stale epochs.
const CHECKPOINT_INTERVAL: u64 = 8;
/// Committed writes before the torn final store.
const CRASH_CYCLES: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

/// Which region the workload hammers.
struct Mode {
    name: &'static str,
    /// Offset of the region inside the DDR device.
    offset: u32,
    /// Whether the region's protection claims tamper *detection*.
    detects: bool,
}

const MODES: &[Mode] = &[
    Mode {
        name: "integrity",
        offset: 0x000,
        detects: true,
    },
    Mode {
        name: "cipher-only",
        offset: 0x100,
        detects: false,
    },
    Mode {
        name: "unprotected",
        offset: 0x200,
        detects: false,
    },
];

fn lcf_config() -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::external(
            1,
            AddrRange::new(DDR_BASE, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(*b"s14-integrity-k!"),
        ),
        SecurityPolicy::external(
            2,
            AddrRange::new(DDR_BASE + 0x100, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Bypass,
            Some(*b"s14-cipher-key.!"),
        ),
        SecurityPolicy::external(
            3,
            AddrRange::new(DDR_BASE + 0x200, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Bypass,
            IntegrityMode::Bypass,
            None,
        ),
    ])
    .unwrap()
}

fn boot_ddr() -> ExternalDdr {
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for i in 0..0x300u32 {
        ddr.load(i, &[(i % 251) as u8]);
    }
    ddr
}

fn fresh_lcf() -> LocalCipheringFirewall {
    LocalCipheringFirewall::new(
        FirewallId(9),
        "LCF",
        lcf_config(),
        DDR_BASE,
        CryptoTiming::PAPER,
    )
}

fn ddr_from(contents: &[u8]) -> ExternalDdr {
    let mut ddr = ExternalDdr::new(DDR_LEN);
    ddr.load(0, contents);
    ddr
}

fn write_txn(i: u64, addr: u32, data: u32) -> Transaction {
    Transaction {
        id: TxnId(i),
        master: MasterId(0),
        op: Op::Write,
        addr,
        width: Width::Word,
        data,
        burst: 1,
        issued_at: Cycle(i),
    }
}

fn outcome_str(outcome: RecoveryOutcome) -> String {
    match outcome {
        RecoveryOutcome::Clean => "clean".into(),
        RecoveryOutcome::Repaired => "repaired".into(),
        RecoveryOutcome::Quarantined(ev) => format!("quarantined:{}", ev.mnemonic()),
    }
}

/// Recover `state` on a fresh LCF over `contents` and report what
/// happened.
fn recover(
    contents: &[u8],
    state: &PersistentState,
    counter: Option<MonotonicCounter>,
) -> RecoveryReport {
    let mut ddr = ddr_from(contents);
    let mut lcf = fresh_lcf();
    lcf.recover_from(&mut ddr, state, STATE_KEY, counter, CHECKPOINT_INTERVAL)
}

struct Cell {
    json: Json,
    false_alarms: u64,
    undetected: u64,
    lost_writes: u64,
    recovery_cycles: u64,
    wedged: bool,
}

/// One cell: `crash_after` committed writes into `mode`'s region, then a
/// torn store, then recovery — plus, where the protection claims
/// detection, two offline attacks on the powered-down DDR.
fn run_cell(mode: &Mode, crash_after: u64, journaled: bool, seed: u64) -> Cell {
    let mut rng = SimRng::new(seed)
        .derive("s14")
        .derive(mode.name)
        .derive(if journaled { "journal" } else { "bare" });

    let mut lcf = fresh_lcf();
    // Journal-off cells still need an authenticated seal-time image for
    // their (stale) persisted surface: capture it from a journaled twin
    // sealing the identical boot image, then run the real workload
    // without any journal.
    let stale_image = if journaled {
        None
    } else {
        let mut twin = fresh_lcf();
        let mut twin_ddr = boot_ddr();
        twin.enable_journal(CHECKPOINT_INTERVAL, STATE_KEY);
        twin.seal(&mut twin_ddr);
        Some(twin.persistent_state().unwrap())
    };
    if journaled {
        lcf.enable_journal(CHECKPOINT_INTERVAL, STATE_KEY);
    }
    let mut ddr = boot_ddr();
    lcf.seal(&mut ddr);
    let sealed = ddr.contents().to_vec();

    // Committed writes, then the torn one.
    let trace: Vec<(u32, u32)> = (0..=crash_after)
        .map(|_| {
            (
                DDR_BASE + mode.offset + 4 * rng.below(0x40) as u32,
                rng.next_u32(),
            )
        })
        .collect();
    let mut write_cycles = 0u64;
    for (i, &(addr, data)) in trace.iter().enumerate().take(crash_after as usize) {
        let i = i as u64;
        write_cycles += lcf
            .handle(&mut ddr, &write_txn(i, addr, data), Cycle(i))
            .expect("write")
            .latency;
    }
    let torn_keep = 1 + rng.below(15) as u8;
    ddr.tear_next_store(torn_keep);
    let (addr, data) = trace[crash_after as usize];
    write_cycles += lcf
        .handle(
            &mut ddr,
            &write_txn(crash_after, addr, data),
            Cycle(crash_after),
        )
        .expect("final write")
        .latency;
    // Device-offset of the 16-byte block the cut left in flight.
    let torn_block = (addr - DDR_BASE) as usize & !0xF;
    let survived = ddr.contents().to_vec();

    // What persists across the cut.
    let (state, counter) = if journaled {
        (
            lcf.persistent_state().unwrap(),
            Some(lcf.anti_rollback_counter().unwrap().clone()),
        )
    } else {
        (stale_image.unwrap(), None)
    };

    // Scenario 1: honest crash. A quarantine here is a false alarm.
    let crash = recover(&survived, &state, counter.clone());
    let false_alarm = crash.is_quarantined();
    let lost_writes = crash.rolled_back + crash.repaired_blocks;

    // Scenarios 2+3 (only where the protection claims detection):
    // offline tampering while power is down must be quarantined.
    let (attacks, undetected) = if mode.detects {
        // Rollback: restore the region's seal-time ciphertext. With
        // nothing committed since the checkpoint this is indistinguishable
        // from the burst never starting — and loses nothing durable — so
        // it only counts once committed writes exist to hide.
        let mut rolled = survived.clone();
        let (a, b) = (mode.offset as usize, (mode.offset + 0x100) as usize);
        rolled[a..b].copy_from_slice(&sealed[a..b]);
        let rollback = recover(&rolled, &state, counter.clone());
        let rollback_caught = rollback.is_quarantined();

        // Bit flip: one stored bit changes while power is down. The
        // in-flight torn block is excluded: its content is discarded and
        // deterministically re-initialized by the repair regardless, so
        // a flip there is absorbed, not exploitable.
        let mut flipped = survived.clone();
        let victim = loop {
            let v = mode.offset as usize + rng.below(0x100) as usize;
            if v & !0xF != torn_block {
                break v;
            }
        };
        flipped[victim] ^= 1 << rng.below(8);
        let bitflip = recover(&flipped, &state, counter);
        let bitflip_caught = bitflip.is_quarantined();

        let undetected =
            u64::from(crash_after > 0 && !rollback_caught) + u64::from(!bitflip_caught);
        let json = vec![
            (
                "rollback_attack_detected".to_string(),
                Json::Bool(rollback_caught),
            ),
            (
                "bitflip_attack_detected".to_string(),
                Json::Bool(bitflip_caught),
            ),
        ];
        (json, undetected)
    } else {
        (Vec::new(), 0)
    };

    let mut fields = vec![
        ("mode".to_string(), Json::str(mode.name)),
        ("journal".to_string(), Json::Bool(journaled)),
        ("crash_after_writes".to_string(), Json::uint(crash_after)),
        ("torn_keep_bytes".to_string(), Json::uint(torn_keep as u64)),
        ("write_cycles".to_string(), Json::uint(write_cycles)),
        (
            "recovery_outcome".to_string(),
            Json::Str(outcome_str(crash.outcome)),
        ),
        ("recovery_cycles".to_string(), Json::uint(crash.cycles)),
        ("false_alarm".to_string(), Json::Bool(false_alarm)),
        ("replayed".to_string(), Json::uint(crash.replayed)),
        (
            "rolled_forward".to_string(),
            Json::uint(crash.rolled_forward),
        ),
        ("lost_writes".to_string(), Json::uint(lost_writes)),
        (
            "repaired_blocks".to_string(),
            Json::uint(crash.repaired_blocks),
        ),
        (
            "torn_journal_entries".to_string(),
            Json::uint(crash.torn_discarded),
        ),
        (
            "stale_journal_entries".to_string(),
            Json::uint(crash.stale_discarded),
        ),
    ];
    fields.extend(attacks);
    fields.push(("undetected_tampering".to_string(), Json::uint(undetected)));
    // Pre-crash LCF accounting as one key-sorted snapshot (the firewall
    // and crypto bags merge under a single "lcf" component).
    let mut registry = secbus_sim::MetricsRegistry::new();
    registry.insert("lcf", lcf.firewall().stats());
    registry.insert("lcf", lcf.stats());
    fields.push(("metrics".to_string(), registry.to_json()));

    Cell {
        json: Json::Obj(fields),
        false_alarms: u64::from(false_alarm),
        undetected,
        lost_writes,
        recovery_cycles: crash.cycles,
        wedged: crash_after > 0 && write_cycles == 0,
    }
}

// ---- system-level section: the whole SoC dies and resumes ----

const SOC_DDR_LEN: u32 = 0x1000;
/// The writer hammers the integrity-protected head of the DDR forever.
const SOC_PROGRAM: &str = r"
    li  r1, 0x80000000
    addi r2, r0, 1
loop:
    sw  r2, 0(r1)
    sw  r2, 16(r1)
    addi r2, r2, 1
    j loop
";

fn build_soc(previous: Option<(&[u8], secbus_core::SecureCheckpoint)>) -> Soc {
    let program = assemble(SOC_PROGRAM).unwrap();
    let core = Mb32Core::with_local_program("cpu0", 0, program);
    let mut ddr = ExternalDdr::new(SOC_DDR_LEN);
    let mut b = SocBuilder::new()
        .add_master(Box::new(core))
        .journal(CHECKPOINT_INTERVAL, STATE_KEY);
    if let Some((contents, cp)) = previous {
        ddr.load(0, contents);
        b = b.resume_from(cp);
    }
    b.set_ddr(
        "ddr",
        AddrRange::new(DDR_BASE, SOC_DDR_LEN),
        ddr,
        Some(lcf_config()),
    )
    .build()
}

/// Cut the SoC's power at `cut` (directly, or armed as a torn store),
/// resume from the surviving state, and report both lives.
fn run_soc_cell(kind: &str, cut: u64) -> Cell {
    let fault = match kind {
        "power_cut" => FaultKind::PowerCut,
        _ => FaultKind::TornWrite { keep_bytes: 7 },
    };
    let mut soc = build_soc(None);
    soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
        at: Cycle(cut),
        kind: fault,
    }]));
    soc.run(cut + 3_000);
    let completions = soc.bus().stats().counter("bus.completions");
    let powered_off = soc.powered_off();
    let wedged = completions == 0;

    let (resume_fields, false_alarms, recovery_cycles) = match soc.checkpoint() {
        Some(cp) => {
            let survived = soc.ddr().unwrap().contents().to_vec();
            let mut next = build_soc(Some((&survived, cp)));
            let report = *next.recovery_report().expect("resume boot recovers");
            next.run(2_000);
            let next_completions = next.bus().stats().counter("bus.completions");
            (
                vec![
                    (
                        "recovery_outcome".to_string(),
                        Json::Str(outcome_str(report.outcome)),
                    ),
                    ("recovery_cycles".to_string(), Json::uint(report.cycles)),
                    ("replayed".to_string(), Json::uint(report.replayed)),
                    (
                        "repaired_blocks".to_string(),
                        Json::uint(report.repaired_blocks),
                    ),
                    (
                        "resumed_completions".to_string(),
                        Json::uint(next_completions),
                    ),
                ],
                u64::from(report.is_quarantined()),
                report.cycles,
            )
        }
        None => (
            vec![("recovery_outcome".to_string(), Json::str("no-checkpoint"))],
            0,
            0,
        ),
    };

    let mut fields = vec![
        ("fault".to_string(), Json::str(kind)),
        ("cut_cycle".to_string(), Json::uint(cut)),
        ("powered_off".to_string(), Json::Bool(powered_off)),
        (
            "completions_before_cut".to_string(),
            Json::uint(completions),
        ),
        ("wedged".to_string(), Json::Bool(wedged)),
    ];
    fields.extend(resume_fields);
    fields.push(("metrics".to_string(), soc.metrics_snapshot().to_json()));

    Cell {
        json: Json::Obj(fields),
        false_alarms,
        undetected: 0,
        lost_writes: 0,
        recovery_cycles,
        wedged,
    }
}

fn main() {
    let seed = secbus_bench::SoakArgs::parse(0xC4A06).seed;

    // Every cell is a pure function of (mode, journal, crash cycle, seed):
    // fan the sweep out across threads, merge in input order, aggregate
    // afterwards — the JSON is byte-identical to `--serial`.
    let threads = secbus_bench::sweep_threads();
    let specs: Vec<(usize, bool, u64)> = (0..MODES.len())
        .flat_map(|mi| {
            [true, false]
                .into_iter()
                .flat_map(move |journaled| CRASH_CYCLES.iter().map(move |&k| (mi, journaled, k)))
        })
        .collect();
    let lcf_cells = secbus_bench::par_map_with(threads, specs, |(mi, journaled, k)| {
        (journaled, run_cell(&MODES[mi], k, journaled, seed))
    });

    let mut cells = Vec::new();
    let mut summary: Vec<(bool, u64, u64, u64, u64, u64)> = vec![
        (true, 0, 0, 0, 0, 0),  // journal-on totals
        (false, 0, 0, 0, 0, 0), // journal-off totals
    ];
    let mut wedged = false;
    for (journaled, cell) in lcf_cells {
        let row = summary.iter_mut().find(|(j, ..)| *j == journaled).unwrap();
        row.1 += cell.false_alarms;
        row.2 += cell.undetected;
        row.3 += cell.lost_writes;
        row.4 += cell.recovery_cycles;
        row.5 += 1;
        wedged |= cell.wedged;
        cells.push(cell.json);
    }

    let soc_specs: Vec<(&str, u64)> = ["power_cut", "torn_write"]
        .into_iter()
        .flat_map(|kind| [150u64, 400, 1_200].into_iter().map(move |cut| (kind, cut)))
        .collect();
    let mut soc_cells = Vec::new();
    for cell in
        secbus_bench::par_map_with(threads, soc_specs, |(kind, cut)| run_soc_cell(kind, cut))
    {
        wedged |= cell.wedged;
        soc_cells.push(cell.json);
    }

    let summary_json = Json::Arr(
        summary
            .into_iter()
            .map(|(j, fa, und, lost, cyc, n)| {
                Json::Obj(vec![
                    ("journal".to_string(), Json::Bool(j)),
                    ("cells".to_string(), Json::uint(n)),
                    ("false_alarms".to_string(), Json::uint(fa)),
                    ("undetected_tampering".to_string(), Json::uint(und)),
                    ("lost_writes".to_string(), Json::uint(lost)),
                    (
                        "mean_recovery_cycles".to_string(),
                        Json::Num(if n == 0 { 0.0 } else { cyc as f64 / n as f64 }),
                    ),
                ])
            })
            .collect(),
    );

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-14 crash soak")),
        ("seed".into(), Json::uint(seed)),
        (
            "checkpoint_interval".into(),
            Json::uint(CHECKPOINT_INTERVAL),
        ),
        (
            "crash_cycles".into(),
            Json::Arr(CRASH_CYCLES.iter().map(|&k| Json::uint(k)).collect()),
        ),
        ("summary".into(), summary_json),
        ("cells".into(), Json::Arr(cells)),
        ("soc_cells".into(), Json::Arr(soc_cells)),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "crash_soak",
        &report,
        wedged,
        "wedged cell detected (no completions before the cut)",
    )
}
