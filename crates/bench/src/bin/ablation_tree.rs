//! Hash-tree depth ablation: the Integrity Core's cost as the protected
//! region grows. The paper's flat 20-cycle IC implies an engine that
//! pipelines/caches the tree walk; this ablation shows what the
//! architecture pays if each tree level costs real cycles instead —
//! the classic integrity-tree scaling trade-off.

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{
    AdfSet, ConfidentialityMode, ConfigMemory, CryptoTiming, FirewallId, IntegrityMode,
    LocalCipheringFirewall, Rwa, SecurityPolicy,
};
use secbus_mem::ExternalDdr;
use secbus_sim::Cycle;

const BASE: u32 = 0x8000_0000;

fn read_latency(region_len: u32, per_level: u64) -> u64 {
    let config = ConfigMemory::with_policies(vec![SecurityPolicy::external(
        1,
        AddrRange::new(BASE, region_len),
        Rwa::ReadWrite,
        AdfSet::ALL,
        ConfidentialityMode::Encrypt,
        IntegrityMode::Verify,
        Some([7; 16]),
    )])
    .unwrap();
    let mut ddr = ExternalDdr::new(region_len);
    let mut lcf = LocalCipheringFirewall::new(
        FirewallId(0),
        "LCF",
        config,
        BASE,
        CryptoTiming::with_tree_cost(per_level),
    );
    lcf.seal(&mut ddr);
    let txn = Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op: Op::Read,
        addr: BASE,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    };
    lcf.handle(&mut ddr, &txn, Cycle(0))
        .expect("clean read")
        .latency
}

fn main() {
    println!("HASH-TREE DEPTH ABLATION — protected-read latency vs region size\n");
    println!(
        "{:>12} {:>8} {:>14} {:>14} {:>14}",
        "region", "levels", "flat IC (paper)", "2 cyc/level", "6 cyc/level"
    );
    for len in [0x100u32, 0x1000, 0x1_0000, 0x10_0000] {
        let blocks = len / 16;
        let levels = 32 - (blocks - 1).leading_zeros();
        println!(
            "{:>9} B {:>8} {:>14} {:>14} {:>14}",
            len,
            levels,
            read_latency(len, 0),
            read_latency(len, 2),
            read_latency(len, 6),
        );
    }
    println!("\nshape: the paper's flat 20-cycle IC hides the tree walk; with an");
    println!("explicit per-level cost the latency grows with log2(region/16B) —");
    println!("the motivation for node caching in hash-tree engines.");
}
