//! Regenerates the paper's Table I (synthesis results) from the area model.

use secbus_area::model::{GENERIC_WITH, GENERIC_WITHOUT};
use secbus_area::Table1;

fn main() {
    let t = Table1::case_study();
    println!("TABLE I — SYNTHESIS RESULTS OF THE MULTIPROCESSOR SYSTEM");
    println!("(model composition; per-module constants calibrated on the paper)\n");
    print!("{}", t.render());
    println!();
    let ok = t.without == GENERIC_WITHOUT && t.with == GENERIC_WITH;
    println!(
        "paper check: system rows {} the published Table I values",
        if ok {
            "REPRODUCE EXACTLY"
        } else {
            "DIVERGE FROM"
        }
    );
    println!(
        "note: overhead percentages are derived from the absolute counts; the\n\
         paper's printed percentages are inconsistent with its own absolute\n\
         numbers (see DESIGN.md §2 / EXPERIMENTS.md)."
    );
}
