//! S-16: performance soak — cached-vs-uncached Integrity Core, batched
//! vs per-block Confidentiality Core, serial vs parallel harness.
//!
//! Full mode runs the sweep-sized workloads and (re)writes
//! `BENCH_PERF.json`, the repo's perf-trajectory artifact. `--smoke`
//! runs CI-sized workloads and *asserts* instead:
//!
//! * the optimized paths produce identical security outcomes (outcome
//!   digests, alert counts, ciphertexts, merged harness results);
//! * no measured speedup regressed more than 20 % against the recorded
//!   `BENCH_PERF.json` baseline. The gates compare *ratios* (cached vs
//!   uncached on the same host), so they hold across machines; the
//!   parallel-harness gate only applies on multi-core hosts.
//!
//! `--seed N` reseeds the IC workload; the IC section is byte-identical
//! per seed (host wall-times of course are not).

use secbus_bench::hostperf::{measure_host, HostWorkload};
use secbus_bench::perf::{compare_cc, compare_harness, compare_ic, compare_sim, IcWorkload};
use secbus_sim::Json;
use secbus_soc::{case_study, CaseStudyConfig};

const BASELINE: &str = "BENCH_PERF.json";

fn main() {
    let secbus_bench::SoakArgs { seed, smoke } = secbus_bench::SoakArgs::parse(0x516);

    let ic_workload = if smoke {
        IcWorkload::smoke(seed)
    } else {
        IcWorkload::full(seed)
    };
    let ic = compare_ic(&ic_workload);
    // CC reps are NOT scaled down in smoke mode: the comparison is host
    // time, and each timed window must be long enough (~0.5 s) for the
    // paired-round median to see past scheduler noise; short runs trip
    // the 20 % gate.
    let cc = compare_cc(4096, 8_000);
    let harness = if smoke {
        compare_harness(4, 128)
    } else {
        compare_harness(8, 1_024)
    };
    // S-21: stepped vs event simulator core. The idle workload's halting
    // programs leave a long quiet tail (the event core's whole reason to
    // exist); the saturated one never idles, so it prices the skip-check
    // overhead.
    // Same sizes in both modes: the idle ratio scales with the length
    // of the skipped tail, so a smoke-sized run would not be comparable
    // against the recorded full-sized baseline — and the whole
    // comparison only costs ~0.4 s anyway. The saturated window must be
    // long enough (tens of ms per run) for the wall-clock ratio to see
    // past scheduler noise.
    let sim = compare_sim(400_000, 200_000);
    // S-22: host-side crypto throughput across backends (soft reference
    // vs AES-NI/SHA-NI, serial vs parallel Merkle). Ratios transfer
    // across hosts; absolute GB/s are trajectory data.
    let host = measure_host(&if smoke {
        HostWorkload::smoke()
    } else {
        HostWorkload::full()
    });

    // Observability cell: the case-study workload with the trace spine
    // armed. Entirely simulated time — no host wall-clock leaks in — so
    // the whole section is byte-identical run to run.
    let observe = {
        let mut soc = case_study(CaseStudyConfig {
            trace: Some(8_192),
            ..Default::default()
        });
        let cycles = soc.run_until_halt(2_000_000);
        let tracer = soc.tracer().expect("trace armed");
        Json::Obj(vec![
            ("cycles".into(), Json::uint(cycles)),
            ("trace_events".into(), Json::uint(tracer.total())),
            ("trace_dropped".into(), Json::uint(tracer.dropped())),
            ("metrics".into(), soc.metrics_snapshot().to_json()),
        ])
    };

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-16 perf soak")),
        ("seed".into(), Json::uint(seed)),
        ("smoke".into(), Json::Bool(smoke)),
        (
            "ic".into(),
            Json::Obj(vec![
                ("accesses".into(), Json::uint(ic_workload.accesses)),
                (
                    "per_level_cycles".into(),
                    Json::uint(ic_workload.per_level_cycles),
                ),
                (
                    "cache_entries".into(),
                    Json::uint(ic_workload.cache_entries as u64),
                ),
                ("uncached_cycles".into(), Json::uint(ic.uncached.ic_cycles)),
                ("cached_cycles".into(), Json::uint(ic.cached.ic_cycles)),
                ("cycles_saved".into(), Json::uint(ic.cached.cycles_saved)),
                ("cache_hits".into(), Json::uint(ic.cached.cache_hits)),
                ("cache_misses".into(), Json::uint(ic.cached.cache_misses)),
                ("alerts".into(), Json::uint(ic.cached.alerts)),
                ("simulated_speedup".into(), Json::Num(ic.speedup())),
                ("equivalent".into(), Json::Bool(ic.equivalent())),
            ]),
        ),
        (
            "cc".into(),
            Json::Obj(vec![
                ("per_block_ns".into(), Json::uint(cc.per_block_ns)),
                ("batched_ns".into(), Json::uint(cc.batched_ns)),
                ("host_speedup".into(), Json::Num(cc.speedup())),
                ("outputs_match".into(), Json::Bool(cc.outputs_match)),
            ]),
        ),
        (
            "harness".into(),
            Json::Obj(vec![
                ("threads".into(), Json::uint(harness.threads as u64)),
                ("serial_ns".into(), Json::uint(harness.serial_ns)),
                ("parallel_ns".into(), Json::uint(harness.parallel_ns)),
                ("host_speedup".into(), Json::Num(harness.speedup())),
                ("identical".into(), Json::Bool(harness.identical)),
            ]),
        ),
        (
            "sim".into(),
            Json::Obj(vec![
                // The active crypto backend is part of the measurement
                // conditions here: LCF crypto work is a fixed cost in
                // both cores, so the stepped/event ratio is only
                // comparable between runs that selected the same
                // backend (Amdahl dilution under `soft`). The other
                // soaks' reports stay backend-free — this one already
                // carries host timings and is excluded from the
                // byte-identity cmp discipline.
                (
                    "crypto_backend".into(),
                    Json::str(secbus_crypto::active_backend().name()),
                ),
                (
                    "idle".into(),
                    Json::Obj(vec![
                        ("sim_cycles".into(), Json::uint(sim.idle.event.sim_cycles)),
                        ("stepped_ns".into(), Json::uint(sim.idle.stepped.host_ns)),
                        ("event_ns".into(), Json::uint(sim.idle.event.host_ns)),
                        (
                            "stepped_cycles_per_sec".into(),
                            Json::Num(sim.idle.stepped.cycles_per_sec()),
                        ),
                        (
                            "event_cycles_per_sec".into(),
                            Json::Num(sim.idle.event.cycles_per_sec()),
                        ),
                        (
                            "events_per_sec".into(),
                            Json::Num(sim.idle.event.events_per_sec()),
                        ),
                        ("events".into(), Json::uint(sim.idle.event.ticks)),
                        ("skip_fraction".into(), Json::Num(sim.idle.skip_fraction())),
                        ("host_speedup".into(), Json::Num(sim.idle.speedup())),
                        ("identical".into(), Json::Bool(sim.idle.identical)),
                    ]),
                ),
                (
                    "saturated".into(),
                    Json::Obj(vec![
                        (
                            "sim_cycles".into(),
                            Json::uint(sim.saturated.event.sim_cycles),
                        ),
                        (
                            "stepped_ns".into(),
                            Json::uint(sim.saturated.stepped.host_ns),
                        ),
                        ("event_ns".into(), Json::uint(sim.saturated.event.host_ns)),
                        (
                            "stepped_cycles_per_sec".into(),
                            Json::Num(sim.saturated.stepped.cycles_per_sec()),
                        ),
                        (
                            "event_cycles_per_sec".into(),
                            Json::Num(sim.saturated.event.cycles_per_sec()),
                        ),
                        (
                            "events_per_sec".into(),
                            Json::Num(sim.saturated.event.events_per_sec()),
                        ),
                        ("events".into(), Json::uint(sim.saturated.event.ticks)),
                        (
                            "skip_fraction".into(),
                            Json::Num(sim.saturated.skip_fraction()),
                        ),
                        ("host_speedup".into(), Json::Num(sim.saturated.speedup())),
                        ("identical".into(), Json::Bool(sim.saturated.identical)),
                    ]),
                ),
            ]),
        ),
        (
            "host".into(),
            Json::Obj(vec![
                ("aesni".into(), Json::Bool(host.aesni)),
                ("shani".into(), Json::Bool(host.shani)),
                (
                    "ctr".into(),
                    Json::Obj(vec![
                        (
                            "per_block_soft_gbps".into(),
                            Json::Num(host.ctr_per_block_soft.gbps()),
                        ),
                        (
                            "batched_soft_gbps".into(),
                            Json::Num(host.ctr_batched_soft.gbps()),
                        ),
                        (
                            "batched_accel_gbps".into(),
                            Json::Num(host.ctr_batched_accel.gbps()),
                        ),
                        (
                            "batched_vs_per_block".into(),
                            Json::Num(host.ctr_batched_vs_per_block()),
                        ),
                        (
                            "accel_vs_per_block".into(),
                            Json::Num(host.ctr_accel_vs_per_block()),
                        ),
                    ]),
                ),
                (
                    "sha".into(),
                    Json::Obj(vec![
                        ("soft_gbps".into(), Json::Num(host.sha_soft.gbps())),
                        ("accel_gbps".into(), Json::Num(host.sha_accel.gbps())),
                        ("speedup".into(), Json::Num(host.sha_speedup())),
                    ]),
                ),
                (
                    "merkle".into(),
                    Json::Obj(vec![
                        ("leaves".into(), Json::uint(host.merkle_leaves as u64)),
                        ("threads".into(), Json::uint(host.merkle_threads as u64)),
                        (
                            "build_serial_ns".into(),
                            Json::uint(host.merkle_build_serial_ns),
                        ),
                        (
                            "build_parallel_ns".into(),
                            Json::uint(host.merkle_build_parallel_ns),
                        ),
                        (
                            "build_speedup".into(),
                            Json::Num(host.merkle_build_speedup()),
                        ),
                        (
                            "verifies_per_sec".into(),
                            Json::Num(host.merkle_verifies_per_sec),
                        ),
                    ]),
                ),
                ("outputs_match".into(), Json::Bool(host.outputs_match)),
            ]),
        ),
        ("observe".into(), observe),
    ]);
    println!("{}", report.render_pretty());

    // Security equivalence is non-negotiable in every mode.
    let mut failures = Vec::new();
    if !ic.equivalent() {
        failures.push("cached IC outcome differs from uncached".to_string());
    }
    if ic.cached.alerts == 0 {
        failures.push("IC workload raised no alerts (tampering not exercised)".to_string());
    }
    if !cc.outputs_match {
        failures.push("batched CC ciphertext differs from per-block".to_string());
    }
    if !harness.identical {
        failures.push("parallel harness merge differs from serial".to_string());
    }
    if !sim.idle.identical {
        failures.push("event core diverged from stepped on the idle workload".to_string());
    }
    if !sim.saturated.identical {
        failures.push("event core diverged from stepped on the saturated workload".to_string());
    }
    if !host.outputs_match {
        failures.push("host crypto backends disagreed (ciphertext/digest/root)".to_string());
    }
    // The hardware gate: batched accel CTR must beat the per-block soft
    // reference ≥10x — but only where the hardware exists. Hosts without
    // AES-NI skip (not fail) it, in every mode.
    if host.aesni {
        if host.ctr_accel_vs_per_block() < 10.0 {
            failures.push(format!(
                "AES-NI batched CTR below 10x over per-block soft: {:.2}x",
                host.ctr_accel_vs_per_block()
            ));
        }
    } else {
        eprintln!("perf_soak: host has no AES-NI; hardware CTR gate skipped");
    }
    // The saturated workload has nothing to skip, so the event core's
    // only effect is its per-tick skip check — more than 20% slower than
    // stepped means the check is too expensive. Host-local ratio, so it
    // holds in every mode without a baseline.
    if sim.saturated.speedup() < 0.8 {
        failures.push(format!(
            "event core regressed the saturated workload >20%: {:.2}x vs stepped",
            sim.saturated.speedup()
        ));
    }

    if smoke {
        // Regression gates against the recorded baseline, as ratios so
        // they transfer across hosts. >20 % regression fails.
        match std::fs::read_to_string(BASELINE) {
            Ok(text) => {
                let base = Json::parse(&text).expect("BENCH_PERF.json parses");
                let gate = |what: &str, current: f64, recorded: Option<f64>| {
                    let Some(recorded) = recorded else {
                        return Some(format!("baseline missing {what}"));
                    };
                    (current < 0.8 * recorded).then(|| {
                        format!("{what} regressed >20%: {current:.2}x vs recorded {recorded:.2}x")
                    })
                };
                let baseline_speedup = |section: &str| {
                    base.get(section)?
                        .get(if section == "ic" {
                            "simulated_speedup"
                        } else {
                            "host_speedup"
                        })?
                        .as_f64()
                };
                failures.extend(gate(
                    "IC simulated speedup",
                    ic.speedup(),
                    baseline_speedup("ic"),
                ));
                failures.extend(gate(
                    "CC host speedup",
                    cc.speedup(),
                    baseline_speedup("cc"),
                ));
                if harness.threads > 1 {
                    failures.extend(gate(
                        "harness host speedup",
                        harness.speedup(),
                        baseline_speedup("harness"),
                    ));
                }
                // Older baselines predate the sim section; the gate
                // arms once a full run has recorded one — and only
                // when the recorded run selected the same crypto
                // backend (the ratio dilutes under slower crypto, so
                // cross-backend comparison is meaningless).
                let recorded_backend = base
                    .get("sim")
                    .and_then(|s| s.get("crypto_backend"))
                    .and_then(|v| v.as_str());
                let backend_comparable =
                    recorded_backend.is_none_or(|b| b == secbus_crypto::active_backend().name());
                if let Some(recorded) = base
                    .get("sim")
                    .and_then(|s| s.get("idle"))
                    .and_then(|i| i.get("host_speedup"))
                    .and_then(|v| v.as_f64())
                {
                    if backend_comparable {
                        failures.extend(gate(
                            "sim idle-heavy host speedup",
                            sim.idle.speedup(),
                            Some(recorded),
                        ));
                    } else {
                        eprintln!(
                            "perf_soak: note: sim idle gate skipped \
                             (baseline recorded under crypto backend {:?}, \
                             this run uses {:?})",
                            recorded_backend.unwrap_or("?"),
                            secbus_crypto::active_backend().name()
                        );
                    }
                }
                // Host-throughput gates likewise arm once a full run has
                // recorded the section, and only where the recorded
                // ratio is comparable (same hardware class: the accel
                // ratios collapse by design on capability-less hosts).
                let host_ratio =
                    |inner: &str, leaf: &str| base.get("host")?.get(inner)?.get(leaf)?.as_f64();
                if host.aesni {
                    if let Some(recorded) = host_ratio("ctr", "accel_vs_per_block") {
                        failures.extend(gate(
                            "host CTR accel-vs-per-block",
                            host.ctr_accel_vs_per_block(),
                            Some(recorded),
                        ));
                    }
                }
                if let Some(recorded) = host_ratio("ctr", "batched_vs_per_block") {
                    failures.extend(gate(
                        "host CTR batched-vs-per-block (soft)",
                        host.ctr_batched_vs_per_block(),
                        Some(recorded),
                    ));
                }
                if host.shani {
                    if let Some(recorded) = host_ratio("sha", "speedup") {
                        failures.extend(gate(
                            "host SHA accel speedup",
                            host.sha_speedup(),
                            Some(recorded),
                        ));
                    }
                }
            }
            Err(e) => failures.push(format!("cannot read {BASELINE} baseline: {e}")),
        }
    } else {
        // The event core's reason to exist: at least 5x on the
        // idle-heavy workload when recording the trajectory baseline.
        if sim.idle.speedup() < 5.0 {
            failures.push(format!(
                "idle-heavy event-core speedup below 5x: {:.2}x",
                sim.idle.speedup()
            ));
        }
        std::fs::write(BASELINE, format!("{}\n", report.render_pretty()))
            .expect("write BENCH_PERF.json");
        eprintln!("perf_soak: wrote {BASELINE}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("perf_soak: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
