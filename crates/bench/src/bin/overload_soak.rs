//! S-19: overload soak — open-loop load against bounded queues, credit
//! backpressure, admission control and graceful degradation.
//!
//! Two fabrics face the same discipline:
//!
//! * **NoC cells** sweep arrival intensity × burst shape × mesh size ×
//!   protection over [`run_overload`]: a seed-deterministic workload
//!   schedule is replayed verbatim (arrivals never wait for the fabric),
//!   and the mesh must resolve the excess through source-side admission
//!   control backed by per-router buffer credits.
//! * **SoC cells** sweep flood rate × protection over
//!   [`run_soc_overload`]: an open-loop master floods the DDR through a
//!   bounded bus request queue; excess arrivals are refused with typed
//!   alerts, and sustained pressure steps the LCF down the brownout
//!   lattice (verify → cipher-only) until the burst drains.
//!
//! Gates (exit 1 on any failure, report printed regardless):
//!
//! 1. **no wedge** — protected residue after the drain window, or any
//!    protected silent drop, fails the run;
//! 2. **conservation** — every cell must balance its books:
//!    offered == delivered + alerted + silent (bare only) + residue;
//! 3. **monotone shedding** — within each (pattern, mesh, mode) group
//!    the ingress shed *fraction* must be non-decreasing in offered
//!    intensity (more load never makes refusal less likely);
//! 4. **bounded drain** — every protected NoC cell must empty within
//!    its drain window, and every degraded SoC cell must have exited
//!    the brownout by the end of the run.
//!
//! Same `--seed` → byte-identical JSON, serial (`--serial`) or parallel.
//! `--smoke` shrinks the sweep to CI size.

use secbus_noc::{run_overload, OverloadConfig, OverloadReport};
use secbus_sim::Json;
use secbus_soc::{run_soc_overload, DegradeConfig, SocOverloadConfig, SocOverloadReport};
use secbus_workload::Pattern;

/// NoC injection window per cell, in cycles.
const CYCLES: u64 = 4_000;
/// NoC drain window.
const DRAIN: u64 = 3_000;
/// Buffer credits per router.
const NODE_CAPACITY: usize = 8;

/// Arrival intensities (expected arrivals per node per active cycle),
/// sorted ascending — the monotone-shed gate leans on the order.
const INTENSITIES: &[f64] = &[0.05, 0.3, 0.8];
/// Mesh sizes (cols, rows).
const MESHES: &[(u8, u8)] = &[(2, 2), (4, 4)];
/// SoC flood rates (arrivals per cycle into one port).
const SOC_RATES: &[u32] = &[1, 2, 4];

/// Burst shapes the sweep exercises. Hotspot aims everything at the far
/// corner; transpose is the classic adversarial permutation.
fn patterns(cols: u8, rows: u8) -> Vec<(&'static str, Pattern)> {
    let dests = usize::from(cols) * usize::from(rows);
    vec![
        ("poisson", Pattern::Poisson),
        (
            "bursty",
            Pattern::Bursty {
                burst_len: 32,
                gap_len: 96,
            },
        ),
        (
            "hotspot",
            Pattern::Hotspot {
                hot: dests - 1,
                fraction: 0.8,
            },
        ),
        ("transpose", Pattern::Transpose),
    ]
}

fn noc_cell_json(name: &str, intensity: f64, r: &OverloadReport) -> Json {
    let alerts_by_reason = r
        .alerts_by_reason
        .iter()
        .map(|(reason, count)| ((*reason).to_string(), Json::uint(*count)))
        .collect();
    Json::Obj(vec![
        ("fabric".into(), Json::str("noc")),
        ("mesh".into(), Json::str(format!("{}x{}", r.cols, r.rows))),
        ("pattern".into(), Json::str(name)),
        ("intensity".into(), Json::Num(intensity)),
        (
            "mode".into(),
            Json::str(if r.protected { "protected" } else { "bare" }),
        ),
        ("offered".into(), Json::uint(r.offered)),
        ("delivered".into(), Json::uint(r.delivered)),
        ("shed_at_ingress".into(), Json::uint(r.shed_at_ingress)),
        ("alerts".into(), Json::uint(r.alerts)),
        ("alerts_by_reason".into(), Json::Obj(alerts_by_reason)),
        ("silent_drops".into(), Json::uint(r.silent_drops)),
        (
            "credit_wait_cycles".into(),
            Json::uint(r.credit_wait_cycles),
        ),
        ("max_in_flight".into(), Json::uint(r.max_in_flight)),
        (
            "drain_cycles_used".into(),
            match r.drain_cycles_used {
                Some(d) => Json::uint(d),
                None => Json::Null,
            },
        ),
        ("residue".into(), Json::uint(r.residue)),
        ("conservation_ok".into(), Json::Bool(r.conservation_ok)),
        ("wedged".into(), Json::Bool(r.wedged)),
        (
            "metrics".into(),
            Json::parse(&r.metrics_json).expect("metrics snapshot parses"),
        ),
    ])
}

fn soc_cell_json(per_tick: u32, r: &SocOverloadReport) -> Json {
    Json::Obj(vec![
        ("fabric".into(), Json::str("soc")),
        ("per_tick".into(), Json::uint(u64::from(per_tick))),
        (
            "mode".into(),
            Json::str(if r.protected { "protected" } else { "bare" }),
        ),
        ("issued".into(), Json::uint(r.issued)),
        ("completed".into(), Json::uint(r.completed)),
        ("shed".into(), Json::uint(r.shed)),
        ("errors".into(), Json::uint(r.errors)),
        ("shed_alerts".into(), Json::uint(r.shed_alerts)),
        ("degrade_enters".into(), Json::uint(r.degrade_enters)),
        ("degrade_exits".into(), Json::uint(r.degrade_exits)),
        (
            "brownout_skipped_verifies".into(),
            Json::uint(r.brownout_skipped_verifies),
        ),
        ("still_degraded".into(), Json::Bool(r.still_degraded)),
        ("conservation_ok".into(), Json::Bool(r.conservation_ok)),
        ("wedged".into(), Json::Bool(r.wedged)),
        (
            "metrics".into(),
            Json::parse(&r.metrics_json).expect("metrics snapshot parses"),
        ),
    ])
}

/// Shed fraction of a NoC cell, for the monotonicity gate.
fn shed_rate(r: &OverloadReport) -> f64 {
    if r.offered == 0 {
        0.0
    } else {
        r.shed_at_ingress as f64 / r.offered as f64
    }
}

fn main() {
    let secbus_bench::SoakArgs { seed, smoke } = secbus_bench::SoakArgs::parse(0x0E_71_0A_D5);
    let meshes: &[(u8, u8)] = if smoke { &MESHES[..1] } else { MESHES };
    let cycles = if smoke { CYCLES / 4 } else { CYCLES };
    let soc_cycles: u64 = if smoke { 800 } else { 2_000 };

    // NoC sweep: every (mesh, pattern, intensity, mode) cell is a pure
    // function of its spec — fan out, merge in input order, so the JSON
    // is byte-identical to a serial run (`--serial` forces one).
    let mut noc_specs: Vec<(&'static str, OverloadConfig)> = Vec::new();
    for (mi, &(cols, rows)) in meshes.iter().enumerate() {
        for (pi, (name, pattern)) in patterns(cols, rows).into_iter().enumerate() {
            for (ii, &intensity) in INTENSITIES.iter().enumerate() {
                // One schedule seed per (mesh, pattern, intensity): bare
                // and protected face identical arrivals.
                let cell_seed = seed + (((mi * 8) + pi) * INTENSITIES.len() + ii) as u64;
                for &protected in &[false, true] {
                    noc_specs.push((
                        name,
                        OverloadConfig {
                            cols,
                            rows,
                            pattern,
                            intensity,
                            cycles,
                            drain_cycles: DRAIN,
                            protected,
                            node_capacity: NODE_CAPACITY,
                            seed: cell_seed,
                        },
                    ));
                }
            }
        }
    }
    let threads = secbus_bench::sweep_threads();
    let noc_results = secbus_bench::par_map_with(threads, noc_specs.clone(), |(name, cfg)| {
        (name, cfg, run_overload(&cfg))
    });

    // SoC sweep.
    let soc_specs: Vec<SocOverloadConfig> = SOC_RATES
        .iter()
        .flat_map(|&per_tick| {
            [false, true]
                .into_iter()
                .map(move |protected| SocOverloadConfig {
                    per_tick,
                    cycles: soc_cycles,
                    drain_cycles: 20_000,
                    master_queue_capacity: 8,
                    protected,
                    degrade: protected.then_some(DegradeConfig {
                        high_watermark: 6,
                        low_watermark: 0,
                        enter_after: 8,
                        exit_after: 32,
                    }),
                    seed,
                })
        })
        .collect();
    let soc_results =
        secbus_bench::par_map_with(threads, soc_specs, |cfg| (cfg, run_soc_overload(&cfg)));

    // Gates.
    let mut wedged = false;
    let mut conservation_failures = 0u64;
    let mut unbounded_drains = 0u64;
    let mut monotonicity_breaks = 0u64;
    let mut cells = Vec::new();

    // Group NoC cells by (mesh, pattern, mode) to check the shed rate is
    // monotone in intensity; the sweep order guarantees intensity
    // ascends within each group.
    let mut last_rate: std::collections::HashMap<(u8, u8, &str, bool), f64> =
        std::collections::HashMap::new();
    for (name, cfg, r) in &noc_results {
        wedged |= r.wedged;
        conservation_failures += u64::from(!r.conservation_ok);
        if r.protected && r.drain_cycles_used.is_none() {
            unbounded_drains += 1;
        }
        let key = (cfg.cols, cfg.rows, *name, cfg.protected);
        let rate = shed_rate(r);
        if let Some(&prev) = last_rate.get(&key) {
            // Tiny slack absorbs schedule-level noise between adjacent
            // intensities; a real inversion is far larger.
            if rate + 0.01 < prev {
                monotonicity_breaks += 1;
            }
        }
        last_rate.insert(key, rate);
        cells.push(noc_cell_json(name, cfg.intensity, r));
    }
    for (cfg, r) in &soc_results {
        wedged |= r.wedged;
        conservation_failures += u64::from(!r.conservation_ok);
        unbounded_drains += u64::from(r.still_degraded);
        cells.push(soc_cell_json(cfg.per_tick, r));
    }

    let gate_failed =
        wedged || conservation_failures > 0 || unbounded_drains > 0 || monotonicity_breaks > 0;
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-19 overload soak")),
        ("seed".into(), Json::uint(seed)),
        ("smoke".into(), Json::Bool(smoke)),
        ("noc_cycles".into(), Json::uint(cycles)),
        ("noc_drain_cycles".into(), Json::uint(DRAIN)),
        ("node_capacity".into(), Json::uint(NODE_CAPACITY as u64)),
        ("cells".into(), Json::Arr(cells)),
        (
            "conservation_failures".into(),
            Json::uint(conservation_failures),
        ),
        ("unbounded_drains".into(), Json::uint(unbounded_drains)),
        (
            "monotonicity_breaks".into(),
            Json::uint(monotonicity_breaks),
        ),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "overload_soak",
        &report,
        gate_failed,
        &format!(
            "gate failed (wedged={wedged}, conservation_failures={conservation_failures}, \
             unbounded_drains={unbounded_drains}, monotonicity_breaks={monotonicity_breaks})"
        ),
    )
}
