//! Regenerates the paper's Figure 1 (architecture) from the live system.

use secbus_soc::casestudy::{case_study, CaseStudyConfig};
use secbus_soc::render_topology;

fn main() {
    let soc = case_study(CaseStudyConfig::default());
    println!("{}", render_topology(&soc));
    println!("Baseline (generic, no firewalls) variant:\n");
    let base = case_study(CaseStudyConfig {
        security: false,
        ..Default::default()
    });
    println!("{}", render_topology(&base));
}
