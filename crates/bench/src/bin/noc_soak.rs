//! S-15: NoC soak — the mesh hot-spot workload under seed-reproducible
//! link/router faults, swept over fault rate × mesh size × protection.
//!
//! Each cell runs the same workload twice — bare transport vs the
//! fault-tolerant transport (flit CRC + ack/nack retransmission,
//! heartbeat router detection, fault-region-aware rerouting, NI ingress
//! enforcement) — against the *identical* fault schedule, so every
//! difference in the report is the protection, not the luck of the draw.
//! The whole report is byte-identical for a given `--seed`.
//!
//! Fault pressure is specified per flit transfer (the unit the CRC
//! actually protects) and converted to an expected event count from the
//! cell's deterministic traffic volume. The top-rate cells additionally
//! inject structural faults: a dropped link and a stuck router.
//!
//! The protected transport's contract is delivery-or-alert: a protected
//! cell that still has unresolved traffic after the drain window is
//! *wedged*, and the bench exits non-zero with `"wedged": true`.
//!
//! `--smoke` runs the smallest mesh only (CI-sized).

use secbus_fault::{FaultPlan, FaultRates, FaultSpec};
use secbus_noc::{run_noc_soak, NocSoakConfig, NocSoakReport};
use secbus_sim::Json;

/// Issue window per cell, in cycles.
const CYCLES: u64 = 8_000;
/// Grace period for in-flight traffic to deliver-or-alert.
const DRAIN: u64 = 2_000;
/// Cycles between round trips per initiator.
const PERIOD: u64 = 16;
/// Flits per packet (matches the workload's request/response framing).
const FLITS: f64 = 2.0;

/// Link bit-flip pressure, per flit transfer.
const RATES: &[f64] = &[0.0, 1e-4, 1e-3];
/// Initiator counts; the mesh is sized to fit them (2→2x2, 6→3x3,
/// 12→4x4).
const SIZES: &[usize] = &[2, 6, 12];

/// Mesh shape for an initiator count — mirrors the workload's sizing.
fn mesh_dims(initiators: usize) -> (u8, u8) {
    let rows = (initiators as f64).sqrt().ceil() as u8;
    let cols = (initiators as u8).div_ceil(rows) + 1;
    (cols, rows)
}

/// Expected bit-flip count for a per-flit rate, from the cell's
/// deterministic traffic volume: round trips × two packets × flits per
/// packet × mean XY hop count.
fn expected_flips(rate_per_flit: f64, initiators: usize) -> f64 {
    let (cols, rows) = mesh_dims(initiators);
    let round_trips = (CYCLES / PERIOD) as f64 * initiators as f64;
    let mean_hops = f64::from(cols) / 2.0 + f64::from(rows) / 2.0;
    round_trips * 2.0 * FLITS * mean_hops * rate_per_flit
}

fn run_cell(
    initiators: usize,
    rate: f64,
    structural: bool,
    protected: bool,
    seed: u64,
) -> NocSoakReport {
    let (cols, rows) = mesh_dims(initiators);
    let spec = FaultSpec {
        duration: CYCLES,
        ddr_bytes: 0,
        firewalls: 0,
        slaves: 0,
        noc_nodes: u16::from(cols) * u16::from(rows),
        rates: FaultRates {
            link_bitflip: expected_flips(rate, initiators),
            link_drop: if structural { 1.0 } else { 0.0 },
            router_stuck: if structural { 1.0 } else { 0.0 },
            ..FaultRates::NONE
        },
    };
    let cfg = NocSoakConfig {
        initiators,
        period: PERIOD,
        cycles: CYCLES,
        drain_cycles: DRAIN,
        protected,
    };
    run_noc_soak(&cfg, FaultPlan::generate(seed, &spec))
}

fn cell_json(r: &NocSoakReport, rate: f64, structural: bool) -> Json {
    let (cols, rows) = mesh_dims(r.initiators);
    let alerts_by_reason = r
        .alerts_by_reason
        .iter()
        .map(|(name, count)| ((*name).to_string(), Json::uint(*count)))
        .collect();
    Json::Obj(vec![
        ("mesh".into(), Json::str(format!("{cols}x{rows}"))),
        ("initiators".into(), Json::uint(r.initiators as u64)),
        (
            "mode".into(),
            Json::str(if r.protected { "protected" } else { "bare" }),
        ),
        ("bitflip_rate_per_flit".into(), Json::Num(rate)),
        ("structural_faults".into(), Json::Bool(structural)),
        ("faults_applied".into(), Json::uint(r.faults_applied)),
        ("issued".into(), Json::uint(r.issued)),
        ("completed".into(), Json::uint(r.completed)),
        (
            "mean_latency".into(),
            Json::Num(r.mean_latency.unwrap_or(0.0)),
        ),
        ("alerts".into(), Json::uint(r.alerts)),
        ("alerts_by_reason".into(), Json::Obj(alerts_by_reason)),
        ("crc_detected".into(), Json::uint(r.crc_detected)),
        ("retransmissions".into(), Json::uint(r.retransmissions)),
        ("reroutes".into(), Json::uint(r.reroutes)),
        (
            "link_failures_detected".into(),
            Json::uint(r.link_failures_detected),
        ),
        (
            "router_failures_detected".into(),
            Json::uint(r.router_failures_detected),
        ),
        ("wire_corruptions".into(), Json::uint(r.wire_corruptions)),
        ("silent_drops".into(), Json::uint(r.silent_drops)),
        (
            "undetected_corruptions".into(),
            Json::uint(r.delivered_corrupt),
        ),
        ("security_bypasses".into(), Json::uint(r.security_bypasses)),
        ("ingress_rejected".into(), Json::uint(r.ingress_rejected)),
        ("unresolved".into(), Json::uint(r.unresolved)),
        ("stuck_in_mesh".into(), Json::uint(r.stuck_in_mesh)),
        ("wedged".into(), Json::Bool(r.wedged)),
        (
            "metrics".into(),
            Json::parse(&r.metrics_json).expect("metrics snapshot parses"),
        ),
    ])
}

fn main() {
    let secbus_bench::SoakArgs { seed, smoke } = secbus_bench::SoakArgs::parse(0x50C15);
    let sizes: &[usize] = if smoke { &SIZES[..1] } else { SIZES };

    // Each (size, rate, mode) cell is a pure function of its spec: fan
    // out across threads and merge in input order, so the JSON is
    // byte-identical to a serial run (`--serial` to force one).
    let mut specs = Vec::new();
    for (si, &initiators) in sizes.iter().enumerate() {
        for (ri, &rate) in RATES.iter().enumerate() {
            // Structural faults ride the top-rate cells: the sweep ends
            // with bit flips, a dropped link and a stuck router at once.
            let structural = ri == RATES.len() - 1;
            // One plan seed per (size, rate): bare and protected face
            // the identical schedule.
            let cell_seed = seed + (si * RATES.len() + ri) as u64;
            for &protected in &[false, true] {
                specs.push((initiators, rate, structural, protected, cell_seed));
            }
        }
    }
    let results = secbus_bench::par_map_with(
        secbus_bench::sweep_threads(),
        specs,
        |(initiators, rate, structural, protected, cell_seed)| {
            let r = run_cell(initiators, rate, structural, protected, cell_seed);
            let json = cell_json(&r, rate, structural);
            (json, r.wedged)
        },
    );
    let mut cells = Vec::new();
    let mut wedged = false;
    for (json, cell_wedged) in results {
        wedged |= cell_wedged;
        cells.push(json);
    }

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-15 noc soak")),
        ("issue_cycles".into(), Json::uint(CYCLES)),
        ("drain_cycles".into(), Json::uint(DRAIN)),
        ("seed".into(), Json::uint(seed)),
        ("smoke".into(), Json::Bool(smoke)),
        ("cells".into(), Json::Arr(cells)),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "noc_soak",
        &report,
        wedged,
        "wedged cell detected (protected traffic neither delivered nor alerted)",
    )
}
