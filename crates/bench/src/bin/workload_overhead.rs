//! S-2 with real programs: the workload library (memcpy, matmul,
//! fletcher16, histogram) run with data in internal BRAM vs the protected
//! external region, with and without the security layer.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, Mb32Core};
use secbus_mem::{Bram, ExternalDdr};
use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN, DDR_PRIVATE_BASE};
use secbus_soc::{workloads, SocBuilder};

const BRAM_BASE: u32 = 0x2000_0000;

fn run(src: &str, protected: bool, init: &[(u32, Vec<u8>)]) -> u64 {
    let core = Mb32Core::with_local_program("cpu0", 0, assemble(src).expect("assembles"));
    let policies = ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x4000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(DDR_PRIVATE_BASE, 0x4000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
    ])
    .unwrap();
    let mut bram = Bram::new(0x4000);
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for (addr, bytes) in init {
        if *addr >= DDR_BASE {
            ddr.load(addr - DDR_BASE, bytes);
        } else {
            bram.load(addr - BRAM_BASE, bytes);
        }
    }
    let mut b = SocBuilder::new();
    if !protected {
        b = b.without_security();
    }
    let mut soc = b
        .add_protected_master(Box::new(core), policies)
        .add_bram("bram", AddrRange::new(BRAM_BASE, 0x4000), bram, None)
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ddr,
            Some(lcf_policies()),
        )
        .build();
    let cycles = soc.run_until_halt(20_000_000);
    assert!(cycles < 20_000_000, "workload did not halt");
    cycles
}

type ProgramFor = Box<dyn Fn(u32) -> String>;

fn main() {
    println!("REAL-WORKLOAD OVERHEAD — internal (BRAM) vs external (LCF) data\n");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "workload", "int base", "int prot", "int ovh", "ext base", "ext prot", "ext ovh"
    );
    let data: Vec<u8> = (0..64u32)
        .flat_map(|i| (i * 13 + 5).to_le_bytes())
        .collect();
    let cases: Vec<(&str, ProgramFor)> = vec![
        (
            "memcpy64",
            Box::new(|base| workloads::memcpy(base, BRAM_BASE + 0x2000, 64)),
        ),
        (
            "matmul4",
            Box::new(|base| workloads::matmul4(base, base + 0x40, BRAM_BASE + 0x2000)),
        ),
        (
            "fletcher16",
            Box::new(|base| workloads::fletcher16(base, BRAM_BASE + 0x2000, 64)),
        ),
        (
            "histogram",
            Box::new(|base| workloads::histogram(base, BRAM_BASE + 0x1000, 64)),
        ),
    ];
    for (name, prog) in cases {
        let mut row = Vec::new();
        for base in [BRAM_BASE, DDR_PRIVATE_BASE] {
            let init = vec![(base, data.clone()), (base + 0x40, data.clone())];
            let baseline = run(&prog(base), false, &init);
            let protect = run(&prog(base), true, &init);
            row.push((baseline, protect));
        }
        let ovh = |(b, p): (u64, u64)| (p as f64 / b as f64 - 1.0) * 100.0;
        println!(
            "{:<12} {:>12} {:>12} {:>9.1}% {:>12} {:>12} {:>9.1}%",
            name,
            row[0].0,
            row[0].1,
            ovh(row[0]),
            row[1].0,
            row[1].1,
            ovh(row[1]),
        );
    }
    println!("\nshape: the same program pays far more protection overhead when its");
    println!("data lives behind the LCF — the paper's internal-vs-external claim,");
    println!("measured on real code instead of synthetic traffic.");
}
