//! S-20: reconfig soak — live policy-epoch storms under open-loop
//! overload.
//!
//! Every cell runs [`run_reconfig_soak`]: two open-loop masters flood the
//! DDR while multi-firewall policy epochs — compiled from the DSL and
//! admitted through the exhaustive verifier — rewrite both Local
//! Firewalls mid-flight. The storm mixes committed, verifier-refused
//! (shadowed program) and fault-aborted (`EpochCommitFault`) attempts,
//! on periodic and bursty schedules, bare and protected.
//!
//! Gates (exit 1 on any failure, report printed regardless):
//!
//! 1. **zero dropped** — open-loop conservation holds in every cell
//!    across every swap boundary;
//! 2. **zero misjudged** — every epoch authorizes the flooded window, so
//!    any firewall refusal (`errors != 0`) fails the run;
//! 3. **no mixed fleet** — after every commit attempt both firewalls
//!    report the same epoch, and refused/faulted attempts leave the
//!    epoch counter untouched (`epoch_accounting_ok`);
//! 4. **zero verifier escapes** — no shadowed program ever commits, and
//!    protected cells must actually exercise refusals and mid-commit
//!    aborts (a storm that never tested the defence proves nothing);
//! 5. **bounded drain** — brownouts engaged during the storm must
//!    release by the end of the run.
//!
//! Same `--seed` → byte-identical JSON, serial (`--serial`) or parallel.
//! `--smoke` shrinks the sweep to CI size.

use secbus_sim::Json;
use secbus_soc::{
    run_reconfig_soak, DegradeConfig, ReconfigSoakConfig, ReconfigSoakReport, SwapSchedule,
};

/// Flood rates (arrivals per cycle per master).
const RATES: &[u32] = &[1, 2, 4];

/// Swap schedules the sweep exercises.
const SCHEDULES: &[(&str, SwapSchedule)] = &[
    ("periodic", SwapSchedule::Periodic { every: 200 }),
    (
        "bursty",
        SwapSchedule::Bursty {
            burst: 3,
            every: 500,
        },
    ),
];

fn cell_json(schedule: &str, cfg: &ReconfigSoakConfig, r: &ReconfigSoakReport) -> Json {
    Json::Obj(vec![
        ("schedule".into(), Json::str(schedule)),
        ("per_tick".into(), Json::uint(u64::from(cfg.per_tick))),
        (
            "mode".into(),
            Json::str(if r.protected { "protected" } else { "bare" }),
        ),
        ("issued".into(), Json::uint(r.issued)),
        ("completed".into(), Json::uint(r.completed)),
        ("shed".into(), Json::uint(r.shed)),
        ("errors".into(), Json::uint(r.errors)),
        ("conservation_ok".into(), Json::Bool(r.conservation_ok)),
        ("commits_attempted".into(), Json::uint(r.commits_attempted)),
        ("commits_ok".into(), Json::uint(r.commits_ok)),
        ("verifier_refusals".into(), Json::uint(r.verifier_refusals)),
        ("verifier_escapes".into(), Json::uint(r.verifier_escapes)),
        ("commit_faults".into(), Json::uint(r.commit_faults)),
        ("other_refusals".into(), Json::uint(r.other_refusals)),
        ("final_epoch".into(), Json::uint(r.final_epoch)),
        (
            "epoch_accounting_ok".into(),
            Json::Bool(r.epoch_accounting_ok),
        ),
        ("epoch_mismatches".into(), Json::uint(r.epoch_mismatches)),
        ("degrade_enters".into(), Json::uint(r.degrade_enters)),
        ("degrade_exits".into(), Json::uint(r.degrade_exits)),
        ("still_degraded".into(), Json::Bool(r.still_degraded)),
        ("wedged".into(), Json::Bool(r.wedged)),
        (
            "metrics".into(),
            Json::parse(&r.metrics_json).expect("metrics snapshot parses"),
        ),
    ])
}

fn main() {
    let secbus_bench::SoakArgs { seed, smoke } = secbus_bench::SoakArgs::parse(0x0052_05EC);
    let rates: &[u32] = if smoke { &[2] } else { RATES };
    let cycles: u64 = if smoke { 1_200 } else { 2_400 };

    let mut specs: Vec<(&'static str, ReconfigSoakConfig)> = Vec::new();
    for &(name, schedule) in SCHEDULES {
        for &per_tick in rates {
            for &protected in &[false, true] {
                specs.push((
                    name,
                    ReconfigSoakConfig {
                        per_tick,
                        cycles,
                        drain_cycles: 20_000,
                        master_queue_capacity: 8,
                        protected,
                        degrade: protected.then_some(DegradeConfig {
                            high_watermark: 6,
                            low_watermark: 0,
                            enter_after: 8,
                            exit_after: 32,
                        }),
                        schedule,
                        include_bad: true,
                        include_faults: true,
                        seed,
                    },
                ));
            }
        }
    }

    let threads = secbus_bench::sweep_threads();
    let results = secbus_bench::par_map_with(threads, specs, |(name, cfg)| {
        (name, cfg, run_reconfig_soak(&cfg))
    });

    let mut wedged = false;
    let mut conservation_failures = 0u64;
    let mut misjudged = 0u64;
    let mut epoch_mismatches = 0u64;
    let mut verifier_escapes = 0u64;
    let mut untested_defences = 0u64;
    let mut unbounded_drains = 0u64;
    let mut cells = Vec::new();
    for (name, cfg, r) in &results {
        wedged |= r.wedged;
        conservation_failures += u64::from(!r.conservation_ok);
        misjudged += r.errors;
        epoch_mismatches += r.epoch_mismatches;
        verifier_escapes += r.verifier_escapes;
        unbounded_drains += u64::from(r.still_degraded);
        if r.protected && (r.commits_ok == 0 || r.verifier_refusals == 0 || r.commit_faults == 0) {
            // A protected cell whose storm never committed, never hit the
            // verifier, or never aborted a faulted commit did not test
            // what this soak exists to prove.
            untested_defences += 1;
        }
        cells.push(cell_json(name, cfg, r));
    }

    let gate_failed = wedged
        || conservation_failures > 0
        || misjudged > 0
        || epoch_mismatches > 0
        || verifier_escapes > 0
        || untested_defences > 0
        || unbounded_drains > 0;
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("S-20 reconfig soak")),
        ("seed".into(), Json::uint(seed)),
        ("smoke".into(), Json::Bool(smoke)),
        ("cycles".into(), Json::uint(cycles)),
        ("cells".into(), Json::Arr(cells)),
        (
            "conservation_failures".into(),
            Json::uint(conservation_failures),
        ),
        ("misjudged".into(), Json::uint(misjudged)),
        ("epoch_mismatches".into(), Json::uint(epoch_mismatches)),
        ("verifier_escapes".into(), Json::uint(verifier_escapes)),
        ("untested_defences".into(), Json::uint(untested_defences)),
        ("unbounded_drains".into(), Json::uint(unbounded_drains)),
        ("wedged".into(), Json::Bool(wedged)),
    ]);
    secbus_bench::finish(
        "reconfig_soak",
        &report,
        gate_failed,
        &format!(
            "gate failed (wedged={wedged}, conservation_failures={conservation_failures}, \
             misjudged={misjudged}, epoch_mismatches={epoch_mismatches}, \
             verifier_escapes={verifier_escapes}, untested_defences={untested_defences}, \
             unbounded_drains={unbounded_drains})"
        ),
    )
}
