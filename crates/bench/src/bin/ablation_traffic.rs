//! S-2: execution-time overhead vs computation/communication ratio and
//! internal/external mix (paper §V-A discussion, quantified).

use secbus_bench::sweep_traffic;

fn main() {
    let periods = [1u64, 4, 16, 64];
    let ext = [0u32, 25, 50, 75, 100];
    let rows = sweep_traffic(&periods, &ext, 300, 42);
    println!("S-2 — EXECUTION-TIME OVERHEAD (%) vs TRAFFIC SHAPE");
    println!("(rows: computation period in cycles; columns: % external accesses)\n");
    print!("{:>8}", "period");
    for e in ext {
        print!(" {:>7}%", e);
    }
    println!();
    for p in periods {
        print!("{:>8}", p);
        for e in ext {
            let row = rows
                .iter()
                .find(|r| r.period == p && r.external_pct == e)
                .expect("grid point");
            print!(" {:>7.1}%", row.overhead_pct());
        }
        println!();
    }
    println!("\nshape: overhead falls as computation dominates (down each column)");
    println!("and rises with the external-memory share (across each row), as the");
    println!("paper argues: 'promoting internal computation and communication will");
    println!("improve the overall performance'.");
}
