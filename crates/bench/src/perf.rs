//! S-16: Integrity-Core hot-path performance — the measurement logic
//! behind the `perf_soak` binary.
//!
//! Three comparisons, each pairing an optimized path against its
//! reference with *identical* security outcomes:
//!
//! 1. **Cached vs uncached IC** (simulated cycles): the same
//!    deterministic read-heavy workload runs against the case-study LCF
//!    policies twice — with and without the AEGIS-style trusted-node
//!    cache — under a [`CryptoTiming`] that charges per tree level.
//!    Every access result, alert and final Merkle root is folded into an
//!    outcome digest, so "zero differences" is a single byte comparison.
//! 2. **Batched vs per-block CC** (host wall-time): the same burst is
//!    ciphered through [`MemoryCipher::apply`]'s batched keystream and
//!    through a per-16-byte reference loop.
//! 3. **Serial vs parallel harness** (host wall-time): the same cell
//!    list runs through [`par_map_with`] with one worker and with all of
//!    them; outputs must be identical, only the wall clock may differ.

use std::time::Instant;

use secbus_bus::{MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{CryptoTiming, FirewallId, LocalCipheringFirewall};
use secbus_crypto::sha256::Digest;
use secbus_crypto::{CryptoBackend, MemoryCipher, Sha256};
use secbus_mem::ExternalDdr;
use secbus_sim::{Cycle, SimCore, SimRng};
use secbus_soc::casestudy::{lcf_policies, DDR_BASE, DDR_LEN, DDR_PRIVATE_BASE, DDR_PRIVATE_LEN};

use crate::par_map_with;

/// State key for the checkpoint that exposes the final Merkle roots.
const STATE_KEY: [u8; 16] = *b"s16-perf-state.!";

/// Shape of the read-heavy IC workload.
#[derive(Debug, Clone, Copy)]
pub struct IcWorkload {
    /// Total accesses against the integrity-protected region.
    pub accesses: u64,
    /// Distinct blocks in the hot set (cache-friendly working set).
    pub hot_blocks: u64,
    /// Per-mille of accesses that are writes (the rest read).
    pub write_permille: u64,
    /// Per-mille of accesses aimed at the hot set (the rest uniform).
    pub hot_permille: u64,
    /// Inject one external tamper every this many accesses (0 = none) —
    /// the alert streams must still be identical.
    pub tamper_every: u64,
    /// Trusted-node cache entries for the cached variant.
    pub cache_entries: usize,
    /// Per-tree-level IC cycle cost ([`CryptoTiming::with_tree_cost`]);
    /// the paper's Table II charges a flat latency, which would make the
    /// cache's saving invisible in simulated cycles.
    pub per_level_cycles: u64,
    /// Workload seed.
    pub seed: u64,
}

impl IcWorkload {
    /// The default S-16 workload (full-size sweep).
    pub fn full(seed: u64) -> Self {
        IcWorkload {
            accesses: 20_000,
            hot_blocks: 64,
            write_permille: 100,
            hot_permille: 900,
            tamper_every: 4_001,
            cache_entries: 128,
            per_level_cycles: 8,
            seed,
        }
    }

    /// CI-sized variant (same shape, ~10× smaller).
    pub fn smoke(seed: u64) -> Self {
        IcWorkload {
            accesses: 2_000,
            tamper_every: 401,
            ..IcWorkload::full(seed)
        }
    }
}

/// One variant's run: cost counters plus the outcome digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcRun {
    /// Total simulated Integrity-Core cycles (`lcf.ic_cycles`).
    pub ic_cycles: u64,
    /// Node-cache hits (0 for the uncached variant).
    pub cache_hits: u64,
    /// Node-cache misses (0 for the uncached variant).
    pub cache_misses: u64,
    /// Simulated cycles the cache saved vs full root walks.
    pub cycles_saved: u64,
    /// Accesses denied (integrity mismatches from the tampering).
    pub denied: u64,
    /// Alerts raised.
    pub alerts: u64,
    /// SHA-256 over every access result, every alert and every final
    /// region root — the "zero differences" witness.
    pub outcome: Digest,
}

/// The cached/uncached comparison.
#[derive(Debug, Clone, Copy)]
pub struct IcPerf {
    pub uncached: IcRun,
    pub cached: IcRun,
}

impl IcPerf {
    /// Simulated IC cycle reduction (uncached / cached).
    pub fn speedup(&self) -> f64 {
        self.uncached.ic_cycles as f64 / self.cached.ic_cycles.max(1) as f64
    }

    /// Identical data, verdicts, alerts and roots?
    pub fn equivalent(&self) -> bool {
        self.uncached.outcome == self.cached.outcome
            && self.uncached.denied == self.cached.denied
            && self.uncached.alerts == self.cached.alerts
    }
}

fn txn(i: u64, op: Op, addr: u32, data: u32) -> Transaction {
    Transaction {
        id: TxnId(i),
        master: MasterId(0),
        op,
        addr,
        width: Width::Word,
        data,
        burst: 1,
        issued_at: Cycle(i),
    }
}

/// Run the workload once. The two variants differ only in whether
/// [`LocalCipheringFirewall::enable_ic_cache`] ran — everything else,
/// including the fault schedule, is bit-identical.
fn run_ic_variant(w: &IcWorkload, cached: bool) -> IcRun {
    let timing = CryptoTiming::with_tree_cost(w.per_level_cycles);
    let mut lcf =
        LocalCipheringFirewall::new(FirewallId(0), "LCF s16", lcf_policies(), DDR_BASE, timing);
    if cached {
        lcf.enable_ic_cache(w.cache_entries);
    }
    // Large interval: the journal only exists to expose the final roots
    // through an authenticated checkpoint at the end.
    lcf.enable_journal(u64::MAX, STATE_KEY);
    let mut ddr = ExternalDdr::new(DDR_LEN);
    let mut rng = SimRng::new(w.seed).derive("s16-ic");
    let mut boot = vec![0u8; DDR_PRIVATE_LEN as usize];
    rng.fill_bytes(&mut boot);
    ddr.load(DDR_PRIVATE_BASE - DDR_BASE, &boot);
    lcf.seal(&mut ddr);

    let region_blocks = u64::from(DDR_PRIVATE_LEN) / 16;
    let mut hasher = Sha256::new();
    let mut denied = 0u64;
    for i in 0..w.accesses {
        if w.tamper_every > 0 && i > 0 && i.is_multiple_of(w.tamper_every) {
            // External tampering while the bus is quiet: flip one bit of
            // a hot block's ciphertext behind the LCF's back.
            let block = rng.below(w.hot_blocks) * 16;
            let offset = (DDR_PRIVATE_BASE - DDR_BASE) + block as u32 + rng.below(16) as u32;
            let mut byte = [ddr.snoop(offset, 1)[0]];
            byte[0] ^= 1 << rng.below(8);
            ddr.tamper(offset, &byte);
        }
        let block = if rng.below(1000) < w.hot_permille {
            rng.below(w.hot_blocks)
        } else {
            rng.below(region_blocks)
        };
        let addr = DDR_PRIVATE_BASE + (block * 16) as u32 + 4 * rng.below(4) as u32;
        let write = rng.below(1000) < w.write_permille;
        let t = if write {
            txn(i, Op::Write, addr, rng.next_u32())
        } else {
            txn(i, Op::Read, addr, 0)
        };
        hasher.update(&addr.to_le_bytes());
        match lcf.handle(&mut ddr, &t, Cycle(i)) {
            Ok(access) => hasher.update(&access.data.to_le_bytes()),
            Err((violation, _)) => {
                denied += 1;
                hasher.update(violation.mnemonic().as_bytes());
            }
        }
    }

    let alerts = lcf.drain_alerts();
    for alert in &alerts {
        hasher.update(alert.violation.mnemonic().as_bytes());
        hasher.update(&alert.txn.addr.to_le_bytes());
        hasher.update(&alert.at.get().to_le_bytes());
    }
    lcf.force_checkpoint();
    let image = lcf.persistent_state().expect("journal enabled").image;
    for region in &image.regions {
        if let Some(root) = region.root {
            hasher.update(&root);
        }
    }

    let stats = lcf.stats();
    IcRun {
        ic_cycles: stats.counter("lcf.ic_cycles"),
        cache_hits: stats.counter("lcf.ic_cache_hits"),
        cache_misses: stats.counter("lcf.ic_cache_misses"),
        cycles_saved: stats.counter("lcf.ic_cycles_saved"),
        denied,
        alerts: alerts.len() as u64,
        outcome: hasher.finalize(),
    }
}

/// Run the read-heavy workload uncached and cached and compare.
pub fn compare_ic(w: &IcWorkload) -> IcPerf {
    IcPerf {
        uncached: run_ic_variant(w, false),
        cached: run_ic_variant(w, true),
    }
}

/// The batched/per-block Confidentiality-Core comparison.
#[derive(Debug, Clone, Copy)]
pub struct CcPerf {
    /// Host nanoseconds for the per-16-byte reference loop.
    pub per_block_ns: u64,
    /// Host nanoseconds for the batched keystream path.
    pub batched_ns: u64,
    /// Ciphertext equality between the two paths.
    pub outputs_match: bool,
}

impl CcPerf {
    /// Host wall-time reduction (per-block / batched).
    pub fn speedup(&self) -> f64 {
        self.per_block_ns as f64 / self.batched_ns.max(1) as f64
    }
}

/// Process CPU time (user + system) in nanoseconds, from
/// `/proc/self/stat`; `None` off Linux. Assumes the near-universal
/// 100 Hz kernel tick — and since the measurement is only ever used as
/// a ratio of two same-unit readings, the tick rate cancels anyway.
fn process_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces; fields are stable after the ')'.
    let mut fields = stat[stat.rfind(')')? + 1..].split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) * 10_000_000)
}

/// Cipher `burst_bytes`-byte bursts `reps` times through both paths.
///
/// Pinned to the **soft** backend on purpose: this comparison prices
/// what batching alone buys (key-schedule reuse vs per-block setup), so
/// its ratio must stay comparable across hosts with and without AES-NI
/// — the hardware story lives in `hostperf`'s section, whose gates skip
/// where the hardware is absent.
pub fn compare_cc(burst_bytes: usize, reps: u32) -> CcPerf {
    assert!(burst_bytes.is_multiple_of(16) && burst_bytes >= 32);
    let cipher = MemoryCipher::with_backend(b"s16-cc-perf-key!", CryptoBackend::Soft);
    let addr = u64::from(DDR_PRIVATE_BASE);

    // Correctness first: both paths must produce the same ciphertext.
    let mut batched = vec![0x5au8; burst_bytes];
    cipher.apply(addr, 7, &mut batched);
    let mut per_block = vec![0x5au8; burst_bytes];
    for (i, chunk) in per_block.chunks_mut(16).enumerate() {
        cipher.apply(addr + 16 * i as u64, 7, chunk);
    }
    let outputs_match = batched == per_block;

    // Both paths are single-threaded pure compute, but shared CI hosts
    // make a single timing nearly meaningless: wall clock swings 2x with
    // scheduler throttling, and even process CPU time drifts ~10% with
    // frequency scaling. So: measure CPU time where available (immune to
    // preemption), time the two paths back-to-back in *paired* rounds
    // (slow frequency drift then cancels in the ratio), and report the
    // median round by ratio.
    let mut buf = vec![0xa5u8; burst_bytes];
    let timed = |work: &mut dyn FnMut()| {
        let wall = Instant::now();
        let cpu = process_cpu_ns();
        work();
        match (cpu, process_cpu_ns()) {
            (Some(before), Some(after)) if after > before => after - before,
            _ => wall.elapsed().as_nanos() as u64,
        }
    };
    let mut rounds: Vec<(u64, u64)> = (0..5)
        .map(|_| {
            let batched_ns = timed(&mut || {
                for _ in 0..reps {
                    cipher.apply(addr, 3, &mut buf);
                }
            });
            let per_block_ns = timed(&mut || {
                for _ in 0..reps {
                    for (i, chunk) in buf.chunks_mut(16).enumerate() {
                        cipher.apply(addr + 16 * i as u64, 3, chunk);
                    }
                }
            });
            (per_block_ns, batched_ns)
        })
        .collect();
    // Median by per-block/batched ratio, compared in cross-multiplied
    // integers.
    rounds.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    let (per_block_ns, batched_ns) = rounds[2];

    CcPerf {
        per_block_ns,
        batched_ns,
        outputs_match,
    }
}

/// The serial/parallel harness comparison.
#[derive(Debug, Clone, Copy)]
pub struct HarnessPerf {
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// Host nanoseconds for the one-worker run.
    pub serial_ns: u64,
    /// Host nanoseconds for the all-workers run.
    pub parallel_ns: u64,
    /// Were the merged results byte-identical?
    pub identical: bool,
}

impl HarnessPerf {
    /// Host wall-time reduction (serial / parallel). ~1.0 on a one-core
    /// host — the merge determinism still holds there.
    pub fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// Run `cells` independent sweep cells (seeded copies of the smoke IC
/// workload) through [`par_map_with`] serially and with all workers.
pub fn compare_harness(cells: u64, accesses: u64) -> HarnessPerf {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let specs: Vec<u64> = (0..cells).collect();
    let cell = |seed: u64| {
        let w = IcWorkload {
            accesses,
            ..IcWorkload::full(0x516_0000 + seed)
        };
        run_ic_variant(&w, true)
    };

    let start = Instant::now();
    let serial = par_map_with(1, specs.clone(), cell);
    let serial_ns = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let parallel = par_map_with(threads, specs, cell);
    let parallel_ns = start.elapsed().as_nanos() as u64;

    HarnessPerf {
        threads,
        serial_ns,
        parallel_ns,
        identical: serial == parallel,
    }
}

/// One simulator-core timing of a fixed SoC workload.
#[derive(Debug, Clone, Copy)]
pub struct SimRun {
    /// Simulated cycles covered.
    pub sim_cycles: u64,
    /// Ticks actually executed — equal to `sim_cycles` on the stepped
    /// core; the number of *events* on the event core.
    pub ticks: u64,
    /// Host nanoseconds for the run (CPU time where available).
    pub host_ns: u64,
}

impl SimRun {
    /// Host-side simulated-cycle throughput.
    pub fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 * 1e9 / self.host_ns.max(1) as f64
    }

    /// Host-side executed-tick (event) throughput.
    pub fn events_per_sec(&self) -> f64 {
        self.ticks as f64 * 1e9 / self.host_ns.max(1) as f64
    }
}

/// Stepped vs event core on one workload.
#[derive(Debug, Clone, Copy)]
pub struct SimPair {
    pub stepped: SimRun,
    pub event: SimRun,
    /// Metrics snapshots byte-identical between the cores?
    pub identical: bool,
}

impl SimPair {
    /// Host wall-time reduction (stepped / event).
    pub fn speedup(&self) -> f64 {
        self.stepped.host_ns as f64 / self.event.host_ns.max(1) as f64
    }

    /// Fraction of cycles the event core skipped.
    pub fn skip_fraction(&self) -> f64 {
        1.0 - self.event.ticks as f64 / self.event.sim_cycles.max(1) as f64
    }
}

/// The S-21 simulator-core comparison (stepped vs event-driven run loop).
#[derive(Debug, Clone, Copy)]
pub struct SimPerf {
    /// Halting case-study programs with a long quiet tail: mostly idle,
    /// the regime the event core exists for.
    pub idle: SimPair,
    /// An open-loop flood source issuing on every single cycle of the
    /// run: zero skippable cycles, so this prices the pure overhead of
    /// the event core's quiescence checks.
    pub saturated: SimPair,
}

/// Time `soc.run(cycles)` under `core`; returns the run sample and the
/// final metrics snapshot (the equivalence witness).
///
/// Wall clock, not process CPU time: these runs last a few
/// milliseconds, so the 100 Hz CPU clock's 10 ms quanta would swamp
/// the reading (one side rounding to a whole tick while the other
/// reads zero inverts the ratio). Scheduler noise at this scale is
/// handled by the paired-round median in [`compare_sim_workload`].
fn run_sim_variant(mut soc: secbus_soc::Soc, core: SimCore, cycles: u64) -> (SimRun, String) {
    soc.set_sim_core(core);
    let wall = Instant::now();
    soc.run(cycles);
    let host_ns = wall.elapsed().as_nanos() as u64;
    (
        SimRun {
            sim_cycles: cycles,
            ticks: soc.ticks_executed(),
            host_ns,
        },
        soc.metrics_json(),
    )
}

/// Compare the cores on one workload: paired rounds, median by speedup
/// ratio (same discipline as [`compare_cc`] — slow host-frequency drift
/// cancels in the ratio).
fn compare_sim_workload(build: &dyn Fn() -> secbus_soc::Soc, cycles: u64) -> SimPair {
    let mut rounds: Vec<(SimRun, SimRun, bool)> = (0..3)
        .map(|_| {
            let (stepped, stepped_metrics) = run_sim_variant(build(), SimCore::Stepped, cycles);
            let (event, event_metrics) = run_sim_variant(build(), SimCore::Event, cycles);
            (stepped, event, stepped_metrics == event_metrics)
        })
        .collect();
    rounds.sort_by(|a, b| {
        (u128::from(a.0.host_ns) * u128::from(b.1.host_ns.max(1)))
            .cmp(&(u128::from(b.0.host_ns) * u128::from(a.1.host_ns.max(1))))
    });
    let (stepped, event, _) = rounds[1];
    SimPair {
        stepped,
        event,
        identical: rounds.iter().all(|r| r.2),
    }
}

/// Run the stepped/event comparison on the idle-heavy case study and a
/// saturated open-loop flood (`idle_cycles` / `saturated_cycles` long).
pub fn compare_sim(idle_cycles: u64, saturated_cycles: u64) -> SimPerf {
    use secbus_cpu::{OpenLoopConfig, OpenLoopMaster};
    use secbus_soc::{case_study, CaseStudyConfig, SocBuilder};

    // Halting programs, finite IP streams: activity dies out early and
    // the tail is pure idle.
    let idle = compare_sim_workload(&|| case_study(CaseStudyConfig::default()), idle_cycles);
    // An open-loop source whose issue window covers the whole run is
    // `Wake::Now` on every cycle, so the event core can never skip: the
    // bare (cheapest-per-tick) soc makes the quiescence-check overhead
    // proportionally largest — the conservative pricing.
    let saturated = compare_sim_workload(
        &|| {
            let rng = SimRng::new(0x516).derive("s21.saturated");
            let source = OpenLoopMaster::new(
                "flood",
                OpenLoopConfig {
                    window: (DDR_BASE, 0x100),
                    read_ratio: 0.75,
                    per_tick: 1,
                    until: saturated_cycles,
                },
                rng,
            );
            SocBuilder::new()
                .add_master(Box::new(source))
                .set_ddr(
                    "ddr",
                    secbus_bus::AddrRange::new(DDR_BASE, 0x1000),
                    ExternalDdr::new(0x1000),
                    None,
                )
                .build()
        },
        saturated_cycles,
    );
    SimPerf { idle, saturated }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cached variant must be outcome-identical and strictly cheaper
    /// in simulated IC cycles on the hot-set workload.
    #[test]
    fn cached_ic_is_equivalent_and_cheaper() {
        let perf = compare_ic(&IcWorkload::smoke(0xD15C));
        assert!(perf.equivalent(), "cached IC diverged from uncached");
        assert!(perf.uncached.alerts > 0, "tampering must raise alerts");
        assert!(perf.cached.cache_hits > 0, "hot set must hit the cache");
        assert!(
            perf.speedup() >= 2.0,
            "expected >= 2x IC cycle reduction, got {:.2}x",
            perf.speedup()
        );
        assert_eq!(
            perf.cached.ic_cycles + perf.cached.cycles_saved,
            perf.uncached.ic_cycles,
            "saved cycles must account exactly for the difference"
        );
    }

    /// Under the paper's flat Table II timing the cache must change
    /// *nothing* — identical outcomes and identical charged cycles.
    #[test]
    fn paper_timing_is_cost_neutral() {
        let w = IcWorkload {
            per_level_cycles: 0,
            ..IcWorkload::smoke(0xD15D)
        };
        let perf = compare_ic(&w);
        assert!(perf.equivalent());
        assert_eq!(perf.uncached.ic_cycles, perf.cached.ic_cycles);
        assert_eq!(perf.cached.cycles_saved, 0);
    }

    #[test]
    fn batched_cc_matches_per_block() {
        let perf = compare_cc(1024, 2);
        assert!(perf.outputs_match);
    }

    #[test]
    fn harness_results_are_identical_across_thread_counts() {
        let perf = compare_harness(3, 64);
        assert!(perf.identical);
    }

    #[test]
    fn sim_cores_agree_and_event_core_skips_the_idle_tail() {
        let perf = compare_sim(30_000, 3_000);
        assert!(perf.idle.identical, "idle workload metrics diverged");
        assert!(perf.saturated.identical, "saturated metrics diverged");
        assert_eq!(perf.idle.stepped.ticks, perf.idle.stepped.sim_cycles);
        assert!(
            perf.idle.skip_fraction() > 0.5,
            "idle tail must mostly skip: {:.2}",
            perf.idle.skip_fraction()
        );
        assert_eq!(
            perf.saturated.event.ticks, perf.saturated.event.sim_cycles,
            "an open-loop flood issuing every cycle leaves nothing to skip"
        );
    }
}
