//! # secbus-bench — the harness that regenerates every table and figure
//!
//! One binary per artifact (see DESIGN.md §4):
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (synthesis area) | `table1` |
//! | Table II (latency / throughput) | `table2` |
//! | Figure 1 (architecture) | `fig1` |
//! | S-1 rule-count scaling | `ablation_rules` |
//! | S-2 traffic-mix overhead | `ablation_traffic` |
//! | S-3 attack detection & containment | `attacks` |
//! | S-4 distributed vs centralized | `baseline_compare` |
//!
//! The measurement logic lives here (unit-tested); the binaries only
//! format. Criterion micro-benches are under `benches/`.

pub mod energy;
pub mod table2;
pub mod timing;
pub mod traffic;

/// Order-preserving parallel map over an owned work list, built on scoped
/// threads so the workspace needs no thread-pool dependency. Results come
/// back in input order regardless of which worker ran each item, so the
/// output is exactly what a sequential `.map().collect()` would produce.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let mut slots: Vec<std::sync::Mutex<Option<R>>> = Vec::with_capacity(total);
    slots.resize_with(total, || std::sync::Mutex::new(None));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (work_ref, slots_ref, f_ref) = (&work, &slots, &f);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let item = work_ref[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index claimed once");
                *slots_ref[i].lock().unwrap() = Some(f_ref(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every index computed"))
        .collect()
}

pub use energy::{case_study_energy, collect_activity};
pub use table2::{measure_table2, Table2};
pub use timing::{bench, measure, Measurement};
pub use traffic::{
    sweep_traffic, traffic_overhead, traffic_overhead_multi, OverheadRow, OverheadStat,
};
