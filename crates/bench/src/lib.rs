//! # secbus-bench — the harness that regenerates every table and figure
//!
//! One binary per artifact (see DESIGN.md §4):
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (synthesis area) | `table1` |
//! | Table II (latency / throughput) | `table2` |
//! | Figure 1 (architecture) | `fig1` |
//! | S-1 rule-count scaling | `ablation_rules` |
//! | S-2 traffic-mix overhead | `ablation_traffic` |
//! | S-3 attack detection & containment | `attacks` |
//! | S-4 distributed vs centralized | `baseline_compare` |
//! | S-13 chaos soak (faults × resilience) | `chaos_soak` |
//! | S-14 crash soak (power cuts × journal) | `crash_soak` |
//! | S-15 NoC soak (mesh faults × transport) | `noc_soak` |
//! | S-16 perf soak (IC cache, CC batching, parallel harness) | `perf_soak` |
//! | S-18 campaign soak (staged attacks × DIFT × kill chains) | `campaign_soak` |
//!
//! The measurement logic lives here (unit-tested); the binaries only
//! format. The soak sweeps fan their cells across threads via
//! [`par_map_with`] and merge in input order, so their JSON reports are
//! byte-identical to a serial run (`--serial` forces one). Criterion
//! micro-benches are under `benches/`.

pub mod energy;
pub mod harness;
pub mod hostperf;
pub mod perf;
pub mod table2;
pub mod timing;
pub mod traffic;

/// Order-preserving parallel map over an owned work list, built on scoped
/// threads so the workspace needs no thread-pool dependency. Results come
/// back in input order regardless of which worker ran each item, so the
/// output is exactly what a sequential `.map().collect()` would produce.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    par_map_with(threads, items, f)
}

/// [`par_map`] with an explicit worker count (1 = run inline). The result
/// is identical for every `threads` value — the determinism the soak
/// harnesses rely on for byte-identical serial/parallel JSON — so the
/// count only chooses a wall-time/CPU trade-off.
pub fn par_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let mut slots: Vec<std::sync::Mutex<Option<R>>> = Vec::with_capacity(total);
    slots.resize_with(total, || std::sync::Mutex::new(None));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (work_ref, slots_ref, f_ref) = (&work, &slots, &f);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let item = work_ref[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index claimed once");
                *slots_ref[i].lock().unwrap() = Some(f_ref(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every index computed"))
        .collect()
}

/// Worker count for a soak sweep: 1 when `--serial` is on the command
/// line (the reference serial run), else the host's parallelism. The
/// sweeps are deterministic either way — `--serial` only exists so the
/// byte-identical-JSON claim can be checked against an actual serial run.
pub fn sweep_threads() -> usize {
    if std::env::args().any(|a| a == "--serial") {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

pub use energy::{case_study_energy, collect_activity};
pub use harness::{finish, SoakArgs};
pub use hostperf::{measure_host, HostPerf, HostWorkload};
pub use table2::{measure_table2, Table2};
pub use timing::{bench, measure, Measurement};
pub use traffic::{
    sweep_traffic, traffic_overhead, traffic_overhead_multi, OverheadRow, OverheadStat,
};

#[cfg(test)]
mod par_map_tests {
    use super::{par_map, par_map_with};

    /// Results land in input order and match the sequential map for any
    /// worker count, including counts above the item count.
    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let work: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = work.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = par_map_with(threads, work.clone(), |x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert_eq!(par_map(work, |x| x * x + 1), expected);
    }

    #[test]
    fn par_map_handles_empty_input() {
        let got: Vec<u32> = par_map_with(4, Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }
}
