//! # secbus-bench — the harness that regenerates every table and figure
//!
//! One binary per artifact (see DESIGN.md §4):
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (synthesis area) | `table1` |
//! | Table II (latency / throughput) | `table2` |
//! | Figure 1 (architecture) | `fig1` |
//! | S-1 rule-count scaling | `ablation_rules` |
//! | S-2 traffic-mix overhead | `ablation_traffic` |
//! | S-3 attack detection & containment | `attacks` |
//! | S-4 distributed vs centralized | `baseline_compare` |
//!
//! The measurement logic lives here (unit-tested); the binaries only
//! format. Criterion micro-benches are under `benches/`.

pub mod energy;
pub mod table2;
pub mod traffic;

pub use energy::{case_study_energy, collect_activity};
pub use table2::{measure_table2, Table2};
pub use traffic::{sweep_traffic, traffic_overhead, traffic_overhead_multi, OverheadRow, OverheadStat};
