//! Table II, measured: Security Builder latency and crypto-core
//! latency/throughput.
//!
//! * **SB** — measured *in system*: the same single-core program runs with
//!   and without its Local Firewall; the per-checked-access cycle delta is
//!   the checking latency (the firewall path is exercised end to end, not
//!   read off a constant).
//! * **CC / IC** — a 1 MiB stream is actually encrypted (AES-CTR) and
//!   hashed (SHA-256 Merkle leaves); cycle cost comes from the cores'
//!   pipeline model and throughput is computed at the 100 MHz case-study
//!   clock.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfigMemory, CryptoTiming, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, Mb32Core};
use secbus_crypto::{sha256, MemoryCipher};
use secbus_mem::Bram;
use secbus_sim::Clock;
use secbus_soc::{Soc, SocBuilder};

/// The regenerated Table II.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Security Builder checking latency, measured per access (cycles).
    pub sb_cycles: f64,
    /// Confidentiality Core pipeline latency (cycles).
    pub cc_latency: u64,
    /// Measured CC streaming throughput (Mb/s at the system clock).
    pub cc_mbps: f64,
    /// Integrity Core pipeline latency (cycles).
    pub ic_latency: u64,
    /// Measured IC streaming throughput (Mb/s).
    pub ic_mbps: f64,
}

const BRAM_BASE: u32 = 0x2000_0000;

/// A single-core system running `accesses` write+read pairs against BRAM.
fn one_core_soc(protected: bool, accesses: u32) -> Soc {
    let src = format!(
        r"
        li   r1, 0x20000000
        addi r3, r0, {accesses}
        addi r4, r0, 0
    loop:
        sw   r4, 0(r1)
        lw   r5, 0(r1)
        addi r4, r4, 1
        blt  r4, r3, loop
        halt
        "
    );
    let core = Mb32Core::with_local_program("cpu0", 0, assemble(&src).unwrap());
    let mut b = SocBuilder::new();
    if !protected {
        b = b.without_security();
    }
    b.add_protected_master(
        Box::new(core),
        ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )])
        .unwrap(),
    )
    .add_bram(
        "bram",
        AddrRange::new(BRAM_BASE, 0x1000),
        Bram::new(0x1000),
        None,
    )
    .build()
}

/// Measure the Security Builder latency per checked access.
pub fn measure_sb_cycles(accesses: u32) -> f64 {
    let mut base = one_core_soc(false, accesses);
    let base_cycles = base.run_until_halt(10_000_000);
    let mut prot = one_core_soc(true, accesses);
    let prot_cycles = prot.run_until_halt(10_000_000);
    // Each iteration performs one checked write (outbound SB pass) and one
    // checked read (inbound SB pass): 2 checks per iteration.
    let checks = 2.0 * f64::from(accesses);
    (prot_cycles as f64 - base_cycles as f64) / checks
}

/// Stream `bytes` through the Confidentiality Core (really encrypting)
/// and report (cycles, Mb/s at `clock`).
pub fn measure_cc(bytes: usize, clock: Clock) -> (u64, f64) {
    let timing = CryptoTiming::PAPER;
    let cipher = MemoryCipher::new(b"table2-bench-key");
    let mut buf = vec![0xA5u8; bytes];
    cipher.apply(0, 1, &mut buf);
    // Keep the work observable so it cannot be optimised away.
    assert!(buf.iter().any(|&b| b != 0xA5));
    let bits = bytes as u64 * 8;
    let cycles = timing.cc_stream_cycles(bits);
    (cycles, clock.mbps(bits, cycles))
}

/// Stream `bytes` through the Integrity Core (really hashing 16-byte
/// protection blocks) and report (cycles, Mb/s at `clock`).
pub fn measure_ic(bytes: usize, clock: Clock) -> (u64, f64) {
    let timing = CryptoTiming::PAPER;
    let buf = vec![0x5Au8; bytes];
    let mut digest_xor = 0u8;
    for chunk in buf.chunks(16) {
        digest_xor ^= sha256(chunk)[0];
    }
    let _ = digest_xor;
    let bits = bytes as u64 * 8;
    let cycles = timing.ic_stream_cycles(bits);
    (cycles, clock.mbps(bits, cycles))
}

/// Regenerate Table II.
pub fn measure_table2() -> Table2 {
    let clock = Clock::ML605_DEFAULT;
    let timing = CryptoTiming::PAPER;
    let stream = 1 << 20; // 1 MiB
    let (_, cc_mbps) = measure_cc(stream, clock);
    let (_, ic_mbps) = measure_ic(stream, clock);
    Table2 {
        sb_cycles: measure_sb_cycles(64),
        cc_latency: timing.cc_latency,
        cc_mbps,
        ic_latency: timing.ic_latency,
        ic_mbps,
    }
}

impl Table2 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>18}\n",
            "", "Nb. of clk cycles", "Throughput (Mb/s)"
        ));
        out.push_str(&format!(
            "{:<22} {:>14.1} {:>18}\n",
            "SB (LF/LCF)", self.sb_cycles, "-"
        ));
        out.push_str(&format!(
            "{:<22} {:>14} {:>18.0}\n",
            "CC", self.cc_latency, self.cc_mbps
        ));
        out.push_str(&format!(
            "{:<22} {:>14} {:>18.0}\n",
            "IC", self.ic_latency, self.ic_mbps
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_measures_twelve_cycles() {
        let sb = measure_sb_cycles(32);
        assert!(
            (sb - 12.0).abs() < 1.0,
            "measured SB latency {sb} should be the paper's 12 cycles"
        );
    }

    #[test]
    fn cc_throughput_matches_paper() {
        let (_, mbps) = measure_cc(1 << 20, Clock::ML605_DEFAULT);
        assert!((mbps - 450.0).abs() < 2.0, "CC {mbps} Mb/s");
    }

    #[test]
    fn ic_throughput_matches_paper() {
        let (_, mbps) = measure_ic(1 << 20, Clock::ML605_DEFAULT);
        assert!((mbps - 131.0).abs() < 2.0, "IC {mbps} Mb/s");
    }

    #[test]
    fn cc_is_roughly_3_4x_faster_than_ic() {
        let t = measure_table2();
        let ratio = t.cc_mbps / t.ic_mbps;
        assert!((3.0..3.8).contains(&ratio), "shape: CC/IC ratio {ratio}");
    }

    #[test]
    fn render_matches_paper_rows() {
        let t = measure_table2();
        let s = t.render();
        assert!(s.contains("SB (LF/LCF)"));
        assert!(s.contains("CC"));
        assert!(s.contains("IC"));
        assert!(s.contains("450") || s.contains("449") || s.contains("451"));
    }
}
