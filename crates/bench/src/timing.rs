//! Minimal wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The workspace is built offline, so the usual statistical harnesses are
//! out of reach; this module provides just enough — warmup, automatic
//! iteration scaling, and a median-of-samples report — for the host-side
//! speed numbers the benches print. Architectural timing (Table II) does
//! not go through here: it is measured in simulated cycles by `table2`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Number of measurement samples (the median is reported).
const SAMPLES: usize = 7;

/// One timed result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations per measurement sample.
    pub iters: u64,
}

impl Measurement {
    /// Throughput in MiB/s given bytes processed per iteration.
    pub fn mib_per_s(&self, bytes_per_iter: u64) -> f64 {
        if self.ns_per_iter <= 0.0 {
            return f64::INFINITY;
        }
        (bytes_per_iter as f64 / (1024.0 * 1024.0)) / (self.ns_per_iter / 1e9)
    }
}

/// Time `f`, scaling the iteration count so each sample runs for roughly
/// `SAMPLE_TARGET`, and return the median over `SAMPLES` samples.
pub fn measure<F: FnMut()>(mut f: F) -> Measurement {
    // Calibrate: find an iteration count filling the sample target.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
            break;
        }
        let scale = if elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(scale);
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        ns_per_iter: samples[SAMPLES / 2],
        iters,
    }
}

/// Run one named benchmark and print a `group/name  time  [throughput]`
/// line. `bytes_per_iter` adds a MiB/s column when non-zero.
pub fn bench<F: FnMut()>(group: &str, name: &str, bytes_per_iter: u64, f: F) {
    let m = measure(f);
    let time = format_ns(m.ns_per_iter);
    if bytes_per_iter > 0 {
        println!(
            "{group}/{name:<28} {time:>12}   {:>10.1} MiB/s",
            m.mib_per_s(bytes_per_iter)
        );
    } else {
        println!("{group}/{name:<28} {time:>12}");
    }
}

/// Keep a value observable to the optimizer (re-export for benches).
pub fn observe<T>(value: T) -> T {
    black_box(value)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_time() {
        let mut x = 0u64;
        let m = measure(|| {
            x = observe(x.wrapping_add(1));
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
    }
}
