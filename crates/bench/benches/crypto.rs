//! Micro-benchmarks of the LCF's cryptographic cores (host-side speed of
//! the functional models; the *architectural* timing is Table II's).

use secbus_bench::bench;
use secbus_bench::timing::observe;
use secbus_crypto::merkle::leaf_digest;
use secbus_crypto::{sha256, Aes128, MemoryCipher, MerkleTree};

fn bench_aes() {
    let aes = Aes128::new(&[7; 16]);
    let mut block = [0u8; 16];
    bench("aes128", "encrypt_block", 16, || {
        aes.encrypt_block(observe(&mut block));
    });
    let mut block = [0u8; 16];
    bench("aes128", "decrypt_block", 16, || {
        aes.decrypt_block(observe(&mut block));
    });
}

fn bench_ctr() {
    let cipher = MemoryCipher::new(&[9; 16]);
    for size in [64usize, 1024, 16 * 1024] {
        let mut buf = vec![0xA5u8; size];
        bench(
            "memory_cipher",
            &format!("apply_{size}B"),
            size as u64,
            || {
                cipher.apply(0x1000, 3, observe(&mut buf));
            },
        );
    }
}

fn bench_sha() {
    for size in [16usize, 64, 1024] {
        let data = vec![0x5Au8; size];
        bench("sha256", &format!("oneshot_{size}B"), size as u64, || {
            observe(sha256(observe(&data)));
        });
    }
}

fn bench_merkle() {
    for leaves in [256usize, 4096] {
        let init: Vec<_> = (0..leaves)
            .map(|i| leaf_digest(i as u64, 0, &[0; 16]))
            .collect();
        let tree = MerkleTree::build(&init);
        let mut t = tree.clone();
        let d = leaf_digest(0, 1, &[1; 16]);
        bench("merkle", &format!("update_leaf_{leaves}"), 0, || {
            t.update_leaf(observe(7 % leaves), observe(d));
        });
        bench("merkle", &format!("verify_leaf_{leaves}"), 0, || {
            observe(tree.verify_leaf(observe(7 % leaves), observe(&init[7 % leaves])));
        });
    }
}

fn main() {
    bench_aes();
    bench_ctr();
    bench_sha();
    bench_merkle();
}
