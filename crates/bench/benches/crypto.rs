//! Micro-benchmarks of the LCF's cryptographic cores (host-side speed of
//! the functional models; the *architectural* timing is Table II's).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use secbus_crypto::merkle::leaf_digest;
use secbus_crypto::{sha256, Aes128, MemoryCipher, MerkleTree};
use std::hint::black_box;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7; 16]);
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(black_box(&mut block));
        });
    });
    g.bench_function("decrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.decrypt_block(black_box(&mut block));
        });
    });
    g.finish();
}

fn bench_ctr(c: &mut Criterion) {
    let cipher = MemoryCipher::new(&[9; 16]);
    let mut g = c.benchmark_group("memory_cipher");
    for size in [64usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("apply_{size}B"), |b| {
            b.iter_batched_ref(
                || vec![0xA5u8; size],
                |buf| cipher.apply(0x1000, 3, black_box(buf)),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_sha(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [16usize, 64, 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        let data = vec![0x5Au8; size];
        g.bench_function(format!("oneshot_{size}B"), |b| {
            b.iter(|| sha256(black_box(&data)));
        });
    }
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for leaves in [256usize, 4096] {
        let init: Vec<_> = (0..leaves).map(|i| leaf_digest(i as u64, 0, &[0; 16])).collect();
        let tree = MerkleTree::build(&init);
        g.bench_function(format!("update_leaf_{leaves}"), |b| {
            let mut t = tree.clone();
            let d = leaf_digest(0, 1, &[1; 16]);
            b.iter(|| t.update_leaf(black_box(7 % leaves), black_box(d)));
        });
        g.bench_function(format!("verify_leaf_{leaves}"), |b| {
            b.iter(|| tree.verify_leaf(black_box(7 % leaves), black_box(&init[7 % leaves])));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aes, bench_ctr, bench_sha, bench_merkle);
criterion_main!(benches);
